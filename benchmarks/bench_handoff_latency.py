"""Sharing-miss hand-off latency: the mechanism behind Figure 6.

The paper's introduction attributes DirectoryCMP's deficit to directory
*indirections* on the sharing misses that dominate commercial workloads.
This bench isolates the mechanism with the ping-pong micro-benchmark: one
block bouncing between two processors, same-chip and cross-chip, and
reports the time per round trip.

Expected shape: TokenCMP's broadcast finds the remote owner directly, so
its cross-chip hand-off beats DirectoryCMP's L1 -> home L2 -> home
memory directory (DRAM!) -> owner chip L2 -> owner L1 chain; the
zero-cycle directory closes part of the gap, showing how much of it is
the directory access itself.
"""

from __future__ import annotations

import pytest

from bench_common import emit, full_params
from repro.analysis.report import ResultTable, run_one
from repro.workloads.pingpong import PingPongWorkload

PROTOCOLS = ["DirectoryCMP", "DirectoryCMP-zero", "TokenCMP-dst1", "TokenB"]
ROUNDS = 24


def _factory(proc_b):
    def make(params, seed):
        return PingPongWorkload(params, proc_a=0, proc_b=proc_b,
                                rounds=ROUNDS, seed=seed)
    return make


def run_experiment():
    params = full_params()
    results = {}
    for label, proc_b in (("same chip", 1), ("cross chip", params.procs_per_chip)):
        for proto in PROTOCOLS:
            res = run_one(params, proto, _factory(proc_b), seed=1)
            results[(label, proto)] = res.runtime_ps / ROUNDS / 1000.0  # ns/round
    table = ResultTable(
        "Sharing-miss hand-off: ns per ping-pong round trip (lower is better)",
        ["pair"] + PROTOCOLS,
    )
    for label in ("same chip", "cross chip"):
        table.add(label, *(f"{results[(label, p)]:.0f}" for p in PROTOCOLS))
    return results, table


@pytest.mark.benchmark(group="handoff")
def test_handoff_latency(benchmark):
    results, table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("handoff_latency", [table])

    # Cross-chip: token's direct broadcast beats the directory chain.
    assert results[("cross chip", "TokenCMP-dst1")] < results[("cross chip", "DirectoryCMP")]
    # The zero-cycle directory recovers part (not all) of the indirection.
    assert results[("cross chip", "DirectoryCMP-zero")] < results[("cross chip", "DirectoryCMP")]
    # Same-chip hand-offs are much cheaper than cross-chip for everyone.
    for proto in PROTOCOLS:
        assert results[("same chip", proto)] < results[("cross chip", proto)]