"""Sharing-miss hand-off latency: the mechanism behind Figure 6.

The paper's introduction attributes DirectoryCMP's deficit to directory
*indirections* on the sharing misses that dominate commercial workloads.
This bench isolates the mechanism with the ping-pong micro-benchmark: one
block bouncing between two processors, same-chip and cross-chip, and
reports the time per round trip.

Expected shape: TokenCMP's broadcast finds the remote owner directly, so
its cross-chip hand-off beats DirectoryCMP's L1 -> home L2 -> home
memory directory (DRAM!) -> owner chip L2 -> owner L1 chain; the
zero-cycle directory closes part of the gap, showing how much of it is
the directory access itself.

The grid is the ``handoff`` entry of :mod:`repro.exp.library`, also
runnable as ``python -m repro bench handoff``.
"""

from __future__ import annotations

import pytest

from bench_common import emit, run_library
from repro.exp.library import HANDOFF_PROTOCOLS, handoff_grid


def run_experiment():
    result, tables = run_library("handoff")
    return handoff_grid(result), tables


@pytest.mark.benchmark(group="handoff")
def test_handoff_latency(benchmark):
    results, tables = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("handoff_latency", tables)

    # Cross-chip: token's direct broadcast beats the directory chain.
    assert results[("cross chip", "TokenCMP-dst1")] < results[("cross chip", "DirectoryCMP")]
    # The zero-cycle directory recovers part (not all) of the indirection.
    assert results[("cross chip", "DirectoryCMP-zero")] < results[("cross chip", "DirectoryCMP")]
    # Same-chip hand-offs are much cheaper than cross-chip for everyone.
    for proto in HANDOFF_PROTOCOLS:
        assert results[("same chip", proto)] < results[("cross chip", proto)]
