"""Figure 6: commercial-workload runtime normalized to DirectoryCMP.

Paper claims reproduced (shape):
* TokenCMP-dst1 is faster than DirectoryCMP by ~50% (OLTP), ~29% (Apache)
  and ~10% (SPECjbb) — biggest win where migratory sharing dominates;
* all TokenCMP variants perform similarly (contention is modest);
* persistent requests are rare (< ~0.3% of L1 misses in the paper);
* PerfectL2 bounds the improvement from below, DirectoryCMP-zero shows
  the directory-access cost.

The grid is the ``fig6`` entry of :mod:`repro.exp.library`, also
runnable as ``python -m repro bench fig6``.
"""

from __future__ import annotations

import pytest

from bench_common import emit, run_library
from repro.exp.library import (
    COMMERCIAL_WORKLOADS,
    FIG6_PROTOCOLS,
    commercial_results,
)


def run_experiment():
    result, tables = run_library("fig6")
    return commercial_results(result, FIG6_PROTOCOLS), tables


@pytest.mark.benchmark(group="fig6")
def test_fig6_commercial_runtime(benchmark):
    all_results, tables = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("fig6_runtime", tables)

    for wl in COMMERCIAL_WORKLOADS:
        res = all_results[wl]
        base = res["DirectoryCMP"].runtime_ps
        # TokenCMP-dst1 is faster than DirectoryCMP on every workload.
        assert res["TokenCMP-dst1"].runtime_ps < base
        # PerfectL2 bounds the improvement.
        assert res["PerfectL2"].runtime_ps < res["TokenCMP-dst1"].runtime_ps
        # All TokenCMP variants perform similarly (within 15%).
        tok = [
            res[p].runtime_ps
            for p in FIG6_PROTOCOLS
            if p.startswith("TokenCMP")
        ]
        assert max(tok) / min(tok) < 1.15
        # Persistent requests are rare on macro-benchmarks (paper: <0.3% of
        # misses; our synthetic streams are smaller and proportionally more
        # lock-contended, so the bound here is looser but still "rare").
        dst1 = res["TokenCMP-dst1"]
        assert dst1.get("persistent.requests") <= 0.04 * dst1.get("l1.misses")

    # Ordering of wins: OLTP > Apache > SPECjbb.
    def speedup(wl):
        res = all_results[wl]
        return res["DirectoryCMP"].runtime_ps / res["TokenCMP-dst1"].runtime_ps

    assert speedup("oltp") > speedup("apache") > speedup("specjbb") > 1.0
