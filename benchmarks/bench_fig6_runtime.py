"""Figure 6: commercial-workload runtime normalized to DirectoryCMP.

Paper claims reproduced (shape):
* TokenCMP-dst1 is faster than DirectoryCMP by ~50% (OLTP), ~29% (Apache)
  and ~10% (SPECjbb) — biggest win where migratory sharing dominates;
* all TokenCMP variants perform similarly (contention is modest);
* persistent requests are rare (< ~0.3% of L1 misses in the paper);
* PerfectL2 bounds the improvement from below, DirectoryCMP-zero shows
  the directory-access cost.
"""

from __future__ import annotations

import pytest

from bench_common import emit, full_params, results_grid
from repro.analysis.report import ResultTable
from repro.workloads.commercial import make_commercial

PROTOCOLS = [
    "DirectoryCMP",
    "DirectoryCMP-zero",
    "TokenCMP-dst4",
    "TokenCMP-dst1",
    "TokenCMP-dst1-pred",
    "TokenCMP-dst1-filt",
    "PerfectL2",
]
WORKLOADS = ["oltp", "apache", "specjbb"]
PAPER_SPEEDUP = {"oltp": 0.50, "apache": 0.29, "specjbb": 0.10}
REFS = 250


def _factory(name):
    def make(params, seed):
        return make_commercial(params, name, seed=seed, refs_per_proc=REFS)
    return make


def run_experiment():
    params = full_params()
    all_results = {
        wl: results_grid(params, PROTOCOLS, _factory(wl)) for wl in WORKLOADS
    }
    table = ResultTable(
        "Figure 6 - commercial workload runtime normalized to DirectoryCMP "
        "(smaller is better)",
        ["protocol"] + WORKLOADS,
    )
    for proto in PROTOCOLS:
        cells = []
        for wl in WORKLOADS:
            base = all_results[wl]["DirectoryCMP"].runtime_ps
            cells.append(f"{all_results[wl][proto].runtime_ps / base:.2f}")
        table.add(proto, *cells)
    speedups = ResultTable(
        "TokenCMP-dst1 speedup over DirectoryCMP (paper: OLTP 50%, Apache 29%, "
        "SPECjbb 10%)",
        ["workload", "measured", "paper"],
    )
    for wl in WORKLOADS:
        base = all_results[wl]["DirectoryCMP"].runtime_ps
        tok = all_results[wl]["TokenCMP-dst1"].runtime_ps
        speedups.add(wl, f"{base / tok - 1:+.0%}", f"+{PAPER_SPEEDUP[wl]:.0%}")
    latency = ResultTable(
        "L1 miss latency in ns (mean / p50 / p95) - the indirection gap",
        ["workload", "protocol", "mean", "p50", "p95"],
    )
    for wl in WORKLOADS:
        for proto in ("DirectoryCMP", "TokenCMP-dst1"):
            summary = all_results[wl][proto].stats.summaries["l1.miss_latency_ps"]
            latency.add(
                wl, proto,
                f"{summary.mean / 1000:.0f}",
                f"{summary.percentile(50) / 1000:.0f}",
                f"{summary.percentile(95) / 1000:.0f}",
            )
    return all_results, table, speedups, latency


@pytest.mark.benchmark(group="fig6")
def test_fig6_commercial_runtime(benchmark):
    all_results, table, speedups, latency = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    emit("fig6_runtime", [table, speedups, latency])

    for wl in WORKLOADS:
        res = all_results[wl]
        base = res["DirectoryCMP"].runtime_ps
        # TokenCMP-dst1 is faster than DirectoryCMP on every workload.
        assert res["TokenCMP-dst1"].runtime_ps < base
        # PerfectL2 bounds the improvement.
        assert res["PerfectL2"].runtime_ps < res["TokenCMP-dst1"].runtime_ps
        # All TokenCMP variants perform similarly (within 15%).
        tok = [
            res[p].runtime_ps
            for p in PROTOCOLS
            if p.startswith("TokenCMP")
        ]
        assert max(tok) / min(tok) < 1.15
        # Persistent requests are rare on macro-benchmarks (paper: <0.3% of
        # misses; our synthetic streams are smaller and proportionally more
        # lock-contended, so the bound here is looser but still "rare").
        stats = res["TokenCMP-dst1"].stats
        assert stats.get("persistent.requests") <= 0.04 * stats.get("l1.misses")

    # Ordering of wins: OLTP > Apache > SPECjbb.
    def speedup(wl):
        res = all_results[wl]
        return res["DirectoryCMP"].runtime_ps / res["TokenCMP-dst1"].runtime_ps

    assert speedup("oltp") > speedup("apache") > speedup("specjbb") > 1.0
