"""Table 4: barrier micro-benchmark runtime (normalized to DirectoryCMP).

Paper reference values (work = 3000 ns fixed | 3000 +- U(1000) ns):

    TokenCMP-arb0        1.40 | 1.29   (highlighted: avoid)
    TokenCMP-dst0        0.94 | 0.91
    DirectoryCMP         1.00 | 1.00
    DirectoryCMP-zero    0.95 | 0.93
    TokenCMP-dst4        1.15 | 1.01   (highlighted: avoid)
    TokenCMP-dst1        0.99 | 0.95
    TokenCMP-dst1-pred   0.96 | 0.93
    TokenCMP-dst1-filt   0.99 | 0.95

Shape reproduced: arb0 is clearly the worst; dst4 is worse than dst1;
dst1/dst1-pred/dst1-filt stay close to DirectoryCMP.

The grid is the ``table4`` entry of :mod:`repro.exp.library`, also
runnable as ``python -m repro bench table4``.
"""

from __future__ import annotations

import pytest

from bench_common import emit, run_library
from repro.exp.library import TABLE4_PROTOCOLS


def run_experiment():
    result, tables = run_library("table4")
    fixed = result.runtime_grid(TABLE4_PROTOCOLS, label="fixed")
    jitter = result.runtime_grid(TABLE4_PROTOCOLS, label="jitter")
    return fixed, jitter, tables


@pytest.mark.benchmark(group="table4")
def test_table4_barrier(benchmark):
    fixed, jitter, tables = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("table4_barrier", tables)

    # The two highlighted-as-bad variants are worse than their partners.
    assert fixed["TokenCMP-arb0"] > fixed["TokenCMP-dst0"]
    assert fixed["TokenCMP-arb0"] > 1.1 * fixed["DirectoryCMP"]
    assert fixed["TokenCMP-dst4"] >= fixed["TokenCMP-dst1-pred"]
    # The robust variants stay in DirectoryCMP's league.
    assert fixed["TokenCMP-dst1-pred"] < 1.35 * fixed["DirectoryCMP"]
    # Work-time jitter softens contention for every token variant.
    assert (jitter["TokenCMP-arb0"] / jitter["DirectoryCMP"]) < (
        fixed["TokenCMP-arb0"] / fixed["DirectoryCMP"]
    )
