"""Table 4: barrier micro-benchmark runtime (normalized to DirectoryCMP).

Paper reference values (work = 3000 ns fixed | 3000 +- U(1000) ns):

    TokenCMP-arb0        1.40 | 1.29   (highlighted: avoid)
    TokenCMP-dst0        0.94 | 0.91
    DirectoryCMP         1.00 | 1.00
    DirectoryCMP-zero    0.95 | 0.93
    TokenCMP-dst4        1.15 | 1.01   (highlighted: avoid)
    TokenCMP-dst1        0.99 | 0.95
    TokenCMP-dst1-pred   0.96 | 0.93
    TokenCMP-dst1-filt   0.99 | 0.95

Shape reproduced: arb0 is clearly the worst; dst4 is worse than dst1;
dst1/dst1-pred/dst1-filt stay close to DirectoryCMP.
"""

from __future__ import annotations

import pytest

from bench_common import emit, full_params, runtime_grid
from repro.analysis.report import ResultTable
from repro.workloads.barrier import BarrierWorkload

PROTOCOLS = [
    "TokenCMP-arb0",
    "TokenCMP-dst0",
    "DirectoryCMP",
    "DirectoryCMP-zero",
    "TokenCMP-dst4",
    "TokenCMP-dst1",
    "TokenCMP-dst1-pred",
    "TokenCMP-dst1-filt",
]
PAPER = {
    "TokenCMP-arb0": (1.40, 1.29),
    "TokenCMP-dst0": (0.94, 0.91),
    "DirectoryCMP": (1.00, 1.00),
    "DirectoryCMP-zero": (0.95, 0.93),
    "TokenCMP-dst4": (1.15, 1.01),
    "TokenCMP-dst1": (0.99, 0.95),
    "TokenCMP-dst1-pred": (0.96, 0.93),
    "TokenCMP-dst1-filt": (0.99, 0.95),
}
PHASES = 16


def _factory(jitter_ns):
    def make(params, seed):
        return BarrierWorkload(
            params, phases=PHASES, work_ns=3000.0, work_jitter_ns=jitter_ns, seed=seed
        )
    return make


def run_experiment():
    params = full_params()
    fixed = runtime_grid(params, PROTOCOLS, _factory(0.0))
    jitter = runtime_grid(params, PROTOCOLS, _factory(1000.0))
    table = ResultTable(
        "Table 4 - barrier micro-benchmark runtime, normalized to DirectoryCMP",
        ["protocol", "3000ns fixed", "paper", "3000ns +-U(1000)", "paper"],
    )
    for proto in PROTOCOLS:
        table.add(
            proto,
            f"{fixed[proto] / fixed['DirectoryCMP']:.2f}",
            f"{PAPER[proto][0]:.2f}",
            f"{jitter[proto] / jitter['DirectoryCMP']:.2f}",
            f"{PAPER[proto][1]:.2f}",
        )
    return fixed, jitter, table


@pytest.mark.benchmark(group="table4")
def test_table4_barrier(benchmark):
    fixed, jitter, table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("table4_barrier", [table])

    # The two highlighted-as-bad variants are worse than their partners.
    assert fixed["TokenCMP-arb0"] > fixed["TokenCMP-dst0"]
    assert fixed["TokenCMP-arb0"] > 1.1 * fixed["DirectoryCMP"]
    assert fixed["TokenCMP-dst4"] >= fixed["TokenCMP-dst1-pred"]
    # The robust variants stay in DirectoryCMP's league.
    assert fixed["TokenCMP-dst1-pred"] < 1.35 * fixed["DirectoryCMP"]
    # Work-time jitter softens contention for every token variant.
    assert (jitter["TokenCMP-arb0"] / jitter["DirectoryCMP"]) < (
        fixed["TokenCMP-arb0"] / fixed["DirectoryCMP"]
    )
