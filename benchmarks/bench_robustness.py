"""Robustness battery bench: the correctness substrate under an adversary.

Not a figure from the paper; it measures the claim behind all of them
(Sections 3 & 7): token counting plus persistent requests keep TokenCMP
safe and live no matter how the interconnect delays, reorders, duplicates,
or drops transient traffic.  The bench sweeps fault rates over the
contention micro-benchmarks with the liveness watchdog and the continuous
token-conservation monitor armed, and reports the slowdown faults cost —
retries and persistent escalations, never correctness.

The same sweep is available as ``python -m repro faults``; the slow pytest
variant lives in ``tests/test_robustness_battery.py`` behind ``-m tier2``.
"""

from __future__ import annotations

import pytest

from bench_common import CACHE_DIR, emit, engine_jobs, engine_use_cache
from repro.faults.battery import run_robustness_battery


def run_experiment():
    return run_robustness_battery(
        scale=1.0, seed=1,
        jobs=engine_jobs(), cache=engine_use_cache(), cache_dir=CACHE_DIR,
    )


@pytest.mark.benchmark(group="robustness")
def test_robustness_battery(benchmark):
    tables = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("robustness_battery", tables)

    # The battery itself raises on any completion / conservation /
    # bounded-slowdown violation; assert the summary shape on top.
    summary = tables[-1]
    runs, completed, _checks, violations, trips, _spurious = summary.rows[0]
    assert runs == completed
    assert violations == "0" and trips == "0"
