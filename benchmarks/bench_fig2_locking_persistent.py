"""Figure 2: locking micro-benchmark using ONLY persistent requests.

Paper claims reproduced (shape):
* TokenCMP-arb0 (arbiter activation) is the worst protocol and degrades
  sharply as contention rises (fewer locks);
* TokenCMP-dst0 (distributed activation) is comparable to or better than
  the directory variants across the contention range;
* runtimes are normalized to DirectoryCMP at 512 locks.
"""

from __future__ import annotations

import pytest

from bench_common import emit, full_params, runtime_grid
from repro.analysis.report import ResultTable
from repro.workloads.locking import LockingWorkload

LOCK_COUNTS = [2, 4, 8, 16, 32, 64, 128, 256, 512]
PROTOCOLS = ["TokenCMP-arb0", "DirectoryCMP", "DirectoryCMP-zero", "TokenCMP-dst0"]
ACQUIRES = 12


def _factory(num_locks):
    def make(params, seed):
        return LockingWorkload(
            params, num_locks=num_locks, acquires_per_proc=ACQUIRES, seed=seed
        )
    return make


def run_experiment():
    params = full_params()
    # High-contention points are noisy: average over perturbed runs, the
    # paper's Alameldeen & Wood methodology (error bars).
    grid = {
        nl: runtime_grid(
            params, PROTOCOLS, _factory(nl),
            seeds=(1, 2, 3) if nl <= 8 else (1,),
        )
        for nl in LOCK_COUNTS
    }
    base = grid[512]["DirectoryCMP"]
    table = ResultTable(
        "Figure 2 - locking micro-benchmark, persistent requests only "
        "(runtime normalized to DirectoryCMP @ 512 locks; smaller is better)",
        ["locks"] + PROTOCOLS,
    )
    for nl in LOCK_COUNTS:
        table.add(nl, *(f"{grid[nl][p] / base:.2f}" for p in PROTOCOLS))
    return grid, table


@pytest.mark.benchmark(group="fig2")
def test_fig2_locking_persistent(benchmark):
    grid, table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("fig2_locking_persistent", [table])

    # Shape assertions from the paper.
    base = grid[512]["DirectoryCMP"]
    # arb0 is the worst variant under high contention...
    assert grid[2]["TokenCMP-arb0"] > grid[2]["TokenCMP-dst0"]
    assert grid[2]["TokenCMP-arb0"] > grid[2]["DirectoryCMP"]
    # ... and degrades with contention.
    assert grid[2]["TokenCMP-arb0"] > grid[512]["TokenCMP-arb0"]
    # Distributed activation stays in the directory protocols' league at
    # low contention (within a small factor across the sweep).
    assert grid[512]["TokenCMP-dst0"] < 1.5 * base
