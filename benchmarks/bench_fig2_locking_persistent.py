"""Figure 2: locking micro-benchmark using ONLY persistent requests.

Paper claims reproduced (shape):
* TokenCMP-arb0 (arbiter activation) is the worst protocol and degrades
  sharply as contention rises (fewer locks);
* TokenCMP-dst0 (distributed activation) is comparable to or better than
  the directory variants across the contention range;
* runtimes are normalized to DirectoryCMP at 512 locks.

The grid is the ``fig2`` entry of :mod:`repro.exp.library`, also
runnable as ``python -m repro bench fig2``.
"""

from __future__ import annotations

import pytest

from bench_common import emit, run_library
from repro.exp.library import FIG2_PROTOCOLS, locking_grid


def run_experiment():
    result, tables = run_library("fig2")
    return locking_grid(result, FIG2_PROTOCOLS), tables


@pytest.mark.benchmark(group="fig2")
def test_fig2_locking_persistent(benchmark):
    grid, tables = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("fig2_locking_persistent", tables)

    # Shape assertions from the paper.
    base = grid[512]["DirectoryCMP"]
    # arb0 is the worst variant under high contention...
    assert grid[2]["TokenCMP-arb0"] > grid[2]["TokenCMP-dst0"]
    assert grid[2]["TokenCMP-arb0"] > grid[2]["DirectoryCMP"]
    # ... and degrades with contention.
    assert grid[2]["TokenCMP-arb0"] > grid[512]["TokenCMP-arb0"]
    # Distributed activation stays in the directory protocols' league at
    # low contention (within a small factor across the sweep).
    assert grid[512]["TokenCMP-dst0"] < 1.5 * base
