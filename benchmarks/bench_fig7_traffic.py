"""Figures 7a / 7b: interconnect traffic of the commercial workloads,
broken down by message class and normalized to DirectoryCMP.

Paper claims reproduced (shape):
* (7a, inter-CMP) TokenCMP variants generate somewhat LESS inter-CMP
  traffic than DirectoryCMP at 4 CMPs — the directory's unblock +
  three-phase-writeback control messages outweigh the token broadcasts;
* (7b, intra-CMP) totals are similar to first order; TokenCMP spends more
  bytes on requests (broadcast), DirectoryCMP more on response data
  (external responses route through the L2);
* the dst1-filt sharer filter trims a mid-single-digit percentage of
  intra-CMP traffic without affecting runtime.

The grid is the ``fig7`` entry of :mod:`repro.exp.library`, also
runnable as ``python -m repro bench fig7``.
"""

from __future__ import annotations

import pytest

from bench_common import emit, run_library
from repro.exp.library import (
    COMMERCIAL_WORKLOADS,
    FIG7_PROTOCOLS,
    commercial_results,
)
from repro.interconnect.traffic import Scope, TrafficClass


def run_experiment():
    result, tables = run_library("fig7")
    return commercial_results(result, FIG7_PROTOCOLS), tables


@pytest.mark.benchmark(group="fig7")
def test_fig7_traffic(benchmark):
    all_results, tables = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("fig7_traffic", tables)

    for wl in COMMERCIAL_WORKLOADS:
        res = all_results[wl]
        dir_inter = res["DirectoryCMP"].scope_bytes(Scope.INTER)
        dst1_inter = res["TokenCMP-dst1"].scope_bytes(Scope.INTER)
        # (7a) Token inter-CMP traffic is in DirectoryCMP's league at 4
        # CMPs (the paper measured somewhat less).
        assert dst1_inter < 1.4 * dir_inter

        # (7b) Token protocols spend more on broadcast requests...
        dir_b = res["DirectoryCMP"].breakdown(Scope.INTRA)
        tok_b = res["TokenCMP-dst1"].breakdown(Scope.INTRA)
        assert tok_b[TrafficClass.REQUEST] > dir_b[TrafficClass.REQUEST]
        # ... the directory only on unblock messages (tokens need none).
        assert dir_b[TrafficClass.UNBLOCK] > 0
        assert tok_b[TrafficClass.UNBLOCK] == 0

        # The filter saves intra-CMP bandwidth vs unfiltered dst1.
        filt = res["TokenCMP-dst1-filt"].scope_bytes(Scope.INTRA)
        dst1 = res["TokenCMP-dst1"].scope_bytes(Scope.INTRA)
        assert filt < dst1
