"""Figures 7a / 7b: interconnect traffic of the commercial workloads,
broken down by message class and normalized to DirectoryCMP.

Paper claims reproduced (shape):
* (7a, inter-CMP) TokenCMP variants generate somewhat LESS inter-CMP
  traffic than DirectoryCMP at 4 CMPs — the directory's unblock +
  three-phase-writeback control messages outweigh the token broadcasts;
* (7b, intra-CMP) totals are similar to first order; TokenCMP spends more
  bytes on requests (broadcast), DirectoryCMP more on response data
  (external responses route through the L2);
* the dst1-filt sharer filter trims a mid-single-digit percentage of
  intra-CMP traffic without affecting runtime.
"""

from __future__ import annotations

import pytest

from bench_common import emit, full_params, results_grid
from repro.analysis.report import ResultTable, traffic_breakdown_normalized
from repro.interconnect.traffic import Scope, TrafficClass
from repro.workloads.commercial import make_commercial

PROTOCOLS = [
    "DirectoryCMP",
    "TokenCMP-dst4",
    "TokenCMP-dst1",
    "TokenCMP-dst1-pred",
    "TokenCMP-dst1-filt",
]
WORKLOADS = ["oltp", "apache", "specjbb"]
REFS = 250


def _factory(name):
    def make(params, seed):
        return make_commercial(params, name, seed=seed, refs_per_proc=REFS)
    return make


def _traffic_table(all_results, scope, title):
    table = ResultTable(
        title, ["workload", "protocol", "total"] + [k.value for k in TrafficClass]
    )
    for wl in WORKLOADS:
        norm = traffic_breakdown_normalized(all_results[wl], scope, "DirectoryCMP")
        for proto in PROTOCOLS:
            row = norm[proto]
            table.add(
                wl, proto, f"{sum(row.values()):.2f}",
                *(f"{row[k]:.3f}" for k in TrafficClass),
            )
    return table


def run_experiment():
    params = full_params()
    all_results = {
        wl: results_grid(params, PROTOCOLS, _factory(wl)) for wl in WORKLOADS
    }
    t7a = _traffic_table(
        all_results, Scope.INTER,
        "Figure 7a - inter-CMP traffic by message class "
        "(bytes, normalized to DirectoryCMP total)",
    )
    t7b = _traffic_table(
        all_results, Scope.INTRA,
        "Figure 7b - intra-CMP traffic by message class "
        "(bytes, normalized to DirectoryCMP total)",
    )
    return all_results, t7a, t7b


@pytest.mark.benchmark(group="fig7")
def test_fig7_traffic(benchmark):
    all_results, t7a, t7b = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("fig7_traffic", [t7a, t7b])

    for wl in WORKLOADS:
        res = all_results[wl]
        dir_inter = res["DirectoryCMP"].meter.scope_bytes(Scope.INTER)
        dst1_inter = res["TokenCMP-dst1"].meter.scope_bytes(Scope.INTER)
        # (7a) Token inter-CMP traffic is in DirectoryCMP's league at 4
        # CMPs (the paper measured somewhat less).
        assert dst1_inter < 1.4 * dir_inter

        # (7b) Token protocols spend more on broadcast requests...
        dir_b = res["DirectoryCMP"].meter.breakdown(Scope.INTRA)
        tok_b = res["TokenCMP-dst1"].meter.breakdown(Scope.INTRA)
        assert tok_b[TrafficClass.REQUEST] > dir_b[TrafficClass.REQUEST]
        # ... the directory only on unblock messages (tokens need none).
        assert dir_b[TrafficClass.UNBLOCK] > 0
        assert tok_b[TrafficClass.UNBLOCK] == 0

        # The filter saves intra-CMP bandwidth vs unfiltered dst1.
        filt = res["TokenCMP-dst1-filt"].meter.scope_bytes(Scope.INTRA)
        dst1 = res["TokenCMP-dst1"].meter.scope_bytes(Scope.INTRA)
        assert filt < dst1
