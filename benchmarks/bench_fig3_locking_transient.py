"""Figure 3: locking micro-benchmark with transient + persistent requests.

Paper claims reproduced (shape):
* at low contention (512 locks) all TokenCMP variants beat DirectoryCMP
  (locks live in remote L1s; the directory pays indirections);
* the crossover to DirectoryCMP lies in the high-contention regime;
* TokenCMP-dst1-pred is robust at high contention;
* normalized to DirectoryCMP at 512 locks.

Known fidelity deviation (see EXPERIMENTS.md): the paper's dst4-worse-
than-dst1 penalty at 2-4 locks does not reproduce here — with blocking
cores the contended block parks at its holder, so dst4's retries reliably
succeed instead of failing as they did on the paper's testbed.  We assert
only that dst4 and dst1 stay within a moderate factor of each other.

The grid is the ``fig3`` entry of :mod:`repro.exp.library`, also
runnable as ``python -m repro bench fig3``.
"""

from __future__ import annotations

import pytest

from bench_common import emit, engine_runner, full_params, grid_spec, run_library
from repro.exp.library import FIG3_PROTOCOLS, LOCK_ACQUIRES, locking_grid


def run_experiment():
    result, tables = run_library("fig3")
    return locking_grid(result, FIG3_PROTOCOLS), tables


@pytest.mark.benchmark(group="fig3")
def test_fig3_locking_transient(benchmark):
    grid, tables = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("fig3_locking_transient", tables)

    # Low contention: TokenCMP outperforms DirectoryCMP (many remote-L1
    # sharing misses -> directory indirections).
    assert grid[512]["TokenCMP-dst1"] < grid[512]["DirectoryCMP"]
    assert grid[512]["TokenCMP-dst4"] < grid[512]["DirectoryCMP"]
    # High contention: dst4 and dst1 stay in the same league (see module
    # docstring for why the paper's dst4 penalty does not reproduce).
    ratio = grid[2]["TokenCMP-dst4"] / grid[2]["TokenCMP-dst1"]
    assert 0.5 < ratio < 2.0
    # The predictor variant is robust at high contention.
    assert grid[2]["TokenCMP-dst1-pred"] <= 1.1 * grid[2]["TokenCMP-dst1"]


@pytest.mark.benchmark(group="fig3")
def test_fig3_filter_variant_matches_dst1(benchmark):
    """Paper: 'TokenCMP-dst1-filt performs identically to TokenCMP-dst1'."""
    spec = grid_spec(
        "fig3-filt", full_params(), ["TokenCMP-dst1", "TokenCMP-dst1-filt"],
        "locking", num_locks=64, acquires_per_proc=LOCK_ACQUIRES,
    )
    result = benchmark.pedantic(
        lambda: engine_runner().run(spec), rounds=1, iterations=1,
    )
    grid = result.runtime_grid(["TokenCMP-dst1", "TokenCMP-dst1-filt"])
    ratio = grid["TokenCMP-dst1-filt"] / grid["TokenCMP-dst1"]
    assert 0.8 < ratio < 1.2
