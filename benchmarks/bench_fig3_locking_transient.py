"""Figure 3: locking micro-benchmark with transient + persistent requests.

Paper claims reproduced (shape):
* at low contention (512 locks) all TokenCMP variants beat DirectoryCMP
  (locks live in remote L1s; the directory pays indirections);
* the crossover to DirectoryCMP lies in the high-contention regime;
* TokenCMP-dst1-pred is robust at high contention;
* normalized to DirectoryCMP at 512 locks.

Known fidelity deviation (see EXPERIMENTS.md): the paper's dst4-worse-
than-dst1 penalty at 2-4 locks does not reproduce here — with blocking
cores the contended block parks at its holder, so dst4's retries reliably
succeed instead of failing as they did on the paper's testbed.  We assert
only that dst4 and dst1 stay within a moderate factor of each other.
"""

from __future__ import annotations

import pytest

from bench_common import emit, full_params, runtime_grid
from repro.analysis.report import ResultTable
from repro.workloads.locking import LockingWorkload

LOCK_COUNTS = [2, 4, 8, 16, 32, 64, 128, 256, 512]
PROTOCOLS = [
    "DirectoryCMP",
    "DirectoryCMP-zero",
    "TokenCMP-dst4",
    "TokenCMP-dst1",
    "TokenCMP-dst1-pred",
]
ACQUIRES = 12


def _factory(num_locks):
    def make(params, seed):
        return LockingWorkload(
            params, num_locks=num_locks, acquires_per_proc=ACQUIRES, seed=seed
        )
    return make


def run_experiment():
    params = full_params()
    # High-contention points are noisy: average over perturbed runs, the
    # paper's Alameldeen & Wood methodology (error bars).
    grid = {
        nl: runtime_grid(
            params, PROTOCOLS, _factory(nl),
            seeds=(1, 2, 3) if nl <= 8 else (1,),
        )
        for nl in LOCK_COUNTS
    }
    base = grid[512]["DirectoryCMP"]
    table = ResultTable(
        "Figure 3 - locking micro-benchmark, transient + persistent requests "
        "(runtime normalized to DirectoryCMP @ 512 locks; smaller is better)",
        ["locks"] + PROTOCOLS,
    )
    for nl in LOCK_COUNTS:
        table.add(nl, *(f"{grid[nl][p] / base:.2f}" for p in PROTOCOLS))
    return grid, table


@pytest.mark.benchmark(group="fig3")
def test_fig3_locking_transient(benchmark):
    grid, table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("fig3_locking_transient", [table])

    # Low contention: TokenCMP outperforms DirectoryCMP (many remote-L1
    # sharing misses -> directory indirections).
    assert grid[512]["TokenCMP-dst1"] < grid[512]["DirectoryCMP"]
    assert grid[512]["TokenCMP-dst4"] < grid[512]["DirectoryCMP"]
    # High contention: dst4 and dst1 stay in the same league (see module
    # docstring for why the paper's dst4 penalty does not reproduce).
    ratio = grid[2]["TokenCMP-dst4"] / grid[2]["TokenCMP-dst1"]
    assert 0.5 < ratio < 2.0
    # The predictor variant is robust at high contention.
    assert grid[2]["TokenCMP-dst1-pred"] <= 1.1 * grid[2]["TokenCMP-dst1"]


@pytest.mark.benchmark(group="fig3")
def test_fig3_filter_variant_matches_dst1(benchmark):
    """Paper: 'TokenCMP-dst1-filt performs identically to TokenCMP-dst1'."""
    params = full_params()
    grid = benchmark.pedantic(
        lambda: runtime_grid(params, ["TokenCMP-dst1", "TokenCMP-dst1-filt"], _factory(64)),
        rounds=1, iterations=1,
    )
    ratio = grid["TokenCMP-dst1-filt"] / grid["TokenCMP-dst1"]
    assert 0.8 < ratio < 1.2
