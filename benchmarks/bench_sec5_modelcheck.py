"""Section 5: model-checking effort comparison.

The paper verified TLA+ models of the TokenCMP correctness substrate
(arbiter and distributed activation, plus a safety-only model) and a
simplified flat DirectoryCMP with TLC.  Its findings:

* all models verify (safety, deadlock freedom, liveness under fairness);
* TokenCMP-arb's checking effort is comparable to the flat directory's;
  TokenCMP-dst is somewhat more intensive; TokenCMP-safety less;
* spec size: 383 (arb) / 396 (dst) non-comment TLA+ lines vs 1025 for the
  flat directory — the substrate is far smaller because only correctness,
  not the performance protocol, needs to be verified.

Here the same comparison runs on our explicit-state checker and Python
models.  The spec-size analogue counts non-comment source lines of each
model class; the effort analogue is reachable states/transitions.
"""

from __future__ import annotations

import pytest

from bench_common import emit
from repro.analysis.report import ResultTable
from repro.verification.checker import check, spec_size
from repro.verification.dir_model import DirFlatModel
from repro.verification.token_model import TokenArbModel, TokenDstModel, TokenSafetyModel

PAPER_SPEC_LINES = {
    "TokenCMP-safety": None,
    "TokenCMP-safety (3 caches)": None,
    "TokenCMP-arb": 383,
    "TokenCMP-dst": 396,
    "DirectoryCMP-flat": 1025,
}


def build_models():
    """Down-scaled configurations that are exhaustively checkable.

    The persistent-request models use the coarse-send and atomic-broadcast
    abstractions (see token_model.py) to stay within an exhaustive budget;
    the safety model runs with fully nondeterministic transfers.
    """
    bigger_safety = TokenSafetyModel(n_caches=3, total_tokens=4)
    bigger_safety.name = "TokenCMP-safety (3 caches)"
    return [
        TokenSafetyModel(),  # full nondeterministic transfers, 2-value data
        bigger_safety,  # wider config: two readers + a writer coexist
        TokenArbModel(coarse_sends=True, atomic_broadcasts=True),
        TokenDstModel(coarse_sends=True, atomic_broadcasts=True),
        DirFlatModel(),
    ]


def _model_spec_lines(model) -> int:
    """Non-comment source lines of the model, including shared token base."""
    from repro.verification.token_model import _TokenBase

    lines = spec_size(type(model))
    if isinstance(model, _TokenBase):
        lines += spec_size(_TokenBase)
    return lines


def run_experiment():
    results = {}
    for model in build_models():
        # Liveness needs starvation-avoidance machinery; the safety-only
        # model deliberately has none (paper: "lacks any
        # starvation-prevention mechanisms").
        liveness = not isinstance(model, TokenSafetyModel)
        results[model.name] = (
            check(model, max_states=6_000_000, check_liveness=liveness),
            _model_spec_lines(model),
        )
    table = ResultTable(
        "Section 5 - model checking effort (all properties verified)",
        ["model", "states", "transitions", "diameter", "liveness",
         "spec lines (this repo)", "spec lines (paper, TLA+)"],
    )
    for name, (res, lines) in results.items():
        paper = PAPER_SPEC_LINES.get(name)
        table.add(
            name, res.states, res.transitions, res.diameter,
            "yes" if res.liveness_checked else "safety-only",
            lines, paper if paper is not None else "-",
        )
    return results, table


@pytest.mark.benchmark(group="sec5")
def test_sec5_model_checking(benchmark):
    results, table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("sec5_modelcheck", [table])

    # Every model verified (check() raises otherwise).  Shape claims:
    safety = results["TokenCMP-safety"][0]
    arb = results["TokenCMP-arb"][0]
    dst = results["TokenCMP-dst"][0]
    flat_dir = results["DirectoryCMP-flat"][0]
    # The safety-only substrate is cheaper to verify than either
    # persistent-request mechanism (paper: "somewhat less intense").
    assert safety.states < dst.states and safety.states < arb.states
    # Deviation note (EXPERIMENTS.md): in OUR models arb is the most
    # expensive (its queue + FIFO channels are explicit state), whereas
    # the paper found dst somewhat costlier than arb.  Both remain
    # exhaustively checkable, which is the claim that matters.
    assert arb.states > dst.states
    # The token substrate models are SMALLER specs than the flat
    # directory (paper: 383/396 vs 1025 lines).
    assert results["TokenCMP-arb"][1] < results["DirectoryCMP-flat"][1]
    assert results["TokenCMP-dst"][1] < results["DirectoryCMP-flat"][1]
