"""Shared infrastructure for the experiment benchmarks.

Each ``bench_*`` module regenerates one table or figure from the paper.
Results are printed AND written to ``benchmarks/results/<name>.txt`` so
they survive pytest's output capturing; EXPERIMENTS.md records a snapshot.

The runs are scaled down from the paper's (hundreds of transactions
instead of full-system workloads) — the claims being reproduced are the
*normalized shapes*, not absolute times.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.analysis.report import ResultTable, run_one
from repro.common.params import SystemParams
from repro.system.machine import RunResult

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

TOKEN_VARIANTS = [
    "TokenCMP-dst4",
    "TokenCMP-dst1",
    "TokenCMP-dst1-pred",
    "TokenCMP-dst1-filt",
]
DIR_VARIANTS = ["DirectoryCMP", "DirectoryCMP-zero"]
PERSISTENT_ONLY = ["TokenCMP-arb0", "TokenCMP-dst0"]


def full_params() -> SystemParams:
    """The paper's 4-CMP x 4-processor target system (Table 3)."""
    return SystemParams()


def emit(name: str, tables: Iterable[ResultTable]) -> str:
    """Print tables and persist them under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n\n".join(t.render() for t in tables)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print()
    print(text)
    return text


def runtime_grid(
    params: SystemParams,
    protocols: Sequence[str],
    workload_factory: Callable[[SystemParams, int], object],
    seeds: Sequence[int] = (1,),
    max_events: Optional[int] = 120_000_000,
) -> Dict[str, float]:
    """Mean runtime in ps per protocol."""
    out = {}
    for proto in protocols:
        total = 0.0
        for seed in seeds:
            total += run_one(params, proto, workload_factory, seed, max_events).runtime_ps
        out[proto] = total / len(seeds)
    return out


def results_grid(
    params: SystemParams,
    protocols: Sequence[str],
    workload_factory: Callable[[SystemParams, int], object],
    seed: int = 1,
    max_events: Optional[int] = 120_000_000,
) -> Dict[str, RunResult]:
    return {
        proto: run_one(params, proto, workload_factory, seed, max_events)
        for proto in protocols
    }
