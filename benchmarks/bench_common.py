"""Shared infrastructure for the experiment benchmarks.

Each ``bench_*`` module regenerates one table or figure from the paper by
driving a named :mod:`repro.exp.library` experiment (or an ad-hoc spec)
through the engine.  Results are printed AND written to
``benchmarks/results/<name>.txt`` so they survive pytest's output
capturing; EXPERIMENTS.md records a snapshot.

Engine knobs (surfaced everywhere the benchmarks run):

* ``REPRO_JOBS=N``     — fan cells out over N worker processes;
* ``REPRO_NO_CACHE=1`` — recompute every cell, bypassing the
  content-addressed cache under ``benchmarks/results/.cache/``.

Parallelism and caching never change results — each cell is an
independent deterministic simulation.

The runs are scaled down from the paper's (hundreds of transactions
instead of full-system workloads) — the claims being reproduced are the
*normalized shapes*, not absolute times.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Optional, Sequence, Union

from repro.analysis.report import ResultTable
from repro.common.params import SystemParams
from repro.exp.library import EXPERIMENTS
from repro.exp.runner import ExperimentResult, Runner
from repro.exp.spec import Cell, ExperimentSpec

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
CACHE_DIR = os.path.join(RESULTS_DIR, ".cache")

TOKEN_VARIANTS = [
    "TokenCMP-dst4",
    "TokenCMP-dst1",
    "TokenCMP-dst1-pred",
    "TokenCMP-dst1-filt",
]
DIR_VARIANTS = ["DirectoryCMP", "DirectoryCMP-zero"]
PERSISTENT_ONLY = ["TokenCMP-arb0", "TokenCMP-dst0"]

GRID_MAX_EVENTS = 120_000_000


def full_params() -> SystemParams:
    """The paper's 4-CMP x 4-processor target system (Table 3)."""
    return SystemParams()


def engine_jobs() -> int:
    return int(os.environ.get("REPRO_JOBS", "1"))


def engine_use_cache() -> bool:
    return os.environ.get("REPRO_NO_CACHE", "") not in ("1", "true", "yes")


def engine_runner(progress: Optional[Callable[[str], None]] = None) -> Runner:
    """The benchmarks' engine: REPRO_JOBS / REPRO_NO_CACHE aware."""
    return Runner(
        jobs=engine_jobs(),
        cache=engine_use_cache(),
        cache_dir=os.environ.get("REPRO_CACHE_DIR") or CACHE_DIR,
        progress=progress,
    )


def run_library(exp_id: str):
    """Run a named library experiment; returns (result, tables)."""
    exp = EXPERIMENTS[exp_id]
    result = engine_runner().run(exp.build())
    return result, exp.render(result)


def emit(name: str, tables: Iterable[ResultTable]) -> str:
    """Print tables and persist them under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n\n".join(t.render() for t in tables)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print()
    print(text)
    return text


def grid_spec(
    name: str,
    params: SystemParams,
    protocols: Sequence,
    workload: Union[str, Callable],
    seeds: Sequence[int] = (1,),
    max_events: Optional[int] = GRID_MAX_EVENTS,
    **wl_kwargs,
) -> ExperimentSpec:
    """An ad-hoc protocol x seed grid over one declarative workload."""
    return ExperimentSpec(name, tuple(
        Cell(protocol=proto, workload=workload, workload_kwargs=wl_kwargs,
             seed=seed, params=params, max_events=max_events)
        for proto in protocols
        for seed in seeds
    ))
