"""Kernel/network/end-to-end performance suite (BENCH_perf.json).

Thin entry point over :mod:`repro.perf` — the suite itself lives in the
package so ``python -m repro perf`` shares the exact same benchmarks and
flags.  Typical uses::

    # full suite, refresh the committed baseline
    PYTHONPATH=src python benchmarks/bench_perf.py --out BENCH_perf.json

    # CI smoke: quick sizes, deterministic-stats file, regression gate
    PYTHONPATH=src python benchmarks/bench_perf.py --quick \
        --stats-out /tmp/stats.json --check BENCH_perf.json

See ``docs/performance.md`` for how to read the output and how the
committed reference (pre-optimization) numbers were produced.
"""

from __future__ import annotations

import os
import sys

if __name__ == "__main__":
    try:
        from repro.perf import main
    except ImportError:  # allow running without PYTHONPATH=src
        sys.path.insert(
            0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
        )
        from repro.perf import main
    sys.exit(main())
