"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper, but direct tests of the mechanisms the paper
credits for TokenCMP's behaviour:

* migratory-sharing optimization on/off (Section 4: "we can add or remove
  the migratory sharing optimization by changing the number of tokens
  returned in response to a read request");
* C-token vs 1-token external read responses (Section 4);
* the bounded response-delay window (Section 3.2, Rajwar-inspired);
* the contention predictor's benefit under high lock contention.

Ablated variants are plain :class:`ProtocolConfig` values, so their cells
run through the experiment engine like every other experiment — cached
and parallelizable (the full protocol config is part of the cache key, so
flipping a knob recomputes exactly the flipped cells).
"""

from __future__ import annotations

import dataclasses

import pytest

from bench_common import emit, engine_runner, full_params
from repro.analysis.report import ResultTable
from repro.exp.spec import Cell, ExperimentSpec
from repro.system.config import PROTOCOLS, ProtocolConfig


def _variant(base: str, **changes) -> ProtocolConfig:
    cfg = dataclasses.replace(PROTOCOLS[base], **changes)
    # Distinguish the ablated variant in results and cache keys by name
    # as well as by config (the config alone already changes the key).
    return dataclasses.replace(
        cfg, name=f"{base}~" + ",".join(sorted(changes)),
    )


COUNTER = ("counter", {"increments": 10})
HOT_LOCKS = ("locking", {"num_locks": 4, "acquires_per_proc": 12})
COLD_LOCKS = ("locking", {"num_locks": 256, "acquires_per_proc": 12})
READ_SHARING = ("read-sharing", {"shared_blocks": 16, "rounds": 6})


def run_experiment():
    params = full_params()
    table = ResultTable(
        "Ablations - TokenCMP-dst1 with one mechanism removed "
        "(runtime relative to the full protocol; >1.00 means the mechanism helps)",
        ["mechanism removed", "workload", "relative runtime"],
    )

    cases = [
        # (row key, protocol config, (workload, kwargs))
        ("base_counter", PROTOCOLS["TokenCMP-dst1"], COUNTER),
        ("base_hot", PROTOCOLS["TokenCMP-dst1"], HOT_LOCKS),
        ("base_share", PROTOCOLS["TokenCMP-dst1"], READ_SHARING),
        ("migratory", _variant("TokenCMP-dst1", migratory=False), COUNTER),
        ("ctokens", _variant("TokenCMP-dst1", read_tokens_c=False), READ_SHARING),
        ("delay", _variant("TokenCMP-dst1", response_delay=False), HOT_LOCKS),
        ("pred", PROTOCOLS["TokenCMP-dst1-pred"], HOT_LOCKS),
    ]
    spec = ExperimentSpec("ablations", tuple(
        Cell(protocol=cfg, workload=wl, workload_kwargs=kwargs,
             seed=1, params=params, label=key)
        for key, cfg, (wl, kwargs) in cases
    ))
    result = engine_runner().run(spec)
    runtime = {key: result.cell(label=key).runtime_ps for key, _c, _w in cases}

    rows = {}
    rows["migratory"] = runtime["migratory"] / runtime["base_counter"]
    table.add("migratory sharing", "shared counter", f"{rows['migratory']:.2f}")
    rows["ctokens"] = runtime["ctokens"] / runtime["base_share"]
    table.add("C-token read responses", "read sharing", f"{rows['ctokens']:.2f}")
    rows["delay"] = runtime["delay"] / runtime["base_hot"]
    table.add("response-delay window", "locking (4 locks)", f"{rows['delay']:.2f}")
    rows["pred"] = runtime["base_hot"] / runtime["pred"]
    table.add(
        "(adding) contention predictor", "locking (4 locks)",
        f"{rows['pred']:.2f}x speedup",
    )
    return rows, table


def run_flat_policy_experiment():
    """TokenB vs TokenCMP-dst1: what the hierarchical policy buys.

    Section 4 argues the original flat TokenB policy fits M-CMPs poorly:
    machine-wide broadcasts waste intra- and inter-CMP bandwidth and the
    all-responses timeout average misbehaves.  With ample link bandwidth
    the runtimes are close — the cost shows up as traffic.
    """
    from repro.interconnect.traffic import Scope

    protocols = ["TokenB", "TokenCMP-dst1"]
    result = engine_runner().run(ExperimentSpec.grid(
        "ablation-flat", protocols, ("oltp", {"refs_per_proc": 200}),
        params=full_params(),
    ))
    out = result.by_protocol(protocols)
    table = ResultTable(
        "Flat (TokenB) vs hierarchical (TokenCMP-dst1) performance policy, OLTP",
        ["protocol", "runtime (rel)", "intra-CMP bytes (rel)", "inter-CMP bytes (rel)"],
    )
    base = out["TokenCMP-dst1"]
    for proto, res in out.items():
        table.add(
            proto,
            f"{res.runtime_ps / base.runtime_ps:.2f}",
            f"{res.scope_bytes(Scope.INTRA) / base.scope_bytes(Scope.INTRA):.2f}",
            f"{res.scope_bytes(Scope.INTER) / base.scope_bytes(Scope.INTER):.2f}",
        )
    return out, table


@pytest.mark.benchmark(group="ablations")
def test_flat_vs_hierarchical_policy(benchmark):
    out, table = benchmark.pedantic(run_flat_policy_experiment, rounds=1, iterations=1)
    emit("ablation_flat_policy", [table])
    from repro.interconnect.traffic import Scope

    flat, hier = out["TokenB"], out["TokenCMP-dst1"]
    # The hierarchical policy saves substantial traffic on both networks.
    assert flat.scope_bytes(Scope.INTER) > 1.5 * hier.scope_bytes(Scope.INTER)
    assert flat.scope_bytes(Scope.INTRA) > 1.2 * hier.scope_bytes(Scope.INTRA)


@pytest.mark.benchmark(group="ablations")
def test_ablations(benchmark):
    rows, table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("ablations", [table])

    # Migratory sharing is the big one for read-modify-write data.
    assert rows["migratory"] > 1.05
    # Removing the response-delay window must not help contended locking.
    assert rows["delay"] > 0.9
