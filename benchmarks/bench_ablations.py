"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper, but direct tests of the mechanisms the paper
credits for TokenCMP's behaviour:

* migratory-sharing optimization on/off (Section 4: "we can add or remove
  the migratory sharing optimization by changing the number of tokens
  returned in response to a read request");
* C-token vs 1-token external read responses (Section 4);
* the bounded response-delay window (Section 3.2, Rajwar-inspired);
* the contention predictor's benefit under high lock contention.
"""

from __future__ import annotations

import dataclasses

import pytest

from bench_common import emit, full_params
from repro.analysis.report import ResultTable, run_one
from repro.system.config import PROTOCOLS, ProtocolConfig
from repro.workloads.locking import LockingWorkload
from repro.workloads.sharing import CounterWorkload, ReadSharingWorkload


def _variant(base: str, **changes) -> ProtocolConfig:
    return dataclasses.replace(PROTOCOLS[base], **changes)


def _counter_factory(params, seed):
    return CounterWorkload(params, increments=10, seed=seed)


def _hot_locks_factory(params, seed):
    return LockingWorkload(params, num_locks=4, acquires_per_proc=12, seed=seed)


def _cold_locks_factory(params, seed):
    return LockingWorkload(params, num_locks=256, acquires_per_proc=12, seed=seed)


def _read_sharing_factory(params, seed):
    return ReadSharingWorkload(params, shared_blocks=16, rounds=6, seed=seed)


def run_experiment():
    params = full_params()
    table = ResultTable(
        "Ablations - TokenCMP-dst1 with one mechanism removed "
        "(runtime relative to the full protocol; >1.00 means the mechanism helps)",
        ["mechanism removed", "workload", "relative runtime"],
    )
    rows = {}

    def measure(cfg, factory):
        return run_one(params, cfg, factory, seed=1).runtime_ps

    base_counter = measure(PROTOCOLS["TokenCMP-dst1"], _counter_factory)
    base_hot = measure(PROTOCOLS["TokenCMP-dst1"], _hot_locks_factory)

    rows["migratory"] = measure(
        _variant("TokenCMP-dst1", migratory=False), _counter_factory
    ) / base_counter
    table.add("migratory sharing", "shared counter", f"{rows['migratory']:.2f}")

    base_share = measure(PROTOCOLS["TokenCMP-dst1"], _read_sharing_factory)
    rows["ctokens"] = measure(
        _variant("TokenCMP-dst1", read_tokens_c=False), _read_sharing_factory
    ) / base_share
    table.add("C-token read responses", "read sharing", f"{rows['ctokens']:.2f}")

    rows["delay"] = measure(
        _variant("TokenCMP-dst1", response_delay=False), _hot_locks_factory
    ) / base_hot
    table.add("response-delay window", "locking (4 locks)", f"{rows['delay']:.2f}")

    pred = measure(PROTOCOLS["TokenCMP-dst1-pred"], _hot_locks_factory)
    rows["pred"] = base_hot / pred
    table.add(
        "(adding) contention predictor", "locking (4 locks)",
        f"{rows['pred']:.2f}x speedup",
    )
    return rows, table


def run_flat_policy_experiment():
    """TokenB vs TokenCMP-dst1: what the hierarchical policy buys.

    Section 4 argues the original flat TokenB policy fits M-CMPs poorly:
    machine-wide broadcasts waste intra- and inter-CMP bandwidth and the
    all-responses timeout average misbehaves.  With ample link bandwidth
    the runtimes are close — the cost shows up as traffic.
    """
    from repro.interconnect.traffic import Scope
    from repro.workloads.commercial import make_commercial

    params = full_params()
    out = {}
    for proto in ("TokenB", "TokenCMP-dst1"):
        machine_result = run_one(
            params, proto,
            lambda p, s: make_commercial(p, "oltp", seed=s, refs_per_proc=200),
            seed=1,
        )
        out[proto] = machine_result
    table = ResultTable(
        "Flat (TokenB) vs hierarchical (TokenCMP-dst1) performance policy, OLTP",
        ["protocol", "runtime (rel)", "intra-CMP bytes (rel)", "inter-CMP bytes (rel)"],
    )
    base = out["TokenCMP-dst1"]
    for proto, res in out.items():
        table.add(
            proto,
            f"{res.runtime_ps / base.runtime_ps:.2f}",
            f"{res.meter.scope_bytes(Scope.INTRA) / base.meter.scope_bytes(Scope.INTRA):.2f}",
            f"{res.meter.scope_bytes(Scope.INTER) / base.meter.scope_bytes(Scope.INTER):.2f}",
        )
    return out, table


@pytest.mark.benchmark(group="ablations")
def test_flat_vs_hierarchical_policy(benchmark):
    out, table = benchmark.pedantic(run_flat_policy_experiment, rounds=1, iterations=1)
    emit("ablation_flat_policy", [table])
    from repro.interconnect.traffic import Scope

    flat, hier = out["TokenB"], out["TokenCMP-dst1"]
    # The hierarchical policy saves substantial traffic on both networks.
    assert flat.meter.scope_bytes(Scope.INTER) > 1.5 * hier.meter.scope_bytes(Scope.INTER)
    assert flat.meter.scope_bytes(Scope.INTRA) > 1.2 * hier.meter.scope_bytes(Scope.INTRA)


@pytest.mark.benchmark(group="ablations")
def test_ablations(benchmark):
    rows, table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("ablations", [table])

    # Migratory sharing is the big one for read-modify-write data.
    assert rows["migratory"] > 1.05
    # Removing the response-delay window must not help contended locking.
    assert rows["delay"] > 0.9
