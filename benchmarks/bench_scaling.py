"""CMP-count scaling study (paper Section 8, inter-CMP bandwidth).

The paper: "In a system with more CMPs, TokenCMP traffic results will be
worse (unless multicast with destination set predictions is employed
[24])."  This bench quantifies exactly that: inter-CMP bytes normalized
to DirectoryCMP as the machine grows from 2 to 8 CMPs, with and without
the destination-set-prediction multicast extension.
"""

from __future__ import annotations

import pytest

from bench_common import emit
from repro.analysis.report import ResultTable, run_one
from repro.common.params import SystemParams
from repro.interconnect.traffic import Scope
from repro.workloads.commercial import make_commercial

PROTOCOLS = ["DirectoryCMP", "TokenCMP-dst1", "TokenCMP-dst1-mcast"]
CHIP_COUNTS = [2, 4, 8]
REFS = 120


def _params(chips: int) -> SystemParams:
    return SystemParams(num_chips=chips, tokens_per_block=128 if chips > 4 else 64)


def _factory(params, seed):
    return make_commercial(params, "oltp", seed=seed, refs_per_proc=REFS)


def run_experiment():
    grid = {}
    for chips in CHIP_COUNTS:
        params = _params(chips)
        grid[chips] = {
            proto: run_one(params, proto, _factory, seed=1) for proto in PROTOCOLS
        }
    table = ResultTable(
        "Scaling - inter-CMP traffic normalized to DirectoryCMP (OLTP) "
        "and runtime normalized to DirectoryCMP, by CMP count",
        ["CMPs"] + [f"{p} traffic" for p in PROTOCOLS[1:]]
        + [f"{p} runtime" for p in PROTOCOLS[1:]],
    )
    for chips in CHIP_COUNTS:
        res = grid[chips]
        base_b = res["DirectoryCMP"].meter.scope_bytes(Scope.INTER)
        base_t = res["DirectoryCMP"].runtime_ps
        cells = [f"{res[p].meter.scope_bytes(Scope.INTER) / base_b:.2f}"
                 for p in PROTOCOLS[1:]]
        cells += [f"{res[p].runtime_ps / base_t:.2f}" for p in PROTOCOLS[1:]]
        table.add(chips, *cells)
    return grid, table


@pytest.mark.benchmark(group="scaling")
def test_scaling_traffic(benchmark):
    grid, table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("scaling_traffic", [table])

    def rel_traffic(chips, proto):
        res = grid[chips]
        return (
            res[proto].meter.scope_bytes(Scope.INTER)
            / res["DirectoryCMP"].meter.scope_bytes(Scope.INTER)
        )

    # Broadcast token traffic grows with CMP count relative to the
    # directory...
    assert rel_traffic(8, "TokenCMP-dst1") > rel_traffic(2, "TokenCMP-dst1")
    # ... and destination-set multicast claws a good part of it back.
    assert rel_traffic(8, "TokenCMP-dst1-mcast") < rel_traffic(8, "TokenCMP-dst1")
    # TokenCMP keeps its runtime advantage at every machine size.
    for chips in CHIP_COUNTS:
        res = grid[chips]
        assert res["TokenCMP-dst1"].runtime_ps < res["DirectoryCMP"].runtime_ps
