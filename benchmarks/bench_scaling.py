"""CMP-count scaling study (paper Section 8, inter-CMP bandwidth).

The paper: "In a system with more CMPs, TokenCMP traffic results will be
worse (unless multicast with destination set predictions is employed
[24])."  This bench quantifies exactly that: inter-CMP bytes normalized
to DirectoryCMP as the machine grows from 2 to 8 CMPs, with and without
the destination-set-prediction multicast extension.

The grid is the ``scaling`` entry of :mod:`repro.exp.library`, also
runnable as ``python -m repro bench scaling``.
"""

from __future__ import annotations

import pytest

from bench_common import emit, run_library
from repro.exp.library import CHIP_COUNTS, scaling_grid
from repro.interconnect.traffic import Scope


def run_experiment():
    result, tables = run_library("scaling")
    return scaling_grid(result), tables


@pytest.mark.benchmark(group="scaling")
def test_scaling_traffic(benchmark):
    grid, tables = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("scaling_traffic", tables)

    def rel_traffic(chips, proto):
        res = grid[chips]
        return (
            res[proto].scope_bytes(Scope.INTER)
            / res["DirectoryCMP"].scope_bytes(Scope.INTER)
        )

    # Broadcast token traffic grows with CMP count relative to the
    # directory...
    assert rel_traffic(8, "TokenCMP-dst1") > rel_traffic(2, "TokenCMP-dst1")
    # ... and destination-set multicast claws a good part of it back.
    assert rel_traffic(8, "TokenCMP-dst1-mcast") < rel_traffic(8, "TokenCMP-dst1")
    # TokenCMP keeps its runtime advantage at every machine size.
    for chips in CHIP_COUNTS:
        res = grid[chips]
        assert res["TokenCMP-dst1"].runtime_ps < res["DirectoryCMP"].runtime_ps
