"""CMP-count scaling studies (paper Section 8, inter-CMP bandwidth).

The paper: "In a system with more CMPs, TokenCMP traffic results will be
worse (unless multicast with destination set predictions is employed
[24])."  Two benches quantify exactly that:

* ``test_scaling_traffic`` — the original 2/4/8-CMP sweep on the paper's
  point-to-point fabric (``scaling`` in :mod:`repro.exp.library`);
* ``test_scaling_big_mesh`` — the ROADMAP big-topology sweep: 8- and
  16-CMP **mesh** machines at 8 processors per chip (hundreds of L1s),
  reporting runtime, inter-CMP bytes, persistent-request activations and
  the per-miss request fan-out (``scaling-big``).

Both are also runnable as ``python -m repro bench scaling`` /
``scaling-big``.
"""

from __future__ import annotations

import pytest

from bench_common import emit, run_library
from repro.exp.library import (
    BIG_CHIP_COUNTS, CHIP_COUNTS, mesh_scaling_grid, request_fanout_per_miss,
    scaling_grid,
)
from repro.interconnect.traffic import Scope


def run_experiment():
    result, tables = run_library("scaling")
    return scaling_grid(result), tables


@pytest.mark.benchmark(group="scaling")
def test_scaling_traffic(benchmark):
    grid, tables = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("scaling_traffic", tables)

    def rel_traffic(chips, proto):
        res = grid[chips]
        return (
            res[proto].scope_bytes(Scope.INTER)
            / res["DirectoryCMP"].scope_bytes(Scope.INTER)
        )

    # Broadcast token traffic grows with CMP count relative to the
    # directory...
    assert rel_traffic(8, "TokenCMP-dst1") > rel_traffic(2, "TokenCMP-dst1")
    # ... and destination-set multicast claws a good part of it back.
    assert rel_traffic(8, "TokenCMP-dst1-mcast") < rel_traffic(8, "TokenCMP-dst1")
    # TokenCMP keeps its runtime advantage at every machine size.
    for chips in CHIP_COUNTS:
        res = grid[chips]
        assert res["TokenCMP-dst1"].runtime_ps < res["DirectoryCMP"].runtime_ps


def run_big_experiment():
    result, tables = run_library("scaling-big")
    return mesh_scaling_grid(result, BIG_CHIP_COUNTS), tables


@pytest.mark.benchmark(group="scaling")
def test_scaling_big_mesh(benchmark):
    grid, tables = benchmark.pedantic(run_big_experiment, rounds=1, iterations=1)
    emit("scaling_big_mesh", tables)

    def rel_traffic(chips, proto):
        res = grid[chips]
        return (
            res[proto].scope_bytes(Scope.INTER)
            / res["DirectoryCMP"].scope_bytes(Scope.INTER)
        )

    for chips in BIG_CHIP_COUNTS:
        # The Section-8 concession, quantified: broadcast token traffic
        # dwarfs the directory's on big mesh machines...
        assert rel_traffic(chips, "TokenCMP-dst1") > 2.0
        # ... and destination-set multicast claws a large part back.
        assert (rel_traffic(chips, "TokenCMP-dst1-mcast")
                < rel_traffic(chips, "TokenCMP-dst1") / 2)
        # Multicast also slashes persistent-request activations (fewer
        # starved races once requests stop flooding every chip).
        res = grid[chips]
        assert (res["TokenCMP-dst1-mcast"].get("persistent.requests")
                < res["TokenCMP-dst1"].get("persistent.requests"))
    # The crossover signal: dst1's relative traffic *grows* with CMP
    # count, and so does its per-miss request fan-out.
    assert rel_traffic(16, "TokenCMP-dst1") > rel_traffic(8, "TokenCMP-dst1")
    assert (request_fanout_per_miss(grid[16]["TokenCMP-dst1"])
            > request_fanout_per_miss(grid[8]["TokenCMP-dst1"]))
