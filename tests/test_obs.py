"""Tests for the observability layer (repro.obs).

The load-bearing contracts:

* tracing never changes simulation results (on/off identical stats);
* traces are deterministic (two runs render byte-identical JSON);
* spans classify into the paper's three lifecycle shapes and report
  per-segment percentiles;
* exported traces pass the schema validator (and bad ones do not).
"""

import json
import os

import pytest

from repro.common.params import SystemParams
from repro.common.types import NodeId, NodeKind
from repro.exp.spec import Cell
from repro.exp.runner import run_cell
from repro.obs import (
    KernelProfiler,
    Span,
    SpanBuilder,
    Tracer,
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import METRICS_SCHEMA, validate_metrics
from repro.obs.trace import KINDS, TraceEvent


def _locking_cell(protocol="TokenCMP-dst1", seed=7, faults=None):
    params = SystemParams(num_chips=2, procs_per_chip=2)
    return Cell(
        protocol=protocol,
        workload="locking",
        seed=seed,
        params=params,
        faults=faults,
        workload_kwargs={"acquires_per_proc": 10, "num_locks": 2},
    )


@pytest.fixture(scope="module")
def traced_run():
    """One untraced + one traced run of the same contended-locking cell."""
    cell = _locking_cell()
    plain = run_cell(cell)
    tracer = Tracer()
    traced = run_cell(cell, tracer=tracer)
    return plain, traced, tracer


# ---------------------------------------------------------------------------
# The two core contracts: non-perturbation and determinism.
# ---------------------------------------------------------------------------
def test_tracing_does_not_change_results(traced_run):
    plain, traced, tracer = traced_run
    assert len(tracer.events) > 0
    assert plain.to_json() == traced.to_json()


def test_traces_are_byte_identical_across_runs(traced_run):
    _plain, _traced, tracer = traced_run
    tracer2 = Tracer()
    run_cell(_locking_cell(), tracer=tracer2)
    doc1 = chrome_trace(tracer.events, SpanBuilder().build(tracer.events))
    doc2 = chrome_trace(tracer2.events, SpanBuilder().build(tracer2.events))
    blob1 = json.dumps(doc1, sort_keys=True, separators=(",", ":"))
    blob2 = json.dumps(doc2, sort_keys=True, separators=(",", ":"))
    assert blob1 == blob2


def test_all_event_kinds_are_registered(traced_run):
    _plain, _traced, tracer = traced_run
    assert {ev.kind for ev in tracer.events} <= KINDS


# ---------------------------------------------------------------------------
# Span stitching on a real contended run.
# ---------------------------------------------------------------------------
def test_spans_cover_all_three_lifecycle_shapes(traced_run):
    _plain, traced, tracer = traced_run
    report = SpanBuilder().build(tracer.events)
    assert not report.open_spans  # quiesced run: every miss completed
    by_cat = report.by_category()
    assert by_cat["intra-hit"], "expected some intra-CMP hits"
    assert by_cat["escalated"], "expected inter-CMP escalations"
    assert by_cat["persistent"], "expected persistent-request completions"
    assert len(report.spans) == traced.get("l1.misses")


def test_span_segment_summaries_report_percentiles(traced_run):
    _plain, _traced, tracer = traced_run
    report = SpanBuilder().build(tracer.events)
    summaries = report.segment_summaries()
    for category in ("persistent", "escalated", "intra-hit"):
        streams = summaries[category]
        total = streams["total"]
        assert total.count > 0
        assert total.percentile(50) <= total.percentile(95) <= total.percentile(99)
    # Persistent spans went through the escalation milestone.
    assert any("escalate" in k for k in summaries["persistent"])
    rendered = report.render()
    assert "persistent" in rendered and "p95" in rendered


def test_span_builder_synthetic_lifecycle():
    node = NodeId(NodeKind.L1D, 0, 0)
    other = NodeId(NodeKind.L1D, 1, 0)
    events = [
        TraceEvent(100, "tx.issue", node, 64, {"write": True}),
        TraceEvent(110, "tx.transient", node, 64, {}),
        TraceEvent(150, "tx.retry", node, 64, {"retries": 1}),
        TraceEvent(200, "tx.escalate", node, 64, {"via": "l2"}),
        TraceEvent(400, "tx.data", node, 64, {"source": "mem"}),
        TraceEvent(450, "tx.complete", node, 64, {"source": "mem"}),
        # Orphan: completion for a transaction never issued.
        TraceEvent(500, "tx.complete", other, 128, {}),
        # Open: issued but never completed.
        TraceEvent(600, "tx.issue", other, 64, {"write": False}),
    ]
    report = SpanBuilder().build(events)
    assert report.orphan_events == 1
    assert len(report.open_spans) == 1
    (span,) = report.spans
    assert span.category == "escalated"
    assert span.write and span.retries == 1
    assert span.latency_ps == 350
    assert span.source == "mem"
    assert span.segments() == [
        ("issue->transient", 10),
        ("transient->escalate", 90),
        ("escalate->data", 200),
        ("data->complete", 50),
    ]


def test_span_category_precedence():
    base = dict(node=None, addr=0, start_ps=0)
    assert Span(milestones={"issue": 0}, **base).category == "intra-hit"
    assert Span(milestones={"issue": 0, "escalate": 1}, **base).category == "escalated"
    assert (
        Span(milestones={"issue": 0, "escalate": 1, "persistent": 2}, **base).category
        == "persistent"
    )


# ---------------------------------------------------------------------------
# Chrome trace export + validation.
# ---------------------------------------------------------------------------
def test_chrome_trace_validates_and_has_expected_shape(traced_run):
    _plain, _traced, tracer = traced_run
    report = SpanBuilder().build(tracer.events)
    doc = chrome_trace(tracer.events, report)
    count = validate_chrome_trace(doc)
    phases = {ev["ph"] for ev in doc["traceEvents"]}
    assert phases == {"M", "i", "X"}
    assert count == len(doc["traceEvents"])
    spans = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
    assert len(spans) == len(report.spans)
    names = {ev["name"] for ev in spans}
    assert "miss persistent" in names and "miss escalated" in names


def test_validate_chrome_trace_rejects_bad_documents(traced_run):
    _plain, _traced, tracer = traced_run
    good = chrome_trace(tracer.events[:20])
    with pytest.raises(ValueError, match="schema"):
        validate_chrome_trace({**good, "schema": "nope"})
    bad_phase = json.loads(json.dumps(good))
    bad_phase["traceEvents"][-1]["ph"] = "Z"
    with pytest.raises(ValueError, match="phase"):
        validate_chrome_trace(bad_phase)
    bad_ts = json.loads(json.dumps(good))
    for ev in bad_ts["traceEvents"]:
        if ev["ph"] == "i":
            ev["ts"] = -1.0
            break
    with pytest.raises(ValueError, match="bad ts"):
        validate_chrome_trace(bad_ts)
    bad_kind = json.loads(json.dumps(good))
    for ev in bad_kind["traceEvents"]:
        if ev["ph"] == "i":
            ev["name"] = "not.a.kind"
            break
    with pytest.raises(ValueError, match="unknown kind"):
        validate_chrome_trace(bad_kind)


def test_write_chrome_trace_is_canonical(tmp_path, traced_run):
    _plain, _traced, tracer = traced_run
    path1 = tmp_path / "a.json"
    path2 = tmp_path / "b.json"
    write_chrome_trace(str(path1), tracer.events)
    write_chrome_trace(str(path2), tracer.events)
    assert path1.read_bytes() == path2.read_bytes()
    validate_chrome_trace(json.loads(path1.read_text()))


# ---------------------------------------------------------------------------
# Scheme coverage: arbiter activation, directory transitions, fault events.
# ---------------------------------------------------------------------------
def test_arbiter_scheme_emits_arb_activations():
    tracer = Tracer()
    run_cell(_locking_cell(protocol="TokenCMP-arb0"), tracer=tracer)
    activates = [ev for ev in tracer.events if ev.kind == "persist.activate"]
    assert activates and all(ev.fields["scheme"] == "arb" for ev in activates)
    deactivates = [ev for ev in tracer.events if ev.kind == "persist.deactivate"]
    assert deactivates


def test_directory_protocol_emits_transitions():
    tracer = Tracer()
    run_cell(_locking_cell(protocol="DirectoryCMP"), tracer=tracer)
    transitions = [ev for ev in tracer.events if ev.kind == "dir.transition"]
    assert transitions
    for ev in transitions:
        assert ev.fields["old"] != ev.fields["new"]


def test_fault_injection_emits_fault_events():
    from repro.faults.injector import FaultConfig

    tracer = Tracer()
    run_cell(
        _locking_cell(faults=FaultConfig.adversarial(0.2)), tracer=tracer
    )
    actions = {ev.kind for ev in tracer.events if ev.kind.startswith("fault.")}
    assert "fault.drop" in actions
    assert actions & {"fault.delay", "fault.reorder", "fault.duplicate"}


# ---------------------------------------------------------------------------
# Profiler.
# ---------------------------------------------------------------------------
def test_profiler_attributes_wall_time_to_sites():
    profiler = KernelProfiler(rate_every_events=128)
    run_cell(_locking_cell(), profiler=profiler)
    assert profiler.events_profiled > 0
    assert profiler.total_wall_ns > 0
    sites = dict((site, count) for site, count, _t, _m in profiler.top_sites())
    assert any("TokenCacheController" in site for site in sites)
    report = profiler.report(top=3)
    assert "kernel profile" in report and "events/s" in report


def test_profiler_does_not_change_results(traced_run):
    plain, _traced, _tracer = traced_run
    profiled = run_cell(_locking_cell(), profiler=KernelProfiler())
    assert profiled.to_json() == plain.to_json()


# ---------------------------------------------------------------------------
# Metrics documents.
# ---------------------------------------------------------------------------
def test_cell_metrics_validates_and_roundtrips(traced_run):
    plain, _traced, _tracer = traced_run
    doc = plain.metrics()
    validate_metrics(doc)
    assert doc["schema"] == METRICS_SCHEMA
    assert doc["counters"] == plain.counters
    assert "l1.miss_latency_ps" in doc["summaries"]
    # A result parsed back from canonical JSON renders the same document.
    from repro.exp.result import CellResult

    reparsed = CellResult.from_json(plain.to_json())
    assert reparsed.metrics() == doc


def test_validate_metrics_rejects_bad_documents(traced_run):
    plain, _traced, _tracer = traced_run
    doc = plain.metrics()
    with pytest.raises(ValueError, match="schema"):
        validate_metrics({**doc, "schema": "bogus"})
    with pytest.raises(ValueError, match="runtime_ps"):
        validate_metrics({**doc, "runtime_ps": "soon"})
    broken = json.loads(json.dumps(doc))
    broken["summaries"]["l1.miss_latency_ps"].pop("p95")
    with pytest.raises(ValueError, match="p95"):
        validate_metrics(broken)


# ---------------------------------------------------------------------------
# CLI.
# ---------------------------------------------------------------------------
def test_cli_trace_writes_valid_deterministic_file(tmp_path, capsys):
    from repro.__main__ import main

    out1 = tmp_path / "t1.json"
    out2 = tmp_path / "t2.json"
    argv = [
        "trace", "TokenCMP-dst1", "locking",
        "--chips", "2", "--procs", "2", "--ops", "5", "--locks", "2",
        "--spans", "--profile", "--validate",
    ]
    assert main(argv + ["--trace-out", str(out1)]) == 0
    stdout = capsys.readouterr().out
    assert "validated" in stdout
    assert "transaction spans" in stdout
    assert "kernel profile" in stdout
    assert main(argv + ["--trace-out", str(out2)]) == 0
    assert out1.read_bytes() == out2.read_bytes()
    validate_chrome_trace(json.loads(out1.read_text()))


# ---------------------------------------------------------------------------
# Trace-kind registry is closed: every emitted kind is registered, every
# registered kind has an emitter, and the exporter renders all of them.
# ---------------------------------------------------------------------------
def _emitted_kind_literals():
    """Every string literal passed to ``.emit("...")`` anywhere in src."""
    import re

    src_root = os.path.join(os.path.dirname(__file__), "..", "src", "repro")
    kinds = set()
    for dirpath, _dirs, files in sorted(os.walk(src_root)):
        for fname in sorted(files):
            if not fname.endswith(".py"):
                continue
            with open(os.path.join(dirpath, fname)) as fh:
                text = fh.read()
            kinds.update(re.findall(r'\.emit\(\s*"([a-z._]+)"', text))
            # The fault helper builds its kind from an action argument
            # (tracer.fault("drop", ...) -> "fault.drop").
            kinds.update(
                f"fault.{action}"
                for action in re.findall(r'\.fault\(\s*"([a-z]+)"', text)
            )
    return kinds


def test_every_emit_site_uses_a_registered_kind():
    emitted = _emitted_kind_literals()
    assert emitted, "expected emit sites in src/repro"
    unregistered = emitted - KINDS
    assert not unregistered, f"emit sites with unregistered kinds: {unregistered}"


def test_every_registered_kind_has_an_emit_site():
    # KINDS must not accrete dead entries: each registered kind is
    # produced somewhere (typed Tracer helper or direct emit).
    orphans = KINDS - _emitted_kind_literals()
    assert not orphans, f"registered kinds with no emitter: {orphans}"


def test_recovery_kinds_are_registered():
    # The kinds added with the recovery subsystem (crash injection and
    # token recreation) are first-class registry members.
    assert {
        "fault.crash", "tx.recreate", "recreate.epoch",
        "recreate.surrender", "recreate.stale", "recreate.done",
    } <= KINDS


def test_chrome_trace_renders_every_kind():
    # Synthetic one-event-per-kind trace: the exporter must type every
    # registered kind (no untyped fall-through) and validate cleanly.
    node = NodeId(NodeKind.L1D, 0, 0)
    events = [
        TraceEvent(ts_ps=1000 * i, kind=kind, node=node, addr=0x40,
                   fields={"i": i})
        for i, kind in enumerate(sorted(KINDS))
    ]
    doc = chrome_trace(events)
    validate_chrome_trace(doc)
    instants = [ev for ev in doc["traceEvents"] if ev["ph"] == "i"]
    assert {ev["name"] for ev in instants} == KINDS
    for ev in instants:
        assert ev["cat"] == ev["name"].split(".", 1)[0]


def test_crash_run_traces_full_recovery_lifecycle():
    from repro.faults.crash import CrashSpec

    tracer = Tracer()
    cell = Cell(
        protocol="TokenCMP-dst1",
        workload="counter",
        seed=3,
        params=SystemParams(num_chips=2, procs_per_chip=2),
        crash=CrashSpec(level="l1", at_ps=500_000),
    )
    result = run_cell(cell, tracer=tracer)
    kinds = {ev.kind for ev in tracer.events}
    assert "fault.crash" in kinds
    assert "tx.recreate" in kinds or "recreate.epoch" in kinds
    assert "recreate.done" in kinds
    # The full trace (recovery kinds included) exports and validates.
    doc = chrome_trace(tracer.events)
    validate_chrome_trace(doc)
    assert result.get("crash.fired") == 1
