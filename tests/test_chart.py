"""Tests for the ASCII chart helpers."""

from repro.analysis.chart import bar_chart, sweep_chart


def test_bar_chart_scales_to_peak():
    text = bar_chart("t", [("a", 1.0), ("bb", 2.0)], width=10)
    lines = text.splitlines()
    assert lines[0] == "t"
    assert lines[1].count("#") == 5
    assert lines[2].count("#") == 10
    assert "2.00" in lines[2]


def test_bar_chart_empty():
    assert bar_chart("t", []) == "t"


def test_bar_chart_minimum_one_hash():
    text = bar_chart("t", [("a", 0.001), ("b", 100.0)])
    assert "#" in text.splitlines()[1]


def test_sweep_chart_contains_markers_and_legend():
    text = sweep_chart("sweep", [2, 8, 32], {"dir": [1.0, 1.1, 1.2], "tok": [2.0, 1.0, 0.5]})
    assert "A = dir" in text
    assert "B = tok" in text
    assert "|" in text


def test_sweep_chart_single_point():
    text = sweep_chart("s", [1], {"only": [3.0]})
    assert "A = only" in text
