"""Pooling-safety suite: the zero-allocation steady state must be
*invisible* to the simulation.

Three layers:

* **aliasing unit tests** — the freelist recycles records and resets
  their payload; double release and plain-message release are no-ops;
  uid draws are one-per-acquire in both modes (so disabling the pool
  cannot shift any uid-derived tiebreak);
* **equivalence** — a real cell produces byte-identical canonical
  metrics with ``REPRO_POOLING=0`` and ``1``, including under the fault
  injector (whose in-flight ledger takes ownership of absorbed
  messages) and a mid-run crash; a subprocess matrix crosses pooling
  with ``PYTHONHASHSEED`` to prove neither knob leaks into results;
* **allocation-gate units** — ``alloc_report`` projects only the
  machine-independent fields, ``compare_alloc`` is zero-tolerance, and
  ``compare`` gates wall-clock throughput only between matching host
  fingerprints.
"""

import copy
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.common.params import SystemParams
from repro.exp.spec import Cell
from repro.exp.runner import run_cell
from repro.faults.injector import FaultConfig
from repro.interconnect.message import Message, MessagePool, MsgType
from repro.perf import (
    ALLOC_DETERMINISTIC_FIELDS,
    alloc_report,
    compare,
    compare_alloc,
    machine_fingerprint,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

A, B = 10, 11  # arbitrary node ids


# ---------------------------------------------------------------------------
# Aliasing: the freelist contract.
# ---------------------------------------------------------------------------
def test_release_then_acquire_recycles_the_record():
    pool = MessagePool(enabled=True)
    m1 = pool.acquire(MsgType.TOK_GETS, A, B, 0x100)
    m1.tokens = 5
    m1.data = 0xDEAD
    uid1 = m1.uid
    pool.release(m1)
    m2 = pool.acquire(MsgType.TOK_GETX, B, A, 0x200)
    assert m2 is m1  # recycled, not reconstructed
    assert m2.uid == uid1 + 1  # fresh identity
    assert (m2.mtype, m2.src, m2.dst, m2.addr) == (MsgType.TOK_GETX, B, A, 0x200)
    assert m2.tokens == 0 and m2.data is None  # payload reset to defaults
    assert pool.stats() == {
        "acquires": 2, "news": 1, "releases": 1, "free_end": 0,
    }


def test_double_release_and_plain_release_are_noops():
    pool = MessagePool(enabled=True)
    msg = pool.acquire(MsgType.TOK_ACK, A, B, 0x0)
    pool.release(msg)
    pool.release(msg)  # marker already popped: safety-net no-op
    assert pool.stats()["releases"] == 1
    assert len(pool._free) == 1
    plain = Message(MsgType.TOK_ACK, A, B, 0x0)
    pool.release(plain)  # caller-constructed: never pool-owned
    assert pool.stats()["releases"] == 1


def test_disabled_pool_always_constructs_fresh():
    pool = MessagePool(enabled=False)
    m1 = pool.acquire(MsgType.TOK_GETS, A, B, 0x100)
    pool.release(m1)
    m2 = pool.acquire(MsgType.TOK_GETS, A, B, 0x100)
    assert m2 is not m1
    assert "_pooled" not in m1.__dict__ and "_pooled" not in m2.__dict__
    assert pool.stats()["news"] == 2 and pool.stats()["free_end"] == 0


def test_clone_stamps_template_and_draws_fresh_uid():
    pool = MessagePool(enabled=True)
    template = pool.acquire_carrier(
        MsgType.TOK_DATA, A, B, 0x40,
        tokens=3, owner=True, data=0x77, dirty=True, epoch=2,
    )
    clone = pool.clone(template, dst=B + 1)
    assert clone.dst == B + 1 and clone.uid == template.uid + 1
    assert (clone.tokens, clone.owner, clone.data, clone.dirty, clone.epoch) \
        == (3, True, 0x77, True, 2)
    # Recycled clones overwrite every field of the previous occupant.
    pool.release(clone)
    clone2 = pool.clone(template, dst=B + 2)
    assert clone2 is clone and clone2.dst == B + 2


def test_uid_draw_order_is_one_per_acquire_in_both_modes():
    # The uid counter is global; if either mode drew extra (or fewer)
    # uids per acquire, interleaved draws would show gaps.
    on, off = MessagePool(enabled=True), MessagePool(enabled=False)
    uids = []
    for i in range(4):
        uids.append(on.acquire(MsgType.TOK_GETS, A, B, i).uid)
        uids.append(off.acquire(MsgType.TOK_GETS, A, B, i).uid)
    assert uids == list(range(uids[0], uids[0] + 8))


# ---------------------------------------------------------------------------
# Equivalence: pooling must be invisible to results.
# ---------------------------------------------------------------------------
def _small_cell(**overrides):
    base = dict(
        protocol="TokenCMP-dst1",
        workload="oltp",
        workload_kwargs=(("refs_per_proc", 40),),
        seed=3,
        params=SystemParams(num_chips=2, procs_per_chip=2,
                            tokens_per_block=16),
    )
    base.update(overrides)
    return Cell(**base)


def _metrics_blob(cell, monkeypatch, pooling: str) -> str:
    monkeypatch.setenv("REPRO_POOLING", pooling)
    res = run_cell(cell)
    return json.dumps(res.metrics(), sort_keys=True)


def test_pooling_on_off_metrics_identical(monkeypatch):
    cell = _small_cell()
    assert _metrics_blob(cell, monkeypatch, "1") \
        == _metrics_blob(cell, monkeypatch, "0")


def test_pooling_on_off_identical_under_fault_injector(monkeypatch):
    # The injector's ledger absorbs, duplicates and re-emits messages —
    # the hardest interplay for ownership bookkeeping.
    cell = _small_cell(faults=FaultConfig.adversarial(0.05))
    assert _metrics_blob(cell, monkeypatch, "1") \
        == _metrics_blob(cell, monkeypatch, "0")


def test_pooling_on_off_identical_with_lossy_recovery(monkeypatch):
    # Lossy carriers destroy tokens and trigger the recreation tier;
    # recovery broadcasts ride the same pooled fan-out path.
    cell = _small_cell(faults=FaultConfig.adversarial(0.05, lossy=True))
    assert _metrics_blob(cell, monkeypatch, "1") \
        == _metrics_blob(cell, monkeypatch, "0")


def test_pooling_on_off_identical_with_mid_run_crash(monkeypatch):
    # A crash wipes a controller's token soft-state mid-flight and the
    # recreation tier rebuilds it; pooling must not change any of it.
    from repro.faults.crash import CrashSpec
    cell = _small_cell(crash=CrashSpec(level="l1", at_ps=500_000))
    assert _metrics_blob(cell, monkeypatch, "1") \
        == _metrics_blob(cell, monkeypatch, "0")


def test_pooling_and_hash_seed_do_not_leak_into_metrics():
    # Subprocess matrix: {pooling on/off} x {two hash seeds}.  Every
    # combination must print the same canonical-metrics digest.
    script = (
        "import hashlib, json\n"
        "from repro.common.params import SystemParams\n"
        "from repro.exp.spec import Cell\n"
        "from repro.exp.runner import run_cell\n"
        "cell = Cell(protocol='TokenCMP-dst1', workload='oltp',\n"
        "            workload_kwargs=(('refs_per_proc', 40),), seed=3,\n"
        "            params=SystemParams(num_chips=2, procs_per_chip=2,\n"
        "                                tokens_per_block=16))\n"
        "blob = json.dumps(run_cell(cell).metrics(), sort_keys=True)\n"
        "print(hashlib.sha256(blob.encode()).hexdigest())\n"
    )
    digests = set()
    for pooling in ("0", "1"):
        for hashseed in ("0", "12345"):
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True,
                cwd=REPO_ROOT,
                env={
                    "PYTHONPATH": "src",
                    "REPRO_POOLING": pooling,
                    "PYTHONHASHSEED": hashseed,
                    "PATH": "/usr/bin:/bin",
                },
            )
            digests.add(out.stdout.strip())
    assert len(digests) == 1, f"metrics depend on pooling/hashseed: {digests}"


# ---------------------------------------------------------------------------
# Allocation gate units.
# ---------------------------------------------------------------------------
def _steady(**overrides):
    steady = {
        "cell": "TokenCMP-dst1/oltp[refs=120,seed=1]",
        "warmup_events": 40_000,
        "window_events": 10_000,
        "windows": 2,
        "blocks_window_budget": 4096,
        "blocks_within_budget": True,
        "event_news": [0, 0],
        "pool_news": [0, 0],
        "pooling_enabled": True,
        # raw observational extras that must NOT survive projection
        "blocks_delta": [1939, -2],
        "pool": {"acquires": 99, "news": 0, "releases": 99, "free_end": 7},
    }
    steady.update(overrides)
    return steady


def test_alloc_report_projects_only_deterministic_fields():
    report = alloc_report(full=_steady())
    (entry,) = report["python"].values()
    assert set(entry["steady_state"]) == set(ALLOC_DETERMINISTIC_FIELDS)
    assert "blocks_delta" not in entry["steady_state"]


def test_compare_alloc_zero_tolerance():
    committed = alloc_report(full=_steady())
    assert compare_alloc(committed, committed) == []
    drifted = copy.deepcopy(committed)
    (entry,) = drifted["python"].values()
    entry["steady_state"]["event_news"] = [0, 1]
    problems = compare_alloc(drifted, committed)
    assert problems and "event_news" in problems[0]


def test_compare_alloc_missing_python_version_fails():
    committed = {"schema": "repro.bench_alloc/1",
                 "python": {"0.0": {"steady_state": _steady()}}}
    current = alloc_report(full=_steady())
    problems = compare_alloc(current, committed)
    assert problems and "regenerate" in problems[0].lower()


def _perf_report(host, e2e_rate):
    return {
        "schema": "repro.bench/1",
        "quick": True,
        "host": host,
        "benchmarks": {
            "e2e_fig6_smoke": {
                "cell": "c", "events": 1, "runtime_ps": 2,
                "metrics_sha256": "abc",
                "events_per_sec": e2e_rate,
            },
        },
    }


def test_compare_gates_timing_only_on_matching_host():
    here = machine_fingerprint()
    elsewhere = dict(here, machine="emu-riscv128")
    fast, slow = _perf_report(here, 1000.0), _perf_report(here, 10.0)
    assert any("events_per_sec" in p for p in compare(slow, fast))
    # Same regression, but the baseline came from another machine:
    # wall-clock is not comparable, deterministic fields still are.
    foreign_fast = _perf_report(elsewhere, 1000.0)
    assert compare(slow, foreign_fast) == []
    foreign_drift = copy.deepcopy(foreign_fast)
    foreign_drift["benchmarks"]["e2e_fig6_smoke"]["metrics_sha256"] = "xyz"
    assert any("metrics_sha256" in p for p in compare(slow, foreign_drift))
