"""Tests for the token-recreation recovery subsystem.

Covers the protocol mechanics (epoch bump, surrender, reconstitution,
stale-carrier discard), the recovery ledger, the crash injector, the
lossy fault preset, and the guarantee that an idle recovery tier is
behaviourally invisible on fault-free runs.
"""

import pytest

from repro.common.params import SystemParams
from repro.faults.crash import CrashInjector, CrashSpec
from repro.faults.injector import FaultConfig
from repro.faults.watchdog import (
    InvariantMonitor,
    LivenessWatchdog,
    collect_diagnostics,
)
from repro.interconnect.message import Message, MsgType
from repro.recovery import RecoveryLedger
from repro.system import MachineSpec
from repro.workloads import make_workload


PROTO = "TokenCMP-dst1"


def _counter_machine(seed, faults=None):
    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    machine = MachineSpec(params=params, protocol=PROTO, seed=seed, faults=faults).build()
    workload = make_workload("counter", params, seed=seed, increments=4)
    return machine, workload


# ---------------------------------------------------------------------------
# Protocol mechanics, driven message by message.
# ---------------------------------------------------------------------------
def test_recreate_request_bumps_epoch_and_reconstitutes():
    """A TOK_RECREATE_REQ must bump the epoch, collect surrender acks from
    every potential holder, reconstitute the full set at memory and grant
    it to the starving requestor."""
    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    machine = MachineSpec(params=params, protocol=PROTO, seed=0).build()
    machine.enable_recovery()
    addr = 0x1000
    requestor = params.l1d_of(0)
    home = machine.mems[params.home_chip(addr)]
    assert machine.block_epoch(addr) == 0

    machine.net.send(Message(
        mtype=MsgType.TOK_RECREATE_REQ, src=requestor,
        dst=params.home_mem(addr), addr=addr, requestor=requestor, read=False,
    ))
    machine.sim.run()

    assert machine.block_epoch(addr) == 1
    assert home.is_recreating(addr) is False
    assert machine.stats.get("recovery.recreations") == 1
    assert machine.stats.get("recovery.completed") == 1
    # The full set ended up at the requestor (E-analogue grant).
    entry = machine.controllers[requestor].peek_entry(addr)
    assert entry is not None
    assert entry.tokens == params.tokens_per_block and entry.owner
    machine.check_token_invariants()


def test_stale_epoch_carrier_is_discarded_at_memory():
    """Token carriers stamped with a closed epoch are dead on arrival —
    absorbing them would double tokens the recreation already replaced."""
    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    machine = MachineSpec(params=params, protocol=PROTO, seed=0).build()
    machine.enable_recovery()
    addr = 0x1000
    requestor = params.l1d_of(0)
    home = machine.mems[params.home_chip(addr)]
    machine.net.send(Message(
        mtype=MsgType.TOK_RECREATE_REQ, src=requestor,
        dst=params.home_mem(addr), addr=addr, requestor=requestor, read=False,
    ))
    machine.sim.run()
    assert machine.block_epoch(addr) == 1

    # A carrier from epoch 0 limps in afterwards.
    machine.net.send(Message(
        mtype=MsgType.TOK_ACK, src=params.l1d_of(3),
        dst=params.home_mem(addr), addr=addr, tokens=3, epoch=0,
    ))
    machine.sim.run()
    assert machine.stats.get("recovery.stale_discarded") == 1
    assert machine.stats.get("recovery.stale_tokens") == 3
    assert home.tokens_of(addr) == 0  # nothing absorbed; set lives at the L1
    machine.check_token_invariants()


def test_duplicate_recreate_request_rebroadcasts_instead_of_rebumping():
    """A retry from a still-starving requestor must not open a second
    epoch — it re-broadcasts the bump to the holdouts."""
    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    machine = MachineSpec(params=params, protocol=PROTO, seed=0).build()
    machine.enable_recovery()
    addr = 0x2000
    requestor = params.l1d_of(1)
    req = Message(
        mtype=MsgType.TOK_RECREATE_REQ, src=requestor,
        dst=params.home_mem(addr), addr=addr, requestor=requestor, read=True,
    )
    machine.net.send(req)
    machine.net.send(req.clone_to(params.home_mem(addr)))
    machine.sim.run()
    assert machine.block_epoch(addr) == 1
    assert machine.stats.get("recovery.recreations") == 1
    machine.check_token_invariants()


# ---------------------------------------------------------------------------
# The recovery ledger.
# ---------------------------------------------------------------------------
def test_ledger_accounting():
    ledger = RecoveryLedger()
    ledger.destroy(0x40, tokens=3, owner=False)
    ledger.destroy(0x40, tokens=2, owner=True, dirty=True)
    ledger.destroy(0x80, tokens=1, owner=False)
    assert ledger.deficit(0x40) == (5, True)
    assert ledger.deficit(0x80) == (1, False)
    assert ledger.residual_tokens() == 6
    assert ledger.degraded_blocks() == (0x40, 0x80)
    assert ledger.writes_lost == 1
    assert ledger.owners_destroyed == 1
    ledger.recreated(0x40)
    assert ledger.deficit(0x40) == (0, False)
    assert ledger.degraded_blocks() == (0x80,)
    assert ledger.tokens_recreated == 5
    assert ledger.tokens_destroyed == 6  # lifetime counter is monotonic


# ---------------------------------------------------------------------------
# Lossy fabric end to end.
# ---------------------------------------------------------------------------
def test_adversarial_lossy_preset():
    cfg = FaultConfig.adversarial(0.1, lossy=True)
    assert cfg.lossy
    assert cfg.response.drop == 0.1
    plain = FaultConfig.adversarial(0.1)
    assert not plain.lossy
    assert plain.response.drop == 0.0  # carriers stay clamped by default


@pytest.mark.parametrize("seed", [1, 2])
def test_lossy_run_destroys_tokens_and_recovers(seed):
    machine, workload = _counter_machine(
        seed, faults=FaultConfig.adversarial(0.05, lossy=True))
    assert machine.recovery is not None  # lossy implies recovery enabled
    LivenessWatchdog(machine, budget_ns=5_000_000.0, check_every_events=2000)
    monitor = InvariantMonitor(machine, check_every_events=2000)
    machine.run(workload, max_events=20_000_000)
    machine.check_token_invariants()
    assert machine.stats.get("faults.tokens_destroyed") > 0
    assert machine.stats.get("recovery.recreations") >= 1
    assert machine.stats.get("recovery.completed") == \
        machine.stats.get("recovery.recreations")
    assert monitor.checks > 0


def test_lossy_runs_are_reproducible():
    def once():
        machine, workload = _counter_machine(
            3, faults=FaultConfig.adversarial(0.05, lossy=True))
        result = machine.run(workload, max_events=20_000_000)
        return result.runtime_ps, dict(machine.stats.counters)

    assert once() == once()


# ---------------------------------------------------------------------------
# Crash injection end to end.
# ---------------------------------------------------------------------------
def test_crash_spec_validation():
    with pytest.raises(ValueError):
        CrashSpec(level="l3", at_ps=1000)
    with pytest.raises(ValueError):
        CrashSpec(level="l1", at_ps=0)


def test_crash_injector_wipes_then_recreation_pays_the_debt():
    machine, workload = _counter_machine(1, faults=FaultConfig())
    CrashInjector(machine, CrashSpec(level="l1", at_ps=500_000), seed=1)
    assert machine.recovery is not None  # the injector enables recovery
    InvariantMonitor(machine, check_every_events=2000)
    machine.run(workload, max_events=20_000_000)
    machine.check_token_invariants()
    assert machine.stats.get("crash.fired") == 1
    assert machine.stats.get("crash.tokens_wiped") > 0
    assert machine.stats.get("recovery.recreations") >= 1
    # Every wiped token was recreated: no residual degradation.
    assert machine.recovery.residual_tokens() == 0
    assert machine.recovery.degraded_blocks() == ()


def test_crash_runs_are_reproducible():
    def once():
        machine, workload = _counter_machine(1, faults=FaultConfig())
        CrashInjector(machine, CrashSpec(level="l1", at_ps=500_000), seed=1)
        result = machine.run(workload, max_events=20_000_000)
        return result.runtime_ps, dict(machine.stats.counters)

    assert once() == once()


# ---------------------------------------------------------------------------
# The recovery tier is invisible unless something goes wrong.
# ---------------------------------------------------------------------------
def test_fault_free_run_with_recovery_enabled_is_behavior_neutral():
    """enable_recovery() on a healthy machine must not change a single
    counter or the runtime: timers are scheduled but never fire into
    escalations, and no recovery message is ever sent."""

    def once(enable):
        machine, workload = _counter_machine(7)
        if enable:
            machine.enable_recovery()
        result = machine.run(workload, max_events=20_000_000)
        return result.runtime_ps, dict(machine.stats.counters)

    assert once(False) == once(True)


# ---------------------------------------------------------------------------
# Diagnostics integration.
# ---------------------------------------------------------------------------
def test_diagnostics_report_in_progress_recreations():
    """While memory is waiting on surrender acks the liveness dump must
    name the block, its epoch, and the outstanding ack count."""
    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    machine = MachineSpec(params=params, protocol=PROTO, seed=0).build()
    machine.enable_recovery()
    addr = 0x3000
    requestor = params.l1d_of(0)
    machine.net.send(Message(
        mtype=MsgType.TOK_RECREATE_REQ, src=requestor,
        dst=params.home_mem(addr), addr=addr, requestor=requestor, read=False,
    ))
    # Step the clock until the bump registers but the acks have not all
    # returned — the window where the block is mid-recreation.
    home = machine.mems[params.home_chip(addr)]
    t = 0
    while not home.is_recreating(addr) and t < 5_000_000:
        t += 1_000
        machine.sim.run(until=t)
    assert home.is_recreating(addr)
    diag = collect_diagnostics(machine)
    assert diag.recreation_pending
    rendered = diag.render()
    assert "recreating" in rendered and f"{addr:#x}" in rendered
    machine.sim.run()  # let the recreation finish; leave the machine sane
    machine.check_token_invariants()


def test_diagnostics_render_caps_every_section():
    from repro.faults.watchdog import LivenessDiagnostics

    diag = LivenessDiagnostics(
        now_ps=1000,
        stalled_procs=[],
        token_census={a: ["x: t=1"] for a in range(40)},
        persistent_entries={"node": [f"e{i}" for i in range(40)]},
        arbiter_queues={},
        in_flight=[f"m{i}" for i in range(40)],
        recreation_pending=[f"r{i}" for i in range(40)],
        degraded_blocks=list(range(40)),
    )
    rendered = diag.render(max_blocks=4)
    assert rendered.count("\n") < 40  # every section capped, none dumped whole
    assert "more" in rendered
