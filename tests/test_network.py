"""Unit tests for the interconnect model: latency, bandwidth, traffic."""

import pytest

from repro.common.errors import ConfigError
from repro.common.params import SystemParams
from repro.common.types import NodeId, NodeKind, ns
from repro.interconnect.message import Message, MsgType
from repro.interconnect.network import Network
from repro.interconnect.traffic import Scope, TrafficClass, TrafficMeter
from repro.sim.kernel import Simulator


def build(params=None):
    params = params or SystemParams()
    sim = Simulator()
    meter = TrafficMeter()
    net = Network(sim, params, meter)
    return sim, meter, net, params


def deliver(sim, net, msg, sink):
    net.register(msg.dst, sink) if msg.dst not in net._endpoints else None
    net.send(msg)
    sim.run()


def test_intra_chip_latency():
    sim, meter, net, p = build()
    src, dst = p.l1d_of(0), p.l1d_of(1)
    arrivals = []
    net.register(dst, lambda m: arrivals.append(sim.now))
    net.send(Message(MsgType.TOK_ACK, src, dst, 0))
    sim.run()
    # 8 bytes / 64 GB/s = 125 ps serialization + 2 ns link.
    assert arrivals == [ns(2) + 125]


def test_cross_chip_latency_includes_both_intra_hops():
    sim, meter, net, p = build()
    src, dst = p.l1d_of(0), p.l1d_of(4)  # chip 0 -> chip 1
    arrivals = []
    net.register(dst, lambda m: arrivals.append(sim.now))
    net.send(Message(MsgType.TOK_ACK, src, dst, 0))
    sim.run()
    # intra 2ns + inter 20ns + intra 2ns plus serialization on each link.
    assert arrivals[0] == ns(24) + 125 + 500 + 125


def test_memory_link_latency():
    sim, meter, net, p = build()
    src = p.l1d_of(0)
    dst = NodeId(NodeKind.MEM, 0)
    arrivals = []
    net.register(dst, lambda m: arrivals.append(sim.now))
    net.send(Message(MsgType.TOK_ACK, src, dst, 0))
    sim.run()
    # intra 2ns + mem link 20ns + serialization on both.
    assert arrivals[0] == ns(22) + 125 + 125


def test_fifo_per_path():
    sim, meter, net, p = build()
    src, dst = p.l1d_of(0), p.l1d_of(4)
    seen = []
    net.register(dst, lambda m: seen.append(m.serial))
    for i in range(10):
        net.send(Message(MsgType.TOK_DATA, src, dst, 0, serial=i))
    sim.run()
    assert seen == list(range(10))


def test_bandwidth_serialization_queues_messages():
    sim, meter, net, p = build()
    src, dst = p.l1d_of(0), p.l1d_of(1)
    arrivals = []
    net.register(dst, lambda m: arrivals.append(sim.now))
    for _ in range(3):
        net.send(Message(MsgType.TOK_DATA, src, dst, 0))  # 72B @ 64GB/s = 1125ps
    sim.run()
    assert arrivals[1] - arrivals[0] == 1125
    assert arrivals[2] - arrivals[1] == 1125


def test_traffic_accounting_by_scope_and_class():
    sim, meter, net, p = build()
    src, dst = p.l1d_of(0), p.l1d_of(4)
    net.register(dst, lambda m: None)
    net.send(Message(MsgType.TOK_DATA, src, dst, 0))
    sim.run()
    # One 72-byte message crossed two intra links and one inter link.
    assert meter.scope_bytes(Scope.INTER) == 72
    assert meter.scope_bytes(Scope.INTRA) == 144
    assert meter.breakdown(Scope.INTER)[TrafficClass.RESPONSE_DATA] == 72
    assert meter.breakdown(Scope.INTER)[TrafficClass.REQUEST] == 0


def test_control_vs_data_message_sizes():
    sim, meter, net, p = build()
    src, dst = p.l1d_of(0), p.l1d_of(4)
    net.register(dst, lambda m: None)
    net.send(Message(MsgType.TOK_GETS, src, dst, 0))
    sim.run()
    assert meter.scope_bytes(Scope.INTER) == 8


def test_unregistered_destination_rejected():
    sim, meter, net, p = build()
    with pytest.raises(ConfigError):
        net.send(Message(MsgType.TOK_ACK, p.l1d_of(0), p.l1d_of(1), 0))


def test_duplicate_registration_rejected():
    sim, meter, net, p = build()
    net.register(p.l1d_of(0), lambda m: None)
    with pytest.raises(ConfigError):
        net.register(p.l1d_of(0), lambda m: None)


def test_mem_to_remote_chip_path():
    sim, meter, net, p = build()
    src = NodeId(NodeKind.MEM, 0)
    dst = p.l1d_of(4)  # chip 1
    arrivals = []
    net.register(dst, lambda m: arrivals.append(sim.now))
    net.send(Message(MsgType.TOK_ACK, src, dst, 0))
    sim.run()
    # mem link 20 + inter 20 + intra 2 (+ serialization x3).
    assert arrivals[0] == ns(42) + 125 + 500 + 125


def test_zero_cost_serialization_clamped_to_one_ps():
    from repro.interconnect.network import Link

    link = Link("x", Scope.INTRA, 0, 1e9)  # absurdly fast link
    assert link.traverse(100, 8) == 101  # not 100: serialization >= 1 ps


def test_same_cycle_sends_keep_fifo_order_on_one_link():
    from repro.interconnect.network import Link

    link = Link("x", Scope.INTRA, ns(2), 1e9)
    arrivals = [link.traverse(0, 0) for _ in range(5)]
    assert arrivals == sorted(arrivals)
    assert len(set(arrivals)) == 5  # strictly increasing, no ties to resolve


def test_serialization_times_pinned_for_table3_links():
    """Regression pins for the integer serialization arithmetic.

    These are the exact delays every experiment's timing is built from
    (Table 3 bandwidths x Section 8 message sizes); any change here
    shifts *all* runtimes and breaks byte-identical reproduction.
    """
    from repro.interconnect.network import Link

    intra = Link("intra", Scope.INTRA, 0, 64.0)  # 64 GB/s on-chip
    inter = Link("inter", Scope.INTER, 0, 16.0)  # 16 GB/s global
    assert intra.serialization_ps(8) == 125  # control message
    assert intra.serialization_ps(72) == 1125  # data message
    assert inter.serialization_ps(8) == 500
    assert inter.serialization_ps(72) == 4500


def test_serialization_is_exact_ceiling_not_float_round():
    from repro.interconnect.network import Link

    # 1 byte at 16 bytes/ns is 62.5 ps: float round() banker's-rounds
    # down to 62; the link must charge the full ceiling, 63 ps.
    link = Link("x", Scope.INTRA, 0, 16.0)
    assert link.serialization_ps(1) == 63
    # Inexact quotient: 8000/3 ps must ceil to 2667.
    assert Link("y", Scope.INTRA, 0, 3.0).serialization_ps(8) == 2667
    # Fractional bandwidths expand to an exact integer ratio.
    assert Link("z", Scope.INTRA, 0, 2.5).serialization_ps(8) == 3200


def test_serialization_clamped_to_one_ps():
    from repro.interconnect.network import Link

    link = Link("x", Scope.INTRA, 0, 1e9)
    assert link.serialization_ps(0) == 1
    assert link.serialization_ps(8) == 1


def test_traverse_matches_serialization_ps():
    from repro.interconnect.network import Link

    link = Link("x", Scope.INTRA, ns(2), 16.0)
    assert link.traverse(0, 72) == link.serialization_ps(72) + ns(2)
    # Back-to-back messages queue by exactly the serialization delay.
    second = link.traverse(0, 72)
    assert second == 2 * link.serialization_ps(72) + ns(2)
