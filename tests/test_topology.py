"""Declarative topology builder, MachineSpec and the ``topo`` CLI.

Covers the generator catalog (ptp/mesh/torus/fattree), per-link
overrides and buffer diagnostics, the frozen :class:`MachineSpec`
construction entry point (plus the legacy ``Machine(params, proto)``
deprecation shim), end-to-end runs on non-default fabrics with token
invariants checked, exp-engine determinism across worker counts, and the
``python -m repro topo`` subcommand's exit codes and canonical JSON.
"""

import json

import pytest

from repro.__main__ import main as repro_main
from repro.common.errors import ConfigError
from repro.common.params import SystemParams
from repro.exp.runner import Runner, run_cell
from repro.exp.spec import Cell
from repro.interconnect.network import BufferedLink, Network
from repro.interconnect.topology import (
    GENERATORS, TOPOLOGY_SCHEMA, Topology, grid_dims,
)
from repro.interconnect.traffic import TrafficMeter
from repro.sim.kernel import Simulator
from repro.system.machine import Machine
from repro.system.spec import MachineSpec


def mesh_params(chips=8, procs=2, **kwargs):
    return SystemParams(num_chips=chips, procs_per_chip=procs,
                        topology=Topology.mesh(**kwargs))


# ---------------------------------------------------------------------------
# The spec and the generators.
# ---------------------------------------------------------------------------


def test_default_topology_is_the_paper_fabric():
    params = SystemParams()
    assert params.topology == Topology()
    assert params.topology.is_default
    assert not Topology.mesh().is_default


def test_unknown_generator_rejected():
    with pytest.raises(ConfigError):
        Topology.named("hypercube")


def test_params_reject_non_topology_values():
    with pytest.raises(ConfigError):
        SystemParams(topology="mesh")


def test_topology_is_hashable_and_canonical():
    # kwargs order must not matter: the spec freezes to sorted tuples.
    a = Topology.mesh(rows=2, cols=4)
    b = Topology.mesh(cols=4, rows=2)
    assert a == b
    assert hash(a) == hash(b)


def test_topology_changes_the_cell_cache_key():
    base = Cell(protocol="TokenCMP-dst1", workload="oltp",
                workload_kwargs={"refs_per_proc": 5})
    meshed = Cell(protocol="TokenCMP-dst1", workload="oltp",
                  workload_kwargs={"refs_per_proc": 5},
                  params=SystemParams(topology=Topology.mesh()))
    assert base.key_material() != meshed.key_material()
    # ... and the material stays JSON-serializable for the cache.
    json.dumps(meshed.key_material(), sort_keys=True)


def test_grid_dims_near_square_and_explicit():
    assert grid_dims(8) == (2, 4)
    assert grid_dims(16) == (4, 4)
    assert grid_dims(7) == (1, 7)
    assert grid_dims(12, rows=3) == (3, 4)
    assert grid_dims(12, cols=6) == (2, 6)
    with pytest.raises(ConfigError):
        grid_dims(8, rows=3)


@pytest.mark.parametrize("gen", sorted(GENERATORS))
def test_every_generator_compiles_connected_on_eight_chips(gen):
    params = SystemParams(num_chips=8, procs_per_chip=2,
                          topology=Topology.named(gen))
    stats = params.topology.build(params).validate()
    # 8 chips x (4 L1 + 4 L2 + iface + mem + arb) endpoints.
    assert stats["endpoints"] == 8 * 11
    assert stats["diameter_hops"] >= 1


def test_fattree_trunks_get_fatter_toward_the_root():
    params = SystemParams(num_chips=16, procs_per_chip=1,
                          topology=Topology.fattree(arity=4))
    graph = params.topology.build(params)
    leaf_up = graph.links["fat:up:0"]              # chip -> leaf switch
    trunk_up = graph.links["fat:up:sw:0:0"]        # leaf -> root level
    assert trunk_up.bytes_per_ns > leaf_up.bytes_per_ns


def test_override_patterns_apply_at_compile_time():
    topo = Topology.mesh().with_override("inter:*", latency_ns=5.0,
                                         bytes_per_ns=32.0)
    params = SystemParams(num_chips=4, procs_per_chip=2, topology=topo)
    graph = topo.build(params)
    for name, spec in graph.links.items():
        if name.startswith("inter:"):
            assert spec.latency_ps == 5000
            assert spec.bytes_per_ns == 32.0
        else:  # overrides must not leak onto other links
            assert spec.bytes_per_ns in (64.0,)


def test_unknown_override_field_rejected():
    topo = Topology.mesh().with_override("inter:*", color="red")
    params = SystemParams(num_chips=4, procs_per_chip=2, topology=topo)
    with pytest.raises(ConfigError):
        topo.build(params)


# ---------------------------------------------------------------------------
# Buffer diagnostics.
# ---------------------------------------------------------------------------


def test_buffer_override_counts_overflows_without_changing_timing():
    def run(topo):
        params = SystemParams(num_chips=4, procs_per_chip=2, topology=topo)
        cell = Cell(protocol="TokenCMP-dst1", workload="oltp",
                    workload_kwargs={"refs_per_proc": 20}, seed=2,
                    params=params)
        return run_cell(cell)

    plain = run(Topology.mesh())
    tiny = run(Topology.mesh().with_override("inter:*", buffer_bytes=64))
    # Diagnostic only: runtime, traffic and counters are identical.
    assert plain.runtime_ps == tiny.runtime_ps
    assert plain.traffic == tiny.traffic
    net = tiny.raw.machine.net
    report = net.buffer_report()
    assert report  # every inter link got a capacity
    assert all(name.startswith("inter:") for name in report)
    assert sum(r["overflow_events"] for r in report.values()) > 0
    assert not plain.raw.machine.net.buffer_report()


def test_buffered_link_tracks_peak_backlog():
    params = SystemParams()
    link = BufferedLink("x", list(params.topology.build(params).links
                                  .values())[0].scope, 1000, 8.0, 100)
    t = link.traverse(0, 80)
    assert link.peak_backlog_bytes == 80
    assert link.overflow_events == 0
    link.traverse(0, 80)  # second message queues behind the first
    assert link.peak_backlog_bytes > 100
    assert link.overflow_events == 1
    # Timing matches an unbuffered link exactly.
    assert t == 80 * 1000 // 8 + 1000


# ---------------------------------------------------------------------------
# MachineSpec and the deprecation shim.
# ---------------------------------------------------------------------------


def test_machine_spec_build_equals_legacy_shim():
    spec = MachineSpec(params=SystemParams(num_chips=2, procs_per_chip=2),
                       protocol="TokenCMP-dst1", seed=7)
    via_spec = spec.build()
    with pytest.deprecated_call():
        via_shim = Machine(spec.params, "TokenCMP-dst1", seed=7)
    assert via_shim.spec == spec
    assert via_spec.cfg.name == via_shim.cfg.name == "TokenCMP-dst1"
    assert via_spec.seed == via_shim.seed == 7
    assert len(via_spec.sequencers) == len(via_shim.sequencers)


def test_machine_spec_resolves_protocol_names():
    spec = MachineSpec(protocol="DirectoryCMP")
    assert spec.protocol_name == "DirectoryCMP"
    assert spec.topology is spec.params.topology


def test_machine_rejects_spec_plus_legacy_arguments():
    spec = MachineSpec(protocol="TokenCMP-dst1")
    with pytest.raises(ConfigError):
        Machine(spec, "DirectoryCMP")
    with pytest.raises(ConfigError):
        Machine(spec, seed=3)


def test_cell_machine_property_carries_everything():
    cell = Cell(protocol="TokenCMP-dst1", workload="oltp",
                workload_kwargs={"refs_per_proc": 5}, seed=9,
                params=SystemParams(num_chips=2, procs_per_chip=2,
                                    topology=Topology.torus()))
    spec = cell.machine
    assert isinstance(spec, MachineSpec)
    assert spec.seed == 9
    assert spec.protocol is cell.protocol
    assert spec.topology.generator == "torus"
    assert spec.faults is None and spec.crash is None


# ---------------------------------------------------------------------------
# End-to-end on non-default fabrics.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("gen", ["mesh", "torus", "fattree"])
def test_token_protocol_runs_coherently_on_fabric(gen):
    params = SystemParams(num_chips=4, procs_per_chip=2,
                          topology=Topology.named(gen))
    cell = Cell(protocol="TokenCMP-dst1", workload="oltp",
                workload_kwargs={"refs_per_proc": 20}, seed=4,
                params=params, check_invariants=True)
    result = run_cell(cell)  # check_invariants re-verifies at quiescence
    assert result.get("l1.misses") > 0
    assert result.runtime_ps > 0


def test_mesh_sweep_is_identical_across_worker_counts():
    cells = [
        Cell(protocol=proto, workload="oltp",
             workload_kwargs={"refs_per_proc": 15}, seed=1,
             params=mesh_params(chips=8, procs=2))
        for proto in ("TokenCMP-dst1", "TokenCMP-dst1-mcast", "DirectoryCMP")
    ]
    serial = Runner(jobs=1, cache=False).run_cells(cells, name="mesh-det")
    fanned = Runner(jobs=2, cache=False).run_cells(cells, name="mesh-det")
    assert [r.to_json() for r in serial] == [r.to_json() for r in fanned]


def test_sixteen_chip_mesh_cell_runs_through_the_engine():
    params = SystemParams(num_chips=16, procs_per_chip=2,
                          tokens_per_block=128, topology=Topology.mesh())
    cell = Cell(protocol="TokenCMP-dst1-mcast", workload="oltp",
                workload_kwargs={"refs_per_proc": 10}, seed=1, params=params)
    a = run_cell(cell)
    b = run_cell(cell)
    assert a.to_json() == b.to_json()
    assert a.runtime_ps > 0


# ---------------------------------------------------------------------------
# The ``topo`` CLI subcommand.
# ---------------------------------------------------------------------------


def test_topo_lists_generators(capsys):
    assert repro_main(["topo"]) == 0
    out = capsys.readouterr().out
    for name in GENERATORS:
        assert name in out


def test_topo_validates_and_prints_link_table(capsys):
    assert repro_main(["topo", "mesh", "--chips", "8", "--procs", "2"]) == 0
    out = capsys.readouterr().out
    assert "generator  mesh" in out
    assert "inter:0>1" in out
    assert "diameter" in out


def test_topo_json_is_the_canonical_document(capsys):
    assert repro_main(["topo", "torus", "--chips", "9", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == TOPOLOGY_SCHEMA
    assert doc["generator"] == "torus"
    assert doc["num_chips"] == 9
    names = [link["name"] for link in doc["links"]]
    assert names == sorted(names)
    # 3x3 torus: wrap links exist in both dimensions.
    assert "inter:2>0" in names
    assert "inter:6>0" in names


def test_topo_unknown_generator_exits_2(capsys):
    assert repro_main(["topo", "hypercube"]) == 2
    assert "unknown topology generator" in capsys.readouterr().err


def test_run_cli_accepts_topology_flag(capsys):
    code = repro_main([
        "run", "TokenCMP-dst1", "oltp", "--chips", "8", "--procs", "2",
        "--topology", "mesh", "--ops", "2", "--json",
    ])
    assert code == 0
    record = json.loads(capsys.readouterr().out)
    assert record["counters"]["l1.misses"] > 0
