"""Tests for the analysis helpers and the command-line interface."""

import pytest

from repro.__main__ import main as cli_main
from repro.analysis.report import ResultTable, traffic_breakdown_normalized
from repro.common.params import SystemParams
from repro.exp.runner import run_cell
from repro.exp.spec import Cell
from repro.interconnect.traffic import Scope, TrafficClass


def _cell(small, protocol, seed=1):
    return Cell(protocol=protocol, workload="counter",
                workload_kwargs={"increments": 3}, seed=seed, params=small)


@pytest.fixture
def small():
    return SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)


def test_run_cell_returns_result(small):
    res = run_cell(_cell(small, "PerfectL2"))
    assert res.protocol == "PerfectL2"
    assert res.runtime_ps > 0


def test_result_table_renders_aligned():
    t = ResultTable("title", ["a", "bb"])
    t.add(1, "x")
    t.add(22, "yyyy")
    text = t.render()
    lines = text.splitlines()
    assert lines[0] == "title"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5
    # Columns align: each data row has the same prefix width.
    assert lines[3].index("x") == lines[4].index("y")


def test_traffic_breakdown_normalization(small):
    results = {
        name: run_cell(_cell(small, name)).raw
        for name in ("DirectoryCMP", "TokenCMP-dst1")
    }
    norm = traffic_breakdown_normalized(results, Scope.INTER, "DirectoryCMP")
    assert abs(sum(norm["DirectoryCMP"].values()) - 1.0) < 1e-9
    assert set(norm["TokenCMP-dst1"]) == set(TrafficClass)


# ---------------------------------------------------------------------------
# CLI.
# ---------------------------------------------------------------------------
def test_cli_list(capsys):
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    assert "TokenCMP-dst1" in out and "DirectoryCMP" in out


def test_cli_run(capsys):
    rc = cli_main([
        "run", "TokenCMP-dst1", "counter",
        "--chips", "2", "--procs", "2", "--ops", "3",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "runtime" in out and "misses" in out


def test_cli_sweep(capsys):
    rc = cli_main([
        "sweep", "counter", "--chips", "2", "--procs", "2", "--ops", "2",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "normalized to DirectoryCMP" in out
    assert "PerfectL2" in out


def test_cli_verify_fast(capsys):
    rc = cli_main(["verify", "--fast", "--max-states", "200000"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "all properties verified" in out


def test_cli_report(tmp_path, capsys):
    out = tmp_path / "r.md"
    rc = cli_main(["report", "--out", str(out), "--scale", "0.2", "--seed", "2"])
    assert rc == 0
    text = out.read_text()
    assert "TokenCMP reproduction report" in text
    assert "Figure 6" in text and "verified" in text
