"""Gap-filling tests for smaller behaviours across the library."""

import pytest

from repro.common.params import SystemParams
from repro.common.rng import substream
from repro.common.types import NodeId, NodeKind, ns, to_ns
from repro.interconnect.message import Message, MsgType
from repro.interconnect.traffic import Scope, TrafficClass, TrafficMeter
from repro.system import MachineSpec
from repro.workloads.sharing import CounterWorkload


def test_rng_substreams_are_deterministic_and_independent():
    a1 = substream(42, "x").random()
    a2 = substream(42, "x").random()
    b = substream(42, "y").random()
    c = substream(43, "x").random()
    assert a1 == a2
    assert a1 != b and a1 != c


def test_time_units_roundtrip_fractional():
    assert to_ns(ns(0.125)) == 0.125
    assert ns(0.0004) == 0  # sub-picosecond rounds away


def test_message_repr_mentions_tokens_and_data():
    msg = Message(MsgType.TOK_DATA, NodeId(NodeKind.L1D, 0, 0),
                  NodeId(NodeKind.L1D, 0, 1), 0x40, tokens=3, owner=True, data=7)
    text = str(msg)
    assert "tok=3+O" in text and "data=7" in text


def test_traffic_meter_counts_messages_per_scope():
    meter = TrafficMeter()
    meter.record(Scope.INTER, TrafficClass.REQUEST, 8)
    meter.record(Scope.INTER, TrafficClass.RESPONSE_DATA, 72)
    meter.record(Scope.INTRA, TrafficClass.REQUEST, 8)
    assert meter.messages[Scope.INTER] == 2
    assert meter.scope_bytes(Scope.INTER) == 80
    assert meter.breakdown(Scope.INTRA)[TrafficClass.REQUEST] == 8


def test_network_link_utilization_reports_bytes():
    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    machine = MachineSpec(params=params, protocol="TokenCMP-dst1", seed=1).build()
    machine.run(CounterWorkload(params, increments=3, seed=1), max_events=5_000_000)
    util = machine.net.link_utilization()
    assert any(v > 0 for v in util.values())
    assert any(name.startswith("inter:") for name in util)


def test_kernel_counts_fired_events():
    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    machine = MachineSpec(params=params, protocol="PerfectL2", seed=1).build()
    machine.run(CounterWorkload(params, increments=2, seed=1))
    assert machine.sim.events_fired > 50


def test_touched_blocks_reports_workload_footprint():
    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    machine = MachineSpec(params=params, protocol="TokenCMP-dst1", seed=1).build()
    wl = CounterWorkload(params, increments=3, seed=1)
    machine.run(wl, max_events=5_000_000)
    touched = machine.touched_blocks()
    assert wl.counter in touched and wl.lock in touched


def test_machine_accepts_config_objects_directly():
    import dataclasses
    from repro.system.config import PROTOCOLS

    cfg = dataclasses.replace(PROTOCOLS["TokenCMP-dst1"], name="custom")
    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    machine = MachineSpec(params=params, protocol=cfg, seed=1).build()
    result = machine.run(CounterWorkload(params, increments=2, seed=1),
                         max_events=5_000_000)
    assert result.protocol == "custom"


def test_check_token_invariants_rejected_for_other_families():
    from repro.common.errors import ProtocolError

    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    machine = MachineSpec(params=params, protocol="DirectoryCMP", seed=1).build()
    with pytest.raises(ProtocolError):
        machine.check_token_invariants()


def test_version_and_public_exports():
    import repro

    assert repro.__version__
    assert "TokenCMP-dst1" in repro.PROTOCOLS
    assert repro.protocol("PerfectL2").family == "perfect"


def test_miss_source_classifier():
    from repro.core.l1 import classify_source

    assert classify_source(NodeId(NodeKind.MEM, 1), 0) == "memory"
    assert classify_source(NodeId(NodeKind.L1D, 0, 1), 0) == "local-l1"
    assert classify_source(NodeId(NodeKind.L1D, 2, 1), 0) == "remote-l1"
    assert classify_source(NodeId(NodeKind.L2, 3, 0), 0) == "remote-l2"


def test_miss_source_profile_collected():
    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    for proto in ("TokenCMP-dst1", "DirectoryCMP"):
        machine = MachineSpec(params=params, protocol=proto, seed=1).build()
        machine.run(CounterWorkload(params, increments=4, seed=1),
                    max_events=10_000_000)
        sources = {k: v for k, v in machine.stats.counters.items()
                   if k.startswith("miss.src.")}
        assert sources, proto
        assert sum(sources.values()) <= machine.stats.get("l1.misses")
