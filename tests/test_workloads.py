"""Tests of workload generators: semantics independent of protocols.

A tiny sequential interpreter executes the generators against a flat
memory with interleaving, verifying the synchronization idioms themselves
(test-and-test-and-set really excludes, the barrier really synchronizes)
before any cache coherence gets involved.
"""

import pytest

from repro.common.params import SystemParams
from repro.cpu.ops import Load, Rmw, Store, Think, is_write
from repro.workloads.barrier import BarrierWorkload
from repro.workloads.commercial import PROFILES, make_commercial
from repro.workloads.locking import LockingWorkload
from repro.workloads.sharing import CounterWorkload


def interpret_round_robin(generators, max_steps=2_000_000):
    """Run generators against a flat memory, one op per turn, atomically."""
    from repro.cpu.ops import Fetch

    memory = {}
    live = {i: g for i, g in enumerate(generators)}
    pending = {i: None for i in live}
    steps = 0
    while live:
        for i in list(live):
            gen = live[i]
            try:
                item = gen.send(pending[i])
            except StopIteration:
                del live[i]
                continue
            if isinstance(item, Think):
                pending[i] = None
            elif isinstance(item, (Load, Fetch)):
                pending[i] = memory.get(item.addr, 0)
            elif isinstance(item, Store):
                pending[i] = memory.get(item.addr, 0)
                memory[item.addr] = item.value
            elif isinstance(item, Rmw):
                old = memory.get(item.addr, 0)
                memory[item.addr] = item.fn(old)
                pending[i] = old
            steps += 1
            if steps > max_steps:
                raise AssertionError("workload did not terminate")
    return memory


@pytest.fixture
def params():
    return SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)


def test_locking_workload_mutual_exclusion_semantics(params):
    wl = LockingWorkload(params, num_locks=3, acquires_per_proc=10, seed=3)
    memory = interpret_round_robin(wl.generators())
    assert wl.acquired_counts == [10] * params.num_procs
    for lock in wl.locks:
        assert memory.get(lock, 0) == 0  # all released


def test_locking_never_picks_same_lock_twice(params):
    wl = LockingWorkload(params, num_locks=8, acquires_per_proc=50, seed=5)
    # Reconstruct the pick sequence by reading the generator's RNG draw.
    from repro.common.rng import substream

    rng = substream(5, "locking", 0)
    last = -1
    for _ in range(50):
        pick = rng.randrange(7)
        if pick >= last:
            pick += 1
        assert pick != last
        last = pick


def test_counter_workload_totals(params):
    wl = CounterWorkload(params, increments=7)
    memory = interpret_round_robin(wl.generators())
    assert memory[wl.counter] == wl.expected_total


def test_barrier_workload_synchronizes(params):
    wl = BarrierWorkload(params, phases=5, work_ns=1.0, seed=2)
    memory = interpret_round_robin(wl.generators())
    assert wl.completed_phases == [5] * params.num_procs
    assert memory.get(wl.counter, 0) == 0
    assert memory.get(wl.lock, 0) == 0


def test_barrier_flag_alternates(params):
    wl = BarrierWorkload(params, phases=4, work_ns=1.0)
    memory = interpret_round_robin(wl.generators())
    assert memory.get(wl.flag) == 0  # even number of phases: back to 0


def test_commercial_profiles_exist_and_run(params):
    for name in PROFILES:
        wl = make_commercial(params, name, refs_per_proc=30)
        interpret_round_robin(wl.generators())
        assert wl.completed_refs == [30] * params.num_procs


def test_commercial_stream_blocks_conflict_in_l2(params):
    wl = make_commercial(params, "oltp", refs_per_proc=10)
    sets = params.l2_bank_size // (params.block_size * params.l2_assoc)
    a0 = wl._stream_block(0)
    blocks = [wl._stream_block(0) for _ in range(5)]
    indexes = [b // params.block_size for b in [a0] + blocks]
    lanes = {i % sets for i in indexes}
    assert len(lanes) == 2  # two lanes, each repeatedly conflicting


def test_commercial_workloads_distinct_address_spaces(params):
    wl = make_commercial(params, "apache", refs_per_proc=10)
    shared = set(wl.locks) | set(wl.migratory) | set(wl.read_shared)
    for priv in wl.private:
        assert not (shared & set(priv))


def test_block_allocator_distinct_blocks(params):
    from repro.workloads.base import BlockAllocator

    alloc = BlockAllocator(params)
    blocks = alloc.blocks(100)
    assert len(set(blocks)) == 100
    assert all(b % params.block_size == 0 for b in blocks)


def test_workload_requires_matching_proc_count(params):
    from repro.system import MachineSpec

    wl = LockingWorkload(params, num_locks=2, acquires_per_proc=1)
    other = SystemParams(num_chips=1, procs_per_chip=2, tokens_per_block=16)
    machine = MachineSpec(params=other, protocol="PerfectL2").build()
    with pytest.raises(ValueError):
        machine.run(wl)


def test_fetch_ops_route_to_l1i(params):
    from repro.cpu.ops import Fetch
    from repro.system import MachineSpec

    for proto in ("TokenCMP-dst1", "DirectoryCMP", "PerfectL2"):
        m = MachineSpec(params=params, protocol=proto, seed=2).build()
        done = []
        m.sequencers[0].issue(Fetch(0x9000_0000), done.append)
        m.sim.run(max_events=500_000)
        assert done == [0]
        l1i = m.l1is[0]
        assert l1i.array.lookup(0x9000_0000, touch=False) is not None


def test_code_sharing_across_l1is(params):
    """Two processors fetch the same code block: both keep readable copies."""
    from repro.cpu.ops import Fetch
    from repro.system import MachineSpec

    m = MachineSpec(params=params, protocol="TokenCMP-dst1", seed=2).build()
    for proc in (0, 2):
        done = []
        m.sequencers[proc].issue(Fetch(0x9000_0000), done.append)
        m.sim.run(max_events=500_000)
        assert done == [0]
    e0 = m.l1is[0].array.lookup(0x9000_0000, touch=False)
    e2 = m.l1is[2].array.lookup(0x9000_0000, touch=False)
    assert e0.can_read() and e2.can_read()
    m.check_token_invariants()


def test_commercial_workloads_issue_fetches(params):
    from repro.system import MachineSpec

    m = MachineSpec(params=params, protocol="TokenCMP-dst1", seed=4).build()
    wl = make_commercial(params, "apache", seed=4, refs_per_proc=60)
    m.run(wl, max_events=20_000_000)
    fetched = sum(
        1 for l1i in m.l1is for _a, _e in l1i.array.items()
    )
    assert fetched > 0
    m.check_token_invariants()
