"""Unit tests for SystemParams (Table 3) and address mapping."""

import pytest

from repro.common.errors import ConfigError
from repro.common.params import SystemParams
from repro.common.types import NodeKind, ns, to_ns


def test_table3_defaults():
    p = SystemParams()
    assert p.num_chips == 4
    assert p.procs_per_chip == 4
    assert p.num_procs == 16
    assert p.block_size == 64
    assert p.l1_size == 128 * 1024
    assert p.l2_bank_size * p.l2_banks_per_chip == 8 * 1024 * 1024
    assert p.l1_latency_ns == 2.0
    assert p.l2_latency_ns == 7.0
    assert p.dram_latency_ns == 80.0
    assert p.intra_link_bw == 64.0
    assert p.inter_link_bw == 16.0
    assert p.data_msg_bytes == 72
    assert p.control_msg_bytes == 8


def test_time_conversion_roundtrip():
    assert ns(2.0) == 2000
    assert to_ns(ns(7.5)) == 7.5


def test_block_alignment():
    p = SystemParams()
    assert p.block_of(0x1234) == 0x1200
    assert p.block_of(0x1200) == 0x1200


def test_home_interleaving_covers_all_chips():
    p = SystemParams()
    homes = {p.home_chip(i * p.block_size) for i in range(16)}
    assert homes == {0, 1, 2, 3}


def test_l2_bank_interleaving_within_chip():
    p = SystemParams()
    banks = {p.l2_bank(i * p.block_size, chip=0).index for i in range(64)}
    assert banks == {0, 1, 2, 3}


def test_l2_bank_is_consistent_per_block():
    p = SystemParams()
    addr = 0x4_0000
    b0 = p.l2_bank(addr, 0)
    assert b0 == p.l2_bank(addr + 4, 0)  # same block, same bank
    assert p.l2_bank(addr, 1).chip == 1


def test_token_holder_count():
    p = SystemParams()
    # 8 L1s per chip + 1 home L2 bank per chip.
    assert p.num_caches == 4 * 9
    assert len(p.token_holders(0)) == 36


def test_persistent_priority_locality_layout():
    p = SystemParams()
    # Low bits vary within a CMP: processors on one chip are contiguous.
    chip0 = [p.persistent_priority(i) for i in range(4)]
    chip1 = [p.persistent_priority(i) for i in range(4, 8)]
    assert chip0 == [0, 1, 2, 3]
    assert chip1 == [4, 5, 6, 7]


def test_tokens_must_exceed_cache_count():
    with pytest.raises(ConfigError):
        SystemParams(tokens_per_block=8)


def test_bad_geometry_rejected():
    with pytest.raises(ConfigError):
        SystemParams(block_size=48)
    with pytest.raises(ConfigError):
        SystemParams(num_chips=0)


def test_node_helpers():
    p = SystemParams()
    assert p.l1d_of(5).chip == 1 and p.l1d_of(5).index == 1
    assert p.home_mem(0).kind is NodeKind.MEM
    assert p.iface_of(2).chip == 2


# ---------------------------------------------------------------------------
# Stats summaries (co-located with other common-layer tests).
# ---------------------------------------------------------------------------
def test_summary_tracks_mean_min_max():
    from repro.common.stats import Summary

    s = Summary()
    for v in (10.0, 20.0, 30.0):
        s.add(v)
    assert s.count == 3 and s.mean == 20.0
    assert s.min == 10.0 and s.max == 30.0


def test_summary_percentiles_exact_for_small_streams():
    from repro.common.stats import Summary

    s = Summary()
    for v in range(101):
        s.add(float(v))
    assert s.percentile(0) == 0.0
    assert s.percentile(50) == 50.0
    assert s.percentile(100) == 100.0


def test_summary_percentiles_approximate_for_large_streams():
    from repro.common.stats import Summary

    s = Summary(sample_limit=256)
    for v in range(10_000):
        s.add(float(v))
    assert abs(s.percentile(50) - 5000) < 500
    assert abs(s.percentile(95) - 9500) < 500
    assert s.count == 10_000


def test_stats_ratio_and_snapshot():
    from repro.common.stats import Stats

    st = Stats()
    st.bump("hits", 3)
    st.bump("misses")
    assert st.ratio("hits", "misses") == 3.0
    assert st.ratio("hits", "absent") == 0.0
    assert st.snapshot() == {"hits": 3, "misses": 1}
