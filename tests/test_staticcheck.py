"""Tests for the protocol-aware static analysis suite (repro.staticcheck).

The strategy throughout: the real tree must be clean, and every rule must
fire on a *seeded* violation placed in a fixture file (fed through
``load_tree(extra_files=...)``), so the suite proves both directions —
no false positives on the code we ship, no false negatives on the bug
classes the passes exist to catch.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.staticcheck import (
    PASSES,
    diff_baseline,
    load_baseline,
    load_tree,
    render_json,
    render_text,
    run_passes,
    write_baseline,
)
from repro.staticcheck.determinism import DeterminismPass
from repro.staticcheck.dispatch import DispatchPass
from repro.staticcheck.findings import Finding
from repro.staticcheck.pooling import PoolDisciplinePass
from repro.staticcheck.purity import PurityPass
from repro.staticcheck.source import parse_source
from repro.staticcheck.tokens import TokenDisciplinePass

REPO_ROOT = Path(__file__).resolve().parent.parent


def _fixture(tmp_path: Path, text: str, name: str = "fixture_mod.py") -> Path:
    path = tmp_path / name
    path.write_text(textwrap.dedent(text))
    return path


def _run_fixture(tmp_path: Path, text: str, passes=None):
    path = _fixture(tmp_path, text)
    findings, _ = run_passes(extra_files=[path], passes=passes)
    return [f for f in findings if f.path == path.as_posix()]


# ---------------------------------------------------------------------------
# The shipped tree is clean.
# ---------------------------------------------------------------------------
def test_repo_tree_is_clean():
    findings, pass_ids = run_passes()
    assert pass_ids == [
        "dispatch", "protocol-model", "determinism", "tokens", "purity",
        "pooling", "suppressions",
    ]
    assert findings == []


# ---------------------------------------------------------------------------
# Dispatch exhaustiveness.
# ---------------------------------------------------------------------------
DROPPED_ARM_FIXTURE = '''\
from repro.interconnect.message import Message, MsgType

_TOKEN_CARRIERS = (
    MsgType.TOK_DATA,
    MsgType.TOK_ACK,
    MsgType.TOK_WB,
    MsgType.TOK_WB_DATA,
)


class TokenMemController:
    def _process(self, msg):
        t = msg.mtype
        if t in (MsgType.TOK_GETS, MsgType.TOK_GETX):
            self._on_transient(msg)
        elif t in _TOKEN_CARRIERS:
            self._on_tokens(msg)
        elif t is MsgType.PERSIST_ACTIVATE:
            self._on_activate(msg)
        elif t is MsgType.TOK_RECREATE_REQ:
            self._on_recreate_req(msg)
        elif t in (MsgType.TOK_RECREATE_ACK, MsgType.TOK_RECREATE_DATA):
            self._on_recreate_ack(msg)
        else:
            raise ValueError(t)
'''
# The ladder (the anchor for dispatch-unhandled) starts on this line of
# the fixture above — keep in sync with the text.
DROPPED_ARM_LADDER_LINE = 14


def test_dispatch_reports_removed_arm_at_ladder_line(tmp_path):
    path = tmp_path / "broken_ctrl.py"
    path.write_text(DROPPED_ARM_FIXTURE)
    findings, _ = run_passes(extra_files=[path], passes=[DispatchPass()])
    ours = [f for f in findings if f.path == path.as_posix()]
    assert len(ours) == 1
    f = ours[0]
    assert f.rule == "dispatch-unhandled"
    assert f.severity == "error"
    assert f.line == DROPPED_ARM_LADDER_LINE
    assert "PERSIST_DEACTIVATE" in f.message
    # The message cites a real send site proving reachability.
    assert "repro/core/" in f.message


def test_dispatch_clean_when_all_arms_present(tmp_path):
    text = DROPPED_ARM_FIXTURE.replace(
        "        else:\n",
        "        elif t is MsgType.PERSIST_DEACTIVATE:\n"
        "            self._on_deactivate(msg)\n"
        "        else:\n",
    )
    path = tmp_path / "ok_ctrl.py"
    path.write_text(text)
    findings, _ = run_passes(extra_files=[path], passes=[DispatchPass()])
    assert [f for f in findings if f.path == path.as_posix()] == []


def test_dispatch_unknown_mtype(tmp_path):
    ours = _run_fixture(
        tmp_path,
        """
        from repro.interconnect.message import MsgType

        def classify(msg):
            return msg.mtype is MsgType.TOK_BOGUS
        """,
        passes=[DispatchPass()],
    )
    assert [f.rule for f in ours] == ["dispatch-unknown-mtype"]
    assert "TOK_BOGUS" in ours[0].message


def test_dispatch_no_default_warning(tmp_path):
    ours = _run_fixture(
        tmp_path,
        """
        from repro.interconnect.message import MsgType

        class Sink:
            def _process(self, msg):
                t = msg.mtype
                if t is MsgType.TOK_DATA:
                    pass
                elif t is MsgType.TOK_ACK:
                    pass
                elif t is MsgType.TOK_WB:
                    pass
        """,
        passes=[DispatchPass()],
    )
    assert [f.rule for f in ours] == ["dispatch-no-default"]
    assert ours[0].severity == "warning"


# ---------------------------------------------------------------------------
# Determinism lint.
# ---------------------------------------------------------------------------
def test_determinism_catches_seeded_violations(tmp_path):
    ours = _run_fixture(
        tmp_path,
        """
        import random
        import time

        def schedule(pending, delay_ps):
            for node in set(pending):
                print(node)
            when = round(delay_ps * 1.5)
            jitter = random.random()
            stamp = time.time()
            return when, jitter, stamp
        """,
        passes=[DeterminismPass()],
    )
    rules = sorted(f.rule for f in ours)
    assert rules == [
        "det-float-time",
        "det-set-iter",
        "det-unseeded-random",
        "det-wallclock",
    ]


def test_determinism_reintroduced_wallclock_fails_lint(tmp_path):
    # The ISSUE's canonical seeded violation: time.time() back in the
    # simulation core.  A copy of the package with the regression must
    # make ``python -m repro lint`` exit non-zero (see the CLI test).
    ours = _run_fixture(
        tmp_path,
        """
        import time

        def now_ps():
            return int(time.time() * 1e12)
        """,
        passes=[DeterminismPass()],
    )
    assert any(f.rule == "det-wallclock" for f in ours)


def test_determinism_allows_sorted_iteration(tmp_path):
    ours = _run_fixture(
        tmp_path,
        """
        def fan_out(sharers):
            for node in sorted(sharers):
                print(node)
            total = sum(x for x in {1, 2, 3})
            return total
        """,
        passes=[DeterminismPass()],
    )
    assert ours == []


# ---------------------------------------------------------------------------
# Token discipline.
# ---------------------------------------------------------------------------
def test_token_mutation_outside_ledger_flagged(tmp_path):
    ours = _run_fixture(
        tmp_path,
        """
        class RogueController:
            def _on_tokens(self, msg, entry):
                entry.tokens += msg.tokens  # minting outside the ledger
        """,
        passes=[TokenDisciplinePass()],
    )
    assert [f.rule for f in ours] == ["token-mutation"]
    assert "entry.tokens" in ours[0].message


def test_token_mutation_in_ledger_allowed(tmp_path):
    ours = _run_fixture(
        tmp_path,
        """
        class TokenEntry:
            def absorb(self, n):
                self.tokens += n
        """,
        passes=[TokenDisciplinePass()],
    )
    assert ours == []


# ---------------------------------------------------------------------------
# Pool discipline.
# ---------------------------------------------------------------------------
def test_pool_store_on_instance_flagged(tmp_path):
    ours = _run_fixture(
        tmp_path,
        """
        class RogueController:
            def _process(self, msg):
                self._last = msg  # aliases a recycled record
        """,
        passes=[PoolDisciplinePass()],
    )
    assert [f.rule for f in ours] == ["pool-discipline"]
    assert "stored on the instance" in ours[0].message


def test_pool_container_escape_flagged(tmp_path):
    ours = _run_fixture(
        tmp_path,
        """
        class RogueController:
            def handle(self, msg):
                self._backlog.append(msg)
        """,
        passes=[PoolDisciplinePass()],
    )
    assert [f.rule for f in ours] == ["pool-discipline"]
    assert "container" in ours[0].message


def test_pool_closure_capture_flagged(tmp_path):
    ours = _run_fixture(
        tmp_path,
        """
        class RogueController:
            def _process(self, msg):
                def _later():
                    self._send(msg.mtype, msg.requestor, msg.addr)
                self.sim.call_after(100, _later)
        """,
        passes=[PoolDisciplinePass()],
    )
    assert [f.rule for f in ours] == ["pool-discipline"]
    assert "closure" in ours[0].message


def test_pool_closure_with_own_msg_param_allowed(tmp_path):
    # A nested function that takes its *own* msg parameter shadows the
    # handled one — no capture, nothing to flag.
    ours = _run_fixture(
        tmp_path,
        """
        class FineController:
            def _process(self, msg):
                def _relay(msg):
                    self._send(msg)
                self._relay_fn = _relay
        """,
        passes=[PoolDisciplinePass()],
    )
    assert ours == []


def test_pool_use_after_release_flagged(tmp_path):
    ours = _run_fixture(
        tmp_path,
        """
        class RogueController:
            def _process(self, msg):
                self.pool.release(msg)
                self.stats.bump(msg.mtype.name)  # record may be reissued
        """,
        passes=[PoolDisciplinePass()],
    )
    assert [f.rule for f in ours] == ["pool-discipline"]
    assert "after release" in ours[0].message


def test_pool_scalar_copy_and_lambda_over_scalars_allowed(tmp_path):
    # The sanctioned shape: copy the scalars out, defer over those.
    ours = _run_fixture(
        tmp_path,
        """
        class FineController:
            def _process(self, msg):
                mtype, addr, req = msg.mtype, msg.addr, msg.requestor
                self.sim.call_after(100, lambda: self._send(mtype, req, addr))
                self.pool.release(msg)
        """,
        passes=[PoolDisciplinePass()],
    )
    assert ours == []


def test_pool_approved_retention_site_allowed(tmp_path):
    # Arbiter._process queues the (unpooled) persistent request by design.
    ours = _run_fixture(
        tmp_path,
        """
        class Arbiter:
            def _process(self, msg):
                self._queue.append(msg)
        """,
        passes=[PoolDisciplinePass()],
    )
    assert ours == []


def test_pool_suppression_comment(tmp_path):
    ours = _run_fixture(
        tmp_path,
        """
        class RogueController:
            def _process(self, msg):
                self._last = msg  # staticcheck: ignore[pool-discipline]
        """,
        passes=[PoolDisciplinePass()],
    )
    assert ours == []


# ---------------------------------------------------------------------------
# Purity.
# ---------------------------------------------------------------------------
def test_purity_flags_forbidden_imports(tmp_path):
    ours = _run_fixture(
        tmp_path,
        """
        import os
        from time import time
        """,
        passes=[PurityPass()],
    )
    assert [f.rule for f in ours] == ["purity-import", "purity-import"]


def test_purity_suppression_comment(tmp_path):
    ours = _run_fixture(
        tmp_path,
        """
        from time import perf_counter_ns  # staticcheck: ignore[purity-import]
        """,
        passes=[PurityPass()],
    )
    assert ours == []


def test_suppression_line_above_and_wildcard():
    src = parse_source(
        "x.py",
        "# staticcheck: ignore[rule-a]\n"
        "flagged_line()\n"
        "other()  # staticcheck: ignore[*]\n",
    )
    assert src.is_suppressed(2, "rule-a")
    assert not src.is_suppressed(2, "rule-b")
    assert src.is_suppressed(3, "anything")


# ---------------------------------------------------------------------------
# Findings, reporters, baseline.
# ---------------------------------------------------------------------------
def _mk(rule="det-wallclock", path="a.py", line=3, message="m"):
    return Finding(
        path=path, line=line, rule=rule, severity="error", message=message
    )


def test_fingerprint_ignores_line_number():
    assert _mk(line=3).fingerprint == _mk(line=99).fingerprint
    assert _mk(message="m").fingerprint != _mk(message="n").fingerprint


def test_render_json_is_canonical():
    findings = [_mk(line=9), _mk(path="b.py")]
    a = render_json(findings, ["dispatch"])
    b = render_json(list(reversed(findings)), ["dispatch"])
    assert a == b
    doc = json.loads(a)
    assert doc["schema"] == "repro.staticcheck/1"
    assert doc["counts"]["total"] == 2
    assert doc["counts"]["errors"] == 2


def test_render_text_clean_and_summary():
    assert render_text([]) == "staticcheck: clean (0 findings)"
    text = render_text([_mk()])
    assert "a.py:3" in text and "det-wallclock" in text


def test_baseline_roundtrip_and_gating(tmp_path):
    old = [_mk(), _mk(path="b.py")]
    base_path = tmp_path / "baseline.json"
    write_baseline(base_path, old)
    baseline = load_baseline(base_path)
    # Unchanged findings: nothing new (line shifts don't matter).
    new, stale = diff_baseline([_mk(line=50), _mk(path="b.py")], baseline)
    assert new == [] and stale == []
    # A fresh finding gates; a fixed finding goes stale.
    fresh = _mk(path="c.py", message="fresh")
    new, stale = diff_baseline([_mk(), fresh], baseline)
    assert new == [fresh]
    assert stale == [_mk(path="b.py").fingerprint]


def test_load_baseline_missing_file_is_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == {}


def test_load_baseline_rejects_unknown_schema(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "other/9", "fingerprints": {}}))
    with pytest.raises(ValueError):
        load_baseline(bad)


# ---------------------------------------------------------------------------
# CLI: exit codes and JSON output.
# ---------------------------------------------------------------------------
def _lint(*argv, env_src=None, cwd=REPO_ROOT):
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = str(env_src or (REPO_ROOT / "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True, text=True, env=env, cwd=str(cwd),
    )


def test_cli_clean_against_committed_baseline():
    proc = _lint()
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_cli_json_output_is_schema_tagged():
    proc = _lint("--json")
    assert proc.returncode == 0
    doc = json.loads(proc.stdout)
    assert doc["schema"] == "repro.staticcheck/1"
    assert doc["counts"]["total"] == 0


def test_cli_exits_nonzero_on_seeded_violation(tmp_path):
    # Copy the package, reintroduce time.time() into repro.sim, and run
    # the real CLI against the poisoned copy.
    import shutil

    poisoned = tmp_path / "src"
    shutil.copytree(REPO_ROOT / "src", poisoned)
    victim = poisoned / "repro" / "sim" / "kernel.py"
    victim.write_text(
        victim.read_text()
        + "\n\nimport time\n\ndef _wall_ps():\n    return time.time()\n"
    )
    proc = _lint("--json", env_src=poisoned)
    assert proc.returncode == 1, proc.stdout + proc.stderr
    doc = json.loads(proc.stdout)
    rules = {f["rule"] for f in doc["findings"]}
    assert "det-wallclock" in rules
    assert "purity-import" in rules


def test_cli_update_baseline_then_clean(tmp_path):
    base = tmp_path / "base.json"
    proc = _lint("--baseline", str(base), "--update-baseline")
    assert proc.returncode == 0
    proc = _lint("--baseline", str(base))
    assert proc.returncode == 0
