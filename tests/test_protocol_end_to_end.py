"""End-to-end correctness tests run against EVERY protocol.

These use workloads whose final memory state is architecturally determined
(mutual exclusion makes the counter total exact), so they catch coherence
and atomicity violations in any protocol family.
"""

import pytest

from conftest import ALL_PROTOCOLS, COHERENT_PROTOCOLS, TOKEN_PROTOCOLS
from repro.common.params import SystemParams
from repro.system import MachineSpec
from repro.workloads.barrier import BarrierWorkload
from repro.workloads.locking import LockingWorkload
from repro.workloads.sharing import CounterWorkload

MAX_EVENTS = 30_000_000


@pytest.mark.parametrize("proto", ALL_PROTOCOLS)
def test_shared_counter_is_exact(small_params, proto):
    m = MachineSpec(params=small_params, protocol=proto, seed=3).build()
    wl = CounterWorkload(small_params, increments=6)
    m.run(wl, max_events=MAX_EVENTS)
    assert m.coherent_value(wl.counter) == wl.expected_total
    assert m.coherent_value(wl.lock) == 0  # all locks released


@pytest.mark.parametrize("proto", ALL_PROTOCOLS)
def test_locking_completes_all_acquires(small_params, proto):
    m = MachineSpec(params=small_params, protocol=proto, seed=5).build()
    wl = LockingWorkload(small_params, num_locks=2, acquires_per_proc=8, seed=5)
    m.run(wl, max_events=MAX_EVENTS)
    assert wl.acquired_counts == [8] * small_params.num_procs
    for lock in wl.locks:
        assert m.coherent_value(lock) == 0


@pytest.mark.parametrize("proto", COHERENT_PROTOCOLS)
def test_barrier_phases_complete(small_params, proto):
    m = MachineSpec(params=small_params, protocol=proto, seed=7).build()
    wl = BarrierWorkload(small_params, phases=6, work_ns=100.0, seed=7)
    m.run(wl, max_events=MAX_EVENTS)
    assert wl.completed_phases == [6] * small_params.num_procs
    assert m.coherent_value(wl.counter) == 0


@pytest.mark.parametrize("proto", TOKEN_PROTOCOLS)
def test_token_invariants_hold_after_runs(small_params, proto):
    m = MachineSpec(params=small_params, protocol=proto, seed=11).build()
    wl = CounterWorkload(small_params, increments=5)
    m.run(wl, max_events=MAX_EVENTS)
    m.check_token_invariants()


@pytest.mark.parametrize("proto", ["TokenCMP-dst1", "DirectoryCMP"])
def test_full_machine_16_procs(full_params, proto):
    m = MachineSpec(params=full_params, protocol=proto, seed=13).build()
    wl = CounterWorkload(full_params, increments=3)
    m.run(wl, max_events=MAX_EVENTS)
    assert m.coherent_value(wl.counter) == wl.expected_total
    if proto.startswith("Token"):
        m.check_token_invariants()


@pytest.mark.parametrize("proto", ["TokenCMP-dst1", "DirectoryCMP"])
def test_deterministic_given_seed(small_params, proto):
    runtimes = set()
    for _ in range(2):
        m = MachineSpec(params=small_params, protocol=proto, seed=42).build()
        wl = LockingWorkload(small_params, num_locks=2, acquires_per_proc=6, seed=42)
        res = m.run(wl, max_events=MAX_EVENTS)
        runtimes.add(res.runtime_ps)
    assert len(runtimes) == 1


@pytest.mark.parametrize("proto", ["TokenCMP-dst1", "DirectoryCMP"])
def test_different_seeds_perturb_runtime(small_params, proto):
    runtimes = set()
    for seed in range(3):
        m = MachineSpec(params=small_params, protocol=proto, seed=seed).build()
        # 4 locks: the pick-a-different-lock sequence actually varies by
        # seed (with 2 locks the workload is deterministic by construction).
        wl = LockingWorkload(small_params, num_locks=4, acquires_per_proc=6, seed=seed)
        res = m.run(wl, max_events=MAX_EVENTS)
        runtimes.add(res.runtime_ps)
    assert len(runtimes) > 1


def test_runtime_stats_recorded(small_params):
    m = MachineSpec(params=small_params, protocol="TokenCMP-dst1", seed=1).build()
    wl = CounterWorkload(small_params, increments=4)
    res = m.run(wl, max_events=MAX_EVENTS)
    assert res.stats.get("l1.hits") > 0
    assert res.stats.get("l1.misses") > 0
    assert res.runtime_ps > 0
    assert res.stats.get("runtime_ps") == res.runtime_ps
