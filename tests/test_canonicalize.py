"""Symmetry-reduction (Model.canonicalize) coverage.

Three angles, per the paper's Section 5 technique list:

* a toy fully-symmetric model where the quotient is computable by hand:
  reduction shrinks the reachable set by the expected factor and
  preserves every verdict (safety, deadlock freedom, liveness) and the
  BFS diameter;
* sound reduction preserves *violation* detection on a seeded bug;
* a soundness regression: an unsound canonicalizer (one that folds
  inequivalent states together) hides the seeded bug, and the
  reduced-vs-full verdict cross-check detects the disagreement.

Plus pinned state/transition counts for the real protocol models, so an
accidental change to transition enumeration (e.g. a nondeterministic
iteration order creeping back in) fails loudly.
"""

import itertools

import pytest

from repro.common.errors import VerificationError
from repro.verification.checker import Model, check
from repro.verification.dir_model import DirFlatModel
from repro.verification.token_model import TokenDstModel, TokenSafetyModel


# ---------------------------------------------------------------------------
# Toy model: N symmetric processes passing T conserved tokens.
# ---------------------------------------------------------------------------
class ToyTokenRing(Model):
    """State: per-process token counts.  Fully symmetric by construction.

    ``leak=True`` seeds a conservation bug: a process holding >= 3 tokens
    can drop one (reachable only at depth >= 1 from the initial state).
    """

    name = "toy-ring"

    def __init__(self, n: int = 3, t: int = 4, leak: bool = False):
        self.n = n
        self.t = t
        self.leak = leak

    def initial_states(self):
        yield (self.t,) + (0,) * (self.n - 1)

    def transitions(self, state):
        out = []
        for i, held in enumerate(state):
            if held == 0:
                continue
            for j in range(self.n):
                if j == i:
                    continue
                nxt = list(state)
                nxt[i] -= 1
                nxt[j] += 1
                out.append((f"pass{i}->{j}", tuple(nxt)))
            if self.leak and held >= 3:
                nxt = list(state)
                nxt[i] -= 1  # token destroyed: breaks conservation
                out.append((f"leak{i}", tuple(nxt)))
        return out

    def check_invariants(self, state):
        if sum(state) != self.t:
            raise VerificationError(
                f"conservation violated: {sum(state)} != {self.t} in {state}"
            )

    def is_quiescent(self, state):
        return max(state) == self.t  # permutation-invariant


class ToyTokenRingReduced(ToyTokenRing):
    name = "toy-ring-reduced"

    def canonicalize(self, state):
        return tuple(sorted(state))


class ToyTokenRingUnsound(ToyTokenRing):
    """Deliberately unsound: folds conservation-violating states onto the
    initial state, so the checker can never see them."""

    name = "toy-ring-unsound"

    def canonicalize(self, state):
        if sum(state) != self.t:
            return (self.t,) + (0,) * (self.n - 1)
        return tuple(sorted(state))


def _verdict(model, **kw):
    """The cross-check key for reduction soundness: the verdict alone.

    (Diameter is *not* preserved by a quotient — a far orbit can have a
    near representative — so only the ok/violation outcome is compared.)
    """
    try:
        check(model, **kw)
        return "ok"
    except VerificationError:
        return "violation"


def test_toy_reduction_shrinks_and_preserves_verdicts():
    full = check(ToyTokenRing())
    reduced = check(ToyTokenRingReduced())
    # Compositions of 4 into 3 parts vs partitions of 4 into <= 3 parts.
    assert full.states == 15
    assert reduced.states == 4
    assert full.quiescent_states == 3  # (4,0,0) in each position
    assert reduced.quiescent_states == 1
    assert full.liveness_checked and reduced.liveness_checked


def test_toy_reduction_preserves_violation_detection():
    with pytest.raises(VerificationError):
        check(ToyTokenRing(leak=True))
    with pytest.raises(VerificationError):
        check(ToyTokenRingReduced(leak=True))


def test_unsound_canonicalizer_detected_by_cross_check():
    # The unsound reduction silently hides the seeded bug...
    assert _verdict(ToyTokenRingUnsound(leak=True)) == "ok"
    # ...and the reduced-vs-full cross-check is what catches it.
    assert _verdict(ToyTokenRing(leak=True)) != _verdict(
        ToyTokenRingUnsound(leak=True)
    )
    # A sound reduction passes the same cross-check.
    assert _verdict(ToyTokenRing(leak=True)) == _verdict(
        ToyTokenRingReduced(leak=True)
    )
    assert _verdict(ToyTokenRing()) == _verdict(ToyTokenRingReduced())


def test_toy_canonicalize_is_idempotent_and_orbit_stable():
    model = ToyTokenRingReduced()
    state = (1, 3, 0)
    canon = model.canonicalize(state)
    assert model.canonicalize(canon) == canon
    for perm in itertools.permutations(range(model.n)):
        permuted = tuple(state[p] for p in perm)
        assert model.canonicalize(permuted) == canon


# ---------------------------------------------------------------------------
# Pinned exploration sizes for the real models.
# ---------------------------------------------------------------------------
def test_checker_counts_pinned_token_safety():
    result = check(TokenSafetyModel(), check_liveness=False)
    assert result.to_dict() == {
        "model": "TokenCMP-safety",
        "states": 6168,
        "transitions": 30082,
        "diameter": 20,
        "quiescent_states": 52,
        "liveness_checked": False,
    }


def test_checker_counts_pinned_dir_flat():
    result = check(DirFlatModel())
    assert result.to_dict() == {
        "model": "DirectoryCMP-flat",
        "states": 3490,
        "transitions": 8952,
        "diameter": 28,
        "quiescent_states": 10,
        "liveness_checked": True,
    }


def test_checker_counts_pinned_token_dst():
    result = check(TokenDstModel(coarse_sends=True, atomic_broadcasts=True))
    assert result.to_dict() == {
        "model": "TokenCMP-dst",
        "states": 49464,
        "transitions": 235912,
        "diameter": 34,
        "quiescent_states": 98,
        "liveness_checked": True,
    }


def test_to_dict_excludes_elapsed_time():
    result = check(ToyTokenRingReduced())
    assert "elapsed_s" not in result.to_dict()
    assert result.elapsed_s >= 0.0
