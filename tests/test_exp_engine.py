"""Tests for the experiment engine: specs, runner, cache, registry, CLI.

The engine's contract has two load-bearing guarantees:

* **Determinism** — a cell's result is a pure function of the cell.
  Parallel execution (``jobs=N``) and cache replay must be byte-identical
  (canonical ``CellResult.to_json()``) to a serial, cache-cold run.
* **Content addressing** — any change to code-relevant cell material
  (seed, workload kwargs, system params, any protocol-config knob)
  changes the cache key; irrelevant changes (the grouping label) do not.
"""

from __future__ import annotations

import dataclasses
import json
import warnings

import pytest

from repro.common.params import SystemParams
from repro.exp import (
    CACHE_SCHEMA,
    Cell,
    CellResult,
    ExperimentSpec,
    ResultCache,
    Runner,
    cell_key,
    run_cell,
)
from repro.system.config import PROTOCOLS
from repro.workloads import REGISTRY
from repro.workloads.sharing import CounterWorkload


@pytest.fixture
def small():
    return SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)


def _spec(small, name="t", seeds=(1, 2)):
    return ExperimentSpec.grid(
        name,
        ["TokenCMP-dst1", "DirectoryCMP"],
        ("counter", {"increments": 3}),
        seeds=seeds,
        params=small,
    )


# ---------------------------------------------------------------------------
# Cells and specs.
# ---------------------------------------------------------------------------
def test_cell_coerces_protocol_and_freezes_kwargs(small):
    cell = Cell(protocol="TokenCMP-dst1", workload="counter",
                workload_kwargs={"increments": 3}, params=small)
    assert cell.protocol is PROTOCOLS["TokenCMP-dst1"]
    assert cell.protocol_name == "TokenCMP-dst1"
    assert cell.workload_kwargs == (("increments", 3),)
    assert cell.kwargs == {"increments": 3}
    assert cell.cacheable
    # Frozen + hashable: usable as dict keys, picklable by construction.
    assert hash(cell) == hash(dataclasses.replace(cell))


def test_grid_expands_protocol_x_workload_x_seed(small):
    spec = ExperimentSpec.grid(
        "g", ["TokenCMP-dst1", "DirectoryCMP"],
        [("counter", {"increments": 2}), "pingpong"],
        seeds=(1, 2, 3), params=small,
    )
    assert len(spec) == 2 * 2 * 3
    # A single (name, kwargs) tuple is one workload, not two.
    assert len(_spec(small, seeds=(1,))) == 2


def test_callable_workload_is_uncacheable(small):
    cell = Cell(protocol="PerfectL2",
                workload=lambda p, s: CounterWorkload(p, increments=2, seed=s),
                params=small)
    assert not cell.cacheable
    assert cell.key_material() is None
    assert cell_key(cell) is None


# ---------------------------------------------------------------------------
# Determinism: serial == parallel == cache replay, byte for byte.
# ---------------------------------------------------------------------------
def test_parallel_matches_serial_bit_identical(small, tmp_path):
    spec = _spec(small)
    serial = Runner(jobs=1, cache_dir=str(tmp_path / "c1")).run(spec)
    parallel = Runner(jobs=4, cache_dir=str(tmp_path / "c2")).run(spec)
    assert serial.to_json() == parallel.to_json()
    assert serial.cache_hits == parallel.cache_hits == 0


def test_cache_replay_matches_live_run(small, tmp_path):
    spec = _spec(small, seeds=(1,))
    runner = Runner(jobs=1, cache_dir=str(tmp_path))
    first = runner.run(spec)
    second = Runner(jobs=1, cache_dir=str(tmp_path)).run(spec)
    assert second.cache_hits == len(spec)
    assert second.cache_misses == 0
    assert first.to_json() == second.to_json()
    assert all(res.from_cache for res in second)
    assert not any(res.from_cache for res in first)


def test_no_cache_runner_writes_nothing(small, tmp_path):
    spec = _spec(small, seeds=(1,))
    Runner(jobs=1, cache=False, cache_dir=str(tmp_path)).run(spec)
    assert not list(tmp_path.rglob("*.json"))


# ---------------------------------------------------------------------------
# Content addressing.
# ---------------------------------------------------------------------------
def test_cache_key_invalidation(small):
    base = Cell(protocol="TokenCMP-dst1", workload="counter",
                workload_kwargs={"increments": 3}, params=small)
    key = cell_key(base)
    assert key == cell_key(dataclasses.replace(base))  # stable
    # The label groups results; it cannot affect the simulation.
    assert key == cell_key(dataclasses.replace(base, label="x"))
    # Everything code-relevant invalidates.
    assert key != cell_key(dataclasses.replace(base, seed=2))
    assert key != cell_key(dataclasses.replace(base, workload="pingpong"))
    assert key != cell_key(
        dataclasses.replace(base, workload_kwargs={"increments": 4}))
    assert key != cell_key(
        dataclasses.replace(base, params=SystemParams(
            num_chips=2, procs_per_chip=2, tokens_per_block=32)))
    tweaked = dataclasses.replace(PROTOCOLS["TokenCMP-dst1"], migratory=False)
    assert key != cell_key(dataclasses.replace(base, protocol=tweaked))
    assert key != cell_key(dataclasses.replace(base, max_events=12345))


def test_schema_mismatch_is_a_miss(small, tmp_path):
    cell = Cell(protocol="PerfectL2", workload="counter",
                workload_kwargs={"increments": 2}, params=small)
    cache = ResultCache(str(tmp_path))
    key = cache.key(cell)
    cache.store(key, run_cell(cell))
    assert cache.load(key) is not None
    # A record written by a different simulator revision never matches.
    path = cache.path(key)
    record = json.load(open(path))
    record["schema"] = CACHE_SCHEMA + 1
    with open(path, "w") as fh:
        json.dump(record, fh)
    assert cache.load(key) is None


def test_corrupt_cache_entry_is_a_miss_not_a_crash(small, tmp_path):
    cell = Cell(protocol="PerfectL2", workload="counter",
                workload_kwargs={"increments": 2}, params=small)
    cache = ResultCache(str(tmp_path))
    key = cache.key(cell)
    cache.store(key, run_cell(cell))
    with open(cache.path(key), "w") as fh:
        fh.write("{ not json")
    assert cache.load(key) is None


# ---------------------------------------------------------------------------
# Result records.
# ---------------------------------------------------------------------------
def test_cell_result_round_trips_through_json(small):
    res = run_cell(Cell(protocol="TokenCMP-dst1", workload="counter",
                        workload_kwargs={"increments": 3}, params=small))
    clone = CellResult.from_json(res.to_json())
    assert clone == res  # raw/from_cache excluded from equality
    assert clone.to_json() == res.to_json()
    assert clone.raw is None and res.raw is not None
    assert clone.runtime_ps > 0
    assert clone.get("l1.misses") > 0
    assert clone.scope_bytes("intra") == res.scope_bytes("intra")


def test_experiment_result_selectors(small, tmp_path):
    spec = _spec(small)
    result = Runner(cache_dir=str(tmp_path)).run(spec)
    assert len(result.select(protocol="TokenCMP-dst1")) == 2
    one = result.cell(protocol="TokenCMP-dst1", seed=1)
    assert one.protocol == "TokenCMP-dst1" and one.seed == 1
    with pytest.raises(KeyError):
        result.cell(protocol="TokenCMP-dst1")  # two seeds match
    grid = result.runtime_grid(["TokenCMP-dst1", "DirectoryCMP"])
    assert set(grid) == {"TokenCMP-dst1", "DirectoryCMP"}
    assert all(v > 0 for v in grid.values())


# ---------------------------------------------------------------------------
# Registry completeness: every protocol and workload runs through the one
# entry point.
# ---------------------------------------------------------------------------
TINY_KWARGS = {
    "locking": {"num_locks": 2, "acquires_per_proc": 2},
    "barrier": {"phases": 2},
    "counter": {"increments": 2},
    "read-sharing": {"shared_blocks": 2, "rounds": 2},
    "pingpong": {"rounds": 2},
    "oltp": {"refs_per_proc": 10},
    "apache": {"refs_per_proc": 10},
    "specjbb": {"refs_per_proc": 10},
}


@pytest.mark.parametrize("workload", sorted(REGISTRY))
def test_every_registered_workload_runs(small, workload):
    assert workload in TINY_KWARGS, "add tiny kwargs for new workloads"
    res = run_cell(Cell(protocol="TokenCMP-dst1", workload=workload,
                        workload_kwargs=TINY_KWARGS[workload], params=small))
    assert res.runtime_ps > 0
    assert res.workload == workload


@pytest.mark.parametrize("proto", sorted(PROTOCOLS))
def test_every_protocol_runs_one_cell(proto):
    params = SystemParams(
        num_chips=1 if proto == "SnoopingSCMP" else 2,
        procs_per_chip=2, tokens_per_block=16,
    )
    res = run_cell(Cell(protocol=proto, workload="counter",
                        workload_kwargs={"increments": 2}, params=params,
                        check_invariants=True))
    assert res.runtime_ps > 0
    assert res.protocol == proto


# ---------------------------------------------------------------------------
# Legacy shims.
# ---------------------------------------------------------------------------
def test_legacy_run_helpers_are_gone():
    # run_one/mean_runtime (and bench_common's runtime_grid/results_grid)
    # were removed after a deprecation cycle; the declarative Cell path
    # is the only entry point.  Guard against reintroduction.
    import repro.analysis.report as report

    assert not hasattr(report, "run_one")
    assert not hasattr(report, "mean_runtime")


# ---------------------------------------------------------------------------
# CLI integration.
# ---------------------------------------------------------------------------
def test_cli_run_json(capsys, tmp_path, monkeypatch):
    from repro.__main__ import main as cli_main

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    rc = cli_main([
        "run", "TokenCMP-dst1", "counter",
        "--chips", "2", "--procs", "2", "--ops", "2", "--json",
    ])
    assert rc == 0
    record = json.loads(capsys.readouterr().out)
    assert record["protocol"] == "TokenCMP-dst1"
    assert record["workload"] == "counter"
    assert record["runtime_ps"] > 0


def test_cli_sweep_json_parallel_uses_cache(capsys, tmp_path, monkeypatch):
    from repro.__main__ import main as cli_main

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    argv = ["sweep", "counter", "--chips", "2", "--procs", "2",
            "--ops", "2", "--json", "--jobs", "2"]
    assert cli_main(argv) == 0
    first = capsys.readouterr().out
    assert cli_main(argv) == 0
    second = capsys.readouterr().out
    # Deterministic replay: the cached sweep renders the same bytes.
    assert first == second
    records = [json.loads(line) for line in first.splitlines()]
    assert {r["protocol"] for r in records} >= {"TokenCMP-dst1", "DirectoryCMP"}


def test_cli_bench_lists_and_rejects_unknown(capsys):
    from repro.__main__ import main as cli_main

    assert cli_main(["bench"]) == 0
    out = capsys.readouterr().out
    assert "fig2" in out and "table4" in out
    assert cli_main(["bench", "nope"]) == 2


def test_cli_list_shows_workloads_and_experiments(capsys):
    from repro.__main__ import main as cli_main

    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    for name in REGISTRY:
        assert name in out
    assert "fig6" in out
