"""Behavioural tests of DirectoryCMP's two-level MOESI machinery."""

import pytest

from repro.common.params import SystemParams
from repro.cpu.ops import Load, Rmw, Store
from repro.directory.states import E, M, O, S
from repro.system import MachineSpec


ADDR = 0x6000_0000


def machine(**kw):
    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16, **kw)
    return MachineSpec(params=params, protocol="DirectoryCMP", seed=11).build(), params


def run_op(m, proc, op):
    out = {}
    m.sequencers[proc].issue(op, lambda v: out.setdefault("v", v))
    m.sim.run(max_events=2_000_000)
    assert "v" in out, "operation did not complete"
    return out["v"]


def l1_entry(m, p, proc):
    return m.controllers[p.l1d_of(proc)].array.lookup(ADDR, touch=False)


def test_first_read_grants_exclusive():
    m, p = machine()
    run_op(m, 0, Load(ADDR))
    assert l1_entry(m, p, 0).state == E


def test_exclusive_upgrades_silently():
    m, p = machine()
    run_op(m, 0, Load(ADDR))
    misses = m.stats.get("l1.misses")
    run_op(m, 0, Store(ADDR, 3))
    assert m.stats.get("l1.misses") == misses
    assert l1_entry(m, p, 0).state == M


def test_migratory_read_of_modified_block():
    """A read of another L1's M block migrates it whole (grant M)."""
    m, p = machine()
    run_op(m, 0, Store(ADDR, 5))
    assert run_op(m, 1, Load(ADDR)) == 5  # same chip
    assert l1_entry(m, p, 1).state == M
    assert l1_entry(m, p, 0) is None  # previous owner invalidated
    misses = m.stats.get("l1.misses")
    run_op(m, 1, Store(ADDR, 6))  # write hits thanks to migratory grant
    assert m.stats.get("l1.misses") == misses


def test_chip_level_migratory_across_chips():
    m, p = machine()
    run_op(m, 0, Store(ADDR, 5))
    assert run_op(m, 2, Load(ADDR)) == 5  # remote chip
    assert l1_entry(m, p, 2).state == M
    assert m.stats.get("dir.chip_migratory") >= 1


def test_getx_invalidates_remote_sharers():
    m, p = machine()
    # Build two read-shared copies on different chips (avoid migratory by
    # keeping the block clean: only loads).
    run_op(m, 0, Load(ADDR))
    run_op(m, 2, Load(ADDR))
    run_op(m, 1, Store(ADDR, 9))
    assert m.coherent_value(ADDR) == 9
    assert l1_entry(m, p, 1).state == M
    # No other L1 may retain a readable copy.
    for proc in (0, 2):
        entry = l1_entry(m, p, proc)
        assert entry is None


def test_three_phase_writeback_updates_memory():
    m, p = machine(l1_size=2 * 64 * 4)  # tiny L1 to force evictions
    run_op(m, 0, Store(ADDR, 77))
    set_stride = (2 * 64 * 4) // 4
    for i in range(1, 6):
        run_op(m, 0, Load(ADDR + i * set_stride))
    m.sim.run()
    assert m.stats.get("l1.dirty_evictions") >= 1
    assert m.coherent_value(ADDR) == 77


def test_unblock_messages_flow():
    m, p = machine()
    run_op(m, 0, Load(ADDR))
    from repro.interconnect.traffic import Scope, TrafficClass

    unblock_bytes = sum(
        v for (s, k), v in m.meter.bytes.items() if k is TrafficClass.UNBLOCK
    )
    assert unblock_bytes > 0  # both intra- and inter-level unblocks


def test_busy_directory_defers_requests():
    m, p = machine()
    # Two processors race to write the same cold block; the serialization
    # shows up as deferred requests at one of the directories.
    done = []
    m.sequencers[0].issue(Store(ADDR, 1), done.append)
    m.sequencers[1].issue(Store(ADDR, 2), done.append)
    m.sim.run(max_events=2_000_000)
    assert len(done) == 2
    deferred = m.stats.get("l2.deferred_requests") + m.stats.get(
        "interdir.deferred_requests"
    )
    assert deferred >= 1
    assert m.coherent_value(ADDR) in (1, 2)


def test_zero_cycle_directory_speeds_up_forwards():
    """The zero-cycle directory saves the directory access before a
    forward (memory data reads themselves still cost DRAM latency)."""
    runtimes = {}
    for proto in ("DirectoryCMP", "DirectoryCMP-zero"):
        params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
        m = MachineSpec(params=params, protocol=proto, seed=11).build()
        run_op(m, 0, Store(ADDR, 1))  # dirty in a remote L1
        start = m.sim.now
        run_op(m, 2, Load(ADDR))  # needs a forward through the directory
        runtimes[proto] = m.sim.now - start
    assert runtimes["DirectoryCMP-zero"] < runtimes["DirectoryCMP"]


def test_rmw_atomic_under_contention():
    m, p = machine()
    results = []
    for proc in range(4):
        m.sequencers[proc].issue(Rmw(ADDR, lambda v: v + 1), results.append)
    m.sim.run(max_events=4_000_000)
    assert sorted(results) == [0, 1, 2, 3]  # each saw a distinct old value
    assert m.coherent_value(ADDR) == 4
