"""Unit tests for timeout estimator, contention predictor, sharer filter."""

from repro.common.params import SystemParams
from repro.common.types import NodeId, NodeKind, ns
from repro.core.filter import SharerFilter
from repro.core.predictor import ContentionPredictor
from repro.core.timeout import TimeoutEstimator


# ---------------------------------------------------------------------------
# Timeout estimator.
# ---------------------------------------------------------------------------
def test_estimator_tracks_memory_latency():
    est = TimeoutEstimator(initial_ns=300, multiplier=1.5, alpha=1.0)
    est.observe_memory_response(ns(200))
    assert est.threshold_ps() == ns(300)


def test_estimator_threshold_has_floor():
    est = TimeoutEstimator(multiplier=1.5, alpha=1.0, floor_ns=100)
    est.observe_memory_response(ns(1))
    assert est.threshold_ps() == ns(100)


def test_estimator_ewma_converges():
    est = TimeoutEstimator(initial_ns=300, multiplier=2.0, alpha=0.5)
    for _ in range(20):
        est.observe_memory_response(ns(100))
    assert abs(est.threshold_ps() - ns(200)) < ns(5)


# ---------------------------------------------------------------------------
# Contention predictor.
# ---------------------------------------------------------------------------
def test_predictor_needs_two_timeouts():
    p = ContentionPredictor(reset_probability=0.0)
    assert not p.predict_contended(0x100)
    p.train_timeout(0x100)
    assert not p.predict_contended(0x100)  # counter == 1 < threshold
    p.train_timeout(0x100)
    assert p.predict_contended(0x100)


def test_predictor_counter_saturates():
    p = ContentionPredictor(reset_probability=0.0)
    for _ in range(10):
        p.train_timeout(0x100)
    assert p.predict_contended(0x100)


def test_predictor_is_set_associative_with_lru():
    p = ContentionPredictor(entries=8, assoc=2, reset_probability=0.0)
    set_stride = p.num_sets * 64
    a, b, c = 0x0, set_stride, 2 * set_stride  # same set
    for addr in (a, b):
        p.train_timeout(addr)
        p.train_timeout(addr)
    p.train_timeout(c)  # evicts LRU (a)
    assert not p.predict_contended(a)
    assert p.predict_contended(b)


def test_predictor_pseudo_random_reset():
    p = ContentionPredictor(reset_probability=1.0)
    p.train_timeout(0x100)
    p.train_timeout(0x100)
    # With reset probability 1, the first query clears the counter.
    assert not p.predict_contended(0x100)
    assert not p.predict_contended(0x100)


# ---------------------------------------------------------------------------
# Approximate sharer filter.
# ---------------------------------------------------------------------------
def l1(i):
    return NodeId(NodeKind.L1D, 0, i)


ALL_L1S = [l1(i) for i in range(4)]


def test_filter_unknown_block_forwards_to_all():
    f = SharerFilter()
    assert f.destinations(0x100, ALL_L1S) == ALL_L1S


def test_filter_tracks_holders():
    f = SharerFilter()
    f.note_holder(0x100, l1(2))
    assert f.destinations(0x100, ALL_L1S) == [l1(2)]


def test_filter_release_removes_holder():
    f = SharerFilter()
    f.note_holder(0x100, l1(2))
    f.note_release(0x100, l1(2))
    assert f.destinations(0x100, ALL_L1S) == []


def test_filter_capacity_eviction_falls_back_to_broadcast():
    f = SharerFilter(capacity=2)
    f.note_holder(0x100, l1(0))
    f.note_holder(0x200, l1(1))
    f.note_holder(0x300, l1(2))  # evicts 0x100
    assert f.evictions == 1
    assert f.destinations(0x100, ALL_L1S) == ALL_L1S  # safe fallback
    assert f.destinations(0x300, ALL_L1S) == [l1(2)]


def test_estimator_single_sample_dominates_with_full_alpha():
    est = TimeoutEstimator(initial_ns=300, multiplier=2.0, alpha=1.0, floor_ns=0)
    est.observe_memory_response(ns(150))
    assert est.samples == 1
    assert est.threshold_ps() == ns(300)  # 150 ns avg x 2.0


def test_estimator_backoff_escalates_per_retry():
    est = TimeoutEstimator(initial_ns=300, multiplier=1.5, alpha=1.0, floor_ns=0,
                           backoff_base=2.0, backoff_cap=8.0)
    base = est.threshold_ps(0)
    assert est.threshold_ps(1) == 2 * base
    assert est.threshold_ps(2) == 4 * base
    assert est.threshold_ps(3) == 8 * base


def test_estimator_backoff_is_capped():
    est = TimeoutEstimator(initial_ns=300, floor_ns=0)  # cap 8 = base 2 ** 3
    assert est.threshold_ps(10) == est.threshold_ps(3)


def test_estimator_fresh_transaction_starts_at_base_multiplier():
    # Backoff is stateless per transaction: a fresh miss (no retries yet)
    # must see the same threshold as the explicit retry count of zero.
    est = TimeoutEstimator()
    est.observe_memory_response(ns(250))
    assert est.threshold_ps() == est.threshold_ps(0)


def test_estimator_floor_applies_under_backoff():
    est = TimeoutEstimator(multiplier=1.0, alpha=1.0, floor_ns=100)
    est.observe_memory_response(ns(1))
    assert est.threshold_ps(3) == ns(100)  # 8 x 1 ns still below the floor
