"""Tests for the trace-driven workload support."""

import pytest

from repro.common.errors import ConfigError
from repro.common.params import SystemParams
from repro.cpu.ops import Load, Rmw, Store, Think
from repro.system import MachineSpec
from repro.workloads.trace import TraceWorkload, parse_trace, write_trace


@pytest.fixture
def params():
    return SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)


TRACE = """
# comment line
0 S 0x1000 7
0 T 5
1 L 0x1000
2 A 0x2000
3 L 4096        # decimal address
"""


def test_parse_trace_records():
    records = parse_trace(TRACE.splitlines())
    assert len(records) == 5
    assert records[0] == (0, Store(0x1000, 7))
    assert records[1] == (0, Think(5.0))
    assert records[2] == (1, Load(0x1000))
    assert records[3][1].addr == 0x2000  # Rmw compares by fn identity
    assert records[4] == (3, Load(4096))


def test_parse_trace_rejects_garbage():
    with pytest.raises(ConfigError, match="line 1"):
        parse_trace(["0 X 0x10"])
    with pytest.raises(ConfigError, match="line 1"):
        parse_trace(["0 S 0x10"])  # missing value


def test_trace_workload_runs_on_every_family(params):
    for proto in ("TokenCMP-dst1", "DirectoryCMP", "PerfectL2"):
        machine = MachineSpec(params=params, protocol=proto, seed=1).build()
        wl = TraceWorkload.from_text(params, TRACE)
        machine.run(wl, max_events=1_000_000)
        assert wl.executed == [2, 1, 1, 1]
        assert machine.coherent_value(0x2000) == 1  # the atomic increment


def test_trace_rejects_out_of_range_processor(params):
    with pytest.raises(ConfigError, match="processor 9"):
        TraceWorkload.from_text(params, "9 L 0x0")


def test_trace_roundtrip(tmp_path, params):
    records = parse_trace(TRACE.splitlines())
    path = tmp_path / "t.trace"
    write_trace(records, str(path))
    again = parse_trace(str(path))
    assert len(again) == len(records)
    assert again[0] == records[0]
    machine = MachineSpec(params=params, protocol="TokenCMP-dst1", seed=1).build()
    machine.run(TraceWorkload(params, again), max_events=1_000_000)
    machine.check_token_invariants()


def test_trace_preserves_per_processor_order(params):
    text = "\n".join(f"0 S 0x1000 {i}" for i in range(10))
    machine = MachineSpec(params=params, protocol="DirectoryCMP", seed=1).build()
    machine.run(TraceWorkload.from_text(params, text), max_events=1_000_000)
    assert machine.coherent_value(0x1000) == 9  # last store wins
