"""Behavioural tests of the token protocol on small machines.

These drive specific scenarios through real controllers (not mocks) and
inspect the resulting token state, exercising the response rules of
Sections 3-4 one at a time.
"""

import pytest

from repro.common.params import SystemParams
from repro.common.types import NodeId, NodeKind
from repro.cpu.ops import Load, Rmw, Store
from repro.system import MachineSpec


def machine(proto="TokenCMP-dst1", **kw):
    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16, **kw)
    return MachineSpec(params=params, protocol=proto, seed=9).build(), params


def run_op(m, proc, op):
    out = {}
    m.sequencers[proc].issue(op, lambda v: out.setdefault("v", v))
    m.sim.run(max_events=2_000_000)
    assert "v" in out, "operation did not complete"
    return out["v"]


ADDR = 0x5000_0000


def holder(m, node):
    return m.controllers[node].peek_entry(ADDR)


def test_first_read_gets_all_tokens_from_memory():
    """Memory grants everything on a read of an uncached block (E-analogue)."""
    m, p = machine()
    assert run_op(m, 0, Load(ADDR)) == 0
    entry = holder(m, p.l1d_of(0))
    assert entry.tokens == p.tokens_per_block and entry.owner


def test_read_then_write_same_proc_one_miss():
    m, p = machine()
    run_op(m, 0, Load(ADDR))
    misses_before = m.stats.get("l1.misses")
    run_op(m, 0, Store(ADDR, 7))
    assert m.stats.get("l1.misses") == misses_before  # silent upgrade
    assert m.coherent_value(ADDR) == 7


def test_write_collects_all_tokens():
    m, p = machine()
    run_op(m, 0, Load(ADDR))  # proc 0 gets everything
    run_op(m, 1, Load(ADDR))  # proc 1 (same chip) takes a token
    run_op(m, 2, Store(ADDR, 5))  # remote proc must strip both
    entry = holder(m, p.l1d_of(2))
    assert entry.can_write(p.tokens_per_block)
    assert holder(m, p.l1d_of(0)) is None
    assert holder(m, p.l1d_of(1)) is None
    m.check_token_invariants()


def test_migratory_sharing_moves_whole_block():
    """A read of a dirty block with all tokens gets ALL tokens (migratory)."""
    m, p = machine()
    run_op(m, 0, Load(ADDR))
    run_op(m, 0, Store(ADDR, 3))  # proc 0: dirty, all tokens
    assert run_op(m, 2, Load(ADDR)) == 3  # remote reader
    entry = holder(m, p.l1d_of(2))
    assert entry.tokens == p.tokens_per_block  # migratory transfer
    # ... so the reader's subsequent write hits.
    misses = m.stats.get("l1.misses")
    run_op(m, 2, Store(ADDR, 4))
    assert m.stats.get("l1.misses") == misses


def test_migratory_disabled_by_config():
    import dataclasses
    from repro.system.config import PROTOCOLS

    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    cfg = dataclasses.replace(PROTOCOLS["TokenCMP-dst1"], migratory=False)
    m = MachineSpec(params=params, protocol=cfg, seed=9).build()
    run_op(m, 0, Load(ADDR))
    run_op(m, 0, Store(ADDR, 3))
    run_op(m, 2, Load(ADDR))
    entry = m.controllers[params.l1d_of(2)].peek_entry(ADDR)
    assert entry is not None and entry.tokens < params.tokens_per_block


def test_read_sharing_leaves_readers_with_tokens():
    m, p = machine()
    run_op(m, 0, Load(ADDR))
    run_op(m, 1, Load(ADDR))  # local sharing: 1 token + data
    e0, e1 = holder(m, p.l1d_of(0)), holder(m, p.l1d_of(1))
    assert e0.can_read() and e1.can_read()
    assert e0.tokens + e1.tokens == p.tokens_per_block
    m.check_token_invariants()


def test_rmw_returns_old_value_atomically():
    m, p = machine()
    run_op(m, 0, Store(ADDR, 42))
    old = run_op(m, 1, Rmw(ADDR, lambda v: v + 1))
    assert old == 42
    assert m.coherent_value(ADDR) == 43


def test_value_travels_with_owner_through_memory():
    """Writeback to memory preserves the written value."""
    m, p = machine(l1_size=2 * 64 * 4)  # tiny L1: 2 sets x 4 ways
    run_op(m, 0, Store(ADDR, 99))
    # Touch enough conflicting blocks to force ADDR's eviction.
    for i in range(1, 6):
        run_op(m, 0, Load(ADDR + i * p.block_size * 2))
    m.sim.run()
    assert m.coherent_value(ADDR) == 99
    m.check_token_invariants()


def test_escalation_only_on_l2_miss():
    m, p = machine()
    run_op(m, 0, Load(ADDR))  # escalates (tokens at memory)
    esc = m.stats.get("l2.escalations")
    assert esc >= 1
    run_op(m, 1, Load(ADDR))  # satisfied on-chip: no new escalation
    assert m.stats.get("l2.escalations") == esc


def test_persistent_only_variant_uses_no_transients():
    m, p = machine("TokenCMP-dst0")
    run_op(m, 0, Load(ADDR))
    run_op(m, 2, Store(ADDR, 1))
    assert m.stats.get("policy.transient_requests") == 0
    assert m.stats.get("persistent.requests") >= 2
    m.check_token_invariants()


def test_arbiter_variant_roundtrip():
    m, p = machine("TokenCMP-arb0")
    run_op(m, 0, Load(ADDR))
    assert run_op(m, 2, Rmw(ADDR, lambda v: v + 10)) == 0
    assert m.coherent_value(ADDR) == 10
    assert m.stats.get("arb.activations") >= 2
    m.check_token_invariants()


def test_filter_suppresses_external_rebroadcast():
    m, p = machine("TokenCMP-dst1-filt")
    run_op(m, 0, Load(ADDR))
    run_op(m, 2, Load(ADDR))  # external request passes through chip-0 L2
    # The L2 filter knows only proc 0's L1D may hold it: at least some of
    # the 4 chip-0 L1s were not forwarded to.
    assert m.stats.get("l2.filter_suppressed") > 0


def test_token_writeback_needs_no_handshake():
    m, p = machine()
    run_op(m, 0, Store(ADDR, 5))
    wb_before = m.stats.get("token.writebacks")
    # Force eviction by filling the set (L1 is 4-way here).
    set_stride = p.l1_size // p.l1_assoc
    for i in range(1, 6):
        run_op(m, 0, Store(ADDR + i * set_stride, i))
    m.sim.run()
    assert m.stats.get("token.writebacks") > wb_before
    m.check_token_invariants()
    assert m.coherent_value(ADDR) == 5


def test_tokenb_flat_policy_runs_and_conserves():
    """TokenB (the original flat policy) stays correct on the flat
    substrate — only its traffic profile differs from TokenCMP."""
    m, p = machine("TokenB")
    run_op(m, 0, Load(ADDR))
    run_op(m, 2, Store(ADDR, 5))
    assert run_op(m, 1, Load(ADDR)) == 5
    assert m.stats.get("l2.escalations") == 0  # no gateway duties
    m.check_token_invariants()


def test_tokenb_broadcasts_machine_wide():
    m, p = machine("TokenB")
    run_op(m, 0, Load(ADDR))
    # One miss = transient request to every other cache + home memory.
    from repro.interconnect.traffic import Scope, TrafficClass

    request_bytes = sum(
        v for (s, k), v in m.meter.bytes.items() if k is TrafficClass.REQUEST
    )
    # 9 other caches on 2 chips... at least one message per remote cache.
    assert request_bytes >= (p.num_caches - 1) * p.control_msg_bytes
