"""Tests for the deterministic fault-campaign engine.

The campaign's contract is determinism: the canonical ``repro.campaign/1``
report must be byte-identical across repeat runs and across ``--jobs 1``
vs ``--jobs N`` — the injector's seeded randomness must not leak process
scheduling into the results.
"""

import json
import pathlib

import pytest

from repro.__main__ import main as cli_main
from repro.common.errors import ConfigError
from repro.exp.runner import Runner
from repro.recovery import (
    CAMPAIGN_SCHEMA,
    CampaignConfig,
    Scenario,
    cell_verdict,
    render_report,
    run_campaign,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SMOKE_CONFIG = REPO_ROOT / "benchmarks" / "campaigns" / "recovery_smoke.json"


def _tiny_record(**overrides):
    record = {
        "name": "tiny",
        "protocol": "TokenCMP-dst1",
        "params": {"num_chips": 2, "procs_per_chip": 2, "tokens_per_block": 16},
        "workloads": [["counter", {"increments": 4}]],
        "seeds": [1, 2],
        "scenarios": [
            {"name": "lossy", "fault_rate": 0.05, "lossy": True},
            {"name": "crash", "crash_level": "l1", "crash_at_ps": 500000},
        ],
    }
    record.update(overrides)
    return record


# ---------------------------------------------------------------------------
# Configuration.
# ---------------------------------------------------------------------------
def test_committed_smoke_config_expands_to_at_least_24_cells():
    config = CampaignConfig.load(str(SMOKE_CONFIG))
    cells = config.expand()
    assert len(cells) >= 24
    # Canonical expansion order: scenario-major, then workload, then seed.
    names = [scenario.name for scenario, _cell in cells]
    assert names == sorted(names, key=names.index)  # grouped by scenario


def test_scenario_rejects_unknown_keys():
    with pytest.raises(ConfigError, match="unknown keys"):
        Scenario.from_dict({"name": "x", "drop_rate": 0.1})


def test_scenario_requires_name():
    with pytest.raises(ConfigError, match="name"):
        Scenario.from_dict({"fault_rate": 0.1})


def test_config_round_trips_workload_kwargs():
    config = CampaignConfig.from_dict(_tiny_record())
    cells = config.expand()
    assert len(cells) == 4  # 2 scenarios x 1 workload x 2 seeds
    for _scenario, cell in cells:
        assert dict(cell.workload_kwargs) == {"increments": 4}
        assert cell.check_invariants


# ---------------------------------------------------------------------------
# Verdicts.
# ---------------------------------------------------------------------------
class _FakeResult:
    def __init__(self, **counters):
        self._counters = counters

    def get(self, name):
        return self._counters.get(name, 0)


def test_cell_verdict_classification():
    assert cell_verdict(None) == "failed"
    assert cell_verdict(_FakeResult()) == "recovered"
    assert cell_verdict(_FakeResult(**{"recovery.residual_tokens": 3})) \
        == "degraded-but-live"
    assert cell_verdict(_FakeResult(**{"recovery.degraded_blocks": 1})) \
        == "degraded-but-live"
    assert cell_verdict(_FakeResult(**{"recovery.writes_lost": 1})) \
        == "degraded-but-live"
    # A run that needed recreations but ended whole is fully recovered.
    assert cell_verdict(_FakeResult(**{"recovery.recreations": 2})) \
        == "recovered"


# ---------------------------------------------------------------------------
# Determinism: the campaign's core contract.  Running the same config
# serially, in a 4-worker process pool, and a second time must yield a
# byte-identical canonical report — this is also the cross-process
# injector-determinism guarantee (same seed => same fault decisions
# regardless of which worker runs the cell).
# ---------------------------------------------------------------------------
def test_campaign_report_byte_identical_across_jobs_and_repeats(tmp_path):
    config = CampaignConfig.from_dict(_tiny_record())

    def run(jobs, cache_dir):
        runner = Runner(jobs=jobs, cache_dir=str(tmp_path / cache_dir))
        return render_report(run_campaign(config, runner, spans=False))

    serial = run(1, "c1")
    parallel = run(4, "c2")
    repeat = run(4, "c3")
    assert serial == parallel == repeat


# ---------------------------------------------------------------------------
# Report structure.
# ---------------------------------------------------------------------------
def test_campaign_report_structure_and_time_to_recover(tmp_path):
    config = CampaignConfig.from_dict(_tiny_record(
        name="structure",
        workloads=[["counter", {"increments": 4}]],
        seeds=[1],
        scenarios=[{"name": "lossy", "fault_rate": 0.05, "lossy": True}],
    ))
    runner = Runner(jobs=1, cache_dir=str(tmp_path / "cache"))
    report = run_campaign(config, runner, spans=True)

    assert report["schema"] == CAMPAIGN_SCHEMA
    assert report["totals"]["cells"] == 1
    assert report["totals"]["failed"] == 0
    (cell,) = report["cells"]
    assert cell["verdict"] in ("recovered", "degraded-but-live")
    assert cell["error"] is None
    assert cell["runtime_ps"] > 0
    assert cell["counters"]["recovery.recreations"] >= 1

    (scenario,) = report["scenarios"]
    assert scenario["cells"] == 1
    assert scenario["recreation_ps"]["count"] >= 1
    ttr = scenario["time_to_recover_ps"]
    assert ttr is not None and ttr["count"] >= 1
    assert ttr["p50_ps"] <= ttr["p95_ps"] <= ttr["p99_ps"] <= ttr["max_ps"]

    # The canonical rendering is stable JSON (round-trips unchanged).
    rendered = render_report(report)
    assert render_report(json.loads(rendered)) == rendered


# ---------------------------------------------------------------------------
# CLI surface.
# ---------------------------------------------------------------------------
def test_cli_campaign_runs_and_writes_report(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)  # keep the result cache out of the repo
    config_path = tmp_path / "tiny.json"
    config_path.write_text(json.dumps(_tiny_record(
        seeds=[1],
        scenarios=[{"name": "crash", "crash_level": "l1",
                    "crash_at_ps": 500000}],
    )))
    out = tmp_path / "report.json"
    rc = cli_main(["campaign", str(config_path), "-o", str(out), "--no-spans"])
    assert rc == 0
    report = json.loads(out.read_text())
    assert report["schema"] == CAMPAIGN_SCHEMA
    assert report["totals"]["failed"] == 0
    assert "campaign 'tiny'" in capsys.readouterr().out


def test_cli_campaign_missing_config_is_clean_exit_2(tmp_path, capsys):
    rc = cli_main(["campaign", str(tmp_path / "nope.json")])
    assert rc == 2
    assert "campaign:" in capsys.readouterr().err


def test_cli_campaign_invalid_config_is_clean_exit_2(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(_tiny_record(
        scenarios=[{"name": "x", "bogus_knob": 1}])))
    rc = cli_main(["campaign", str(bad)])
    assert rc == 2
    assert "unknown keys" in capsys.readouterr().err


def test_cli_faults_bad_rate_is_clean_exit_2(tmp_path, capsys):
    rc = cli_main(["faults", "--rates", "1.5",
                   "--out", str(tmp_path / "battery.txt")])
    assert rc == 2
    err = capsys.readouterr().err
    assert "faults:" in err and "Traceback" not in err
