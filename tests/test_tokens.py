"""Unit tests for the token-counting substrate (TokenEntry + invariants)."""

import pytest

from repro.common.errors import ProtocolError
from repro.core.persistent import persistent_read_share
from repro.core.tokens import TokenEntry, check_conservation


def test_absorb_plain_tokens():
    e = TokenEntry()
    e.absorb(3, owner=False, data=None, dirty=False)
    assert e.tokens == 3 and not e.owner and not e.valid_data
    assert not e.can_read()  # tokens without data cannot satisfy a load


def test_absorb_data_enables_read():
    e = TokenEntry()
    e.absorb(1, owner=False, data=42, dirty=False)
    assert e.can_read() and e.value == 42


def test_owner_requires_data():
    e = TokenEntry()
    with pytest.raises(ProtocolError):
        e.absorb(1, owner=True, data=None, dirty=False)


def test_duplicate_owner_rejected():
    e = TokenEntry()
    e.absorb(1, owner=True, data=1, dirty=False)
    with pytest.raises(ProtocolError):
        e.absorb(1, owner=True, data=1, dirty=False)


def test_can_write_requires_all_tokens():
    e = TokenEntry()
    e.absorb(63, owner=True, data=0, dirty=False)
    assert not e.can_write(64)
    e.absorb(1, owner=False, data=None, dirty=False)
    assert e.can_write(64)


def test_take_moves_owner_with_data():
    e = TokenEntry()
    e.absorb(4, owner=True, data=7, dirty=True)
    tokens, owner, data, dirty = e.take(4, take_owner=True)
    assert (tokens, owner, data, dirty) == (4, True, 7, True)
    assert e.empty and not e.valid_data and not e.dirty


def test_take_partial_keeps_validity():
    e = TokenEntry()
    e.absorb(4, owner=True, data=7, dirty=False)
    e.take(1, take_owner=False)
    assert e.tokens == 3 and e.owner and e.valid_data


def test_take_more_than_held_rejected():
    e = TokenEntry()
    e.absorb(2, owner=False, data=None, dirty=False)
    with pytest.raises(ProtocolError):
        e.take(3, take_owner=False)
    with pytest.raises(ProtocolError):
        e.take(1, take_owner=True)  # no owner held


def test_persistent_read_share_rules():
    assert persistent_read_share(0, owner=False) == 0
    assert persistent_read_share(1, owner=False) == 0  # keep the last token
    assert persistent_read_share(1, owner=True) == 1  # owner hands off data
    assert persistent_read_share(5, owner=False) == 4
    assert persistent_read_share(5, owner=True) == 4


def _holders(*specs):
    out = []
    for i, (tokens, owner, data) in enumerate(specs):
        e = TokenEntry()
        if tokens:
            e.absorb(tokens, owner, data, dirty=False)
        out.append((f"c{i}", e))
    return out


def test_conservation_accepts_legal_state():
    check_conservation(
        _holders((3, False, 5), (1, True, 5)),
        mem_tokens=60, mem_owner=False, mem_value=0, total_tokens=64,
    )


def test_conservation_detects_lost_tokens():
    with pytest.raises(ProtocolError, match="token count"):
        check_conservation(
            _holders((3, False, 5)),
            mem_tokens=60, mem_owner=False, mem_value=0, total_tokens=64,
        )


def test_conservation_detects_double_owner():
    with pytest.raises(ProtocolError, match="owner tokens"):
        check_conservation(
            _holders((3, True, 5), (1, True, 5)),
            mem_tokens=60, mem_owner=False, mem_value=0, total_tokens=64,
        )


def test_conservation_detects_stale_reader():
    with pytest.raises(ProtocolError, match="stale data"):
        check_conservation(
            _holders((3, False, 99), (1, True, 5)),
            mem_tokens=60, mem_owner=False, mem_value=0, total_tokens=64,
        )


def test_conservation_counts_in_flight_messages():
    check_conservation(
        _holders((3, False, 5)),
        mem_tokens=60, mem_owner=False, mem_value=0, total_tokens=64,
        in_flight=[(1, True, 5)],
    )
