"""Unit tests for persistent-request machinery (tables, marking, arbiter)."""

from repro.common.params import SystemParams
from repro.common.stats import Stats
from repro.common.types import NodeId, NodeKind
from repro.core.persistent import PersistentEntry, PersistentTable


def entry(proc, addr=0x100, read=False, prio=None):
    return PersistentEntry(
        proc=proc,
        requestor=NodeId(NodeKind.L1D, proc // 4, proc % 4),
        addr=addr,
        read=read,
        prio=prio if prio is not None else proc,
    )


def test_active_for_picks_highest_priority():
    t = PersistentTable()
    t.insert(entry(3))
    t.insert(entry(1))
    t.insert(entry(2))
    assert t.active_for(0x100).proc == 1


def test_active_for_ignores_other_blocks():
    t = PersistentTable()
    t.insert(entry(1, addr=0x200))
    assert t.active_for(0x100) is None


def test_remove_requires_matching_address():
    t = PersistentTable()
    t.insert(entry(1, addr=0x100))
    # A stale deactivate for another block must not clobber the entry.
    assert t.remove(1, addr=0x200) is None
    assert t.active_for(0x100) is not None
    assert t.remove(1, addr=0x100).proc == 1
    assert t.active_for(0x100) is None


def test_one_entry_per_processor():
    t = PersistentTable()
    t.insert(entry(1, addr=0x100))
    t.insert(entry(1, addr=0x200))  # newer request replaces older
    assert t.active_for(0x100) is None
    assert t.active_for(0x200).proc == 1


def test_marking_wave_rule():
    t = PersistentTable()
    t.insert(entry(1))
    t.insert(entry(2))
    assert not t.has_marked_for(0x100)
    t.mark_all_for(0x100)
    assert t.has_marked_for(0x100)
    # Marked entries remain active (they are other processors' requests).
    assert t.active_for(0x100) is not None
    t.remove(1, 0x100)
    assert t.has_marked_for(0x100)  # proc 2 still marked
    t.remove(2, 0x100)
    assert not t.has_marked_for(0x100)  # wave drained


def test_marks_do_not_leak_across_blocks():
    t = PersistentTable()
    t.insert(entry(1, addr=0x100))
    t.insert(entry(2, addr=0x200))
    t.mark_all_for(0x100)
    assert t.has_marked_for(0x100)
    assert not t.has_marked_for(0x200)


def test_entries_for_lists_block_requests():
    t = PersistentTable()
    t.insert(entry(1, addr=0x100))
    t.insert(entry(2, addr=0x100))
    t.insert(entry(3, addr=0x300))
    assert {e.proc for e in t.entries_for(0x100)} == {1, 2}


def test_duplicate_activate_preserves_marked_bit():
    t = PersistentTable()
    t.insert(entry(1))
    t.mark_all_for(0x100)
    t.insert(entry(1))  # a duplicated / re-broadcast activate arrives late
    assert t.has_marked_for(0x100)


def test_new_request_for_other_block_starts_unmarked():
    t = PersistentTable()
    t.insert(entry(1, addr=0x100))
    t.mark_all_for(0x100)
    t.insert(entry(1, addr=0x200))  # genuinely new request, not a duplicate
    assert not t.has_marked_for(0x200)


# ---------------------------------------------------------------------------
# Property-style tests: the table under duplicated / reordered activates.
# ---------------------------------------------------------------------------
from hypothesis import given
from hypothesis import strategies as st

ADDRS = (0x100, 0x200, 0x300)

table_ops = st.lists(
    st.tuples(
        st.sampled_from(("insert", "remove", "mark")),
        st.integers(min_value=0, max_value=3),  # proc
        st.sampled_from(ADDRS),
    ),
    max_size=30,
)


@given(table_ops)
def test_table_matches_reference_model(ops):
    """Any interleaving of (possibly duplicated, reordered) activates,
    deactivates, and marking waves keeps the table equal to a trivial
    reference model: one (addr, marked) per processor."""
    t = PersistentTable()
    model = {}  # proc -> (addr, marked)
    for op, proc, addr in ops:
        if op == "insert":
            t.insert(entry(proc, addr=addr))
            prev = model.get(proc)
            marked = prev is not None and prev[0] == addr and prev[1]
            model[proc] = (addr, marked)
        elif op == "remove":
            removed = t.remove(proc, addr)
            if proc in model and model[proc][0] == addr:
                assert removed is not None and removed.proc == proc
                del model[proc]
            else:
                assert removed is None  # stale deactivate must be a no-op
        else:
            t.mark_all_for(addr)
            model = {
                p: (a, m or a == addr) for p, (a, m) in model.items()
            }
        assert len(t) == len(model)  # at most one entry per processor
        for a in ADDRS:
            waiting = [p for p, (ad, _m) in model.items() if ad == a]
            active = t.active_for(a)
            if waiting:
                assert active is not None
                assert active.proc == min(waiting)  # fixed priority = proc id
            else:
                assert active is None
            assert t.has_marked_for(a) == any(
                ad == a and m for ad, m in model.values()
            )


@given(
    st.integers(min_value=0, max_value=3),
    st.sampled_from(ADDRS),
    st.sampled_from(ADDRS),
)
def test_stale_remove_never_clobbers_newer_request(proc, old_addr, new_addr):
    t = PersistentTable()
    t.insert(entry(proc, addr=old_addr))
    t.insert(entry(proc, addr=new_addr))  # newer request replaces the older
    if old_addr != new_addr:
        assert t.remove(proc, old_addr) is None  # late deactivate: no-op
    assert t.active_for(new_addr) is not None
