"""Unit tests for persistent-request machinery (tables, marking, arbiter)."""

from repro.common.params import SystemParams
from repro.common.stats import Stats
from repro.common.types import NodeId, NodeKind
from repro.core.persistent import PersistentEntry, PersistentTable


def entry(proc, addr=0x100, read=False, prio=None):
    return PersistentEntry(
        proc=proc,
        requestor=NodeId(NodeKind.L1D, proc // 4, proc % 4),
        addr=addr,
        read=read,
        prio=prio if prio is not None else proc,
    )


def test_active_for_picks_highest_priority():
    t = PersistentTable()
    t.insert(entry(3))
    t.insert(entry(1))
    t.insert(entry(2))
    assert t.active_for(0x100).proc == 1


def test_active_for_ignores_other_blocks():
    t = PersistentTable()
    t.insert(entry(1, addr=0x200))
    assert t.active_for(0x100) is None


def test_remove_requires_matching_address():
    t = PersistentTable()
    t.insert(entry(1, addr=0x100))
    # A stale deactivate for another block must not clobber the entry.
    assert t.remove(1, addr=0x200) is None
    assert t.active_for(0x100) is not None
    assert t.remove(1, addr=0x100).proc == 1
    assert t.active_for(0x100) is None


def test_one_entry_per_processor():
    t = PersistentTable()
    t.insert(entry(1, addr=0x100))
    t.insert(entry(1, addr=0x200))  # newer request replaces older
    assert t.active_for(0x100) is None
    assert t.active_for(0x200).proc == 1


def test_marking_wave_rule():
    t = PersistentTable()
    t.insert(entry(1))
    t.insert(entry(2))
    assert not t.has_marked_for(0x100)
    t.mark_all_for(0x100)
    assert t.has_marked_for(0x100)
    # Marked entries remain active (they are other processors' requests).
    assert t.active_for(0x100) is not None
    t.remove(1, 0x100)
    assert t.has_marked_for(0x100)  # proc 2 still marked
    t.remove(2, 0x100)
    assert not t.has_marked_for(0x100)  # wave drained


def test_marks_do_not_leak_across_blocks():
    t = PersistentTable()
    t.insert(entry(1, addr=0x100))
    t.insert(entry(2, addr=0x200))
    t.mark_all_for(0x100)
    assert t.has_marked_for(0x100)
    assert not t.has_marked_for(0x200)


def test_entries_for_lists_block_requests():
    t = PersistentTable()
    t.insert(entry(1, addr=0x100))
    t.insert(entry(2, addr=0x100))
    t.insert(entry(3, addr=0x300))
    assert {e.proc for e in t.entries_for(0x100)} == {1, 2}
