"""Tests for Summary/Stats serialization, merging and sampling.

The percentile sample is a bounded systematic sample whose keep-rate
halves when the buffer fills; merging must combine two summaries at a
common stride so a merged summary behaves like one built from the
concatenated streams.
"""

import pytest

from repro.common.stats import PERCENTILES, Stats, Summary


# ---------------------------------------------------------------------------
# Stride-halving sampling.
# ---------------------------------------------------------------------------
def test_stride_stays_a_power_of_two_and_sample_bounded():
    s = Summary(sample_limit=64)
    for v in range(10_000):
        s.add(float(v))
    assert s._stride & (s._stride - 1) == 0  # power of two
    assert s._stride > 1
    assert len(s._sample) < 64
    assert s.count == 10_000


def test_small_streams_keep_every_value():
    s = Summary()
    for v in (3.0, 1.0, 2.0):
        s.add(v)
    assert s._stride == 1
    assert sorted(s._sample) == [1.0, 2.0, 3.0]


def test_empty_summary_percentile_is_zero():
    s = Summary()
    assert s.percentile(50) == 0.0
    assert s.mean == 0.0


# ---------------------------------------------------------------------------
# to_dict.
# ---------------------------------------------------------------------------
def test_summary_to_dict_has_all_fields():
    s = Summary()
    for v in range(1, 101):
        s.add(float(v))
    d = s.to_dict()
    assert d["count"] == 100 and d["total"] == 5050.0
    assert d["min"] == 1.0 and d["max"] == 100.0
    assert d["mean"] == 50.5
    for q in PERCENTILES:
        assert f"p{q}" in d
    assert d["p50"] <= d["p95"] <= d["p99"]


def test_empty_summary_to_dict_is_minimal():
    assert Summary().to_dict() == {"count": 0, "total": 0.0}


def test_stats_to_dict_skips_empty_summaries():
    stats = Stats()
    stats.bump("hits", 3)
    stats.sample("lat", 10.0)
    stats.summaries["untouched"]  # defaultdict creates an empty stream
    d = stats.to_dict()
    assert d["counters"] == {"hits": 3}
    assert set(d["summaries"]) == {"lat"}
    assert d["summaries"]["lat"]["count"] == 1


# ---------------------------------------------------------------------------
# merge.
# ---------------------------------------------------------------------------
def test_merge_combines_count_total_min_max():
    a, b = Summary(), Summary()
    for v in (1.0, 2.0, 3.0):
        a.add(v)
    for v in (10.0, 20.0):
        b.add(v)
    out = a.merge(b)
    assert out is a
    assert a.count == 5 and a.total == 36.0
    assert a.min == 1.0 and a.max == 20.0
    assert a.mean == 7.2


def test_merge_empty_is_identity_both_ways():
    a = Summary()
    for v in (5.0, 6.0):
        a.add(v)
    before = a.to_dict()
    a.merge(Summary())
    assert a.to_dict() == before
    empty = Summary()
    empty.merge(a)
    assert empty.to_dict() == a.to_dict()


def test_merge_aligns_different_strides():
    a = Summary(sample_limit=64)  # will have halved several times
    b = Summary(sample_limit=64)  # stays at stride 1
    for v in range(2_000):
        a.add(float(v))
    for v in range(2_000, 2_030):
        b.add(float(v))
    stride_a = a._stride
    assert stride_a > 1 and b._stride == 1
    a.merge(b)
    assert a.count == 2_030
    assert a._stride >= stride_a
    assert a._stride & (a._stride - 1) == 0
    assert len(a._sample) < 64


def test_merge_percentiles_approximate_concatenation():
    parts = [Summary(sample_limit=256) for _ in range(4)]
    whole = Summary(sample_limit=256)
    for i in range(8_000):
        parts[i % 4].add(float(i))
        whole.add(float(i))
    merged = parts[0]
    for part in parts[1:]:
        merged.merge(part)
    assert merged.count == whole.count == 8_000
    for q in PERCENTILES:
        want = q / 100 * 8_000
        assert merged.percentile(q) == pytest.approx(want, rel=0.15)


def test_merge_then_add_keeps_sampling():
    a, b = Summary(sample_limit=32), Summary(sample_limit=32)
    for v in range(100):
        a.add(float(v))
        b.add(float(100 + v))
    a.merge(b)
    for v in range(1_000):
        a.add(float(v))
    assert a.count == 1_200
    assert len(a._sample) < 32
