"""Tests for the runtime per-location serializability auditor."""

import pytest

from repro.analysis.consistency import (
    OperationLog,
    attach_audit,
    check_per_location_serializability,
)
from repro.common.errors import VerificationError
from repro.common.params import SystemParams
from repro.system import MachineSpec
from repro.workloads.locking import LockingWorkload
from repro.workloads.sharing import CounterWorkload


def test_checker_accepts_serial_history():
    log = OperationLog()
    log.record(10, 0, "store", 0x100, None, 5)
    log.record(20, 1, "load", 0x100, 5, None)
    log.record(30, 1, "rmw", 0x100, 5, 6)
    log.record(40, 0, "load", 0x100, 6, None)
    assert check_per_location_serializability(log) == 4


def test_checker_rejects_stale_read():
    log = OperationLog()
    log.record(10, 0, "store", 0x100, None, 5)
    log.record(20, 1, "load", 0x100, 0, None)  # saw the initial value: stale
    with pytest.raises(VerificationError, match="expected 5"):
        check_per_location_serializability(log)


def test_checker_rejects_lost_rmw():
    log = OperationLog()
    log.record(10, 0, "rmw", 0x100, 0, 1)
    log.record(20, 1, "rmw", 0x100, 0, 1)  # both saw 0: an increment lost
    with pytest.raises(VerificationError):
        check_per_location_serializability(log)


def test_blocks_are_independent():
    log = OperationLog()
    log.record(10, 0, "store", 0x100, None, 5)
    log.record(20, 1, "load", 0x200, 0, None)  # different block: initial ok
    assert check_per_location_serializability(log) == 2


@pytest.mark.parametrize("proto", [
    "TokenCMP-dst1", "TokenCMP-dst4", "TokenCMP-arb0", "TokenCMP-dst0",
    "DirectoryCMP", "DirectoryCMP-zero", "PerfectL2", "TokenB",
])
def test_live_protocols_produce_serializable_histories(proto):
    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    machine = MachineSpec(params=params, protocol=proto, seed=17).build()
    log = attach_audit(machine)
    wl = CounterWorkload(params, increments=6, seed=17)
    machine.run(wl, max_events=20_000_000)
    audited = check_per_location_serializability(log)
    assert audited == len(log.records) > 0


def test_audit_on_contended_locking():
    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    machine = MachineSpec(params=params, protocol="TokenCMP-dst1", seed=19).build()
    log = attach_audit(machine)
    wl = LockingWorkload(params, num_locks=2, acquires_per_proc=8, seed=19)
    machine.run(wl, max_events=20_000_000)
    check_per_location_serializability(log)
    # At least one test-load per acquire was audited (spins add more).
    acquires = 4 * 8
    assert sum(1 for r in log.records if r.kind == "load") >= acquires
