"""Focused unit tests for the token L2 bank's gateway and ingress roles."""

import pytest

from repro.common.params import SystemParams
from repro.common.types import NodeId, NodeKind
from repro.core.l2 import TokenL2Controller
from repro.core.ledger import ChipTokenLedger
from repro.common.stats import Stats
from repro.interconnect.message import Message, MsgType
from repro.interconnect.network import Network
from repro.interconnect.traffic import TrafficMeter
from repro.memory.cache import CacheArray
from repro.sim.kernel import Simulator
from repro.system.config import protocol


BLOCK = 0


def build(proto="TokenCMP-dst1"):
    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    sim = Simulator()
    net = Network(sim, params, TrafficMeter())
    stats = Stats()
    bank = TokenL2Controller(
        NodeId(NodeKind.L2, 0, 0), sim, net, params, stats, protocol(proto),
        CacheArray(params.l2_bank_size, params.l2_assoc, params.block_size),
        params.l2_latency_ps,
    )
    bank.ledger = ChipTokenLedger([bank])  # only the bank holds tokens here
    inboxes = {}
    for l1 in params.chip_l1s(0):
        inboxes[l1] = []
        net.register(l1, inboxes[l1].append)
    inboxes["mem"] = []
    net.register(NodeId(NodeKind.MEM, 0), inboxes["mem"].append)
    inboxes["remote-l2"] = []
    net.register(params.l2_bank(BLOCK, 1), inboxes["remote-l2"].append)
    inboxes["remote-l1"] = []
    net.register(params.l1d_of(2), inboxes["remote-l1"].append)
    return params, sim, net, stats, bank, inboxes


def give_bank_tokens(bank, tokens, owner=True, value=7, dirty=False):
    from repro.core.tokens import TokenEntry

    entry = TokenEntry()
    entry.absorb(tokens, owner, value if owner else (value if tokens else None), False)
    entry.dirty = dirty
    bank.array.allocate(BLOCK, entry)
    return entry


def test_local_miss_escalates_to_remote_chips_and_memory():
    params, sim, net, stats, bank, inboxes = build()
    l1 = params.l1d_of(0)
    net.send(Message(MsgType.TOK_GETS, l1, bank.node, BLOCK, requestor=l1))
    sim.run()
    assert stats.get("l2.escalations") == 1
    assert [m.mtype for m in inboxes["remote-l2"]] == [MsgType.TOK_GETS]
    assert [m.mtype for m in inboxes["mem"]] == [MsgType.TOK_GETS]
    # The forwarded request preserves the original requestor.
    assert inboxes["remote-l2"][0].requestor == l1


def test_no_escalation_when_bank_can_satisfy_read():
    params, sim, net, stats, bank, inboxes = build()
    give_bank_tokens(bank, tokens=8, owner=True)
    l1 = params.l1d_of(0)
    net.send(Message(MsgType.TOK_GETS, l1, bank.node, BLOCK, requestor=l1))
    sim.run()
    assert stats.get("l2.escalations") == 0
    (resp,) = inboxes[l1]
    assert resp.mtype is MsgType.TOK_DATA and resp.tokens == 1


def test_write_escalates_unless_chip_holds_all_tokens():
    params, sim, net, stats, bank, inboxes = build()
    give_bank_tokens(bank, tokens=8, owner=True)  # half the tokens
    l1 = params.l1d_of(0)
    net.send(Message(MsgType.TOK_GETX, l1, bank.node, BLOCK, requestor=l1))
    sim.run()
    assert stats.get("l2.escalations") == 1  # rest of the tokens are away
    (resp,) = [m for m in inboxes[l1] if m.mtype is MsgType.TOK_DATA]
    assert resp.tokens == 8 and resp.owner  # bank still gave what it had


def test_external_request_rebroadcasts_to_local_l1s():
    params, sim, net, stats, bank, inboxes = build()
    remote = params.l1d_of(2)
    net.send(Message(MsgType.TOK_GETX, params.l2_bank(BLOCK, 1), bank.node,
                     BLOCK, requestor=remote))
    sim.run()
    for l1 in params.chip_l1s(0):
        assert [m.mtype for m in inboxes[l1]] == [MsgType.TOK_GETX]
        assert inboxes[l1][0].requestor == remote


def test_external_read_gets_c_tokens_from_owner_bank():
    params, sim, net, stats, bank, inboxes = build()
    give_bank_tokens(bank, tokens=16, owner=True)
    remote = params.l1d_of(2)
    net.send(Message(MsgType.TOK_GETS, params.l2_bank(BLOCK, 1), bank.node,
                     BLOCK, requestor=remote))
    sim.run()
    (resp,) = [m for m in inboxes["remote-l1"] if m.mtype is MsgType.TOK_DATA]
    assert resp.tokens == params.caches_per_chip  # C tokens seed the chip
    assert not resp.owner


def test_external_read_of_modified_block_is_migratory():
    params, sim, net, stats, bank, inboxes = build()
    give_bank_tokens(bank, tokens=16, owner=True, dirty=True)
    remote = params.l1d_of(2)
    net.send(Message(MsgType.TOK_GETS, params.l2_bank(BLOCK, 1), bank.node,
                     BLOCK, requestor=remote))
    sim.run()
    (resp,) = [m for m in inboxes["remote-l1"] if m.mtype is MsgType.TOK_DATA]
    assert resp.tokens == 16 and resp.owner  # whole block moves


def test_filter_narrows_rebroadcast():
    params, sim, net, stats, bank, inboxes = build("TokenCMP-dst1-filt")
    holder = params.l1d_of(0)
    bank.filter.note_holder(BLOCK, holder)
    net.send(Message(MsgType.TOK_GETX, params.l2_bank(BLOCK, 1), bank.node,
                     BLOCK, requestor=params.l1d_of(2)))
    sim.run()
    assert [m.mtype for m in inboxes[holder]] == [MsgType.TOK_GETX]
    others = [l1 for l1 in params.chip_l1s(0) if l1 != holder]
    for l1 in others:
        assert inboxes[l1] == []
    assert stats.get("l2.filter_suppressed") == len(others)


def test_persistent_requests_are_never_filtered():
    params, sim, net, stats, bank, inboxes = build("TokenCMP-dst1-filt")
    bank.filter.note_holder(BLOCK, params.l1d_of(0))  # filter says only proc 0
    give_bank_tokens(bank, tokens=4, owner=False, value=None)
    requestor = params.l1d_of(2)
    net.send(Message(MsgType.PERSIST_ACTIVATE, requestor, bank.node, BLOCK,
                     requestor=requestor, prio=2, read=False, extra=2))
    sim.run()
    # The bank itself forwarded its tokens regardless of the filter.
    sent = [m for m in inboxes["remote-l1"]]
    assert sent and sent[0].tokens == 4
