"""Route-cache tests: the precomputed table vs the `_path` branch ladder.

``Network._build_routes`` precomputes ``(src, dst) -> tuple[Link, ...]``
for every node pair at construction so ``send`` never re-runs the
routing branch ladder per message.  The ladder (``Network._path``) stays
in the code as the executable reference; these tests exhaustively replay
it against the cache on 1-chip, 2-chip and the paper's 4x4 machine —
including the IFACE/MEM/ARB corner cases the ladder special-cases.
"""

import pytest

from repro.common.params import SystemParams
from repro.common.types import NodeId, NodeKind
from repro.interconnect.message import Message, MsgType
from repro.interconnect.network import Network
from repro.interconnect.traffic import TrafficMeter
from repro.sim.kernel import Simulator

CONFIGS = {
    "1-chip": dict(num_chips=1, procs_per_chip=4),
    "2-chip": dict(num_chips=2, procs_per_chip=2),
    "4x4": dict(num_chips=4, procs_per_chip=4),
}


def build(**kwargs):
    params = SystemParams(**kwargs)
    return Network(Simulator(), params, TrafficMeter()), params


@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_route_cache_matches_path_ladder_for_every_pair(config):
    net, params = build(**CONFIGS[config])
    nodes = net._all_nodes()
    assert len(nodes) == len(set(nodes))  # enumeration has no duplicates
    for src in nodes:
        for dst in nodes:
            cached = net._routes[(src, dst)]
            assert cached == tuple(net._path(src, dst)), (src, dst)


@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_route_cache_covers_exactly_the_node_pair_square(config):
    net, _params = build(**CONFIGS[config])
    nodes = net._all_nodes()
    assert len(net._routes) == len(nodes) ** 2


@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_all_machine_endpoints_are_in_the_enumeration(config):
    net, params = build(**CONFIGS[config])
    nodes = set(net._all_nodes())
    for chip in range(params.num_chips):
        for node in params.chip_l1s(chip) + params.chip_l2_banks(chip):
            assert node in nodes
        assert params.iface_of(chip) in nodes
        assert NodeId(NodeKind.MEM, chip) in nodes
        assert NodeId(NodeKind.ARB, chip) in nodes


def test_self_route_is_empty():
    net, params = build(**CONFIGS["4x4"])
    for node in net._all_nodes():
        assert net._routes[(node, node)] == ()


def test_arbiter_and_memory_colocated_route_is_empty():
    # The persistent-request arbiter sits at the memory controller site:
    # messages between them cross no links (the ladder's first corner).
    net, params = build(**CONFIGS["4x4"])
    for chip in range(params.num_chips):
        mem = NodeId(NodeKind.MEM, chip)
        arb = NodeId(NodeKind.ARB, chip)
        assert net._routes[(mem, arb)] == ()
        assert net._routes[(arb, mem)] == ()


def test_cross_chip_arbiter_route_uses_mem_and_inter_links():
    net, params = build(**CONFIGS["4x4"])
    arb0 = NodeId(NodeKind.ARB, 0)
    mem1 = NodeId(NodeKind.MEM, 1)
    names = [link.name for link in net._routes[(arb0, mem1)]]
    assert names == ["mem-in:0", "inter:0", "mem-out:1"]


def test_iface_egress_skips_its_own_intra_link():
    # A message leaving from the chip interface is already at the global
    # network boundary: no intra hop on the source side.
    net, params = build(**CONFIGS["4x4"])
    iface0 = params.iface_of(0)
    l1_remote = params.l1d_of(params.procs_per_chip)  # first proc on chip 1
    names = [link.name for link in net._routes[(iface0, l1_remote)]]
    assert names[0] == "inter:0"
    # ... and a message *to* an interface stops at the inter link.
    l1_local = params.l1d_of(0)
    names = [link.name for link in net._routes[(l1_local, params.iface_of(1))]]
    assert names[-1] == "inter:0"


def test_send_uses_cached_route(monkeypatch):
    # After construction, the hot path must never fall back to the
    # branch ladder for machine nodes.
    net, params = build(**CONFIGS["2-chip"])
    sim = net.sim

    def fail(src, dst):  # pragma: no cover - failure path
        raise AssertionError(f"_path re-run for ({src}, {dst})")

    monkeypatch.setattr(net, "_path", fail)
    src, dst = params.l1d_of(0), params.l1d_of(params.procs_per_chip)
    seen = []
    net.register(dst, seen.append)
    net.send(Message(MsgType.TOK_ACK, src, dst, 0))
    sim.run()
    assert len(seen) == 1


def test_unknown_pair_falls_back_to_ladder_lazily():
    # Ad-hoc endpoints outside the machine enumeration still route: the
    # ladder runs once and the result is memoized.
    net, params = build(**CONFIGS["2-chip"])
    sim = net.sim
    src = NodeId(NodeKind.MEM, 0)
    dst = NodeId(NodeKind.MEM, 1)
    del net._routes[(src, dst)]  # simulate a pair outside the enumeration
    seen = []
    net.register(dst, seen.append)
    net.send(Message(MsgType.TOK_ACK, src, dst, 0))
    sim.run()
    assert len(seen) == 1
    assert (src, dst) in net._routes  # memoized for the next send


@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_message_size_table_matches_payload_rule(config):
    net, params = build(**CONFIGS[config])
    for mtype in MsgType:
        expected = (params.data_msg_bytes if mtype.has_data
                    else params.control_msg_bytes)
        assert net._msg_size[mtype] == expected
