"""Route tests: the graph-built cache vs the `_path` branch ladder.

``Network._build_routes`` precomputes ``(src, dst) -> tuple[Link, ...]``
for every node pair at construction from the compiled topology graph, so
``send`` never routes per message.  On the default (``ptp``) topology the
ladder (``Network._path``) stays in the code as the executable reference;
these tests exhaustively replay it against the graph-built cache on
1-chip, 2-chip and the paper's 4x4 machine — including the
IFACE/MEM/ARB corner cases the ladder special-cases — and pin that
mesh/torus routing is independent of ``PYTHONHASHSEED``.
"""

import os
import subprocess
import sys

import pytest

from repro.common.errors import ConfigError
from repro.common.params import SystemParams
from repro.common.types import NodeId, NodeKind
from repro.interconnect.message import Message, MsgType
from repro.interconnect.network import Network
from repro.interconnect.topology import Topology
from repro.interconnect.traffic import TrafficMeter
from repro.sim.kernel import Simulator

CONFIGS = {
    "1-chip": dict(num_chips=1, procs_per_chip=4),
    "2-chip": dict(num_chips=2, procs_per_chip=2),
    "4x4": dict(num_chips=4, procs_per_chip=4),
}


def build(**kwargs):
    params = SystemParams(**kwargs)
    return Network(Simulator(), params, TrafficMeter()), params


@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_route_cache_matches_path_ladder_for_every_pair(config):
    net, params = build(**CONFIGS[config])
    nodes = net._all_nodes()
    assert len(nodes) == len(set(nodes))  # enumeration has no duplicates
    for src in nodes:
        for dst in nodes:
            cached = net._routes[(src, dst)]
            assert cached == tuple(net._path(src, dst)), (src, dst)


@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_route_cache_covers_exactly_the_node_pair_square(config):
    net, _params = build(**CONFIGS[config])
    nodes = net._all_nodes()
    assert len(net._routes) == len(nodes) ** 2


@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_all_machine_endpoints_are_in_the_enumeration(config):
    net, params = build(**CONFIGS[config])
    nodes = set(net._all_nodes())
    for chip in range(params.num_chips):
        for node in params.chip_l1s(chip) + params.chip_l2_banks(chip):
            assert node in nodes
        assert params.iface_of(chip) in nodes
        assert NodeId(NodeKind.MEM, chip) in nodes
        assert NodeId(NodeKind.ARB, chip) in nodes


def test_self_route_is_empty():
    net, params = build(**CONFIGS["4x4"])
    for node in net._all_nodes():
        assert net._routes[(node, node)] == ()


def test_arbiter_and_memory_colocated_route_is_empty():
    # The persistent-request arbiter sits at the memory controller site:
    # messages between them cross no links (the ladder's first corner).
    net, params = build(**CONFIGS["4x4"])
    for chip in range(params.num_chips):
        mem = NodeId(NodeKind.MEM, chip)
        arb = NodeId(NodeKind.ARB, chip)
        assert net._routes[(mem, arb)] == ()
        assert net._routes[(arb, mem)] == ()


def test_cross_chip_arbiter_route_uses_mem_and_inter_links():
    net, params = build(**CONFIGS["4x4"])
    arb0 = NodeId(NodeKind.ARB, 0)
    mem1 = NodeId(NodeKind.MEM, 1)
    names = [link.name for link in net._routes[(arb0, mem1)]]
    assert names == ["mem-in:0", "inter:0", "mem-out:1"]


def test_iface_egress_skips_its_own_intra_link():
    # A message leaving from the chip interface is already at the global
    # network boundary: no intra hop on the source side.
    net, params = build(**CONFIGS["4x4"])
    iface0 = params.iface_of(0)
    l1_remote = params.l1d_of(params.procs_per_chip)  # first proc on chip 1
    names = [link.name for link in net._routes[(iface0, l1_remote)]]
    assert names[0] == "inter:0"
    # ... and a message *to* an interface stops at the inter link.
    l1_local = params.l1d_of(0)
    names = [link.name for link in net._routes[(l1_local, params.iface_of(1))]]
    assert names[-1] == "inter:0"


def test_send_uses_cached_route(monkeypatch):
    # After construction, the hot path must never fall back to the
    # branch ladder for machine nodes.
    net, params = build(**CONFIGS["2-chip"])
    sim = net.sim

    def fail(src, dst):  # pragma: no cover - failure path
        raise AssertionError(f"_path re-run for ({src}, {dst})")

    monkeypatch.setattr(net, "_path", fail)
    src, dst = params.l1d_of(0), params.l1d_of(params.procs_per_chip)
    seen = []
    net.register(dst, seen.append)
    net.send(Message(MsgType.TOK_ACK, src, dst, 0))
    sim.run()
    assert len(seen) == 1


def test_unknown_pair_falls_back_to_ladder_lazily():
    # Ad-hoc endpoints outside the machine enumeration still route: the
    # ladder runs once and the result is memoized.
    net, params = build(**CONFIGS["2-chip"])
    sim = net.sim
    src = NodeId(NodeKind.MEM, 0)
    dst = NodeId(NodeKind.MEM, 1)
    # Simulate a pair outside the enumeration: drop it from both views
    # of the route cache (the flat table and the nested hot-path table).
    del net._routes[(src, dst)]
    del net._routes_from[src][dst]
    seen = []
    net.register(dst, seen.append)
    net.send(Message(MsgType.TOK_ACK, src, dst, 0))
    sim.run()
    assert len(seen) == 1
    assert (src, dst) in net._routes  # memoized for the next send
    assert net._routes_from[src][dst] == net._routes[(src, dst)]


@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_message_size_table_matches_payload_rule(config):
    net, params = build(**CONFIGS[config])
    for mtype in MsgType:
        expected = (params.data_msg_bytes if mtype.has_data
                    else params.control_msg_bytes)
        assert net._msg_size[mtype] == expected


# ---------------------------------------------------------------------------
# Graph routing vs the ladder, and non-default topologies.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_graph_route_names_equal_ladder_names_for_every_pair(config):
    # Belt and braces over the cache test above: the compiled graph's
    # link-name routes equal the ladder's, for every ordered pair.
    net, _params = build(**CONFIGS[config])
    for src in net._all_nodes():
        for dst in net._all_nodes():
            names = list(net.graph.route(src, dst))
            assert names == [l.name for l in net._path(src, dst)], (src, dst)


def test_mem_to_remote_iface_stops_at_the_inter_link():
    # The dst-IFACE exception applies from memory-site sources too: the
    # interface sits on the fabric, so delivery to it never re-crosses
    # its own intra egress link (ladder and graph agree).
    net, params = build(**CONFIGS["4x4"])
    mem0 = NodeId(NodeKind.MEM, 0)
    names = [l.name for l in net._routes[(mem0, params.iface_of(1))]]
    assert names == ["mem-in:0", "inter:0"]


def test_ladder_refuses_non_default_topologies():
    params = SystemParams(num_chips=4, procs_per_chip=2,
                          topology=Topology.mesh())
    net = Network(Simulator(), params, TrafficMeter())
    with pytest.raises(ConfigError):
        net._path(params.l1d_of(0), params.l1d_of(2))


def test_mesh_routes_take_multiple_inter_hops():
    params = SystemParams(num_chips=8, procs_per_chip=2,
                          topology=Topology.mesh())
    net = Network(Simulator(), params, TrafficMeter())
    # Mesh corners (2x4 grid: chips 0 and 7) are several hops apart.
    names = [l.name for l in net._routes[(params.l1d_of(0),
                                          params.l1d_of(15))]]
    inter_hops = [n for n in names if n.startswith("inter:")]
    assert len(inter_hops) >= 3
    # Every hop goes router-to-adjacent-router (a>b edge labels).
    for hop in inter_hops:
        a, b = hop.split(":")[1].split(">")
        assert abs(int(a) - int(b)) in (1, 4)


_DIGEST_SNIPPET = """
import hashlib, json
from repro.common.params import SystemParams
from repro.interconnect.topology import Topology
params = SystemParams(num_chips=6, procs_per_chip=2,
                      topology=Topology.named(%(gen)r))
graph = params.topology.build(params)
routes = {str(src) + '->' + str(dst): list(names)
          for (src, dst), names in graph.all_routes().items()}
blob = json.dumps(routes, sort_keys=True)
print(hashlib.sha256(blob.encode()).hexdigest())
"""


@pytest.mark.parametrize("gen", ["mesh", "torus"])
def test_routes_are_stable_across_hash_seeds(gen):
    # Route construction must not depend on dict/set hash order: the
    # same topology must route identically under different
    # PYTHONHASHSEED values (and therefore across worker processes).
    src_dir = os.path.join(os.path.dirname(__file__), "..", "src")
    digests = set()
    for seed in ("0", "1", "12345"):
        env = dict(os.environ,
                   PYTHONHASHSEED=seed,
                   PYTHONPATH=src_dir + os.pathsep
                   + os.environ.get("PYTHONPATH", ""))
        out = subprocess.run(
            [sys.executable, "-c", _DIGEST_SNIPPET % {"gen": gen}],
            capture_output=True, text=True, env=env, check=True,
        )
        digests.add(out.stdout.strip())
    assert len(digests) == 1, digests
