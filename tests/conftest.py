"""Shared fixtures for protocol integration tests."""

import pytest

from repro.common.params import SystemParams

ALL_PROTOCOLS = [
    "TokenCMP-arb0",
    "TokenCMP-dst0",
    "TokenCMP-dst4",
    "TokenCMP-dst1",
    "TokenCMP-dst1-pred",
    "TokenCMP-dst1-filt",
    "DirectoryCMP",
    "DirectoryCMP-zero",
    "PerfectL2",
]

TOKEN_PROTOCOLS = [p for p in ALL_PROTOCOLS if p.startswith("Token")]
COHERENT_PROTOCOLS = [p for p in ALL_PROTOCOLS if p != "PerfectL2"]


@pytest.fixture
def small_params():
    """A 2-chip x 2-processor machine: fast, still exercises inter-CMP paths."""
    return SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)


@pytest.fixture
def full_params():
    """The paper's 4x4 target system."""
    return SystemParams()
