"""Telemetry sampler, saturation detector, and diff tests.

The determinism contract under test: a telemetry-enabled cell renders a
byte-identical ``repro.telemetry/1`` document across repeat runs, across
``--jobs 1`` vs N, and across ``PYTHONHASHSEED`` values — and sampling
is purely observational, so the simulated outcome is identical to an
unsampled run of the same cell.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.exp.library import fig6_smoke_cell, mesh_params
from repro.exp.runner import Runner, run_cell
from repro.exp.spec import Cell
from repro.obs.diff import (
    apply_gates,
    diff_docs,
    diff_report,
    flatten_doc,
    parse_gate,
    render_diff_json,
    render_diff_report,
)
from repro.obs.telemetry import (
    TELEMETRY_SCHEMA,
    TelemetryConfig,
    link_utilization_permille,
    render_telemetry,
    saturation_windows,
    validate_telemetry,
)


def _small_cell(protocol="TokenCMP-dst1", **kw):
    kw.setdefault("telemetry", TelemetryConfig(sample_every_events=2000))
    return Cell(
        protocol=protocol, workload="oltp",
        workload_kwargs={"refs_per_proc": 20}, seed=1, **kw,
    )


# ---------------------------------------------------------------------------
# Sampler basics.
# ---------------------------------------------------------------------------
def test_sampler_produces_valid_document():
    res = run_cell(_small_cell())
    doc = res.telemetry
    rows = validate_telemetry(doc)
    assert rows >= 2  # baseline row + final row at minimum
    assert doc["schema"] == TELEMETRY_SCHEMA
    assert doc["ticks"] == rows  # small run: nothing dropped
    assert doc["dropped_ticks"] == 0
    # The first row is the attach-time baseline, the last the end-of-run
    # finalize sample.
    assert doc["t_ps"][0] == 0
    assert doc["t_ps"][-1] == res.runtime_ps
    assert doc["events"][0] == 0


def test_token_probe_catalog():
    doc = run_cell(_small_cell()).telemetry
    probes = set(doc["probes"])
    for name in (
        "token.l1.blocks", "token.l1.tokens", "token.l1.owners",
        "token.l2.blocks", "token.l2.tokens", "token.l2.owners",
        "ptable.entries", "ptable.max", "tx.outstanding", "tx.persistent",
        "recovery.pending", "recovery.residual_tokens",
        "ctr:l1.misses", "ctr:policy.retries",
    ):
        assert name in probes, name
    assert any(p.startswith("link:") and p.endswith(":bytes")
               for p in probes)
    # Gauges are live: the cumulative miss counter ends above zero, and
    # token censuses move off the zero baseline.
    assert doc["series"]["ctr:l1.misses"][-1] > 0
    assert max(doc["series"]["token.l1.tokens"]) > 0


def test_directory_probe_catalog():
    doc = run_cell(_small_cell(protocol="DirectoryCMP")).telemetry
    validate_telemetry(doc)
    probes = set(doc["probes"])
    for name in ("dir.l2_lines", "dir.ext_tx", "dir.evicting",
                 "dir.home_lines"):
        assert name in probes, name
    assert "token.l1.blocks" not in probes
    assert doc["series"]["dir.home_lines"][-1] > 0


def test_link_bytes_series_is_monotone_and_matches_totals():
    res = run_cell(_small_cell())
    doc = res.telemetry
    for name in doc["links"]:
        series = doc["series"][f"link:{name}:bytes"]
        assert all(b >= a for a, b in zip(series, series[1:])), name
    # The final sample equals the run's per-link byte totals.
    util = res.raw.machine.net.link_utilization()
    for name, total in util.items():
        assert doc["series"][f"link:{name}:bytes"][-1] == total


def test_ring_capacity_drops_oldest_rows():
    config = TelemetryConfig(sample_every_events=500, ring_capacity=4)
    res = run_cell(_small_cell(telemetry=config))
    doc = res.telemetry
    assert len(doc["t_ps"]) == 4
    assert doc["ticks"] > 4
    assert doc["dropped_ticks"] == doc["ticks"] - 4
    validate_telemetry(doc)


def test_fig6_smoke_cell_identity():
    # perf.py's e2e gate and the CI telemetry-smoke job share this cell;
    # its identity is pinned (metrics sha / event count acceptance).
    cell = fig6_smoke_cell()
    name = getattr(cell.protocol, "name", cell.protocol)
    assert name == "TokenCMP-dst1"
    assert cell.workload == "oltp"
    assert cell.kwargs["refs_per_proc"] == 120
    assert cell.seed == 1
    assert cell.telemetry is None
    config = TelemetryConfig(sample_every_events=2000)
    assert fig6_smoke_cell(telemetry=config).telemetry is config


def test_config_validation():
    with pytest.raises(ValueError):
        TelemetryConfig(sample_every_events=0)
    with pytest.raises(ValueError):
        TelemetryConfig(ring_capacity=1)
    with pytest.raises(ValueError):
        TelemetryConfig(min_window_ticks=1)
    with pytest.raises(ValueError):
        TelemetryConfig.from_dict({"sample_every_events": 64, "bogus": 1})
    round_trip = TelemetryConfig.from_dict(TelemetryConfig().to_dict())
    assert round_trip == TelemetryConfig()


# ---------------------------------------------------------------------------
# Neutrality: sampling never changes the simulation.
# ---------------------------------------------------------------------------
def test_sampling_is_behavior_neutral():
    on = run_cell(_small_cell())
    off = run_cell(_small_cell(telemetry=None))
    assert on.runtime_ps == off.runtime_ps
    on_counters = {k: v for k, v in on.counters.items()
                   if not k.startswith("telemetry.")}
    assert on_counters == off.counters
    assert on.traffic == off.traffic


def test_disabled_cell_key_and_record_are_unchanged():
    # A telemetry-less cell must keep the exact cache key and JSON record
    # it had before the field existed (pre-PR cache entries stay valid).
    cell = _small_cell(telemetry=None)
    assert "telemetry" not in cell.key_material()
    res = run_cell(cell)
    assert "telemetry" not in res.to_dict()
    enabled = _small_cell()
    assert "telemetry" in enabled.key_material()
    assert enabled.key_material() != cell.key_material()


def test_result_roundtrips_through_dict():
    res = run_cell(_small_cell())
    from repro.exp.result import CellResult

    clone = CellResult.from_dict(json.loads(json.dumps(res.to_dict())))
    assert clone.telemetry == res.telemetry
    assert clone.to_json() == res.to_json()


# ---------------------------------------------------------------------------
# Determinism: repeats, job counts, hash seeds.
# ---------------------------------------------------------------------------
def test_byte_identical_across_repeats():
    first = render_telemetry(run_cell(_small_cell()).telemetry)
    second = render_telemetry(run_cell(_small_cell()).telemetry)
    assert first == second


def test_byte_identical_serial_vs_parallel(tmp_path):
    cells = [
        _small_cell(),
        _small_cell(protocol="DirectoryCMP"),
        _small_cell(protocol="TokenCMP-dst1-mcast"),
    ]
    serial = Runner(jobs=1, cache=False).run_cells(cells, name="tel-serial")
    parallel = Runner(jobs=3, cache=False).run_cells(cells, name="tel-par")
    assert serial.to_json() == parallel.to_json()
    for res in parallel:
        validate_telemetry(res.telemetry)


def test_cache_roundtrip_preserves_telemetry(tmp_path):
    runner = Runner(jobs=1, cache=True, cache_dir=str(tmp_path))
    cell = _small_cell()
    cold = runner.run_cells([cell], name="tel-cache")
    warm = runner.run_cells([cell], name="tel-cache")
    assert warm.cache_hits == 1
    assert warm.results[0].telemetry == cold.results[0].telemetry
    assert warm.to_json() == cold.to_json()


_DIGEST_SNIPPET = """
import hashlib
from repro.exp.spec import Cell
from repro.exp.runner import run_cell
from repro.obs.telemetry import TelemetryConfig, render_telemetry
cell = Cell(protocol="TokenCMP-dst1", workload="oltp",
            workload_kwargs={"refs_per_proc": 20}, seed=1,
            telemetry=TelemetryConfig(sample_every_events=2000))
blob = render_telemetry(run_cell(cell).telemetry)
print(hashlib.sha256(blob.encode()).hexdigest())
"""


def test_telemetry_is_stable_across_hash_seeds():
    # The exported document must not depend on dict/set hash order: the
    # same cell must sample identically under different PYTHONHASHSEED
    # values (and therefore across worker processes).
    src_dir = os.path.join(os.path.dirname(__file__), "..", "src")
    digests = set()
    for seed in ("0", "1", "12345"):
        env = dict(os.environ,
                   PYTHONHASHSEED=seed,
                   PYTHONPATH=src_dir + os.pathsep
                   + os.environ.get("PYTHONPATH", ""))
        out = subprocess.run(
            [sys.executable, "-c", _DIGEST_SNIPPET],
            capture_output=True, text=True, env=env, check=True,
        )
        digests.add(out.stdout.strip())
    assert len(digests) == 1, digests


# ---------------------------------------------------------------------------
# Saturation detection.
# ---------------------------------------------------------------------------
def _synthetic_doc(t_step_ps=1000, n=20, **series):
    """A minimal telemetry document around hand-built series."""
    config = TelemetryConfig(min_window_ticks=4, util_threshold_permille=750,
                             table_frac_permille=500)
    t_ps = [i * t_step_ps for i in range(n)]
    links = {}
    full = {}
    for name, values in series.items():
        assert len(values) == n, name
        full[name] = values
    for probe in list(full):
        if probe.startswith("link:") and probe.endswith(":bytes"):
            link = probe.split(":")[1]
            links[link] = {"scope": "inter", "latency_ps": 1000,
                           "bytes_per_ns": 1.0, "ser_num": 1000,
                           "ser_den": 1, "buffer_bytes": None}
            backlog = f"link:{link}:backlog_ps"
            if backlog not in full:
                full[backlog] = [0] * n
    doc = {
        "schema": TELEMETRY_SCHEMA,
        "config": config.to_dict(),
        "meta": {"family": "token", "protocol": "TokenCMP-dst1",
                 "num_chips": 4, "num_procs": 16, "topology": "ptp"},
        "links": links,
        "probes": sorted(full),
        "t_ps": t_ps,
        "events": list(range(n)),
        "series": full,
        "ticks": n,
        "dropped_ticks": 0,
    }
    doc["saturation"] = saturation_windows(doc)
    validate_telemetry(doc)
    return doc


def test_utilization_is_integer_exact():
    # 1 byte/ns link (ser 1000 ps per byte): 750 bytes per 1000 ns tick
    # is exactly 750 permille.
    t_ps = [0, 1_000_000, 2_000_000]
    series = [0, 750, 1500]
    util = link_utilization_permille(t_ps, series, 1000, 1)
    assert util == [0, 750, 750]


def test_sustained_utilization_window_flagged():
    # 10 hot ticks (1000 bytes per 1000 ns at 1 byte/ns = 100% util)
    # between cold ones.
    bytes_series = [0] * 5 + [1000 * i for i in range(1, 11)] + [10_000] * 5
    doc = _synthetic_doc(t_step_ps=1_000_000, n=20,
                         **{"link:hot:bytes": bytes_series})
    kinds = [w["kind"] for w in doc["saturation"]]
    assert kinds == ["link-utilization"]
    window = doc["saturation"][0]
    assert window["subject"] == "hot"
    assert window["ticks"] >= 4
    assert window["peak"] >= 1000


def test_short_bursts_are_not_flagged():
    # 3 hot ticks < min_window_ticks=4: no window.
    bytes_series = [0] * 8 + [1000, 2000, 3000] + [3000] * 9
    doc = _synthetic_doc(t_step_ps=1_000_000, n=20,
                         **{"link:burst:bytes": bytes_series})
    assert doc["saturation"] == []


def test_monotone_backlog_growth_flagged():
    backlog = [0] * 5 + [100 * i for i in range(1, 11)] + [0] * 5
    doc = _synthetic_doc(
        n=20,
        **{"link:slow:bytes": [0] * 20, "link:slow:backlog_ps": backlog},
    )
    kinds = [w["kind"] for w in doc["saturation"]]
    assert kinds == ["backlog-growth"]
    assert doc["saturation"][0]["peak"] == 1000


def test_plateaued_backlog_not_flagged():
    # Backlog rises then holds: growth must be *strictly* monotone.
    backlog = [0, 100, 200, 300] + [300] * 16
    doc = _synthetic_doc(
        n=20,
        **{"link:flat:bytes": [0] * 20, "link:flat:backlog_ps": backlog},
    )
    assert doc["saturation"] == []


def test_persistent_table_near_full_flagged():
    # num_procs=16, table_frac_permille=500: occupancy >= 8 is near-full.
    occupancy = [0] * 5 + [9] * 10 + [0] * 5
    doc = _synthetic_doc(n=20, **{"ptable.max": occupancy})
    kinds = [w["kind"] for w in doc["saturation"]]
    assert kinds == ["ptable-near-full"]
    assert doc["saturation"][0]["peak"] == 9


def test_windows_sorted_deterministically():
    hot = [0] * 5 + [1000 * i for i in range(1, 11)] + [10_000] * 5
    doc = _synthetic_doc(
        t_step_ps=1_000_000, n=20,
        **{"link:b:bytes": hot, "link:a:bytes": hot},
    )
    subjects = [w["subject"] for w in doc["saturation"]]
    assert subjects == sorted(subjects)


def test_fig6_smoke_cell_has_no_saturation():
    # Acceptance anchor: the default 4-CMP ptp fig6 configuration is
    # paper-balanced — no sustained saturation window may be flagged.
    # (Uses a short oltp run with the same machine shape for speed; the
    # full pinned cell is exercised by the CI telemetry-smoke job.)
    res = run_cell(_small_cell(telemetry=TelemetryConfig()))
    assert res.telemetry["saturation"] == []


@pytest.mark.tier2
def test_16cmp_mesh_dst1_saturates():
    # Acceptance: the 16-CMP non-multicast mesh sweep must flag at least
    # one sustained saturation window (the 8->16 crossover, PR 7).
    cell = Cell(
        protocol="TokenCMP-dst1", workload="oltp",
        workload_kwargs={"refs_per_proc": 40}, seed=1,
        params=mesh_params(16, 8), telemetry=TelemetryConfig(),
    )
    res = run_cell(cell)
    assert len(res.telemetry["saturation"]) >= 1


# ---------------------------------------------------------------------------
# Diff.
# ---------------------------------------------------------------------------
def test_flatten_metrics_document():
    res = run_cell(_small_cell(telemetry=None))
    flat = flatten_doc(res.metrics())
    assert flat["counters.l1.misses"] == res.get("l1.misses")
    assert "schema" not in flat
    assert all(isinstance(v, (int, float)) for v in flat.values())


def test_flatten_telemetry_is_schema_aware():
    doc = run_cell(_small_cell()).telemetry
    flat = flatten_doc(doc)
    assert flat["ticks"] == doc["ticks"]
    assert flat["saturation.windows"] == len(doc["saturation"])
    name = doc["probes"][0]
    assert flat[f"series.{name}.last"] == doc["series"][name][-1]
    # The per-sample arrays themselves must not be exploded.
    assert not any(key.startswith("t_ps") for key in flat)


def test_diff_identical_docs():
    doc = run_cell(_small_cell(telemetry=None)).metrics()
    report = diff_report(doc, doc, [("counters.*", 0.0)])
    assert report["ok"]
    assert report["changed"] == 0
    assert report["violations"] == []
    # Canonical JSON renders deterministically.
    assert render_diff_json(report) == render_diff_json(
        diff_report(doc, doc, [("counters.*", 0.0)])
    )


def test_diff_detects_changes_and_gates():
    a = {"counters": {"x": 100, "y": 50}, "runtime_ps": 1000}
    b = {"counters": {"x": 110, "y": 50}, "runtime_ps": 1500}
    rows = diff_docs(a, b)
    by_key = {r["key"]: r for r in rows}
    assert by_key["counters.x"]["delta"] == 10
    assert by_key["counters.y"]["delta"] == 0
    # 10% change trips a 5% gate but not a 15% one.
    assert apply_gates(rows, [("counters.x", 5.0)])
    assert not apply_gates(rows, [("counters.x", 15.0)])
    report = diff_report(a, b, [("runtime_ps", 10.0)])
    assert not report["ok"]
    assert report["violations"][0]["key"] == "runtime_ps"
    text = render_diff_report(report)
    assert "runtime_ps" in text and "GATE" in text


def test_diff_missing_and_zero_keys_fail_gates():
    a = {"counters": {"gone": 5, "zero": 0}}
    b = {"counters": {"new": 7, "zero": 3}}
    rows = diff_docs(a, b)
    violations = apply_gates(rows, [("counters.*", 100.0)])
    why = {v["key"]: v["why"] for v in violations}
    assert "missing" in why["counters.gone"]
    assert "missing" in why["counters.new"]
    assert "zero" in why["counters.zero"]


def test_parse_gate():
    assert parse_gate("counters.*:5") == ("counters.*", 5.0)
    assert parse_gate("series.link:a:bytes.last:0") == (
        "series.link:a:bytes.last", 0.0
    )
    for bad in ("nonsense", ":5", "glob:abc", "glob:-1"):
        with pytest.raises(ValueError):
            parse_gate(bad)


# ---------------------------------------------------------------------------
# Profiler projection (deterministic to_dict).
# ---------------------------------------------------------------------------
def test_profiler_to_dict_is_deterministic():
    from repro.obs.profile import KernelProfiler

    def profile_once():
        profiler = KernelProfiler(rate_every_events=2000)
        run_cell(_small_cell(telemetry=None), profiler=profiler)
        return profiler.to_dict()

    first, second = profile_once(), profile_once()
    assert first == second
    blob = json.dumps(first, sort_keys=True, separators=(",", ":"))
    assert json.loads(blob) == first  # JSON-safe
    # Wall-clock content is excluded by construction.
    assert "wall" not in blob and "ns" not in set(
        key.rsplit("_", 1)[-1] for key in first
    )
    assert first["schema"] == "repro.profile/1"
    assert first["events_profiled"] == sum(first["sites"].values())
    for sim_ps, fired in first["rates"]:
        assert isinstance(sim_ps, int) and isinstance(fired, int)


# ---------------------------------------------------------------------------
# Campaign wiring.
# ---------------------------------------------------------------------------
def test_campaign_config_telemetry_knob():
    from repro.recovery.campaign import CampaignConfig

    record = {
        "name": "t", "protocol": "TokenCMP-dst1",
        "scenarios": [{"name": "baseline"}],
        "workloads": ["counter"], "seeds": [1],
        "params": {"num_chips": 2, "procs_per_chip": 2},
        "max_events": 2_000_000,
        "telemetry_sample_every": 1000,
    }
    config = CampaignConfig.from_dict(record)
    expanded = config.expand()
    assert all(cell.telemetry is not None for _s, cell in expanded)
    assert expanded[0][1].telemetry.sample_every_events == 1000
    # Without the knob, cells stay telemetry-free (and keep their keys).
    del record["telemetry_sample_every"]
    plain = CampaignConfig.from_dict(record).expand()
    assert all(cell.telemetry is None for _s, cell in plain)
