"""Focused unit tests for the intra-CMP directory (L2 bank) controller.

These drive the bank through real networks with scripted peer endpoints,
pinning down the trickier mechanics: busy queueing, external-request
deferral rules, recall evictions, and the L1 writeback handshake.
"""

import pytest

from repro.common.params import SystemParams
from repro.common.stats import Stats
from repro.common.types import NodeId, NodeKind
from repro.directory.intra import IntraDirL2Controller
from repro.directory.states import GRANT_E, GRANT_M, GRANT_S, L2Line
from repro.interconnect.message import Message, MsgType
from repro.interconnect.network import Network
from repro.interconnect.traffic import TrafficMeter
from repro.memory.cache import CacheArray
from repro.sim.kernel import Simulator
from repro.system.config import protocol


@pytest.fixture
def rig():
    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    sim = Simulator()
    net = Network(sim, params, TrafficMeter())
    stats = Stats()
    node = NodeId(NodeKind.L2, 0, 0)
    bank = IntraDirL2Controller(
        node, sim, net, params, stats, protocol("DirectoryCMP"),
        CacheArray(params.l2_bank_size, params.l2_assoc, params.block_size),
    )
    inboxes = {}
    for l1 in params.chip_l1s(0, include_icache=False):
        inboxes[l1] = []
        net.register(l1, inboxes[l1].append)
    inboxes["mem"] = []
    net.register(NodeId(NodeKind.MEM, 0), inboxes["mem"].append)
    inboxes["remote"] = []
    net.register(params.l2_bank(0, 1), inboxes["remote"].append)
    return params, sim, net, stats, bank, inboxes


BLOCK = 0  # maps to l2[0.0] on chip 0, homed at mem[0]


def _local_gets(net, sim, params, proc=0):
    l1 = params.l1d_of(proc)
    net.send(Message(MsgType.DIR_GETS, l1, params.l2_bank(BLOCK, 0), BLOCK,
                     requestor=l1))
    sim.run()


def test_local_miss_goes_global(rig):
    params, sim, net, stats, bank, inboxes = rig
    _local_gets(net, sim, params)
    (msg,) = inboxes["mem"]
    assert msg.mtype is MsgType.DIR_GETS
    line = bank.array.lookup(BLOCK, touch=False)
    assert line.busy and line.pending is not None


def test_global_grant_flows_to_l1_and_unblocks_home(rig):
    params, sim, net, stats, bank, inboxes = rig
    _local_gets(net, sim, params)
    net.send(Message(MsgType.DIR_DATA, NodeId(NodeKind.MEM, 0), bank.node,
                     BLOCK, data=5, acks=0, extra=GRANT_E))
    sim.run()
    l1 = params.l1d_of(0)
    grants = [m for m in inboxes[l1] if m.mtype is MsgType.DIR_DATA]
    assert grants and grants[0].data == 5 and grants[0].extra == GRANT_E
    unblocks = [m for m in inboxes["mem"] if m.mtype is MsgType.DIR_UNBLOCK]
    assert unblocks and unblocks[0].extra == GRANT_E


def test_second_local_request_queues_behind_busy(rig):
    params, sim, net, stats, bank, inboxes = rig
    _local_gets(net, sim, params, proc=0)
    _local_gets(net, sim, params, proc=1)
    assert stats.get("l2.deferred_requests") == 1
    line = bank.array.lookup(BLOCK, touch=False)
    assert len(line.queue) == 1


def test_external_inv_with_no_line_acks_immediately(rig):
    params, sim, net, stats, bank, inboxes = rig
    remote = params.l2_bank(0, 1)
    net.send(Message(MsgType.DIR_INV, remote, bank.node, BLOCK, requestor=remote))
    sim.run()
    acks = [m for m in inboxes["remote"] if m.mtype is MsgType.DIR_ACK]
    assert len(acks) == 1


def test_external_inv_invalidates_local_sharers_first(rig):
    params, sim, net, stats, bank, inboxes = rig
    line = L2Line(gstate="S", l2_data=True, value=3)
    line.sharers = {params.l1d_of(0), params.l1d_of(1)}
    bank.array.allocate(BLOCK, line)
    remote = params.l2_bank(0, 1)
    net.send(Message(MsgType.DIR_INV, remote, bank.node, BLOCK, requestor=remote))
    sim.run()
    # Both local L1s got invalidations; no ack to the requestor yet.
    for proc in (0, 1):
        invs = [m for m in inboxes[params.l1d_of(proc)] if m.mtype is MsgType.DIR_INV]
        assert len(invs) == 1
    assert not [m for m in inboxes["remote"] if m.mtype is MsgType.DIR_ACK]
    # Local acks arrive -> chip-level ack goes out.
    for proc in (0, 1):
        net.send(Message(MsgType.DIR_ACK, params.l1d_of(proc), bank.node, BLOCK))
    sim.run()
    assert [m for m in inboxes["remote"] if m.mtype is MsgType.DIR_ACK]


def test_external_fwd_defers_behind_local_grant(rig):
    params, sim, net, stats, bank, inboxes = rig
    # A purely local transaction in flight: line busy, pending None.
    line = L2Line(gstate="M", l2_data=True, value=7)
    bank.array.allocate(BLOCK, line)
    _local_gets(net, sim, params, proc=0)  # grants locally, busy till unblock
    remote = params.l2_bank(0, 1)
    net.send(Message(MsgType.DIR_FWD_GETX, remote, bank.node, BLOCK,
                     requestor=remote, acks=0))
    sim.run()
    assert not [m for m in inboxes["remote"] if m.mtype is MsgType.DIR_DATA]
    # The local unblock releases the queue; the forward then proceeds.
    l1 = params.l1d_of(0)
    net.send(Message(MsgType.DIR_UNBLOCK, l1, bank.node, BLOCK, requestor=l1))
    sim.run()
    # The forward recalls the new local owner (proc 0) ...
    recalls = [m for m in inboxes[l1] if m.mtype is MsgType.DIR_RECALL]
    assert recalls


def test_l1_writeback_three_phase(rig):
    params, sim, net, stats, bank, inboxes = rig
    l1 = params.l1d_of(0)
    line = L2Line(gstate="M", owner_l1=l1, owner_state="M")
    bank.array.allocate(BLOCK, line)
    net.send(Message(MsgType.DIR_WB_REQ, l1, bank.node, BLOCK, requestor=l1))
    sim.run()
    grants = [m for m in inboxes[l1] if m.mtype is MsgType.DIR_WB_GRANT]
    assert grants
    net.send(Message(MsgType.DIR_WB_DATA, l1, bank.node, BLOCK,
                     requestor=l1, data=11, dirty=True))
    sim.run()
    line = bank.array.lookup(BLOCK, touch=False)
    assert line.owner_l1 is None and line.l2_data and line.value == 11
    assert not line.busy


def test_recall_eviction_frees_the_set(rig):
    params, sim, net, stats, bank, inboxes = rig
    sets = bank.array.num_sets
    # Fill one set with lines that all have local L1 owners.
    owner = params.l1d_of(0)
    base = BLOCK
    blocks = [base + k * sets * params.block_size for k in range(4)]
    for addr in blocks:
        bank.array.allocate(addr, L2Line(gstate="M", owner_l1=owner, owner_state="M"))
    # A request for a 5th conflicting block forces a recall eviction.
    fifth = base + 4 * sets * params.block_size
    l1 = params.l1d_of(1)
    net.send(Message(MsgType.DIR_GETS, l1, bank.node, fifth, requestor=l1))
    sim.run()
    assert stats.get("l2.recall_evictions") == 1
    recalls = [m for m in inboxes[owner] if m.mtype is MsgType.DIR_RECALL]
    assert recalls and recalls[0].extra == "inv"
    # Owner returns the data; the eviction proceeds to a chip writeback.
    victim = recalls[0].addr
    net.send(Message(MsgType.DIR_WB_DATA, owner, bank.node, victim,
                     requestor=owner, data=9, dirty=True, extra="recall"))
    sim.run()
    wb_reqs = [m for m in inboxes["mem"]
               if m.mtype is MsgType.DIR_WB_REQ and m.addr == victim]
    assert wb_reqs
