"""Tests for the fault-injection subsystem: adversarial network, liveness
watchdog, and continuous invariant monitoring."""

import pytest

from repro.common.errors import DeadlockError, ProtocolError, StarvationError
from repro.common.params import SystemParams
from repro.common.stats import Stats
from repro.faults.injector import ClassPolicy, FaultConfig, FaultyNetwork
from repro.faults.watchdog import InvariantMonitor, LivenessWatchdog
from repro.interconnect.message import Message, MsgType
from repro.interconnect.network import Network
from repro.interconnect.traffic import TrafficMeter
from repro.sim.kernel import Simulator
from repro.system import MachineSpec
from repro.workloads.base import Workload
from repro.workloads.locking import LockingWorkload


def build_faulty(config, seed=1):
    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    sim = Simulator()
    net = FaultyNetwork(Network(sim, params, TrafficMeter()), config, seed, Stats())
    return sim, net, params


def sink(log, sim):
    def handler(msg):
        log.append((sim.now, msg))
    return handler


# ---------------------------------------------------------------------------
# FaultyNetwork unit behaviour.
# ---------------------------------------------------------------------------
def test_transient_requests_can_be_dropped():
    sim, net, p = build_faulty(FaultConfig(request=ClassPolicy(drop=1.0)))
    log = []
    net.register(p.l1d_of(1), sink(log, sim))
    net.send(Message(MsgType.TOK_GETS, p.l1d_of(0), p.l1d_of(1), 0x100,
                     requestor=p.l1d_of(0)))
    sim.run()
    assert log == []
    assert net.stats.get("faults.dropped") == 1
    assert net.stats.get("faults.dropped.request") == 1


def test_transient_requests_can_be_duplicated():
    sim, net, p = build_faulty(
        FaultConfig(request=ClassPolicy(duplicate=1.0, reorder_window_ps=0))
    )
    log = []
    net.register(p.l1d_of(1), sink(log, sim))
    net.send(Message(MsgType.TOK_GETS, p.l1d_of(0), p.l1d_of(1), 0x100,
                     requestor=p.l1d_of(0)))
    sim.run()
    assert len(log) == 2
    assert net.stats.get("faults.duplicated") == 1


def test_token_carriers_are_never_dropped_by_default():
    sim, net, p = build_faulty(FaultConfig(response=ClassPolicy(drop=1.0)))
    log = []
    net.register(p.l1d_of(1), sink(log, sim))
    net.send(Message(MsgType.TOK_ACK, p.l1d_of(0), p.l1d_of(1), 0x100, tokens=3))
    sim.run()
    assert len(log) == 1  # delivered despite the 100% drop policy
    assert net.stats.get("faults.suppressed.drop.response") == 1
    assert net.stats.get("faults.dropped") == 0


def test_token_carriers_are_never_duplicated_by_default():
    sim, net, p = build_faulty(FaultConfig(response=ClassPolicy(duplicate=1.0)))
    log = []
    net.register(p.l1d_of(1), sink(log, sim))
    net.send(Message(MsgType.TOK_ACK, p.l1d_of(0), p.l1d_of(1), 0x100, tokens=3))
    sim.run()
    assert len(log) == 1
    assert net.stats.get("faults.suppressed.duplicate.response") == 1


def test_unsafe_drop_destroys_tokens_and_is_counted():
    sim, net, p = build_faulty(
        FaultConfig(response=ClassPolicy(drop=1.0), allow_unsafe=True)
    )
    log = []
    net.register(p.l1d_of(1), sink(log, sim))
    net.send(Message(MsgType.TOK_ACK, p.l1d_of(0), p.l1d_of(1), 0x100, tokens=3))
    sim.run()
    assert log == []
    assert net.stats.get("faults.tokens_destroyed") == 3
    assert list(net.in_flight_tokens()) == []  # destroyed, not stuck in flight


def test_delay_fault_postpones_delivery():
    sim, net, p = build_faulty(FaultConfig(response=ClassPolicy(delay=1.0)))
    plain_sim, plain_net, _ = build_faulty(FaultConfig())
    faulty_log, plain_log = [], []
    net.register(p.l1d_of(1), sink(faulty_log, sim))
    plain_net.register(p.l1d_of(1), sink(plain_log, plain_sim))
    msg = lambda: Message(MsgType.TOK_ACK, p.l1d_of(0), p.l1d_of(1), 0x100, tokens=1)
    net.send(msg())
    plain_net.send(msg())
    sim.run()
    plain_sim.run()
    assert faulty_log[0][0] > plain_log[0][0]
    assert net.stats.get("faults.delayed") == 1


def test_persistent_messages_keep_fifo_order_under_jitter():
    sim, net, p = build_faulty(
        FaultConfig(persistent=ClassPolicy(delay=0.5, reorder=0.5,
                                           delay_ps=50_000, fifo=True))
    )
    log = []
    arb = p.home_arbiter(0x100)
    net.register(arb, sink(log, sim))
    src = p.l1d_of(0)
    for serial in range(20):
        net.send(Message(MsgType.PERSIST_REQ, src, arb, 0x100,
                         requestor=src, serial=serial, extra=0))
    sim.run()
    assert [m.serial for _t, m in log] == list(range(20))
    times = [t for t, _m in log]
    assert times == sorted(times)


def test_in_flight_tokens_tracked_until_absorbed():
    sim, net, p = build_faulty(FaultConfig(response=ClassPolicy(delay=1.0)))
    delivered = []

    def absorbing_handler(msg):
        delivered.append(msg)
        net.token_absorbed(msg)  # what TokenCacheController._on_tokens does

    net.register(p.l1d_of(1), absorbing_handler)
    net.send(Message(MsgType.TOK_DATA, p.l1d_of(0), p.l1d_of(1), 0x100,
                     tokens=4, owner=True, data=7))
    assert list(net.in_flight_tokens()) == [(0x100, (4, True, 7))]
    sim.run()
    assert delivered and list(net.in_flight_tokens()) == []


def test_rate_validation():
    with pytest.raises(ValueError):
        ClassPolicy(drop=1.5)


# ---------------------------------------------------------------------------
# Whole-machine integration: the correctness substrate under the adversary.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("proto", ["TokenCMP-arb0", "TokenCMP-dst0", "TokenCMP-dst4"])
def test_locking_completes_under_ten_percent_faults(small_params, proto):
    machine = MachineSpec(params=small_params, protocol=proto, seed=3, faults=FaultConfig.adversarial(0.10)).build()
    watchdog = LivenessWatchdog(machine)
    monitor = InvariantMonitor(machine, check_every_events=512)
    wl = LockingWorkload(small_params, num_locks=4, acquires_per_proc=6, seed=3)
    machine.run(wl, max_events=20_000_000)
    machine.check_token_invariants()
    assert all(c == 6 for c in wl.acquired_counts)
    assert watchdog.trips == 0
    assert monitor.checks > 0


def test_faulty_runs_are_reproducible(small_params):
    def one_run():
        machine = MachineSpec(params=small_params, protocol="TokenCMP-dst1", seed=5, faults=FaultConfig.adversarial(0.15)).build()
        wl = LockingWorkload(small_params, num_locks=2, acquires_per_proc=6, seed=5)
        result = machine.run(wl, max_events=20_000_000)
        return result.runtime_ps, dict(machine.stats.counters)

    assert one_run() == one_run()


def test_fault_free_wrapper_changes_nothing(small_params):
    def run(faults):
        machine = MachineSpec(params=small_params, protocol="TokenCMP-dst1", seed=2, faults=faults).build()
        wl = LockingWorkload(small_params, num_locks=4, acquires_per_proc=5, seed=2)
        return machine.run(wl, max_events=20_000_000).runtime_ps

    assert run(None) == run(FaultConfig())


# ---------------------------------------------------------------------------
# Liveness watchdog.
# ---------------------------------------------------------------------------
class _OneStarvedProc(Workload):
    """Proc 0 issues a single miss; the other procs compute without memory.

    With an (unsafely) lossy network proc 0 starves while events keep
    firing — exactly what the watchdog exists to catch.
    """

    name = "one-starved-proc"

    def __init__(self, params, spins=4000):
        super().__init__(params, seed=0)
        self.spins = spins
        self.blocks = self.alloc.blocks(params.num_procs)

    def generators(self):
        from repro.cpu.ops import Store, Think

        def starved():
            yield Store(self.blocks[0], 1)

        def spinner():
            for _ in range(self.spins):
                yield Think(duration_ns=50.0)

        return [starved()] + [spinner() for _ in range(1, self.params.num_procs)]


def _lossy_unsafe():
    # Drop every coherence message proc 0's miss depends on.
    lossy = ClassPolicy(drop=1.0)
    return FaultConfig(request=lossy, response=lossy, persistent=lossy,
                       allow_unsafe=True)


def test_watchdog_raises_starvation_error_with_diagnostics(small_params):
    machine = MachineSpec(params=small_params, protocol="TokenCMP-dst0", seed=1, faults=_lossy_unsafe()).build()
    LivenessWatchdog(machine, budget_ns=500.0, check_every_events=64)
    with pytest.raises(StarvationError) as exc:
        machine.run(_OneStarvedProc(small_params), max_events=5_000_000)
    diag = exc.value.diagnostics
    assert diag is not None
    assert diag.stalled_procs and diag.stalled_procs[0][0] == 0
    assert "stalled: proc 0" in diag.render()


def test_quiescence_without_completion_gets_diagnostics(small_params):
    # Every proc's only operation is a miss whose messages all vanish: the
    # event queue drains with unfinished threads (global quiescence).
    class AllStarved(Workload):
        name = "all-starved"

        def __init__(self, params):
            super().__init__(params, seed=0)
            self.blocks = self.alloc.blocks(params.num_procs)

        def generators(self):
            from repro.cpu.ops import Store

            def thread(proc):
                yield Store(self.blocks[proc], 1)

            return [thread(p) for p in range(self.params.num_procs)]

    machine = MachineSpec(params=small_params, protocol="TokenCMP-dst0", seed=1, faults=_lossy_unsafe()).build()
    LivenessWatchdog(machine, budget_ns=1e9)  # too lazy to trip first
    with pytest.raises(DeadlockError) as exc:
        machine.run(AllStarved(small_params), max_events=5_000_000)
    assert not isinstance(exc.value, StarvationError)
    assert exc.value.diagnostics is not None
    assert len(exc.value.diagnostics.stalled_procs) == small_params.num_procs


# ---------------------------------------------------------------------------
# Continuous invariant monitoring.
# ---------------------------------------------------------------------------
def test_invariant_monitor_catches_token_destruction(small_params):
    machine = MachineSpec(params=small_params, protocol="TokenCMP-dst0", seed=1, faults=FaultConfig(response=ClassPolicy(drop=1.0), allow_unsafe=True)).build()
    InvariantMonitor(machine, check_every_events=32)
    wl = LockingWorkload(small_params, num_locks=2, acquires_per_proc=4, seed=1)
    with pytest.raises((ProtocolError, DeadlockError)) as exc:
        machine.run(wl, max_events=5_000_000)
    # Tokens were dropped on the floor; the monitor must flag conservation
    # (unless the run starved first, in which case quiescence is reported).
    if isinstance(exc.value, ProtocolError):
        assert "token count" in str(exc.value)
    assert machine.stats.get("faults.tokens_destroyed") > 0


def test_invariant_monitor_rejects_non_token_families(small_params):
    machine = MachineSpec(params=small_params, protocol="DirectoryCMP", seed=1).build()
    with pytest.raises(ValueError):
        InvariantMonitor(machine)


def test_kernel_watcher_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.add_watcher(lambda: None, every_events=0)
