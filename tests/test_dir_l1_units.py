"""Focused unit tests for the DirectoryCMP L1 controller's racier paths."""

import pytest

from repro.common.params import SystemParams
from repro.common.stats import Stats
from repro.common.types import NodeId, NodeKind
from repro.directory.l1 import DirL1Controller
from repro.directory.states import E, EvictBuf, GRANT_M, GRANT_S, L1Entry, M, O, S
from repro.interconnect.message import Message, MsgType
from repro.interconnect.network import Network
from repro.interconnect.traffic import TrafficMeter
from repro.memory.cache import CacheArray
from repro.sim.kernel import Simulator
from repro.system.config import protocol


BLOCK = 0x4000


@pytest.fixture
def rig():
    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    sim = Simulator()
    net = Network(sim, params, TrafficMeter())
    l1 = DirL1Controller(
        params.l1d_of(0), sim, net, params, Stats(), protocol("DirectoryCMP"),
        CacheArray(params.l1_size, params.l1_assoc, params.block_size),
    )
    inboxes = {}
    peer = params.l1d_of(1)
    inboxes["peer"] = []
    net.register(peer, inboxes["peer"].append)
    home = params.l2_bank(BLOCK, 0)
    inboxes["l2"] = []
    net.register(home, inboxes["l2"].append)
    return params, sim, net, l1, inboxes, peer, home


def install(l1, state, value=5, dirty=False):
    l1.array.allocate(BLOCK, L1Entry(state=state, value=value, dirty=dirty))


def test_fwd_gets_share_downgrades_owner(rig):
    params, sim, net, l1, inboxes, peer, home = rig
    install(l1, M, value=9, dirty=True)
    net.send(Message(MsgType.DIR_FWD_GETS, home, l1.node, BLOCK,
                     requestor=peer, extra="share"))
    sim.run()
    (data,) = inboxes["peer"]
    assert data.mtype is MsgType.DIR_DATA and data.extra == GRANT_S
    assert data.data == 9
    assert l1.array.lookup(BLOCK, touch=False).state == O


def test_fwd_gets_migrate_surrenders_block(rig):
    params, sim, net, l1, inboxes, peer, home = rig
    install(l1, M, value=9, dirty=True)
    net.send(Message(MsgType.DIR_FWD_GETS, home, l1.node, BLOCK,
                     requestor=peer, extra="migrate"))
    sim.run()
    (data,) = inboxes["peer"]
    assert data.extra == GRANT_M and data.dirty
    assert l1.array.lookup(BLOCK, touch=False) is None


def test_fwd_getx_carries_ack_count(rig):
    params, sim, net, l1, inboxes, peer, home = rig
    install(l1, O, value=3)
    net.send(Message(MsgType.DIR_FWD_GETX, home, l1.node, BLOCK,
                     requestor=peer, acks=2))
    sim.run()
    (data,) = inboxes["peer"]
    assert data.extra == GRANT_M and data.acks == 2
    assert l1.array.lookup(BLOCK, touch=False) is None


def test_inv_acks_even_without_entry(rig):
    params, sim, net, l1, inboxes, peer, home = rig
    net.send(Message(MsgType.DIR_INV, home, l1.node, BLOCK, requestor=peer))
    sim.run()
    (ack,) = inboxes["peer"]
    assert ack.mtype is MsgType.DIR_ACK


def test_recall_inv_returns_data_from_exclusive(rig):
    params, sim, net, l1, inboxes, peer, home = rig
    install(l1, E, value=4)
    net.send(Message(MsgType.DIR_RECALL, home, l1.node, BLOCK, extra="inv"))
    sim.run()
    (resp,) = inboxes["l2"]
    assert resp.mtype is MsgType.DIR_WB_DATA and resp.extra == "recall"
    assert resp.data == 4
    assert l1.array.lookup(BLOCK, touch=False) is None


def test_recall_copy_keeps_ownership_as_O(rig):
    params, sim, net, l1, inboxes, peer, home = rig
    install(l1, M, value=6, dirty=True)
    net.send(Message(MsgType.DIR_RECALL, home, l1.node, BLOCK, extra="copy"))
    sim.run()
    (resp,) = inboxes["l2"]
    assert resp.mtype is MsgType.DIR_WB_DATA and resp.data == 6
    assert l1.array.lookup(BLOCK, touch=False).state == O


def test_eviction_buffer_answers_forward_and_cancels_wb(rig):
    params, sim, net, l1, inboxes, peer, home = rig
    # Mid-writeback: buffer holds the data, WB_REQ already sent.
    l1._evicting[BLOCK] = EvictBuf(7, True, M)
    net.send(Message(MsgType.DIR_FWD_GETX, home, l1.node, BLOCK,
                     requestor=peer, acks=0))
    sim.run()
    (data,) = inboxes["peer"]
    assert data.data == 7 and data.extra == GRANT_M
    # The writeback grant now elicits a cancellation, not data.
    net.send(Message(MsgType.DIR_WB_GRANT, home, l1.node, BLOCK))
    sim.run()
    cancels = [m for m in inboxes["l2"] if m.mtype is MsgType.DIR_WB_TOKEN]
    assert cancels and cancels[0].extra == "cancelled"


def test_hold_window_defers_forward_until_release(rig):
    params, sim, net, l1, inboxes, peer, home = rig
    install(l1, M, value=1)
    entry = l1.array.lookup(BLOCK, touch=False)
    entry.hold_until = sim.now + 100_000  # 100 ns critical section
    net.send(Message(MsgType.DIR_FWD_GETX, home, l1.node, BLOCK,
                     requestor=peer, acks=0))
    sim.run(until=50_000)
    assert inboxes["peer"] == []  # still parked
    sim.run()
    assert inboxes["peer"]  # served at hold expiry
    assert sim.now >= 100_000


def test_store_disarms_hold_and_flushes(rig):
    params, sim, net, l1, inboxes, peer, home = rig
    from repro.cpu.ops import Store

    install(l1, M, value=1)
    entry = l1.array.lookup(BLOCK, touch=False)
    entry.hold_until = sim.now + 500_000
    net.send(Message(MsgType.DIR_FWD_GETX, home, l1.node, BLOCK,
                     requestor=peer, acks=0))
    sim.run(until=20_000)
    assert inboxes["peer"] == []
    done = []
    l1.access(Store(BLOCK, 2), done.append)  # the "release" store
    sim.run(until=40_000)
    assert done and inboxes["peer"]  # flushed well before 500 us
    assert inboxes["peer"][0].data == 2  # and with the released value
