"""Focused unit tests for the token memory controller and the arbiter."""

import pytest

from repro.common.params import SystemParams
from repro.common.types import NodeId, NodeKind
from repro.core.memctrl import TokenMemController
from repro.core.persistent import Arbiter
from repro.common.stats import Stats
from repro.interconnect.message import Message, MsgType
from repro.interconnect.network import Network
from repro.interconnect.traffic import TrafficMeter
from repro.sim.kernel import Simulator
from repro.system.config import protocol


@pytest.fixture
def rig():
    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    sim = Simulator()
    net = Network(sim, params, TrafficMeter())
    stats = Stats()
    mem = TokenMemController(
        NodeId(NodeKind.MEM, 0), sim, net, params, stats, protocol("TokenCMP-dst1")
    )
    inbox = []
    requestor = params.l1d_of(0)
    net.register(requestor, inbox.append)
    # register remaining endpoints as sinks so broadcasts don't error
    for node in params.token_holders(0):
        if node != requestor:
            net.register(node, lambda m: None)
    return params, sim, net, stats, mem, requestor, inbox


BLOCK = 0  # homed at chip 0


def _send(net, sim, mem, mtype, requestor, **kw):
    net.send(Message(mtype=mtype, src=requestor, dst=mem.node, addr=BLOCK,
                     requestor=requestor, **kw))
    sim.run()


def test_memory_initially_owns_all_tokens(rig):
    params, sim, net, stats, mem, requestor, inbox = rig
    assert mem.tokens_of(BLOCK) == params.tokens_per_block
    assert mem.is_owner(BLOCK)


def test_gets_on_uncached_block_grants_everything(rig):
    params, sim, net, stats, mem, requestor, inbox = rig
    _send(net, sim, mem, MsgType.TOK_GETS, requestor)
    (msg,) = inbox
    assert msg.tokens == params.tokens_per_block and msg.owner
    assert msg.data == 0
    assert mem.tokens_of(BLOCK) == 0 and not mem.is_owner(BLOCK)


def test_gets_with_partial_tokens_sends_c_tokens(rig):
    params, sim, net, stats, mem, requestor, inbox = rig
    mem._set(BLOCK, 12, True)  # some tokens out in the system
    _send(net, sim, mem, MsgType.TOK_GETS, requestor)
    (msg,) = inbox
    assert msg.tokens == params.caches_per_chip  # C tokens
    assert not msg.owner and msg.data is not None  # memory keeps ownership
    assert mem.tokens_of(BLOCK) == 12 - params.caches_per_chip


def test_getx_takes_all_memory_tokens(rig):
    params, sim, net, stats, mem, requestor, inbox = rig
    _send(net, sim, mem, MsgType.TOK_GETX, requestor)
    (msg,) = inbox
    assert msg.tokens == params.tokens_per_block and msg.owner


def test_nonowner_memory_ignores_reads(rig):
    params, sim, net, stats, mem, requestor, inbox = rig
    mem._set(BLOCK, 4, False)
    _send(net, sim, mem, MsgType.TOK_GETS, requestor)
    assert inbox == []  # only the owner answers reads


def test_owner_writeback_updates_image(rig):
    params, sim, net, stats, mem, requestor, inbox = rig
    mem._set(BLOCK, 0, False)
    _send(net, sim, mem, MsgType.TOK_WB_DATA, requestor,
          tokens=params.tokens_per_block, owner=True, data=99)
    assert mem.is_owner(BLOCK)
    assert mem.image.read(BLOCK) == 99


def test_memory_dram_latency_charged_for_data(rig):
    params, sim, net, stats, mem, requestor, inbox = rig
    t0 = sim.now
    _send(net, sim, mem, MsgType.TOK_GETS, requestor)
    # ctrl 6ns + dram 80ns + 2 mem-link hops ~20ns each + serialization.
    assert sim.now - t0 >= params.mem_ctrl_latency_ps + params.dram_latency_ps


def test_memory_reserves_tokens_for_persistent_requests(rig):
    params, sim, net, stats, mem, requestor, inbox = rig
    other = params.l1d_of(3)
    # Activate a persistent request from another processor...
    net.send(Message(MsgType.PERSIST_ACTIVATE, other, mem.node, BLOCK,
                     requestor=other, prio=3, read=False, extra=3))
    sim.run()
    assert mem.tokens_of(BLOCK) == 0  # all forwarded to the initiator
    # ...then a transient from someone else gets nothing even if tokens
    # come back meanwhile.
    _send(net, sim, mem, MsgType.TOK_WB_DATA, requestor,
          tokens=4, owner=False, data=None)
    _send(net, sim, mem, MsgType.TOK_GETS, requestor)
    assert all(m.dst != requestor for m in inbox)


def test_arbiter_fifo_and_cancellation(rig):
    params, sim, net, stats, mem, requestor, inbox = rig
    arb = Arbiter(NodeId(NodeKind.ARB, 0), sim, net, params, stats)

    def preq(proc, node):
        net.send(Message(MsgType.PERSIST_REQ, node, arb.node, BLOCK,
                         requestor=node, prio=proc, read=False, extra=proc))

    a, b = params.l1d_of(1), params.l1d_of(2)
    preq(1, a)
    preq(2, b)
    sim.run()
    assert arb._active is not None and arb._active.extra == 1
    assert len(arb._queue) == 1
    # b's request is satisfied by stray tokens while queued: cancel it.
    net.send(Message(MsgType.PERSIST_DEACTIVATE, b, arb.node, BLOCK,
                     requestor=b, extra=2))
    sim.run()
    assert len(arb._queue) == 0
    assert stats.get("arb.cancelled_in_queue") == 1
    # a deactivates normally: nothing remains active.
    net.send(Message(MsgType.PERSIST_DEACTIVATE, a, arb.node, BLOCK,
                     requestor=a, extra=1))
    sim.run()
    assert arb._active is None


def test_arbiter_counts_and_drops_spurious_deactivate(rig):
    params, sim, net, stats, mem, requestor, inbox = rig
    arb = Arbiter(NodeId(NodeKind.ARB, 0), sim, net, params, stats)
    b = params.l1d_of(2)
    # A deactivate for a request that is neither active nor queued — the
    # Section 3.2 duplicated/delayed-message race.  Must count, not raise.
    net.send(Message(MsgType.PERSIST_DEACTIVATE, b, arb.node, BLOCK,
                     requestor=b, extra=2))
    sim.run()
    assert stats.get("arb.spurious_deactivates") == 1
    assert arb._active is None and not arb._queue


def test_duplicated_deactivate_after_retirement_is_spurious(rig):
    params, sim, net, stats, mem, requestor, inbox = rig
    arb = Arbiter(NodeId(NodeKind.ARB, 0), sim, net, params, stats)
    a = params.l1d_of(1)
    net.send(Message(MsgType.PERSIST_REQ, a, arb.node, BLOCK,
                     requestor=a, prio=1, read=False, extra=1))
    sim.run()
    for _ in range(2):  # original deactivate, then a network duplicate
        net.send(Message(MsgType.PERSIST_DEACTIVATE, a, arb.node, BLOCK,
                         requestor=a, extra=1))
    sim.run()
    assert arb._active is None
    assert stats.get("arb.spurious_deactivates") == 1
