"""Battery-level tests: the fault sweep completes, asserts, and reproduces.

The full sweep is tier-2 (slow); tier-1 keeps a tiny-scale smoke subset so
the default test run still exercises the battery end to end.
"""

import pytest

from repro.faults.battery import run_robustness_battery, write_battery


def test_battery_smoke_tiny(tmp_path):
    """Tier-1 smoke: one protocol, two rates, shrunken workloads."""
    out = tmp_path / "battery.txt"
    text = write_battery(
        str(out), rates=(0.0, 0.10), protocols=("TokenCMP-dst1",),
        scale=0.25, seed=1,
    )
    assert out.read_text() == text
    assert "violations" in text and "watchdog trips" in text
    assert "locking under fault injection" in text
    assert "barrier under fault injection" in text


def test_battery_smoke_is_deterministic(tmp_path):
    kwargs = dict(rates=(0.0, 0.10), protocols=("TokenCMP-dst1",),
                  scale=0.25, seed=7)
    a = write_battery(str(tmp_path / "a.txt"), **kwargs)
    b = write_battery(str(tmp_path / "b.txt"), **kwargs)
    assert a == b  # byte-identical report for a fixed seed


@pytest.mark.tier2
def test_battery_full_sweep_reproduces_byte_identical(tmp_path):
    """The ISSUE acceptance criterion: at 10% transient drop+dup+reorder all
    contention micro-benchmarks complete on both arb and dst activation with
    zero conservation violations and zero watchdog trips, and a fixed seed
    gives byte-identical reports across two runs."""
    a = write_battery(str(tmp_path / "a.txt"), seed=1)
    b = write_battery(str(tmp_path / "b.txt"), seed=1)
    assert a == b
    assert (tmp_path / "a.txt").read_bytes() == (tmp_path / "b.txt").read_bytes()


@pytest.mark.tier2
def test_battery_summary_counts_runs():
    tables = run_robustness_battery(rates=(0.0, 0.20), scale=0.5, seed=2)
    summary = tables[-1]
    runs, completed, checks, violations, trips, _spurious = summary.rows[0]
    assert runs == completed
    assert int(runs) == 2 * 3 * 2  # workloads x protocols x rates
    assert violations == "0" and trips == "0"
    assert int(checks) >= int(runs)  # at least the quiescent re-check each
