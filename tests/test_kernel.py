"""Unit tests for the discrete-event kernel."""

import pytest

from repro.common.errors import DeadlockError
from repro.sim.kernel import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30, order.append, "c")
    sim.schedule(10, order.append, "a")
    sim.schedule(20, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 30


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for tag in range(5):
        sim.schedule(100, order.append, tag)
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(10, fired.append, "x")
    sim.schedule(5, event.cancel)
    sim.run()
    assert fired == []


def test_schedule_during_run_extends_simulation():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            sim.schedule(10, chain, n + 1)

    sim.schedule(0, chain, 0)
    sim.run()
    assert seen == [0, 1, 2, 3]
    assert sim.now == 30


def test_schedule_at_absolute_time():
    sim = Simulator()
    times = []
    sim.schedule(10, lambda: sim.schedule_at(50, lambda: times.append(sim.now)))
    sim.run()
    assert times == [50]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_run_until_stops_clock():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, 1)
    sim.schedule(100, fired.append, 2)
    sim.run(until=50)
    assert fired == [1]
    assert sim.now == 50
    sim.run()
    assert fired == [1, 2]


def test_max_events_with_expect_drain_raises():
    sim = Simulator()

    def forever():
        sim.schedule(1, forever)

    sim.schedule(0, forever)
    with pytest.raises(DeadlockError):
        sim.run(max_events=100, expect_drain=True)


def test_pending_counts_live_events():
    sim = Simulator()
    e1 = sim.schedule(10, lambda: None)
    sim.schedule(20, lambda: None)
    assert sim.pending == 2
    e1.cancel()
    assert sim.pending == 1


def test_pending_decrements_as_events_fire():
    sim = Simulator()
    seen = []
    for delay in (10, 20, 30):
        sim.schedule(delay, lambda: seen.append(sim.pending))
    sim.run()
    assert sim.pending == 0
    assert seen == [2, 1, 0]  # each callback sees the not-yet-fired rest


def test_cancel_after_fire_does_not_double_decrement():
    sim = Simulator()
    event = sim.schedule(10, lambda: None)
    sim.schedule(20, lambda: None)
    sim.run(until=15)  # first event fired, second still pending
    assert sim.pending == 1
    event.cancel()  # no-op: already fired
    assert sim.pending == 1


def test_double_cancel_decrements_once():
    sim = Simulator()
    event = sim.schedule(10, lambda: None)
    sim.schedule(20, lambda: None)
    event.cancel()
    event.cancel()
    assert sim.pending == 1
    sim.run()
    assert sim.pending == 0


def test_watcher_cadence_spans_multiple_runs():
    sim = Simulator()
    ticks = []
    sim.add_watcher(lambda: ticks.append(sim.events_fired), every_events=4)
    for delay in range(1, 7):
        sim.schedule(delay, lambda: None)
    sim.run()
    assert sim.events_fired == 6
    assert ticks == [4]
    # The cadence is on the *cumulative* fired-event count, so a second
    # run() on the same kernel continues the rhythm instead of restarting.
    for delay in range(1, 7):
        sim.schedule(delay, lambda: None)
    sim.run()
    assert sim.events_fired == 12
    assert ticks == [4, 8, 12]


def test_watcher_cadence_does_not_drift_across_bounded_runs():
    # The threshold bookkeeping must behave exactly like the old
    # ``events_fired % every`` check even when the cumulative count is
    # chopped into many run() calls by ``until`` bounds that stop the
    # clock mid-window.
    sim = Simulator()
    ticks = []
    sim.add_watcher(lambda: ticks.append(sim.events_fired), every_events=4)
    for delay in range(1, 11):  # one event per ps, t=1..10
        sim.schedule(delay, lambda: None)
    sim.run(until=3)  # 3 events: inside the first window
    assert ticks == []
    sim.run(until=5)  # 5 events total: crossed 4
    assert ticks == [4]
    sim.run(until=7)  # 7 events: inside the second window
    assert ticks == [4]
    sim.run()  # 10 events: crossed 8
    assert sim.events_fired == 10
    assert ticks == [4, 8]


def test_watcher_cadence_with_max_events_bounds():
    sim = Simulator()
    ticks = []
    sim.add_watcher(lambda: ticks.append(sim.events_fired), every_events=3)
    for delay in range(1, 9):
        sim.schedule(delay, lambda: None)
    sim.run(max_events=2)
    sim.run(max_events=2)  # 4 events total: crossed 3
    assert ticks == [3]
    sim.run()
    assert sim.events_fired == 8
    assert ticks == [3, 6]


def test_multiple_watchers_fire_at_their_own_cadences():
    sim = Simulator()
    ticks = []
    sim.add_watcher(lambda: ticks.append(("a", sim.events_fired)), every_events=2)
    sim.add_watcher(lambda: ticks.append(("b", sim.events_fired)), every_events=3)
    for delay in range(1, 7):
        sim.schedule(delay, lambda: None)
    sim.run()
    # Both due at 6: registration order breaks the tie.
    assert ticks == [
        ("a", 2), ("b", 3), ("a", 4), ("a", 6), ("b", 6),
    ]


def test_watcher_added_between_runs_joins_cumulative_cadence():
    sim = Simulator()
    ticks = []
    for delay in range(1, 6):
        sim.schedule(delay, lambda: None)
    sim.run()
    assert sim.events_fired == 5
    # Registered at count 5 with every=4: the next multiple is 8, not 9.
    sim.add_watcher(lambda: ticks.append(sim.events_fired), every_events=4)
    for delay in range(1, 6):
        sim.schedule(delay, lambda: None)
    sim.run()
    assert sim.events_fired == 10
    assert ticks == [8]


def test_watcher_exception_leaves_event_count_consistent():
    sim = Simulator()

    def boom():
        raise RuntimeError("invariant violated")

    sim.add_watcher(boom, every_events=3)
    for delay in range(1, 6):
        sim.schedule(delay, lambda: None)
    with pytest.raises(RuntimeError):
        sim.run()
    assert sim.events_fired == 3  # counted up to and including the trigger


def test_watcher_every_events_must_be_positive():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.add_watcher(lambda: None, every_events=0)


def test_max_events_is_per_run_call():
    sim = Simulator()
    for delay in range(1, 6):
        sim.schedule(delay, lambda: None)
    sim.run(max_events=2)
    assert sim.events_fired == 2
    sim.run(max_events=2)
    assert sim.events_fired == 4
    sim.run()
    assert sim.events_fired == 5


def test_cancelled_event_is_marked_and_pending_drops():
    sim = Simulator()
    event = sim.schedule(10, lambda: None)
    assert not event.cancelled
    event.cancel()
    assert event.cancelled
    assert sim.pending == 0
    sim.run()
    assert sim.events_fired == 0
