"""Unit tests for the set-associative cache array."""

import pytest

from repro.common.errors import ConfigError
from repro.memory.cache import CacheArray


def tiny(assoc=2, sets=2, block=64):
    return CacheArray(assoc * sets * block, assoc, block, "tiny")


def addr_for_set(array, set_index, tag):
    return (tag * array.num_sets + set_index) * array.block_size


def test_lookup_miss_returns_none():
    c = tiny()
    assert c.lookup(0) is None
    assert 0 not in c


def test_allocate_and_lookup():
    c = tiny()
    c.allocate(0, "entry")
    assert c.lookup(0) == "entry"
    assert len(c) == 1


def test_lru_eviction_order():
    c = tiny(assoc=2)
    a0 = addr_for_set(c, 0, 0)
    a1 = addr_for_set(c, 0, 1)
    a2 = addr_for_set(c, 0, 2)
    c.allocate(a0, "A")
    c.allocate(a1, "B")
    victim = c.allocate(a2, "C")
    assert victim == (a0, "A")  # oldest evicted
    assert c.lookup(a1) == "B" and c.lookup(a2) == "C"


def test_lookup_touch_refreshes_lru():
    c = tiny(assoc=2)
    a0 = addr_for_set(c, 0, 0)
    a1 = addr_for_set(c, 0, 1)
    a2 = addr_for_set(c, 0, 2)
    c.allocate(a0, "A")
    c.allocate(a1, "B")
    c.lookup(a0)  # touch A: B becomes LRU
    victim = c.allocate(a2, "C")
    assert victim == (a1, "B")


def test_untouched_lookup_does_not_refresh():
    c = tiny(assoc=2)
    a0 = addr_for_set(c, 0, 0)
    a1 = addr_for_set(c, 0, 1)
    a2 = addr_for_set(c, 0, 2)
    c.allocate(a0, "A")
    c.allocate(a1, "B")
    c.lookup(a0, touch=False)
    victim = c.allocate(a2, "C")
    assert victim == (a0, "A")


def test_evictable_predicate_skips_pinned():
    c = tiny(assoc=2)
    a0 = addr_for_set(c, 0, 0)
    a1 = addr_for_set(c, 0, 1)
    a2 = addr_for_set(c, 0, 2)
    c.allocate(a0, "pinned")
    c.allocate(a1, "B")
    victim = c.allocate(a2, "C", evictable=lambda a, e: e != "pinned")
    assert victim == (a1, "B")
    assert c.lookup(a0, touch=False) == "pinned"


def test_full_set_of_unevictable_raises():
    c = tiny(assoc=2)
    c.allocate(addr_for_set(c, 0, 0), "A")
    c.allocate(addr_for_set(c, 0, 1), "B")
    with pytest.raises(ConfigError):
        c.allocate(addr_for_set(c, 0, 2), "C", evictable=lambda a, e: False)


def test_reallocate_same_address_updates_entry():
    c = tiny()
    c.allocate(0, "old")
    assert c.allocate(0, "new") is None
    assert c.lookup(0) == "new"
    assert len(c) == 1


def test_deallocate():
    c = tiny()
    c.allocate(0, "X")
    assert c.deallocate(0) == "X"
    assert c.deallocate(0) is None
    assert len(c) == 0


def test_different_sets_do_not_conflict():
    c = tiny(assoc=2, sets=2)
    for tag in range(2):
        c.allocate(addr_for_set(c, 0, tag), f"s0-{tag}")
        c.allocate(addr_for_set(c, 1, tag), f"s1-{tag}")
    assert len(c) == 4  # no evictions


def test_geometry_validation():
    with pytest.raises(ConfigError):
        CacheArray(1000, 4, 64)  # not a multiple
    with pytest.raises(ConfigError):
        CacheArray(3 * 4 * 64, 4, 64)  # sets not a power of two
