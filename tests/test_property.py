"""Property-based tests (hypothesis) on core data structures and on
whole-machine invariants under randomized workloads."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.common.params import SystemParams
from repro.core.tokens import TokenEntry
from repro.cpu.ops import Load, Rmw, Store, Think
from repro.interconnect.message import Message, MsgType
from repro.interconnect.network import Network
from repro.interconnect.traffic import TrafficMeter
from repro.memory.cache import CacheArray
from repro.sim.kernel import Simulator
from repro.system import MachineSpec
from repro.workloads.base import Workload


# ---------------------------------------------------------------------------
# CacheArray properties.
# ---------------------------------------------------------------------------
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["alloc", "dealloc", "lookup"]),
                  st.integers(min_value=0, max_value=40)),
        max_size=200,
    )
)
@settings(max_examples=50, deadline=None)
def test_cache_array_never_overflows_and_tracks_contents(ops):
    array = CacheArray(4 * 2 * 64, assoc=4, block_size=64, name="prop")
    shadow = {}
    for op, idx in ops:
        addr = idx * 64
        if op == "alloc":
            victim = array.allocate(addr, f"e{idx}")
            shadow[addr] = f"e{idx}"
            if victim is not None:
                assert shadow.pop(victim[0]) == victim[1]
        elif op == "dealloc":
            got = array.deallocate(addr)
            assert got == shadow.pop(addr, None)
        else:
            assert array.lookup(addr) == shadow.get(addr)
        assert len(array) == len(shadow) <= 8


# ---------------------------------------------------------------------------
# TokenEntry conservation under random absorb/take sequences.
# ---------------------------------------------------------------------------
@given(moves=st.lists(st.integers(min_value=1, max_value=8), max_size=30),
       data=st.data())
@settings(max_examples=50, deadline=None)
def test_token_entry_conserves_tokens(moves, data):
    total = 16
    a, b = TokenEntry(), TokenEntry()
    a.absorb(total, owner=True, data=0, dirty=False)
    for want in moves:
        src, dst = (a, b) if data.draw(st.booleans()) else (b, a)
        give = min(want, src.tokens)
        if give == 0:
            continue
        take_owner = src.owner and data.draw(st.booleans())
        tokens, owner, value, dirty = src.take(give, take_owner)
        dst.absorb(tokens, owner, value, dirty)
        assert a.tokens + b.tokens == total
        assert [a.owner, b.owner].count(True) == 1


# ---------------------------------------------------------------------------
# Network properties: per-path FIFO and minimum latency.
# ---------------------------------------------------------------------------
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(lambda t: t[0] != t[1]),
        min_size=1, max_size=40,
    )
)
@settings(max_examples=30, deadline=None)
def test_network_fifo_per_path_and_min_latency(pairs):
    params = SystemParams()
    sim = Simulator()
    net = Network(sim, params, TrafficMeter())
    deliveries = []
    for proc in range(16):
        node = params.l1d_of(proc)
        net.register(node, lambda m, n=node: deliveries.append((m.src, n, m.serial, sim.now)))
    for serial, (a, b) in enumerate(pairs):
        net.send(Message(MsgType.TOK_DATA, params.l1d_of(a), params.l1d_of(b),
                         0, serial=serial))
    sim.run()
    assert len(deliveries) == len(pairs)
    per_path = {}
    for src, dst, serial, t in deliveries:
        per_path.setdefault((src, dst), []).append(serial)
        min_lat = params.intra_link_latency_ps if src.chip == dst.chip else (
            2 * params.intra_link_latency_ps + params.inter_link_latency_ps
        )
        assert t >= min_lat
    for serials in per_path.values():
        assert serials == sorted(serials)  # FIFO per (src, dst)


# ---------------------------------------------------------------------------
# Whole-machine properties under randomized workloads.
# ---------------------------------------------------------------------------
class RandomWorkload(Workload):
    """Random loads/stores/atomics over a small set of shared blocks."""

    name = "random"

    def __init__(self, params, script):
        super().__init__(params, 0)
        self.blocks = self.alloc.blocks(4)
        self.script = script  # per proc: list of (kind, block_idx, value)

    def generators(self):
        return [self._thread(p) for p in range(self.params.num_procs)]

    def _thread(self, proc):
        for kind, b, value in self.script[proc % len(self.script)]:
            if kind == "l":
                yield Load(self.blocks[b])
            elif kind == "s":
                yield Store(self.blocks[b], value)
            elif kind == "t":
                yield Think(float(value % 19) + 1)
            else:
                yield Rmw(self.blocks[b], lambda v: v + 1)


op_strategy = st.tuples(
    st.sampled_from(["l", "s", "r", "t"]),
    st.integers(0, 3),
    st.integers(0, 1000),
)
script_strategy = st.lists(
    st.lists(op_strategy, min_size=1, max_size=12), min_size=1, max_size=4
)


@given(script=script_strategy, proto=st.sampled_from(
    ["TokenCMP-dst1", "TokenCMP-dst4", "TokenCMP-arb0", "TokenCMP-dst0"]))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_workloads_preserve_token_invariants(script, proto):
    from repro.analysis.consistency import attach_audit, check_per_location_serializability

    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    machine = MachineSpec(params=params, protocol=proto, seed=1).build()
    log = attach_audit(machine)
    wl = RandomWorkload(params, script)
    machine.run(wl, max_events=3_000_000)
    machine.check_token_invariants()
    # Every load must have observed the latest earlier write to its block.
    check_per_location_serializability(log)


@given(script=script_strategy)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_workloads_complete_on_directory(script):
    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    machine = MachineSpec(params=params, protocol="DirectoryCMP", seed=1).build()
    wl = RandomWorkload(params, script)
    machine.run(wl, max_events=3_000_000)  # raises on deadlock
    # The final value of each block is one that was actually written.
    for b, addr in enumerate(wl.blocks):
        written = {v for procs in script for (k, bi, v) in procs
                   if k == "s" and bi == b}
        value = machine.coherent_value(addr)
        if value != 0:
            # could also be an increment chain from atomics
            rmws = sum(1 for procs in script for (k, bi, _v) in procs
                       if k == "r" and bi == b)
            assert value in written or rmws > 0 or any(
                value == w + n for w in written | {0} for n in range(rmws + 1)
            )


@given(script=script_strategy)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_token_and_directory_agree_when_racefree(script):
    """With one active processor the final memory state is deterministic
    and must agree across protocol families."""
    single = [script[0]]
    finals = {}
    for proto in ("TokenCMP-dst1", "DirectoryCMP", "PerfectL2"):
        params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
        # Single-thread script: every other processor runs an empty list.
        class OneProc(RandomWorkload):
            def _thread(self, proc):
                if proc == 0:
                    yield from super()._thread(0)
                else:
                    yield Think(1.0)

        machine = MachineSpec(params=params, protocol=proto, seed=1).build()
        wl = OneProc(params, single)
        machine.run(wl, max_events=3_000_000)
        finals[proto] = [machine.coherent_value(a) for a in wl.blocks]
    assert finals["TokenCMP-dst1"] == finals["DirectoryCMP"] == finals["PerfectL2"]
