"""Tests for the model checker and the protocol models.

Besides checking that the shipped models verify, these tests *seed bugs*
into the models and assert the checker catches them — the checker itself
is load-bearing for the Section 5 reproduction, so it must demonstrably
find violations, not just report success.
"""

import pytest

from repro.common.errors import VerificationError
from repro.verification.checker import Model, check, spec_size
from repro.verification.dir_model import DirFlatModel
from repro.verification.token_model import (
    TokenArbModel,
    TokenDstModel,
    TokenRecreateModel,
    TokenSafetyModel,
    _add,
)


# ---------------------------------------------------------------------------
# Checker mechanics on toy models.
# ---------------------------------------------------------------------------
class CounterModel(Model):
    """Counts 0..3 with wraparound: quiescent at 0."""

    name = "toy-counter"

    def initial_states(self):
        return [0]

    def transitions(self, state):
        return [("inc", (state + 1) % 4)]

    def is_quiescent(self, state):
        return state == 0


def test_checker_explores_and_counts():
    result = check(CounterModel())
    assert result.states == 4
    assert result.transitions == 4
    assert result.diameter == 3


def test_checker_detects_deadlock():
    class Dead(CounterModel):
        name = "toy-deadlock"

        def transitions(self, state):
            return [] if state == 2 else [("inc", state + 1)]

    with pytest.raises(VerificationError, match="deadlock"):
        check(Dead())


def test_checker_detects_invariant_violation_with_trace():
    class Bad(CounterModel):
        name = "toy-bad"

        def check_invariants(self, state):
            if state == 3:
                raise VerificationError("state three reached")

    with pytest.raises(VerificationError) as err:
        check(Bad())
    assert "counterexample" in str(err.value)


def test_checker_detects_livelock():
    class Livelock(Model):
        name = "toy-livelock"

        def initial_states(self):
            return ["start"]

        def transitions(self, state):
            # 'spin' can never get back to the quiescent 'start'.
            return [("go", "spin"), ("stay", "spin")] if state == "start" else [
                ("stay", "spin")
            ]

        def is_quiescent(self, state):
            return state == "start"

    with pytest.raises(VerificationError, match="liveness"):
        check(Livelock())


def test_checker_state_budget():
    class Big(Model):
        name = "toy-big"

        def initial_states(self):
            return [0]

        def transitions(self, state):
            return [("inc", state + 1)]

        def is_quiescent(self, state):
            return True

    with pytest.raises(VerificationError, match="exceeds"):
        check(Big(), max_states=100)


# ---------------------------------------------------------------------------
# The shipped protocol models verify.
# ---------------------------------------------------------------------------
def test_token_safety_model_verifies():
    result = check(TokenSafetyModel(), max_states=100_000, check_liveness=False)
    assert result.states > 1_000  # a real exploration, not a trivial one


def test_token_dst_model_verifies_with_liveness():
    result = check(
        TokenDstModel(coarse_sends=True, atomic_broadcasts=True),
        max_states=500_000,
    )
    assert result.liveness_checked
    assert result.states > 5_000


def test_token_arb_model_verifies_with_liveness():
    # values=1 keeps this fast for the unit suite; the full 2-value
    # configuration runs in benchmarks/bench_sec5_modelcheck.py.
    result = check(
        TokenArbModel(values=1, coarse_sends=True, atomic_broadcasts=True),
        max_states=1_500_000,
    )
    assert result.liveness_checked


def test_token_recreate_model_verifies_with_pinned_counts():
    """The recreation recovery tier is safe under loss, crash and epoch bumps.

    Counts are pinned exactly: any change to the recovery model's
    reachable space (new transitions, changed stamping, a different
    canonicalization) must be a conscious decision.
    """
    result = check(TokenRecreateModel(), max_states=100_000, check_liveness=False)
    assert result.states == 17_640
    assert result.transitions == 102_036
    assert result.diameter == 31


def test_seeded_bug_premature_recreation_completion_caught():
    """Reconstituting tokens before every holder acked must be caught.

    The safety argument for recreation is that memory waits for surrender
    acks from *all* caches; completing one ack early leaves a laggard
    holding live tokens next to the freshly minted full set.
    """

    class Broken(TokenRecreateModel):
        name = "TokenCMP-recreate-premature"

        def transitions(self, state):
            out = []
            for label, nxt in super().transitions(state):
                if label.startswith("ack"):
                    caches, mem, net, wants, ceps, epoch, rec, lost = nxt
                    # BUG: declare victory once n-1 acks arrived.
                    if rec is not None and len(rec) == self.n - 1:
                        nxt = (caches, (self.T, True, mem[2]), net, wants,
                               ceps, epoch, None, (0, False))
                        label = "bad_done"
                out.append((label, nxt))
            return out

    with pytest.raises(VerificationError, match="conservation"):
        check(Broken(), max_states=500_000, check_liveness=False)


def test_seeded_bug_memory_granting_during_recreation_caught():
    """Memory must stay mute while a recreation is in flight.

    Tokens granted mid-recreation carry the already-bumped epoch, survive
    the reconstitution, and inflate the post-recovery census.
    """

    class Broken(TokenRecreateModel):
        name = "TokenCMP-recreate-chatty-mem"

        def transitions(self, state):
            out = super().transitions(state)
            caches, mem, net, wants, ceps, epoch, rec, lost = state
            mtok, mown, mval = mem
            # BUG: keep serving transient requests during recreation.
            if rec is not None and mtok > 0 and len(net) < self.net_cap:
                for dst in range(self.n):
                    msg = ("tok", dst, mtok, mown,
                           mval if mown else None, epoch)
                    out.append((
                        f"bad_mem->{dst}",
                        self._mk(state, mem=(0, False, mval),
                                 net=_add(net, msg)),
                    ))
            return out

    with pytest.raises(VerificationError, match="conservation"):
        check(Broken(), max_states=500_000, check_liveness=False)


def test_flat_directory_model_verifies():
    result = check(DirFlatModel(), max_states=200_000)
    assert result.states > 1_000


def test_flat_directory_model_verifies_without_migratory():
    """Covers the O/S sharing paths the migratory optimization bypasses."""
    result = check(DirFlatModel(migratory=False), max_states=500_000)
    assert result.states > 1_000


# ---------------------------------------------------------------------------
# Seeded bugs are caught.
# ---------------------------------------------------------------------------
def test_seeded_bug_premature_write_caught():
    """A write with fewer than all tokens must violate value coherence."""

    class Broken(TokenSafetyModel):
        name = "TokenCMP-broken-write"

        def _complete_transitions(self, state, make, on_complete=None):
            out = super()._complete_transitions(state, make, on_complete)
            caches, mem, net, wants = state[:4]
            for i in range(self.n):
                ctok, cown, cval, cdata = caches[i]
                # BUG: allow a write with just one token.
                if wants[i] == "w" and ctok >= 1 and cval:
                    ncache = (ctok, cown, True, (cdata + 1) % self.D)
                    nc = caches[:i] + (ncache,) + caches[i + 1:]
                    nw = wants[:i] + (None,) + wants[i + 1:]
                    out.append((f"bad_write{i}", make(state, caches=nc, wants=nw)))
            return out

    with pytest.raises(VerificationError):
        check(Broken(), max_states=500_000, check_liveness=False)


def test_seeded_bug_token_duplication_caught():
    """Minting an extra token must violate conservation."""

    class Broken(TokenSafetyModel):
        name = "TokenCMP-broken-mint"

        def _transfer_transitions(self, state, make):
            out = super()._transfer_transitions(state, make)
            caches, mem, net, wants = state[:4]
            ctok, cown, cval, cdata = caches[0]
            if ctok >= 1:
                nc = ((ctok + 1, cown, cval, cdata),) + caches[1:]
                out.append(("mint", make(state, caches=nc)))
            return out

    with pytest.raises(VerificationError, match="conservation"):
        check(Broken(), max_states=500_000, check_liveness=False)


def test_seeded_bug_directory_stale_sharer_caught():
    """A write satisfied from S without invalidations must be caught."""

    class Broken2(DirFlatModel):
        name = "Directory-broken-writeS"

        def _want_and_issue(self, state):
            out = super()._want_and_issue(state)
            caches, directory, mem, net, wants = state
            for i in range(self.n):
                cstate, value, pend = caches[i]
                if wants[i] == "w" and cstate == "S":
                    from repro.verification.dir_model import M, _set

                    nc = _set(caches, i, (M, (value + 1) % self.D, None))
                    nw = wants[:i] + (None,) + wants[i + 1:]
                    out.append((f"bad_write{i}",
                                self._make(state, caches=nc, wants=nw)))
            return out

    # Shared (S) copies only arise without the migratory optimization
    # (with it, a read of a modified block takes the whole block).
    with pytest.raises(VerificationError):
        check(Broken2(migratory=False), max_states=500_000, check_liveness=False)


def test_spec_size_counts_code_lines():
    lines = spec_size(CounterModel)
    assert 5 < lines < 20


# ---------------------------------------------------------------------------
# Symmetry reduction.
# ---------------------------------------------------------------------------
def test_symmetry_reduction_shrinks_safety_model():
    reduced = check(TokenSafetyModel(), max_states=200_000, check_liveness=False)

    class NoSym(TokenSafetyModel):
        name = "TokenCMP-safety-nosym"

        def canonicalize(self, state):
            return state

    full = check(NoSym(), max_states=200_000, check_liveness=False)
    # Near the theoretical 2x for two symmetric processors.
    assert reduced.states < full.states
    assert full.states / reduced.states > 1.8


def test_canonicalize_is_idempotent_and_orbit_stable():
    model = TokenSafetyModel()
    from repro.verification.token_model import _permutations, _permute_core

    (state,) = model.initial_states()
    # Walk a few transitions to a non-trivial state.
    for _ in range(4):
        state = model.transitions(state)[0][1]
    canon = model.canonicalize(state)
    assert model.canonicalize(canon) == canon
    for perm in _permutations(model.n):
        assert model.canonicalize(_permute_core(state, perm)) == canon
