"""Unit-level tests of individual model transitions (verification models).

The exhaustive checker covers reachability; these tests pin down specific
transition semantics so model bugs fail with readable assertions instead
of thousand-state counterexamples.
"""

import pytest

from repro.verification.dir_model import DirFlatModel, M as DIR_M
from repro.verification.token_model import (
    MEM,
    TokenArbModel,
    TokenDstModel,
    TokenSafetyModel,
    _absorb,
    _take,
)


# ---------------------------------------------------------------------------
# Token-state helpers.
# ---------------------------------------------------------------------------
def test_absorb_accumulates_tokens_and_data():
    cache = (0, False, False, 0)
    cache = _absorb(cache, 2, False, None)
    assert cache == (2, False, False, 0)
    cache = _absorb(cache, 1, True, 7)
    assert cache == (3, True, True, 7)


def test_take_all_clears_validity():
    cache = (3, True, True, 7)
    ncache, value = _take(cache, 3, True)
    assert ncache == (0, False, False, 0)
    assert value == 7


def test_take_partial_keeps_data():
    cache = (3, True, True, 7)
    ncache, value = _take(cache, 2, True)  # owner leaves, one token stays
    assert ncache == (1, False, True, 7)
    assert value == 7


# ---------------------------------------------------------------------------
# Safety model transitions.
# ---------------------------------------------------------------------------
def initial(model):
    (state,) = model.initial_states()
    return state


def labels(model, state):
    return {label for label, _n in model.transitions(state)}


def test_safety_initial_memory_owns_everything():
    model = TokenSafetyModel()
    caches, mem, net, wants = initial(model)
    assert mem == (model.T, True, 0)
    assert all(c == (0, False, False, 0) for c in caches)


def test_safety_wants_and_memory_sends_enabled_initially():
    model = TokenSafetyModel()
    state = initial(model)
    names = labels(model, state)
    assert "want_r0" in names and "want_w1" in names
    assert "mem->0" in names
    assert "read0" not in names  # nothing readable yet


def test_safety_write_needs_all_tokens():
    model = TokenSafetyModel()
    caches, mem, net, wants = initial(model)
    # Give cache 0 all tokens and a write want.
    caches = ((model.T, True, True, 0),) + caches[1:]
    mem = (0, False, 0)
    wants = ("w",) + wants[1:]
    state = (caches, mem, net, wants)
    assert "write0" in labels(model, state)
    # One token short: no write.
    caches = ((model.T - 1, True, True, 0),) + ((1, False, False, 0),)
    state = (caches, mem, net, wants)
    assert "write0" not in labels(model, state)


def test_safety_write_increments_value_mod_domain():
    model = TokenSafetyModel()
    caches = ((model.T, True, True, model.D - 1), (0, False, False, 0))
    state = (caches, (0, False, 0), (), ("w", None))
    (next_state,) = [n for l, n in model.transitions(state) if l == "write0"]
    assert next_state[0][0][3] == 0  # wrapped around


def test_safety_net_cap_blocks_new_sends():
    model = TokenSafetyModel(net_cap=1)
    caches = ((model.T, True, True, 0), (0, False, False, 0))
    net = (("tok", 1, 0, False, None),)  # pretend one message in flight
    state = (caches, (0, False, 0), net, (None, None))
    assert not any(l.startswith("send0") for l in labels(model, state))


# ---------------------------------------------------------------------------
# Distributed-activation model.
# ---------------------------------------------------------------------------
def test_dst_persist_requires_want():
    model = TokenDstModel(coarse_sends=True, atomic_broadcasts=True)
    state = initial(model)
    assert not any(l.startswith("persist") for l in labels(model, state))


def test_dst_atomic_persist_updates_all_tables():
    model = TokenDstModel(coarse_sends=True, atomic_broadcasts=True)
    caches, mem, net, wants, tables, pr = initial(model)
    state = (caches, mem, net, ("r", None), tables, pr)
    (next_state,) = [n for l, n in model.transitions(state) if l == "persist0"]
    _c, _m, _n, _w, ntables, npr = next_state
    assert npr[0] == "req"
    for site_table in ntables:
        assert site_table[0] != 0  # entry present at every site


def test_dst_marking_blocks_reissue():
    model = TokenDstModel(coarse_sends=True, atomic_broadcasts=True)
    caches, mem, net, wants, tables, pr = initial(model)
    # Proc 0 wants again, but its local table holds a marked entry of proc 1.
    tables = ((0, (1, True, True)),) + tables[1:]
    state = (caches, mem, net, ("r", None), tables, pr)
    assert "persist0" not in labels(model, state)


def test_dst_priority_orders_forwarding():
    model = TokenDstModel(coarse_sends=True, atomic_broadcasts=True)
    caches, mem, net, wants, tables, pr = initial(model)
    # Cache 1 holds tokens; both procs have active persistent requests.
    caches = ((0, False, False, 0), (model.T, True, True, 0))
    tables = tuple(((1, False, False), (1, False, False)) for _ in range(model.n + 1))
    state = (caches, mem, net, wants, tables, ("req", "req"))
    fwd = [l for l, _n in model.transitions(state) if l.startswith("fwd1->")]
    assert fwd == ["fwd1->0"]  # proc 0 outranks proc 1 (fixed priority)


# ---------------------------------------------------------------------------
# Arbiter model.
# ---------------------------------------------------------------------------
def test_arb_requests_flow_through_fifo_channel():
    model = TokenArbModel(coarse_sends=True, atomic_broadcasts=True)
    caches, mem, net, wants, site_act, arb, chan, pr = initial(model)
    state = (caches, mem, net, ("w", None), site_act, arb, chan, pr)
    (after_persist,) = [n for l, n in model.transitions(state) if l == "persist0"]
    assert after_persist[6][0] == (("req", False),)  # queued in the channel
    (after_enqueue,) = [
        n for l, n in model.transitions(after_persist) if l == "arb_enqueue0"
    ]
    assert after_enqueue[5] == (((0, False),), None)  # in the arbiter queue
    (after_activate,) = [
        n for l, n in model.transitions(after_enqueue) if l == "arb_activate"
    ]
    assert after_activate[5] == ((), (0, False))
    assert all(s == (0, False) for s in after_activate[4])  # sites know


def test_arb_channel_backpressure_blocks_new_persists():
    model = TokenArbModel(coarse_sends=True, atomic_broadcasts=True)
    caches, mem, net, wants, site_act, arb, chan, pr = initial(model)
    chan = ((("req", False), ("deact",)),) + chan[1:]
    state = (caches, mem, net, ("w", None), site_act, arb, chan, pr)
    assert "persist0" not in labels(model, state)


# ---------------------------------------------------------------------------
# Flat directory model.
# ---------------------------------------------------------------------------
def test_dir_cold_getx_grants_with_memory_data():
    model = DirFlatModel()
    (state,) = model.initial_states()
    caches, directory, mem, net, wants = state
    state = (caches, directory, mem, net, ("w", None))
    (after_issue,) = [n for l, n in model.transitions(state) if l == "getx0"]
    (after_dir,) = [n for l, n in model.transitions(after_issue) if l == "dir_getx"]
    _c, ndir, _m, nnet, _w = after_dir
    assert ndir[3] is True  # busy
    assert any(m[0] == "data" and m[3] == DIR_M for m in nnet)


def test_dir_busy_defers_second_request():
    model = DirFlatModel()
    (state,) = model.initial_states()
    caches, directory, mem, net, wants = state
    state = (caches, directory, mem, net, ("w", "r"))
    (s1,) = [n for l, n in model.transitions(state) if l == "getx0"]
    (s2,) = [n for l, n in model.transitions(s1) if l == "gets1"]
    (s3,) = [n for l, n in model.transitions(s2) if l == "dir_getx"]
    # The directory is busy; the read request can only be deferred.
    defers = [n for l, n in model.transitions(s3) if l == "defer_gets"]
    assert defers
    _c, ndir, _m, _n, _w = defers[0]
    assert len(ndir[4]) == 1  # queued
