"""Protocol transition-graph extraction and conformance (protocol-model pass).

Three layers, mirroring docs/static-analysis.md:

* extraction: the real tree's controller arms and model families match
  the pinned counts, and the ``repro.protomodel/1`` artifact is byte-
  identical to the committed ``protomodel-baseline.json``;
* seeded drift: deleting a model transition arm, flipping a token
  delta, and dropping an epoch guard are each caught *through the real
  CLI* at the exact file:line;
* determinism: finding order and the artifact are byte-identical across
  ``PYTHONHASHSEED`` values.

The unused-suppression satellite and the ``--pass``/``--explain`` CLI
flags are covered here too (they shipped with this pass family).
"""

import ast
import json
import os
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.staticcheck.protomodel import (
    ProtocolModelPass,
    build_model,
    extract_controllers,
    extract_models,
    render_protomodel,
)
from repro.staticcheck.runner import default_root, run_passes
from repro.staticcheck.source import load_tree
from repro.staticcheck.suppressions import UnusedSuppressionPass
from repro.staticcheck.determinism import DeterminismPass

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Pinned per-role transition counts: growing a ladder or a model is a
#: reviewed event (update these AND regenerate protomodel-baseline.json).
PINNED_CONTROLLER_ARMS = {
    "directory/l1": 4,
    "directory/l2": 7,
    "directory/mem": 3,
    "token/arb": 2,
    "token/l1": 5,
    "token/l2": 5,
    "token/mem": 6,
}
PINNED_MODEL_TRANSITIONS = {
    "DirectoryCMP-flat": 16,
    "TokenCMP-arb": 18,
    "TokenCMP-dst": 13,
    "TokenCMP-recreate": 18,
    "TokenCMP-safety": 7,
}


def _real_files():
    return load_tree(default_root())


# ---------------------------------------------------------------------------
# Extraction on the real tree.
# ---------------------------------------------------------------------------
def test_real_tree_is_conformant():
    assert ProtocolModelPass().check(_real_files()) == []


def test_pinned_controller_arm_counts():
    ctrls = extract_controllers(_real_files())
    assert {k: len(v.arms) for k, v in ctrls.items()} == PINNED_CONTROLLER_ARMS


def test_pinned_model_transition_counts():
    models = extract_models(_real_files())
    assert {k: v.total for k, v in models.items()} == PINNED_MODEL_TRANSITIONS


def test_artifact_matches_committed_baseline():
    rendered = render_protomodel(build_model(_real_files()))
    committed = (REPO_ROOT / "protomodel-baseline.json").read_text()
    assert rendered == committed


def test_controller_arms_have_expected_shape():
    ctrls = extract_controllers(_real_files())
    carriers = [
        a for a in ctrls["token/l1"].arms if "TOK_DATA" in a.mtypes
    ]
    assert len(carriers) == 1
    arm = carriers[0]
    assert arm.handler == "_on_tokens"
    assert arm.delta == "+"
    assert arm.epoch_guarded is True
    transients = [a for a in ctrls["token/mem"].arms if "TOK_GETS" in a.mtypes]
    assert transients[0].delta == "-"
    assert any(s.startswith("TOK_DATA->") for s in transients[0].sends)


def test_model_families_have_expected_shape():
    models = extract_models(_real_files())
    safety = models["TokenCMP-safety"].families
    assert safety["deliver*"].delta == "+"
    assert safety["send*->*"].delta == "-"
    assert safety["mem->*"].delta == "-"
    recreate = models["TokenCMP-recreate"].families
    assert recreate["stale_mem"].epoch_guarded is True
    assert recreate["stale*"].epoch_guarded is True


# ---------------------------------------------------------------------------
# Fixture-level drift (merged realm: fixture classes override real ones).
# ---------------------------------------------------------------------------
MODEL_DRIFT_FIXTURE = '''\
class TokenRecreateModel:
    """Drifted copy: the stale_mem discard arm is gone."""

    def transitions(self):
        out = []
        state = None
        for dst in range(2):
            out.append((f"stale{dst}", state))
            out.append((f"surrender{dst}", state))
            out.append((f"epoch_dup{dst}", state))
            out.append((f"ack{dst}", state))
        out.append(("recreate", state))
        out.append(("ack_stale", state))
        out.append(("recreate_done", state))
        return out
'''

CONTROLLER_DRIFT_FIXTURE = '''\
from repro.interconnect.message import MsgType


class TokenMemController:
    """Drifted copy: the TOK_RECREATE_REQ arm is gone."""

    def _process(self, msg):
        t = msg.mtype
        if t in (MsgType.TOK_GETS, MsgType.TOK_GETX):
            self._on_transient(msg)
        elif t in (MsgType.TOK_DATA, MsgType.TOK_ACK, MsgType.TOK_WB,
                   MsgType.TOK_WB_DATA):
            self._on_tokens(msg)
        elif t is MsgType.PERSIST_ACTIVATE:
            self._on_activate(msg)
        elif t is MsgType.PERSIST_DEACTIVATE:
            self._on_deactivate(msg)
        elif t in (MsgType.TOK_RECREATE_ACK, MsgType.TOK_RECREATE_DATA):
            self._on_recreate_ack(msg)
        else:
            raise ValueError(msg)
'''


def _fixture(tmp_path, text, name="fixture_mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(text))
    return path


def test_fixture_model_missing_transition(tmp_path):
    path = _fixture(tmp_path, MODEL_DRIFT_FIXTURE)
    findings, _ = run_passes(extra_files=[path], passes=[ProtocolModelPass()])
    assert [f.rule for f in findings] == ["model-missing-transition"]
    f = findings[0]
    assert f.path == path.as_posix()
    assert "'stale_mem'" in f.message and "TokenCMP-recreate" in f.message


def test_fixture_controller_missing_transition(tmp_path):
    path = _fixture(tmp_path, CONTROLLER_DRIFT_FIXTURE)
    findings, _ = run_passes(extra_files=[path], passes=[ProtocolModelPass()])
    assert [f.rule for f in findings] == ["controller-missing-transition"]
    f = findings[0]
    assert f.path == path.as_posix()
    assert "TOK_RECREATE_REQ" in f.message and "recreate" in f.message


# ---------------------------------------------------------------------------
# Seeded drift through the real CLI, at the exact file:line.
# ---------------------------------------------------------------------------
def _lint(*argv, env_src=None, extra_env=None, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(env_src or (REPO_ROOT / "src"))
    env.update(extra_env or {})
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True, text=True, env=env, cwd=str(cwd),
    )


def _poisoned_src(tmp_path, rel, old, new, count=1):
    """Copy src/, apply one textual drift, return (src dir, victim path)."""
    poisoned = tmp_path / "src"
    shutil.copytree(REPO_ROOT / "src", poisoned)
    victim = poisoned / rel
    text = victim.read_text()
    assert old in text, f"poison target not found in {rel}"
    victim.write_text(text.replace(old, new, count))
    return poisoned, victim


def _line_of(path, needle):
    for i, line in enumerate(path.read_text().splitlines(), start=1):
        if needle in line:
            return i
    raise AssertionError(f"{needle!r} not found in {path}")


def test_cli_catches_deleted_model_arm(tmp_path):
    poisoned, victim = _poisoned_src(
        tmp_path, Path("repro/verification/token_model.py"),
        'out.append(("stale_mem", mk(state, net=nnet)))',
        "pass  # drifted",
    )
    proc = _lint("--json", "--pass", "protocol-model", env_src=poisoned)
    assert proc.returncode == 1, proc.stdout + proc.stderr
    doc = json.loads(proc.stdout)
    # Anchor: the drifted model's transitions() definition.
    tree = ast.parse(victim.read_text())
    expected = next(
        fn.lineno
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef) and node.name == "TokenRecreateModel"
        for fn in node.body
        if isinstance(fn, ast.FunctionDef) and fn.name == "transitions"
    )
    assert [
        (f["rule"], f["path"], f["line"]) for f in doc["findings"]
    ] == [(
        "model-missing-transition",
        "repro/verification/token_model.py",
        expected,
    )]
    assert "'stale_mem'" in doc["findings"][0]["message"]


def test_cli_catches_flipped_token_delta(tmp_path):
    poisoned, victim = _poisoned_src(
        tmp_path, Path("repro/verification/token_model.py"),
        "_absorb(caches[dst], tokens, owner, value)",
        "_take(caches[dst], tokens, owner)[0]",
    )
    proc = _lint("--json", "--pass", "protocol-model", env_src=poisoned)
    assert proc.returncode == 1, proc.stdout + proc.stderr
    doc = json.loads(proc.stdout)
    expected = _line_of(victim, 'f"deliver{dst}"')
    assert doc["findings"], "no findings"
    for f in doc["findings"]:
        assert f["rule"] == "token-delta-mismatch"
        assert f["path"] == "repro/verification/token_model.py"
        assert f["line"] == expected
        assert "controller '+'" in f["message"]
    # One finding per (carrier mtype, shared-base model): the recreation
    # model has its own (unpoisoned) delivery arm and stays conformant.
    models = {f["message"].split("model '")[1].split("'")[0]
              for f in doc["findings"]}
    assert models == {"TokenCMP-safety", "TokenCMP-dst", "TokenCMP-arb"}


def test_cli_catches_dropped_epoch_guard(tmp_path):
    poisoned, victim = _poisoned_src(
        tmp_path, Path("repro/core/base.py"),
        "if msg.epoch < self._block_epoch.get(msg.addr, 0):",
        "if False:",
    )
    proc = _lint("--json", "--pass", "protocol-model", env_src=poisoned)
    assert proc.returncode == 1, proc.stdout + proc.stderr
    doc = json.loads(proc.stdout)
    expected = _line_of(victim, "def _on_tokens")
    assert [
        (f["rule"], f["path"], f["line"]) for f in doc["findings"]
    ] == [("recreation-epoch-unguarded", "repro/core/base.py", expected)]
    assert "_on_tokens" in doc["findings"][0]["message"]


# ---------------------------------------------------------------------------
# Byte determinism across runs and hash seeds.
# ---------------------------------------------------------------------------
def test_findings_and_artifact_stable_across_hash_seeds(tmp_path):
    # Use a drifted tree so finding *order* is actually exercised.
    poisoned, _ = _poisoned_src(
        tmp_path, Path("repro/verification/token_model.py"),
        "_absorb(caches[dst], tokens, owner, value)",
        "_take(caches[dst], tokens, owner)[0]",
    )
    outs = []
    for seed in ("0", "4242"):
        model_out = tmp_path / f"pm_{seed}.json"
        proc = _lint(
            "--json", "--pass", "protocol-model",
            "--model-out", str(model_out),
            env_src=poisoned, extra_env={"PYTHONHASHSEED": seed},
        )
        assert proc.returncode == 1, proc.stdout + proc.stderr
        outs.append((proc.stdout, model_out.read_bytes()))
    assert outs[0] == outs[1]


def test_artifact_stable_across_repeated_runs(tmp_path):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    for path in (a, b):
        proc = _lint("--pass", "protocol-model", "--model-out", str(path))
        assert proc.returncode == 0, proc.stdout + proc.stderr
    assert a.read_bytes() == b.read_bytes()
    doc = json.loads(a.read_text())
    assert doc["schema"] == "repro.protomodel/1"
    assert doc["counts"]["controllers"] == PINNED_CONTROLLER_ARMS
    assert doc["counts"]["models"] == PINNED_MODEL_TRANSITIONS


# ---------------------------------------------------------------------------
# CLI surface: --pass / --explain.
# ---------------------------------------------------------------------------
def test_cli_single_pass_selection():
    proc = _lint("--json", "--pass", "protocol-model")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    doc = json.loads(proc.stdout)
    assert doc["passes"] == ["protocol-model"]


def test_cli_unknown_pass_exits_2():
    proc = _lint("--pass", "no-such-pass")
    assert proc.returncode == 2
    assert "unknown pass" in proc.stderr


def test_cli_explain_rule():
    proc = _lint("--explain", "token-delta-mismatch")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "token-delta-mismatch (pass: protocol-model)" in proc.stdout
    assert "Example finding:" in proc.stdout


def test_cli_explain_covers_every_registered_rule():
    from repro.staticcheck import PASSES, explain_rule

    for p in PASSES:
        for rule in p.rules:
            assert explain_rule(rule) is not None, rule


def test_cli_explain_unknown_rule_exits_2():
    proc = _lint("--explain", "no-such-rule")
    assert proc.returncode == 2
    assert "unknown rule" in proc.stderr


# ---------------------------------------------------------------------------
# unused-suppression.
# ---------------------------------------------------------------------------
def test_stray_suppression_is_flagged(tmp_path):
    path = _fixture(tmp_path, """\
        def quiet():
            value = 1  # staticcheck: ignore[det-wallclock]
            return value
        """)
    findings, _ = run_passes(
        extra_files=[path],
        passes=[DeterminismPass(), UnusedSuppressionPass()],
    )
    mine = [f for f in findings if f.path == path.as_posix()]
    assert [f.rule for f in mine] == ["unused-suppression"]
    assert mine[0].line == 2
    assert "det-wallclock" in mine[0].message
    assert mine[0].severity == "warning"


def test_consumed_suppression_is_not_flagged(tmp_path):
    path = _fixture(tmp_path, """\
        import time


        def now():
            return time.time()  # staticcheck: ignore[det-wallclock]
        """)
    findings, _ = run_passes(
        extra_files=[path],
        passes=[DeterminismPass(), UnusedSuppressionPass()],
    )
    assert [f for f in findings if f.path == path.as_posix()] == []


def test_suppression_judged_against_full_registry(tmp_path):
    # --pass suppressions alone must still credit detector passes that
    # were not selected: a suppression consumed by determinism is not
    # "unused" just because only the suppressions pass ran.
    path = _fixture(tmp_path, """\
        import time


        def now():
            return time.time()  # staticcheck: ignore[det-wallclock]
        """)
    findings, pass_ids = run_passes(
        extra_files=[path], passes=[UnusedSuppressionPass()],
    )
    assert pass_ids == ["suppressions"]
    assert [f for f in findings if f.path == path.as_posix()] == []


def test_cli_flags_stray_suppression_in_tree(tmp_path):
    poisoned = tmp_path / "src"
    shutil.copytree(REPO_ROOT / "src", poisoned)
    victim = poisoned / "repro" / "core" / "timeout.py"
    victim.write_text(
        victim.read_text()
        + "\n\nSCALE = 2  # staticcheck: ignore[det-float-time]\n"
    )
    proc = _lint("--json", "--pass", "suppressions", env_src=poisoned)
    assert proc.returncode == 1, proc.stdout + proc.stderr
    doc = json.loads(proc.stdout)
    assert [
        (f["rule"], f["path"]) for f in doc["findings"]
    ] == [("unused-suppression", "repro/core/timeout.py")]
