"""Tests for the CPU layer (sequencer, threads, ops) and system wiring."""

import pytest

from repro.common.params import SystemParams
from repro.common.stats import Stats
from repro.cpu.ops import Load, Rmw, Store, Think, is_write
from repro.cpu.sequencer import Sequencer
from repro.cpu.thread import ProcThread
from repro.sim.kernel import Simulator
from repro.system.config import PROTOCOLS, ProtocolConfig, protocol
from repro.system import MachineSpec
from repro.common.errors import ConfigError


# ---------------------------------------------------------------------------
# Ops.
# ---------------------------------------------------------------------------
def test_is_write_classification():
    assert not is_write(Load(0))
    assert is_write(Store(0, 1))
    assert is_write(Rmw(0, lambda v: v))
    assert not is_write(Think(1.0))


# ---------------------------------------------------------------------------
# Sequencer.
# ---------------------------------------------------------------------------
class FakeL1:
    def __init__(self, sim, latency=1000):
        self.sim = sim
        self.latency = latency

    def access(self, op, done):
        self.sim.schedule(self.latency, done, 42)


def test_sequencer_measures_latency():
    sim = Simulator()
    stats = Stats()
    seq = Sequencer(sim, 0, FakeL1(sim, 5000), stats)
    got = []
    seq.issue(Load(0), got.append)
    sim.run()
    assert got == [42]
    assert stats.summaries["seq.latency_ps"].mean == 5000


def test_sequencer_rejects_overlapping_ops():
    sim = Simulator()
    seq = Sequencer(sim, 0, FakeL1(sim), Stats())
    seq.issue(Load(0), lambda v: None)
    with pytest.raises(AssertionError):
        seq.issue(Load(0), lambda v: None)


# ---------------------------------------------------------------------------
# Thread driver.
# ---------------------------------------------------------------------------
def test_thread_resumes_generator_with_results():
    sim = Simulator()
    seq = Sequencer(sim, 0, FakeL1(sim), Stats())
    seen = []

    def gen():
        value = yield Load(0)
        seen.append(value)
        yield Think(3.0)
        seen.append("thought")

    done = []
    thread = ProcThread(sim, seq, gen(), done.append)
    thread.start()
    sim.run()
    assert seen == [42, "thought"]
    assert thread.finished and done


def test_thread_rejects_unknown_yields():
    sim = Simulator()
    seq = Sequencer(sim, 0, FakeL1(sim), Stats())

    def gen():
        yield "nonsense"

    thread = ProcThread(sim, seq, gen(), lambda t: None)
    thread.start()
    with pytest.raises(TypeError):
        sim.run()


def test_think_time_advances_clock():
    sim = Simulator()
    seq = Sequencer(sim, 0, FakeL1(sim), Stats())

    def gen():
        yield Think(123.0)

    thread = ProcThread(sim, seq, gen(), lambda t: None)
    thread.start()
    sim.run()
    assert thread.finish_time == 123_000  # ps


# ---------------------------------------------------------------------------
# Protocol registry / machine wiring.
# ---------------------------------------------------------------------------
def test_protocol_lookup_errors_are_helpful():
    with pytest.raises(ConfigError, match="unknown protocol"):
        protocol("TokenCMP-dst9")


def test_registry_matches_table1():
    # Table 1 variants plus baselines and extensions.
    for name in ("TokenCMP-arb0", "TokenCMP-dst0", "TokenCMP-dst4",
                 "TokenCMP-dst1", "TokenCMP-dst1-pred", "TokenCMP-dst1-filt"):
        cfg = PROTOCOLS[name]
        assert cfg.family == "token"
    assert PROTOCOLS["TokenCMP-arb0"].activation == "arb"
    assert PROTOCOLS["TokenCMP-dst0"].max_transient == 0
    assert PROTOCOLS["TokenCMP-dst4"].max_transient == 4
    assert PROTOCOLS["TokenCMP-dst1-pred"].use_predictor
    assert PROTOCOLS["TokenCMP-dst1-filt"].use_filter
    assert PROTOCOLS["DirectoryCMP-zero"].dir_zero_cycle


def test_config_validation():
    with pytest.raises(ConfigError):
        ProtocolConfig(name="x", family="quantum")
    with pytest.raises(ConfigError):
        ProtocolConfig(name="x", family="token", activation="psychic")
    with pytest.raises(ConfigError):
        ProtocolConfig(name="x", family="token", max_transient=3)


@pytest.mark.parametrize("proto,kinds", [
    ("TokenCMP-dst1", {"l1d", "l1i", "l2", "mem"}),
    ("TokenCMP-arb0", {"l1d", "l1i", "l2", "mem", "arb"}),
    ("DirectoryCMP", {"l1d", "l1i", "l2", "mem"}),
    ("PerfectL2", {"l1d", "l1i"}),
])
def test_builder_wires_expected_controllers(proto, kinds):
    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    machine = MachineSpec(params=params, protocol=proto).build()
    built = {node.kind.value for node in machine.controllers}
    assert built == kinds
    assert len(machine.l1ds) == params.num_procs
    assert len(machine.sequencers) == params.num_procs


def test_token_machine_wires_ledgers_and_predictors():
    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    machine = MachineSpec(params=params, protocol="TokenCMP-dst1-mcast").build()
    from repro.core.l2 import TokenL2Controller

    l2s = [c for c in machine.controllers.values() if isinstance(c, TokenL2Controller)]
    assert all(l2.ledger is not None for l2 in l2s)
    assert all(l2.destset is not None for l2 in l2s)
    # L1s on the same chip share that chip's predictor.
    a = machine.controllers[params.l1d_of(0)]
    b = machine.controllers[params.l1d_of(1)]
    c = machine.controllers[params.l1d_of(2)]
    assert a.destset is b.destset
    assert a.destset is not c.destset


# ---------------------------------------------------------------------------
# Batched (memory-level-parallel) operations.
# ---------------------------------------------------------------------------
def _run_batch(proto, ops):
    from repro.cpu.ops import Batch

    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    machine = MachineSpec(params=params, protocol=proto, seed=7).build()
    results = []
    machine.sequencers[0].issue_batch(ops, results.append)
    machine.sim.run(max_events=2_000_000)
    assert len(results) == 1
    return machine, results[0]


@pytest.mark.parametrize("proto", ["TokenCMP-dst1", "DirectoryCMP", "PerfectL2"])
def test_batch_results_arrive_in_op_order(proto):
    from repro.cpu.ops import Store

    ops = [Store(0x1000 + i * 64, 10 + i) for i in range(4)]
    machine, results = _run_batch(proto, ops)
    assert results == [0, 0, 0, 0]  # previous values
    for i in range(4):
        assert machine.coherent_value(0x1000 + i * 64) == 10 + i


def test_batch_overlaps_misses():
    """Four concurrent misses finish far sooner than four serial ones."""
    from repro.cpu.ops import Load

    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    serial = MachineSpec(params=params, protocol="TokenCMP-dst1", seed=7).build()
    t = {"serial": 0, "batch": 0}
    addrs = [0x2000 + i * 64 for i in range(4)]

    def go(i=0):
        if i < 4:
            serial.sequencers[0].issue(Load(addrs[i]), lambda v: go(i + 1))
    go()
    serial.sim.run(max_events=2_000_000)
    t["serial"] = serial.sim.now

    batch = MachineSpec(params=params, protocol="TokenCMP-dst1", seed=7).build()
    batch.sequencers[0].issue_batch([Load(a) for a in addrs], lambda r: None)
    batch.sim.run(max_events=2_000_000)
    t["batch"] = batch.sim.now
    assert t["batch"] < 0.6 * t["serial"]


def test_batch_rejects_same_block_ops():
    from repro.cpu.ops import Load, Store

    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    machine = MachineSpec(params=params, protocol="TokenCMP-dst1", seed=7).build()
    with pytest.raises(ValueError, match="distinct blocks"):
        machine.sequencers[0].issue_batch(
            [Load(0x3000), Store(0x3010, 1)], lambda r: None
        )


def test_batch_via_workload_generator():
    from repro.cpu.ops import Batch, Load
    from repro.workloads.base import Workload

    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)

    class BatchyWorkload(Workload):
        def __init__(self, p):
            super().__init__(p)
            self.blocks = self.alloc.blocks(4)
            self.got = None

        def generators(self):
            def thread0():
                self.got = yield Batch([Load(b) for b in self.blocks])
            def idle():
                from repro.cpu.ops import Think
                yield Think(1.0)
            return [thread0()] + [idle() for _ in range(params.num_procs - 1)]

    machine = MachineSpec(params=params, protocol="DirectoryCMP", seed=7).build()
    wl = BatchyWorkload(params)
    machine.run(wl, max_events=2_000_000)
    assert wl.got == [0, 0, 0, 0]


def test_run_measured_reports_phase_deltas():
    from repro.workloads.sharing import CounterWorkload

    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    machine = MachineSpec(params=params, protocol="TokenCMP-dst1", seed=3).build()
    warm = CounterWorkload(params, increments=4, seed=3)
    measured = CounterWorkload(params, increments=4, seed=4)
    result = machine.run_measured(warm, measured)
    # The measured phase is shorter than total simulated time...
    assert 0 < result.runtime_ps < machine.sim.now
    # ... and its miss count excludes the warm-up's cold misses.
    cold = MachineSpec(params=params, protocol="TokenCMP-dst1", seed=3).build()
    cold_result = cold.run(CounterWorkload(params, increments=4, seed=3))
    assert result.stats.get("l1.misses") <= cold_result.stats.get("l1.misses")
    machine.check_token_invariants()
