"""Tests for destination-set prediction (the multicast extension)."""

from repro.common.params import SystemParams
from repro.core.destset import DestinationSetPredictor
from repro.cpu.ops import Load, Store
from repro.system import MachineSpec


def test_untrained_predictor_falls_back_to_broadcast():
    p = DestinationSetPredictor()
    assert p.predict(0x100, [0, 1, 2, 3], own_chip=0) is None
    assert p.broadcasts == 1


def test_predictor_returns_recent_holders():
    p = DestinationSetPredictor(max_set_size=2)
    p.train(0x100, 1)
    p.train(0x100, 2)
    p.train(0x100, 3)  # evicts chip 1 (LRU of the set)
    assert p.predict(0x100, [0, 1, 2, 3], own_chip=0) == [2, 3]


def test_predictor_excludes_own_chip():
    p = DestinationSetPredictor()
    p.train(0x100, 0)
    assert p.predict(0x100, [0, 1], own_chip=0) == []


def test_predictor_capacity_is_bounded():
    p = DestinationSetPredictor(capacity=4)
    for i in range(10):
        p.train(i * 64, 1)
    assert len(p._table) == 4
    assert p.predict(0, [0, 1], own_chip=0) is None  # oldest evicted


def test_forget_removes_holder():
    p = DestinationSetPredictor()
    p.train(0x100, 1)
    p.forget(0x100, 1)
    # An emptied entry degrades to the safe broadcast fallback.
    assert p.predict(0x100, [0, 1], own_chip=0) is None


def test_multicast_variant_end_to_end():
    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    m = MachineSpec(params=params, protocol="TokenCMP-dst1-mcast", seed=3).build()
    out = {}

    def run_op(proc, op):
        got = {}
        m.sequencers[proc].issue(op, lambda v: got.setdefault("v", v))
        m.sim.run(max_events=2_000_000)
        return got["v"]

    addr = 0x7000_0000
    run_op(0, Store(addr, 9))     # chip 0 owns
    assert run_op(2, Load(addr)) == 9  # chip 1 learns chip 0 held it
    run_op(0, Store(addr, 10))    # migrates back; chip 0's L1 trains
    # chip 0's predictor now knows chip 1; further cross-chip misses
    # may multicast rather than broadcast.
    assert run_op(2, Load(addr)) == 10
    m.check_token_invariants()
    assert m.stats.get("l2.multicasts", ) >= 0  # stat exists; counted per escalation


def test_multicast_reduces_inter_traffic_on_migratory_sharing():
    from repro.interconnect.traffic import Scope
    from repro.workloads.sharing import CounterWorkload

    totals = {}
    for proto in ("TokenCMP-dst1", "TokenCMP-dst1-mcast"):
        params = SystemParams(num_chips=4, procs_per_chip=2, tokens_per_block=32)
        m = MachineSpec(params=params, protocol=proto, seed=3).build()
        wl = CounterWorkload(params, increments=8, think_ns=40.0, seed=3)
        m.run(wl, max_events=30_000_000)
        totals[proto] = m.meter.scope_bytes(Scope.INTER)
    assert totals["TokenCMP-dst1-mcast"] < totals["TokenCMP-dst1"]
