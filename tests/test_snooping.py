"""Tests for the S-CMP bus-snooping protocol (paper Section 1 context)."""

import pytest

from repro.common.errors import ConfigError
from repro.common.params import SystemParams
from repro.cpu.ops import Load, Rmw, Store
from repro.system import MachineSpec
from repro.workloads.barrier import BarrierWorkload
from repro.workloads.locking import LockingWorkload
from repro.workloads.sharing import CounterWorkload


@pytest.fixture
def params():
    return SystemParams(num_chips=1, procs_per_chip=4, tokens_per_block=16)


def run_op(m, proc, op):
    out = {}
    m.sequencers[proc].issue(op, lambda v: out.setdefault("v", v))
    m.sim.run(max_events=1_000_000)
    assert "v" in out
    return out["v"]


ADDR = 0xA000_0000


def test_snooping_rejects_multi_chip():
    with pytest.raises(ConfigError, match="Single-CMP"):
        MachineSpec(params=SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16), protocol="SnoopingSCMP").build()


def test_cold_read_grants_exclusive(params):
    m = MachineSpec(params=params, protocol="SnoopingSCMP", seed=1).build()
    assert run_op(m, 0, Load(ADDR)) == 0
    entry = m.l1ds[0].entry(ADDR)
    assert entry.state == "E"
    # The silent E->M upgrade makes the next store a hit.
    misses = m.stats.get("l1.misses")
    run_op(m, 0, Store(ADDR, 1))
    assert m.stats.get("l1.misses") == misses


def test_read_sharing_downgrades_owner(params):
    m = MachineSpec(params=params, protocol="SnoopingSCMP", seed=1).build()
    run_op(m, 0, Store(ADDR, 5))
    assert run_op(m, 1, Load(ADDR)) == 5  # cache-to-cache
    assert m.l1ds[0].entry(ADDR).state == "O"
    assert m.l1ds[1].entry(ADDR).state == "S"
    assert m.stats.get("bus.cache_to_cache") >= 1


def test_getx_invalidates_all_sharers(params):
    m = MachineSpec(params=params, protocol="SnoopingSCMP", seed=1).build()
    for proc in (0, 1, 2):
        run_op(m, proc, Load(ADDR))
    run_op(m, 3, Store(ADDR, 9))
    for proc in (0, 1, 2):
        entry = m.l1ds[proc].entry(ADDR)
        assert entry is None
    assert m.coherent_value(ADDR) == 9


def test_upgrade_race_promotes_to_getx(params):
    m = MachineSpec(params=params, protocol="SnoopingSCMP", seed=1).build()
    # Two sharers race to write: the loser's upgrade must refetch data.
    run_op(m, 0, Load(ADDR))
    run_op(m, 1, Load(ADDR))
    done = []
    m.sequencers[0].issue(Store(ADDR, 10), done.append)
    m.sequencers[1].issue(Store(ADDR, 20), done.append)
    m.sim.run(max_events=1_000_000)
    assert len(done) == 2
    assert m.coherent_value(ADDR) in (10, 20)


def test_rmw_serializes_on_bus(params):
    m = MachineSpec(params=params, protocol="SnoopingSCMP", seed=1).build()
    results = []
    for proc in range(4):
        m.sequencers[proc].issue(Rmw(ADDR, lambda v: v + 1), results.append)
    m.sim.run(max_events=1_000_000)
    assert sorted(results) == [0, 1, 2, 3]
    assert m.coherent_value(ADDR) == 4


@pytest.mark.parametrize("workload_cls,kw,check", [
    (CounterWorkload, dict(increments=8), "counter"),
    (LockingWorkload, dict(num_locks=3, acquires_per_proc=8), "locks"),
    (BarrierWorkload, dict(phases=5, work_ns=100.0), "phases"),
])
def test_snooping_end_to_end_workloads(params, workload_cls, kw, check):
    m = MachineSpec(params=params, protocol="SnoopingSCMP", seed=5).build()
    wl = workload_cls(params, seed=5, **kw)
    m.run(wl, max_events=20_000_000)
    if check == "counter":
        assert m.coherent_value(wl.counter) == wl.expected_total
    elif check == "locks":
        assert wl.acquired_counts == [8] * params.num_procs
    else:
        assert wl.completed_phases == [5] * params.num_procs


def test_snooping_history_is_serializable(params):
    from repro.analysis.consistency import attach_audit, check_per_location_serializability

    m = MachineSpec(params=params, protocol="SnoopingSCMP", seed=7).build()
    log = attach_audit(m)
    wl = CounterWorkload(params, increments=6, seed=7)
    m.run(wl, max_events=20_000_000)
    check_per_location_serializability(log)


def test_snooping_scmp_vs_mcmp_protocols(params):
    """On one chip, snooping is competitive with the M-CMP protocols —
    the paper's point that S-CMPs don't need the heavy machinery."""
    runtimes = {}
    for proto in ("SnoopingSCMP", "TokenCMP-dst1", "DirectoryCMP"):
        m = MachineSpec(params=params, protocol=proto, seed=9).build()
        wl = CounterWorkload(params, increments=8, seed=9)
        runtimes[proto] = m.run(wl, max_events=20_000_000).runtime_ps
    assert runtimes["SnoopingSCMP"] < 2.0 * min(runtimes.values())
