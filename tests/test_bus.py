"""Unit tests for the logical snooping bus."""

from repro.common.types import ns
from repro.sim.kernel import Simulator
from repro.snooping.bus import BusTransaction, LogicalBus


def test_bus_orders_transactions_fifo():
    sim = Simulator()
    bus = LogicalBus(sim)
    seen = []
    bus.attach(lambda txn: seen.append(txn.kind))
    bus.request(BusTransaction("GETS", 0x40, "a"))
    bus.request(BusTransaction("GETX", 0x80, "b"))
    bus.request(BusTransaction("WB", 0xC0, "c"))
    sim.run()
    assert seen == ["GETS", "GETX", "WB"]
    assert bus.transactions == 3


def test_bus_occupancy_spaces_broadcasts():
    sim = Simulator()
    bus = LogicalBus(sim, occupancy_ns=10.0, arbitration_ns=4.0)
    times = []
    bus.attach(lambda txn: times.append(sim.now))
    for i in range(3):
        bus.request(BusTransaction("GETS", i * 64, "a"))
    sim.run()
    assert times[0] == ns(4)
    assert times[1] - times[0] == ns(14)  # occupancy + next arbitration
    assert times[2] - times[1] == ns(14)


def test_bus_every_snooper_sees_every_transaction():
    sim = Simulator()
    bus = LogicalBus(sim)
    seen = {1: [], 2: []}
    bus.attach(lambda txn: seen[1].append(txn.addr))
    bus.attach(lambda txn: seen[2].append(txn.addr))
    bus.request(BusTransaction("GETS", 0x40, "a"))
    sim.run()
    assert seen[1] == seen[2] == [0x40]


def test_bus_idle_then_new_request():
    sim = Simulator()
    bus = LogicalBus(sim)
    seen = []
    bus.attach(lambda txn: seen.append(sim.now))
    bus.request(BusTransaction("GETS", 0, "a"))
    sim.run()
    first = seen[0]
    bus.request(BusTransaction("GETS", 64, "a"))
    sim.run()
    assert len(seen) == 2 and seen[1] > first
