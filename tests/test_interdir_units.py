"""Focused unit tests for the inter-CMP directory controller."""

import pytest

from repro.common.params import SystemParams
from repro.common.stats import Stats
from repro.common.types import NodeId, NodeKind
from repro.directory.inter import InterDirController
from repro.directory.states import GRANT_E, GRANT_M, GRANT_S
from repro.interconnect.message import Message, MsgType
from repro.interconnect.network import Network
from repro.interconnect.traffic import TrafficMeter
from repro.sim.kernel import Simulator
from repro.system.config import protocol


BLOCK = 0  # homed at chip 0


@pytest.fixture
def rig():
    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    sim = Simulator()
    net = Network(sim, params, TrafficMeter())
    stats = Stats()
    dir_ = InterDirController(
        NodeId(NodeKind.MEM, 0), sim, net, params, stats, protocol("DirectoryCMP")
    )
    inboxes = {}
    for chip in params.all_chips():
        node = params.l2_bank(BLOCK, chip)
        inboxes[chip] = []
        net.register(node, inboxes[chip].append)
    return params, sim, net, stats, dir_, inboxes


def _req(net, sim, params, mtype, chip, **kw):
    src = params.l2_bank(BLOCK, chip)
    net.send(Message(mtype=mtype, src=src, dst=NodeId(NodeKind.MEM, 0),
                     addr=BLOCK, requestor=src, **kw))
    sim.run()


def _unblock(net, sim, params, chip, granted):
    src = params.l2_bank(BLOCK, chip)
    net.send(Message(MsgType.DIR_UNBLOCK, src, NodeId(NodeKind.MEM, 0),
                     addr=BLOCK, requestor=src, extra=granted))
    sim.run()


def test_cold_gets_grants_exclusive(rig):
    params, sim, net, stats, dir_, inboxes = rig
    _req(net, sim, params, MsgType.DIR_GETS, chip=0)
    (msg,) = inboxes[0]
    assert msg.mtype is MsgType.DIR_DATA and msg.extra == GRANT_E
    _unblock(net, sim, params, 0, GRANT_E)
    line = dir_.lines[BLOCK]
    assert line.state == "M" and line.owner_chip == 0 and not line.busy


def test_gets_to_owned_block_forwards(rig):
    params, sim, net, stats, dir_, inboxes = rig
    _req(net, sim, params, MsgType.DIR_GETS, chip=0)
    _unblock(net, sim, params, 0, GRANT_E)
    inboxes[0].clear()
    _req(net, sim, params, MsgType.DIR_GETS, chip=1)
    (fwd,) = inboxes[0]  # owner chip receives the forward
    assert fwd.mtype is MsgType.DIR_FWD_GETS
    assert stats.get("interdir.forwards") == 1


def test_share_unblock_builds_owner_plus_sharer(rig):
    params, sim, net, stats, dir_, inboxes = rig
    _req(net, sim, params, MsgType.DIR_GETS, chip=0)
    _unblock(net, sim, params, 0, GRANT_E)
    _req(net, sim, params, MsgType.DIR_GETS, chip=1)
    _unblock(net, sim, params, 1, GRANT_S)
    line = dir_.lines[BLOCK]
    assert line.state == "O" and line.owner_chip == 0
    assert line.sharer_chips == {1}


def test_getx_invalidates_sharers_with_ack_count(rig):
    params, sim, net, stats, dir_, inboxes = rig
    # chips 0 and 1 both share (memory owner): build S state.
    _req(net, sim, params, MsgType.DIR_GETS, chip=0)
    _unblock(net, sim, params, 0, GRANT_S)
    _req(net, sim, params, MsgType.DIR_GETS, chip=1)
    _unblock(net, sim, params, 1, GRANT_S)
    for box in inboxes.values():
        box.clear()
    _req(net, sim, params, MsgType.DIR_GETX, chip=0)
    (inv,) = inboxes[1]
    assert inv.mtype is MsgType.DIR_INV
    (data,) = inboxes[0]
    assert data.mtype is MsgType.DIR_DATA and data.acks == 1 and data.extra == GRANT_M


def test_busy_block_defers_requests(rig):
    params, sim, net, stats, dir_, inboxes = rig
    _req(net, sim, params, MsgType.DIR_GETS, chip=0)  # busy until unblock
    _req(net, sim, params, MsgType.DIR_GETS, chip=1)  # deferred
    assert stats.get("interdir.deferred_requests") == 1
    assert len(inboxes[1]) == 0
    _unblock(net, sim, params, 0, GRANT_E)
    # The deferred request now proceeds (forwarded to the new owner).
    assert any(m.mtype is MsgType.DIR_FWD_GETS for m in inboxes[0])


def test_three_phase_writeback_returns_ownership(rig):
    params, sim, net, stats, dir_, inboxes = rig
    _req(net, sim, params, MsgType.DIR_GETS, chip=0)
    _unblock(net, sim, params, 0, GRANT_E)
    inboxes[0].clear()
    _req(net, sim, params, MsgType.DIR_WB_REQ, chip=0)
    (grant,) = inboxes[0]
    assert grant.mtype is MsgType.DIR_WB_GRANT
    src = params.l2_bank(BLOCK, 0)
    net.send(Message(MsgType.DIR_WB_DATA, src, dir_.node, BLOCK,
                     requestor=src, data=42, dirty=True))
    sim.run()
    line = dir_.lines[BLOCK]
    assert line.state == "I" and line.owner_chip is None
    assert dir_.image.read(BLOCK) == 42


def test_clean_eviction_notice_updates_sharers(rig):
    params, sim, net, stats, dir_, inboxes = rig
    _req(net, sim, params, MsgType.DIR_GETS, chip=0)
    _unblock(net, sim, params, 0, GRANT_S)
    src = params.l2_bank(BLOCK, 0)
    net.send(Message(MsgType.DIR_WB_TOKEN, src, dir_.node, BLOCK,
                     requestor=src, extra="notice"))
    sim.run()
    line = dir_.lines[BLOCK]
    assert line.state == "I" and not line.sharer_chips


def test_zero_cycle_directory_skips_lookup_latency():
    params = SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    latencies = {}
    for name in ("DirectoryCMP", "DirectoryCMP-zero"):
        sim = Simulator()
        net = Network(sim, params, TrafficMeter())
        dir_ = InterDirController(
            NodeId(NodeKind.MEM, 0), sim, net, params, Stats(), protocol(name)
        )
        node = params.l2_bank(BLOCK, 0)
        got = []
        net.register(node, lambda m: got.append(sim.now))
        net.register(params.l2_bank(BLOCK, 1), lambda m: None)
        # Set up an owner so the request is a FORWARD (control decision).
        dir_.lines[BLOCK] = __import__("repro.directory.states", fromlist=["HomeLine"]).HomeLine(
            state="M", owner_chip=0
        )
        net.send(Message(MsgType.DIR_GETS, params.l2_bank(BLOCK, 1), dir_.node,
                         BLOCK, requestor=params.l2_bank(BLOCK, 1)))
        sim.run()
        latencies[name] = got[0]
    assert latencies["DirectoryCMP-zero"] < latencies["DirectoryCMP"]
    assert latencies["DirectoryCMP"] - latencies["DirectoryCMP-zero"] == params.dram_latency_ps
