"""Unit tests for the performance suite harness (repro.perf).

The full suite runs in CI's perf-smoke job; here we test the harness
logic (deterministic projection, regression comparison) with synthetic
reports plus one tiny real microbenchmark run.
"""

from repro.perf import (
    DETERMINISTIC_FIELDS,
    SCHEMA,
    bench_kernel_chain,
    compare,
    deterministic_stats,
    render,
)


def _report(quick=True, chain_rate=1000.0, events=100):
    return {
        "schema": SCHEMA,
        "quick": quick,
        "benchmarks": {
            "kernel_chain": {
                "events": events,
                "wall_s": events / chain_rate,
                "events_per_sec": chain_rate,
            },
        },
    }


def test_bench_kernel_chain_counts_every_event():
    result = bench_kernel_chain(n_events=2_000, chains=4, repeats=1)
    assert result["events"] == 2_000
    assert result["events_per_sec"] > 0


def test_deterministic_stats_strip_timing_fields():
    stats = deterministic_stats(_report())
    bench = stats["benchmarks"]["kernel_chain"]
    assert bench == {"events": 100}
    assert "wall_s" not in bench and "events_per_sec" not in bench


def test_deterministic_fields_cover_every_suite_benchmark():
    assert set(DETERMINISTIC_FIELDS) == {
        "kernel_chain", "kernel_cancel", "network_send", "network_send_mesh",
        "e2e_fig6_smoke",
    }


def test_compare_passes_within_tolerance():
    baseline = _report(chain_rate=1000.0)
    current = _report(chain_rate=750.0)  # 25% slower: inside 30%
    assert compare(current, baseline, tolerance=0.30) == []


def test_compare_flags_regression_beyond_tolerance():
    baseline = _report(chain_rate=1000.0)
    current = _report(chain_rate=500.0)  # 50% slower
    problems = compare(current, baseline, tolerance=0.30)
    assert len(problems) == 1
    assert "kernel_chain.events_per_sec" in problems[0]


def test_compare_flags_determinism_drift_at_same_sizes():
    baseline = _report(events=100)
    current = _report(events=101)
    problems = compare(current, baseline, tolerance=0.30)
    assert any("determinism" in p for p in problems)


def test_compare_skips_micro_determinism_across_sizes():
    # A --quick run uses smaller microbenchmark sizes than the committed
    # full-size baseline; event-count equality only applies like-for-like.
    baseline = _report(quick=False, events=1000)
    current = _report(quick=True, events=100)
    assert compare(current, baseline, tolerance=0.30) == []


def test_compare_flags_missing_benchmark():
    baseline = _report()
    current = {"schema": SCHEMA, "quick": True, "benchmarks": {}}
    problems = compare(current, baseline)
    assert problems == ["kernel_chain: missing from current run"]


def test_render_mentions_throughput_and_speedup():
    report = _report()
    report["speedup"] = {"kernel_chain": 1.52}
    text = render(report)
    assert "kernel_chain" in text
    assert "1.52x" in text
