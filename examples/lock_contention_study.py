#!/usr/bin/env python3
"""Lock-contention study: Figures 2 and 3 in miniature.

Sweeps the number of locks in the test-and-test-and-set locking
micro-benchmark from high contention (2 locks for 16 processors) to low
contention (512 locks), comparing persistent-request mechanisms and
performance policies.  Prints runtimes normalized to DirectoryCMP at 512
locks, like the paper's figures.

Usage:  python examples/lock_contention_study.py [--acquires N]
"""

import argparse

from repro.common.params import SystemParams
from repro.system import MachineSpec
from repro.workloads.locking import LockingWorkload

PROTOCOLS = [
    "TokenCMP-arb0",
    "TokenCMP-dst0",
    "DirectoryCMP",
    "DirectoryCMP-zero",
    "TokenCMP-dst4",
    "TokenCMP-dst1",
    "TokenCMP-dst1-pred",
]
LOCKS = [2, 8, 32, 128, 512]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--acquires", type=int, default=12,
                        help="lock acquires per processor (default 12)")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    params = SystemParams()
    runtimes = {}
    for locks in LOCKS:
        for proto in PROTOCOLS:
            machine = MachineSpec(params=params, protocol=proto, seed=args.seed).build()
            wl = LockingWorkload(params, num_locks=locks,
                                 acquires_per_proc=args.acquires, seed=args.seed)
            runtimes[(locks, proto)] = machine.run(wl).runtime_ps

    base = runtimes[(512, "DirectoryCMP")]
    width = max(len(p) for p in PROTOCOLS)
    print(f"\nRuntime normalized to DirectoryCMP @ 512 locks "
          f"(16 processors, {args.acquires} acquires each; lower is better)\n")
    print("  " + "locks".ljust(width) + "".join(f"{l:>8}" for l in LOCKS))
    for proto in PROTOCOLS:
        row = "".join(f"{runtimes[(l, proto)] / base:8.2f}" for l in LOCKS)
        print("  " + proto.ljust(width) + row)

    from repro.analysis.chart import sweep_chart

    series = {
        proto: [runtimes[(l, proto)] / base for l in LOCKS]
        for proto in ("TokenCMP-arb0", "TokenCMP-dst0", "DirectoryCMP", "TokenCMP-dst1")
    }
    print()
    print(sweep_chart("Figures 2-3 in one sweep (y = normalized runtime)",
                      LOCKS, series))
    print("\nRead left (contended) to right (uncontended): the arbiter scheme"
          "\ndegrades under contention, distributed activation does not, and"
          "\nTokenCMP beats the directory once sharing misses dominate.")


if __name__ == "__main__":
    main()
