#!/usr/bin/env python3
"""Section 5 in miniature: model-check the coherence protocols.

Exhaustively explores down-scaled models of the TokenCMP correctness
substrate (safety-only, arbiter activation, distributed activation) and a
flat directory protocol, verifying safety (token conservation, single
writer, value coherence), deadlock freedom, and liveness under fairness.

Because only the correctness substrate is modelled — the performance
policy is fully nondeterministic — a successful check covers every
performance policy at once, hierarchical ones included.  That is the
paper's central verification argument.

Usage:  python examples/verify_protocols.py [--fast]
"""

import argparse
import time

from repro.verification.checker import check, spec_size
from repro.verification.dir_model import DirFlatModel
from repro.verification.token_model import (
    TokenArbModel,
    TokenDstModel,
    TokenSafetyModel,
    _TokenBase,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="skip the larger persistent-request models")
    args = parser.parse_args()

    models = [
        (TokenSafetyModel(), False),
        (DirFlatModel(), True),
    ]
    if not args.fast:
        models.insert(1, (TokenArbModel(values=1, coarse_sends=True), True))
        models.insert(2, (TokenDstModel(values=1, coarse_sends=True), True))

    print(f"{'model':22s} {'states':>10s} {'transitions':>12s} "
          f"{'diameter':>9s} {'spec lines':>11s} {'time':>8s}")
    for model, liveness in models:
        t0 = time.time()
        result = check(model, max_states=6_000_000, check_liveness=liveness)
        lines = spec_size(type(model))
        if isinstance(model, _TokenBase):
            lines += spec_size(_TokenBase)
        print(f"{model.name:22s} {result.states:10d} {result.transitions:12d} "
              f"{result.diameter:9d} {lines:11d} {time.time() - t0:7.1f}s")
    print("\nAll properties verified: safety, deadlock freedom"
          " and (where applicable) liveness under fairness.")


if __name__ == "__main__":
    main()
