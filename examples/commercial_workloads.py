#!/usr/bin/env python3
"""Figure 6 in miniature: commercial workloads on every protocol.

Runs the three synthetic commercial workloads (OLTP, Apache, SPECjbb)
over DirectoryCMP, the TokenCMP variants and the PerfectL2 bound, then
prints normalized runtime and the TokenCMP-dst1 speedups next to the
paper's reported 50% / 29% / 10%.

Usage:  python examples/commercial_workloads.py [--refs N]
"""

import argparse

from repro.common.params import SystemParams
from repro.interconnect.traffic import Scope
from repro.system import MachineSpec
from repro.workloads.commercial import make_commercial

PROTOCOLS = [
    "DirectoryCMP",
    "DirectoryCMP-zero",
    "TokenCMP-dst4",
    "TokenCMP-dst1",
    "TokenCMP-dst1-pred",
    "TokenCMP-dst1-filt",
    "PerfectL2",
]
WORKLOADS = ["oltp", "apache", "specjbb"]
PAPER = {"oltp": "50%", "apache": "29%", "specjbb": "10%"}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--refs", type=int, default=250,
                        help="memory references per processor (default 250)")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    params = SystemParams()
    results = {}
    for wl_name in WORKLOADS:
        for proto in PROTOCOLS:
            machine = MachineSpec(params=params, protocol=proto, seed=args.seed).build()
            wl = make_commercial(params, wl_name, seed=args.seed,
                                 refs_per_proc=args.refs)
            results[(wl_name, proto)] = machine.run(wl)

    width = max(len(p) for p in PROTOCOLS)
    print("\nRuntime normalized to DirectoryCMP (lower is better)\n")
    print("  " + "protocol".ljust(width) + "".join(f"{w:>10}" for w in WORKLOADS))
    for proto in PROTOCOLS:
        row = ""
        for wl_name in WORKLOADS:
            base = results[(wl_name, "DirectoryCMP")].runtime_ps
            row += f"{results[(wl_name, proto)].runtime_ps / base:10.2f}"
        print("  " + proto.ljust(width) + row)

    print("\nTokenCMP-dst1 speedup over DirectoryCMP (paper's Figure 6):")
    for wl_name in WORKLOADS:
        base = results[(wl_name, "DirectoryCMP")].runtime_ps
        tok = results[(wl_name, "TokenCMP-dst1")].runtime_ps
        print(f"  {wl_name:10s} measured {base / tok - 1:+5.0%}   paper +{PAPER[wl_name]}")

    print("\nInter-CMP traffic normalized to DirectoryCMP:")
    for wl_name in WORKLOADS:
        base = results[(wl_name, "DirectoryCMP")].traffic_bytes(Scope.INTER)
        tok = results[(wl_name, "TokenCMP-dst1")].traffic_bytes(Scope.INTER)
        print(f"  {wl_name:10s} TokenCMP-dst1 {tok / base:5.2f}")


if __name__ == "__main__":
    main()
