#!/usr/bin/env python3
"""S-CMP context (paper Section 1): snooping vs the M-CMP protocols.

On a *single* CMP, the paper notes coherence is "conceptually
straightforward" — a traditional bus-snooping protocol suffices, and the
heavyweight M-CMP machinery buys nothing.  This example runs the shared
counter and a contended locking workload on one 4-processor chip under
bus snooping, TokenCMP-dst1 and DirectoryCMP, then grows the machine to
4 chips to show where snooping stops being an option and the M-CMP
protocols earn their keep.

Usage:  python examples/scmp_snooping.py
"""

from repro.common.errors import ConfigError
from repro.common.params import SystemParams
from repro.system import MachineSpec
from repro.workloads.locking import LockingWorkload
from repro.workloads.sharing import CounterWorkload


def run(params, proto, make_workload):
    machine = MachineSpec(params=params, protocol=proto, seed=1).build()
    workload = make_workload(params)
    result = machine.run(workload)
    return result.runtime_ns


def main() -> None:
    scmp = SystemParams(num_chips=1, procs_per_chip=4, tokens_per_block=16)
    mcmp = SystemParams()  # 4 chips x 4 processors

    print("Single CMP (4 processors): runtime in ns, lower is better\n")
    workloads = {
        "shared counter": lambda p: CounterWorkload(p, increments=10, seed=1),
        "locking (8 locks)": lambda p: LockingWorkload(
            p, num_locks=8, acquires_per_proc=12, seed=1),
    }
    protos = ["SnoopingSCMP", "TokenCMP-dst1", "DirectoryCMP"]
    for wl_name, factory in workloads.items():
        row = {proto: run(scmp, proto, factory) for proto in protos}
        cells = "  ".join(f"{proto}={row[proto]:8.0f}" for proto in protos)
        print(f"  {wl_name:18s} {cells}")

    print("\nThe snooping bus is competitive on one chip — and impossible")
    print("beyond it:")
    try:
        MachineSpec(params=mcmp, protocol="SnoopingSCMP").build()
    except ConfigError as err:
        print(f"  SnoopingSCMP on 4 CMPs -> ConfigError: {err}")

    print("\n4 CMPs x 4 processors, same workloads (snooping replaced by the")
    print("M-CMP protocols the paper builds):\n")
    for wl_name, factory in workloads.items():
        row = {p: run(mcmp, p, factory) for p in ("TokenCMP-dst1", "DirectoryCMP")}
        cells = "  ".join(f"{proto}={row[proto]:8.0f}" for proto in row)
        print(f"  {wl_name:18s} {cells}")


if __name__ == "__main__":
    main()
