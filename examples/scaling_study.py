#!/usr/bin/env python3
"""Scaling study: inter-CMP traffic as the machine grows (Section 8).

The paper: "In a system with more CMPs, TokenCMP traffic results will be
worse (unless multicast with destination set predictions is employed)."
This example grows the machine from 2 to 8 CMPs and compares the
broadcast protocol (TokenCMP-dst1) against the destination-set-prediction
multicast extension (TokenCMP-dst1-mcast), with DirectoryCMP as the
traffic baseline.

Usage:  python examples/scaling_study.py [--refs N]
"""

import argparse

from repro.analysis.chart import bar_chart
from repro.common.params import SystemParams
from repro.interconnect.traffic import Scope
from repro.system import MachineSpec
from repro.workloads.commercial import make_commercial

PROTOCOLS = ["DirectoryCMP", "TokenCMP-dst1", "TokenCMP-dst1-mcast"]
CHIPS = [2, 4, 8]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--refs", type=int, default=120,
                        help="memory references per processor (default 120)")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    for chips in CHIPS:
        params = SystemParams(
            num_chips=chips, tokens_per_block=128 if chips > 4 else 64
        )
        results = {}
        for proto in PROTOCOLS:
            machine = MachineSpec(params=params, protocol=proto, seed=args.seed).build()
            wl = make_commercial(params, "oltp", seed=args.seed,
                                 refs_per_proc=args.refs)
            results[proto] = machine.run(wl)
        base = results["DirectoryCMP"].traffic_bytes(Scope.INTER)
        rows = [
            (proto, results[proto].traffic_bytes(Scope.INTER) / base)
            for proto in PROTOCOLS
        ]
        print()
        print(bar_chart(
            f"{chips} CMPs ({chips * params.procs_per_chip} processors) — "
            "inter-CMP bytes relative to DirectoryCMP",
            rows, unit="x",
        ))
        dst1 = results["TokenCMP-dst1"]
        mcast = results["TokenCMP-dst1-mcast"]
        saved = 1 - mcast.traffic_bytes(Scope.INTER) / dst1.traffic_bytes(Scope.INTER)
        print(f"  destination-set multicast saves {saved:.0%} of TokenCMP's "
              f"inter-CMP bytes at {chips} CMPs")


if __name__ == "__main__":
    main()
