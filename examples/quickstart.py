#!/usr/bin/env python3
"""Quickstart: build an M-CMP machine, run a workload, read the results.

Part 1 proves coherence end to end: a lock-protected shared counter on
TokenCMP must come out exact, and the token-conservation invariants must
hold afterwards.

Part 2 is the paper's headline comparison: the OLTP-profile workload on
the hierarchical MOESI directory baseline vs TokenCMP-dst1 (Figure 6
reported TokenCMP ~50% faster on OLTP).
"""

from repro.common.params import SystemParams
from repro.interconnect.traffic import Scope
from repro.system import MachineSpec
from repro.workloads.commercial import make_commercial
from repro.workloads.sharing import CounterWorkload


def main() -> None:
    params = SystemParams()  # Table 3 defaults: 4 CMPs x 4 processors
    print(f"Machine: {params.num_chips} CMPs x {params.procs_per_chip} processors, "
          f"{params.tokens_per_block} tokens/block\n")

    # --- Part 1: coherence is real -----------------------------------
    machine = MachineSpec(params=params, protocol="TokenCMP-dst1", seed=1).build()
    counter = CounterWorkload(params, increments=10, seed=1)
    machine.run(counter)
    final = machine.coherent_value(counter.counter)
    assert final == counter.expected_total, "coherence violation!"
    machine.check_token_invariants()  # token conservation, single owner...
    print(f"shared counter: {final} / {counter.expected_total} "
          "(mutual exclusion + coherence verified)\n")

    # --- Part 2: the paper's headline comparison ---------------------
    runtimes = {}
    for protocol in ("DirectoryCMP", "TokenCMP-dst1"):
        machine = MachineSpec(params=params, protocol=protocol, seed=1).build()
        workload = make_commercial(params, "oltp", seed=1, refs_per_proc=200)
        result = machine.run(workload)
        runtimes[protocol] = result.runtime_ps
        stats = result.stats
        print(f"{protocol}")
        print(f"  runtime              {result.runtime_ns:10.1f} ns")
        print(f"  L1 hits / misses     {stats.get('l1.hits')} / {stats.get('l1.misses')}")
        print(f"  avg miss latency     "
              f"{stats.summaries['l1.miss_latency_ps'].mean / 1000:10.1f} ns")
        print(f"  persistent requests  {stats.get('persistent.requests')}")
        print(f"  intra-CMP traffic    {result.traffic_bytes(Scope.INTRA):10d} bytes")
        print(f"  inter-CMP traffic    {result.traffic_bytes(Scope.INTER):10d} bytes")
        sources = {k.replace("miss.src.", ""): v
                   for k, v in stats.counters.items() if k.startswith("miss.src.")}
        total = sum(sources.values()) or 1
        profile = ", ".join(f"{k} {v / total:.0%}"
                            for k, v in sorted(sources.items(), key=lambda kv: -kv[1]))
        print(f"  miss data sources    {profile}")
        print()
    speedup = runtimes["DirectoryCMP"] / runtimes["TokenCMP-dst1"] - 1
    print(f"TokenCMP-dst1 speedup on OLTP: {speedup:+.0%} (paper: +50%)")
    print("(DirectoryCMP misses resolve via the home L2 — the indirection;"
          " TokenCMP's broadcast reaches remote L1s directly.)")


if __name__ == "__main__":
    main()
