"""Shared behaviour of token-coherence cache controllers (L1 and L2).

Every cache is a peer in the **flat** correctness substrate: it counts
tokens, remembers activated persistent requests in its own table, and
forwards tokens to active persistent requests.  The *hierarchical*
behaviour (where transient requests travel) lives entirely in the
performance-policy hooks of the L1/L2 subclasses — exactly the separation
the paper exploits.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.common.params import SystemParams
from repro.common.stats import Stats
from repro.common.types import NodeId, NodeKind
from repro.core.persistent import PersistentEntry, PersistentTable, persistent_read_share
from repro.core.tokens import TokenEntry
from repro.interconnect.message import Message, MessagePool, MsgType
from repro.interconnect.network import Network
from repro.memory.cache import CacheArray
from repro.sim.kernel import Simulator
from repro.system.config import ProtocolConfig

_TOKEN_CARRIERS = (MsgType.TOK_DATA, MsgType.TOK_ACK, MsgType.TOK_WB, MsgType.TOK_WB_DATA)


class TokenCacheController:
    """A cache that obeys the token-coherence correctness substrate."""

    def __init__(
        self,
        node: NodeId,
        sim: Simulator,
        net: Network,
        params: SystemParams,
        stats: Stats,
        cfg: ProtocolConfig,
        array: CacheArray,
        lookup_latency_ps: int,
    ):
        self.node = node
        self.sim = sim
        self.net = net
        self.params = params
        self.stats = stats
        self.cfg = cfg
        self.array = array
        self.lookup_latency_ps = lookup_latency_ps
        self.table = PersistentTable()
        self._hold_recheck: set = set()
        self._deferred: dict = {}  # addr -> [(event, fn, args)] parked on hold
        # Last recreation epoch seen per block (recovery tier).  Token
        # carriers are stamped with the sender's epoch; anything older
        # than what we know is stale and discarded, never absorbed.
        self._block_epoch: dict = {}
        # The shared message pool (one per machine, owned by the network;
        # fault wrappers forward the attribute).  Ad-hoc test networks
        # without one get a private disabled pool, which degrades every
        # acquire to plain construction and release to a no-op.
        pool = getattr(net, "pool", None)
        self.pool: MessagePool = pool if pool is not None else MessagePool(enabled=False)
        # Hot-path bindings, resolved once instead of per message.
        self._call_after = sim.call_after
        self._process_cb = self._process
        self._counters = stats.counters  # defaultdict: bare += per bump
        self._lookup = array.lookup
        net.register(node, self.handle)

    # ------------------------------------------------------------------
    @property
    def chip(self) -> int:
        return self.node.chip

    def peek_entry(self, addr: int) -> Optional[TokenEntry]:
        """Entry for ``addr`` without disturbing LRU (used by the ledger)."""
        return self.array.lookup(addr, touch=False)

    def token_census(self) -> Tuple[int, int, int]:
        """(cached blocks, tokens held, owner blocks) across the array.

        Observational only (no LRU touch, no state change) — the
        telemetry sampler aggregates these per cache level.
        """
        blocks = 0
        tokens = 0
        owners = 0
        for _addr, entry in self.array.items():
            blocks += 1
            tokens += entry.tokens
            if entry.owner:
                owners += 1
        return blocks, tokens, owners

    # ------------------------------------------------------------------
    # Message handling.
    # ------------------------------------------------------------------
    def handle(self, msg: Message) -> None:
        """Network entry point: model the tag-lookup latency, then act."""
        self._call_after(self.lookup_latency_ps, self._process_cb, msg)

    def _process(self, msg: Message) -> None:
        t = msg.mtype
        if t in (MsgType.TOK_GETS, MsgType.TOK_GETX):
            self._on_transient(msg)
        elif t in _TOKEN_CARRIERS:
            self._on_tokens(msg)
        elif t is MsgType.PERSIST_ACTIVATE:
            self._on_activate(msg)
        elif t is MsgType.PERSIST_DEACTIVATE:
            self._on_deactivate(msg)
        elif t is MsgType.TOK_RECREATE_EPOCH:
            self._on_recreate_epoch(msg)
        else:  # pragma: no cover - defensive
            raise ValueError(f"{self.node}: unexpected message {msg}")
        # Final delivery: the message's lifecycle ends here.  Dispatchees
        # must copy out any scalars they need (pool discipline) — the
        # record goes back on the freelist for the next acquire.  Inlined
        # MessagePool.release: unflagged messages (pooling off, or plain
        # construction) make the pop a no-op.
        if msg.__dict__.pop("_pooled", None):
            pool = self.pool
            pool.releases += 1
            pool._free.append(msg)

    # ------------------------------------------------------------------
    # Token arrival (responses, writebacks — all the same to the substrate).
    # ------------------------------------------------------------------
    def _on_tokens(self, msg: Message) -> None:
        if msg.epoch < self._block_epoch.get(msg.addr, 0):
            # Stale-epoch carrier: its tokens were invalidated by a
            # recreation bump and must not be absorbed (the home memory
            # controller has already reconstituted the full set).
            self.net.token_absorbed(msg)
            self.stats.bump("recovery.stale_discarded")
            self.stats.bump("recovery.stale_tokens", msg.tokens)
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.stale_discard(self.node, msg, self._block_epoch[msg.addr])
            return
        self.net.token_absorbed(msg)  # retire in-flight conservation tracking
        if msg.tokens == 0 and not msg.owner:
            return
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.token_absorb(self.node, msg)
        entry = self._ensure_entry(msg.addr)
        # The dirty bit is deliberately NOT inherited from the sender: it
        # drives the migratory-sharing heuristic, which applies only when
        # the *responding* cache itself modified the block (Section 4).
        # Memory freshness needs no dirty bit — the owner token always
        # travels with data and memory updates its image on owner return.
        entry.absorb(msg.tokens, msg.owner, msg.data, dirty=False)
        self._hook_absorbed(msg)
        self._token_state_changed(msg.addr)

    def _ensure_entry(self, addr: int) -> TokenEntry:
        entry = self._lookup(addr)
        if entry is None:
            entry = TokenEntry()
            victim = self.array.allocate(addr, entry, evictable=self._evictable)
            if victim is not None:
                self._writeback(*victim)
        return entry

    def _evictable(self, addr: int, entry: TokenEntry) -> bool:
        return True  # L1 pins blocks with outstanding transactions

    def _writeback(self, addr: int, entry: TokenEntry) -> None:
        """Evicted tokens go down the hierarchy — no handshake needed."""
        if entry.tokens == 0:
            return
        self.stats.bump("token.writebacks")
        self._send_tokens(
            dst=self._writeback_destination(addr),
            addr=addr,
            entry=entry,
            give=entry.tokens,
            give_owner=entry.owner,
            include_data=entry.owner,
            writeback=True,
        )

    def _writeback_destination(self, addr: int) -> NodeId:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Substrate reaction to any token-state change.
    # ------------------------------------------------------------------
    def _token_state_changed(self, addr: int) -> None:
        entry = self._lookup(addr, False)
        if entry is not None and entry.tokens == 0:
            self.array.deallocate(addr)
            entry = None
        if entry is not None and entry.tokens > 0:
            active = self.table.active_for(addr)
            if active is not None and active.requestor != self.node:
                self._forward_persistent(addr, entry, active)
                if entry.tokens == 0:
                    self.array.deallocate(addr)
        self._maybe_complete(addr)

    def _forward_persistent(self, addr: int, entry: TokenEntry, active: PersistentEntry) -> None:
        """Forward tokens to the active persistent request (Section 3.2)."""
        if entry.hold_until > self.sim.now:
            self._schedule_hold_recheck(addr, entry.hold_until)
            return
        if active.read:
            if (
                self.cfg.migratory
                and entry.owner
                and entry.dirty
                and entry.tokens == self.params.tokens_per_block
            ):
                # Migratory sharing applies to persistent reads too: a
                # locally-modified block moves whole, so the reader's
                # subsequent write hits (giving more than the required
                # all-but-one is always safe).
                give = entry.tokens
            else:
                give = persistent_read_share(entry.tokens, entry.owner)
        else:
            give = entry.tokens
        if give == 0:
            return
        give_owner = entry.owner  # the owner token (and data) always move first
        self.stats.bump("persistent.forwards")
        self._send_tokens(
            dst=active.requestor,
            addr=addr,
            entry=entry,
            give=give,
            give_owner=give_owner,
            include_data=give_owner,
        )

    def _schedule_hold_recheck(self, addr: int, when_ps: int) -> None:
        if addr in self._hold_recheck:
            return
        self._hold_recheck.add(addr)

        def _recheck() -> None:
            self._hold_recheck.discard(addr)
            self._token_state_changed(addr)

        self._defer(addr, when_ps, _recheck)

    # ------------------------------------------------------------------
    # Hold-window deferral: actions parked until the response-delay window
    # ends, released early when the hold is disarmed (lock release).
    # ------------------------------------------------------------------
    def _defer(self, addr: int, when_ps: int, fn, *args) -> None:
        holder = self._deferred.setdefault(addr, [])
        record = []

        def _fire() -> None:
            holder.remove(record[0])
            fn(*args)

        event = self.sim.schedule_at(when_ps, _fire)
        record.append((event, fn, args))
        holder.append(record[0])

    def _flush_deferred(self, addr: int) -> None:
        """Run all parked actions now (the hold window ended early)."""
        for event, fn, args in self._deferred.pop(addr, []):
            event.cancel()
            fn(*args)
        self._hold_recheck.discard(addr)

    # ------------------------------------------------------------------
    # Transient-request response rules (Section 4).
    # ------------------------------------------------------------------
    def _on_transient(self, msg: Message) -> None:
        # Hoisted early-exit: most receivers of a broadcast transient hold
        # no tokens for the block, so skip the responder call entirely.
        addr = msg.addr
        requestor = msg.requestor
        entry = self._lookup(addr, False)
        if entry is None or entry.tokens == 0 or requestor == self.node:
            return
        self._respond_transient(msg.mtype, addr, requestor)

    def _respond_transient(self, mtype: MsgType, addr: int, requestor: NodeId) -> None:
        # Scalar arguments by design: responding can be parked on a hold
        # window (``_defer`` below), and a deferred continuation must not
        # capture the pooled request message past its delivery.
        entry = self._lookup(addr, False)
        if entry is None or entry.tokens == 0 or requestor == self.node:
            return  # a cache only responds when it actually has tokens
        if self.table.active_for(addr) is not None:
            # An activated persistent request reserves this block's tokens:
            # they are forwarded to its initiator, never to transients.
            return
        if entry.hold_until > self.sim.now:
            # Response-delay mechanism: finish the critical section first.
            self._defer(addr, entry.hold_until, self._respond_transient,
                        mtype, addr, requestor)
            return

        T = self.params.tokens_per_block
        local = requestor.chip == self.chip
        if mtype is MsgType.TOK_GETX:
            self._send_tokens(
                requestor, addr, entry,
                give=entry.tokens, give_owner=entry.owner, include_data=entry.owner,
            )
            return

        # Read request.
        if self.cfg.migratory and entry.owner and entry.dirty and entry.tokens == T:
            # Migratory sharing: hand over everything, reader will write.
            self._send_tokens(
                requestor, addr, entry,
                give=entry.tokens, give_owner=True, include_data=True,
            )
            self.stats.bump("token.migratory_transfers")
        elif local:
            if entry.valid_data and entry.tokens >= 2:
                self._send_tokens(
                    requestor, addr, entry, give=1, give_owner=False, include_data=True,
                )
        else:
            # A CMP responds to external reads only from the owner, and
            # sends C tokens when possible to seed future local sharing.
            if entry.owner:
                want = self.params.caches_per_chip if self.cfg.read_tokens_c else 1
                give = min(want, entry.tokens)
                if give == entry.tokens:
                    self._send_tokens(
                        requestor, addr, entry,
                        give=give, give_owner=True, include_data=True,
                    )
                else:
                    self._send_tokens(
                        requestor, addr, entry,
                        give=give, give_owner=False, include_data=True,
                    )

        if entry.tokens == 0:
            self.array.deallocate(addr)

    # ------------------------------------------------------------------
    # Token recreation (recovery tier): surrender on an epoch bump.
    # ------------------------------------------------------------------
    def _on_recreate_epoch(self, msg: Message) -> None:
        """The ruler of tokens bumped the block's epoch: discard every
        local token (they are now stale) and ack the surrender.  If we
        held the owner token our copy is the canonical value, so it rides
        along on the ack for memory to seed the recreated block."""
        addr = msg.addr
        epoch = msg.epoch
        if epoch < self._block_epoch.get(addr, 0):
            return  # reordered bump from an already-closed epoch
        self._block_epoch[addr] = epoch
        entry = self.array.lookup(addr, touch=False)
        reply_type = MsgType.TOK_RECREATE_ACK
        data = None
        dirty = False
        if entry is not None and not entry.empty:
            if entry.owner and entry.valid_data:
                reply_type = MsgType.TOK_RECREATE_DATA
                data = entry.value
                dirty = entry.dirty
            self.stats.bump("recovery.tokens_surrendered", entry.tokens)
            entry.take(entry.tokens, entry.owner)
            self.array.deallocate(addr)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.recreate_surrender(self.node, addr, epoch, with_data=data is not None)
        out = self.pool.acquire(reply_type, self.node, self.params.home_mem(addr), addr)
        out.data = data
        out.dirty = dirty
        out.epoch = epoch
        self.net.send(out)

    # ------------------------------------------------------------------
    # Persistent request table maintenance.
    # ------------------------------------------------------------------
    def _on_activate(self, msg: Message) -> None:
        self.table.insert(
            PersistentEntry(
                proc=msg.extra,
                requestor=msg.requestor,
                addr=msg.addr,
                read=msg.read,
                prio=msg.prio,
            )
        )
        self._token_state_changed(msg.addr)

    def _on_deactivate(self, msg: Message) -> None:
        self.table.remove(msg.extra, msg.addr)
        self._token_state_changed(msg.addr)

    # ------------------------------------------------------------------
    # Low-level send helper.
    # ------------------------------------------------------------------
    def _send_tokens(
        self,
        dst: NodeId,
        addr: int,
        entry: TokenEntry,
        give: int,
        give_owner: bool,
        include_data: bool,
        writeback: bool = False,
    ) -> None:
        tokens, owner, data, dirty = entry.take(give, give_owner)
        if not include_data and not owner:
            data, dirty = None, False
        if writeback:
            mtype = MsgType.TOK_WB_DATA if data is not None else MsgType.TOK_WB
        else:
            mtype = MsgType.TOK_DATA if data is not None else MsgType.TOK_ACK
        out = self.pool.acquire_carrier(
            mtype, self.node, dst, addr,
            tokens=tokens, owner=owner, data=data, dirty=dirty,
            epoch=self._block_epoch.get(addr, 0),
        )
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.token_send(self.node, out)
        self.net.send(out)
        if entry.tokens == 0:
            self.array.deallocate(addr)  # no-op for already-evicted victims
        self._hook_gave_tokens(addr, dst)

    # ------------------------------------------------------------------
    # Subclass hooks.
    # ------------------------------------------------------------------
    def _maybe_complete(self, addr: int) -> None:
        """L1 checks outstanding transactions here."""

    def _hook_absorbed(self, msg: Message) -> None:
        """Called after tokens are absorbed (timeout estimator, filter)."""

    def _hook_gave_tokens(self, addr: int, dst: NodeId) -> None:
        """Called after tokens leave this cache (filter upkeep)."""
