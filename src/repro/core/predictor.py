"""Contention predictor for TokenCMP-dst1-pred (Section 4).

A four-way set-associative, 256-entry table of 2-bit saturating counters,
indexed by block address.  A counter is allocated/incremented when a
transient request times out; a block predicted contended (counter at
threshold) skips the transient request and goes straight to a persistent
request.  Counters are reset pseudo-randomly so the predictor adapts to
phase changes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict

from repro.common.rng import substream


class ContentionPredictor:
    """Set-associative table of saturating contention counters."""

    def __init__(
        self,
        entries: int = 256,
        assoc: int = 4,
        threshold: int = 2,
        max_count: int = 3,
        reset_probability: float = 1 / 128,
        seed: int = 0,
    ):
        self.num_sets = entries // assoc
        self.assoc = assoc
        self.threshold = threshold
        self.max_count = max_count
        self.reset_probability = reset_probability
        self._sets: Dict[int, OrderedDict] = {}
        self._rng = substream(seed, "predictor")

    def _bucket(self, addr: int) -> OrderedDict:
        return self._sets.setdefault((addr >> 6) % self.num_sets, OrderedDict())

    def predict_contended(self, addr: int) -> bool:
        """True if the block should go straight to a persistent request."""
        bucket = self._bucket(addr)
        count = bucket.get(addr)
        if count is None:
            return False
        if self._rng.random() < self.reset_probability:
            bucket[addr] = 0  # pseudo-random reset: re-learn this block
            return False
        bucket.move_to_end(addr)
        return count >= self.threshold

    def train_timeout(self, addr: int) -> None:
        """A transient request for ``addr`` timed out; strengthen the hint."""
        bucket = self._bucket(addr)
        if addr in bucket:
            bucket[addr] = min(self.max_count, bucket[addr] + 1)
            bucket.move_to_end(addr)
            return
        if len(bucket) >= self.assoc:
            bucket.popitem(last=False)  # evict LRU counter
        bucket[addr] = 1
