"""Transient-request timeout estimation (Section 4).

TokenB set its timeout from the running average of *all* response
latencies, which the paper found caused bursts of premature retries in an
M-CMP (fast on-chip hits dominate the average).  TokenCMP instead tracks
only responses **from memory** — the slowest common supplier — and sets
the timeout to a multiple of that average.
"""

from __future__ import annotations

from repro.common.types import ns


class TimeoutEstimator:
    """EWMA of memory-response latency; threshold = multiplier * average.

    The threshold escalates with the retry count of the transaction asking
    for it: each transient retry multiplies the timeout by ``backoff_base``
    (bounded by ``backoff_cap``) before the persistent-request fallback,
    so colliding requestors back off instead of re-broadcasting in lock
    step (Section 4's retry-storm avoidance).  The escalation is stateless
    per transaction — a fresh miss starts again at the base multiplier.
    """

    def __init__(
        self,
        initial_ns: float = 300.0,
        multiplier: float = 1.5,
        alpha: float = 0.25,
        floor_ns: float = 100.0,
        backoff_base: float = 2.0,
        backoff_cap: float = 8.0,
        recreate_multiplier: float = 8.0,
    ):
        self._avg_ps = float(ns(initial_ns / multiplier))
        self.multiplier = multiplier
        self.alpha = alpha
        self.floor_ps = ns(floor_ns)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.recreate_multiplier = recreate_multiplier
        self.samples = 0

    def observe_memory_response(self, latency_ps: int) -> None:
        """Record the latency of one response that came from memory."""
        self._avg_ps += self.alpha * (latency_ps - self._avg_ps)
        self.samples += 1

    def threshold_ps(self, retries: int = 0) -> int:
        """Timeout threshold in picoseconds after ``retries`` retries."""
        escalation = min(self.backoff_cap, self.backoff_base ** retries)
        # The EWMA is float by design; rounding it is reproducible for a
        # given input history, so this is not a determinism hazard.
        return max(self.floor_ps, round(self._avg_ps * self.multiplier * escalation))  # staticcheck: ignore[det-float-time]

    def recreation_threshold_ps(self, attempts: int = 0) -> int:
        """Timeout for the recreation tier *above* persistent requests.

        A persistent request that has been active this long without
        completing suggests its tokens were genuinely destroyed (lossy
        fabric, crashed controller) — the requestor escalates to asking
        the home memory controller, the ruler of tokens, to recreate
        them.  The tier sits a ``recreate_multiplier`` above the fully
        backed-off transient timeout so it can never preempt the normal
        persistent path, and it backs off itself across ``attempts`` so
        repeated recreation requests for one dead block do not storm.
        """
        escalation = min(self.backoff_cap, self.backoff_base ** attempts)
        base_ps = self._avg_ps * self.multiplier * self.backoff_cap * self.recreate_multiplier
        # Reproducible for the same input history, like threshold_ps.
        return max(self.floor_ps, round(base_ps * escalation))  # staticcheck: ignore[det-float-time]
