"""Transient-request timeout estimation (Section 4).

TokenB set its timeout from the running average of *all* response
latencies, which the paper found caused bursts of premature retries in an
M-CMP (fast on-chip hits dominate the average).  TokenCMP instead tracks
only responses **from memory** — the slowest common supplier — and sets
the timeout to a multiple of that average.
"""

from __future__ import annotations

from repro.common.types import ns


class TimeoutEstimator:
    """EWMA of memory-response latency; threshold = multiplier * average."""

    def __init__(
        self,
        initial_ns: float = 300.0,
        multiplier: float = 1.5,
        alpha: float = 0.25,
        floor_ns: float = 100.0,
    ):
        self._avg_ps = float(ns(initial_ns / multiplier))
        self.multiplier = multiplier
        self.alpha = alpha
        self.floor_ps = ns(floor_ns)
        self.samples = 0

    def observe_memory_response(self, latency_ps: int) -> None:
        """Record the latency of one response that came from memory."""
        self._avg_ps += self.alpha * (latency_ps - self._avg_ps)
        self.samples += 1

    def threshold_ps(self) -> int:
        """Current timeout threshold in picoseconds."""
        return max(self.floor_ps, round(self._avg_ps * self.multiplier))
