"""Destination-set prediction for transient requests (paper Section 8).

The paper notes TokenCMP's inter-CMP traffic grows with the number of
CMPs "unless multicast with destination set predictions is employed
[Martin et al., ISCA 2003]".  This module implements that extension: the
home L2 bank predicts which chips actually need to see an escalated
transient request — typically the block's last observed owner chip —
and multicasts to the predicted set plus home memory instead of
broadcasting to every CMP.

Prediction is pure performance policy: a wrong set at worst makes the
transient request fail, and the timeout/persistent fallback (which always
broadcasts) restores progress.  The predictor trains on the two signals a
bank naturally observes: external transient requests (their requestor's
chip is about to hold tokens) and token arrivals from remote chips.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Set


class DestinationSetPredictor:
    """Bounded LRU map: block -> set of chips likely holding its tokens."""

    def __init__(self, capacity: int = 8192, max_set_size: int = 2):
        self.capacity = capacity
        self.max_set_size = max_set_size
        self._table: "OrderedDict[int, OrderedDict]" = OrderedDict()
        self.hits = 0
        self.broadcasts = 0

    def train(self, addr: int, chip: int) -> None:
        """Record that ``chip`` was seen holding (or taking) the block."""
        chips = self._table.get(addr)
        if chips is None:
            if len(self._table) >= self.capacity:
                self._table.popitem(last=False)
            chips = OrderedDict()
            self._table[addr] = chips
        self._table.move_to_end(addr)
        chips[chip] = True
        chips.move_to_end(chip)
        while len(chips) > self.max_set_size:
            chips.popitem(last=False)  # keep the most recent holders

    def forget(self, addr: int, chip: int) -> None:
        chips = self._table.get(addr)
        if chips is not None:
            chips.pop(chip, None)

    def predict(self, addr: int, all_chips: List[int], own_chip: int) -> Optional[List[int]]:
        """Chips to multicast to, or None to fall back to full broadcast."""
        chips = self._table.get(addr)
        if not chips:
            self.broadcasts += 1
            return None
        self.hits += 1
        return [c for c in chips if c != own_chip]
