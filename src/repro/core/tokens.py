"""Token state kept per block per cache (the correctness substrate's core).

Safety is enforced purely by counting (Section 3.1): a block has a fixed
total of ``T`` tokens, one of which is the *owner* token.  A cache may
satisfy a load with >= 1 token plus valid data, and a store only with all
``T`` tokens.  Messages carrying the owner token always carry valid data.

Substrate invariants (checked by :func:`check_conservation` in tests and
by the runtime debug checker):

* the system-wide token count of a block is exactly ``T``;
* exactly one owner token exists;
* ``owner`` implies ``valid_data``;
* any cache holding >= 1 token with ``valid_data`` agrees with the
  owner's value (single-writer/multiple-reader invariant).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.common.errors import ProtocolError


class TokenEntry:
    """Per-block token state at one cache."""

    __slots__ = ("tokens", "owner", "valid_data", "dirty", "value", "hold_until")

    def __init__(self) -> None:
        self.tokens = 0
        self.owner = False
        self.valid_data = False
        self.dirty = False
        self.value = 0
        self.hold_until = 0  # response-delay window end (ps)

    def absorb(self, tokens: int, owner: bool, data: Optional[int], dirty: bool) -> None:
        """Fold an incoming token/data transfer into this entry."""
        if tokens < 0:
            raise ProtocolError("cannot absorb a negative token count")
        self.tokens += tokens
        if owner:
            if self.owner:
                raise ProtocolError("duplicate owner token")
            if data is None:
                raise ProtocolError("owner token must travel with data")
            self.owner = True
        if data is not None:
            self.value = data
            self.valid_data = True
        if dirty:
            self.dirty = True

    def take(self, tokens: int, take_owner: bool) -> Tuple[int, bool, Optional[int], bool]:
        """Remove tokens for an outgoing message.

        Returns ``(tokens, owner, data, dirty)`` ready for a message.  The
        data value is included whenever the owner token moves (required)
        or the entry can legally supply data (valid_data).
        """
        if tokens > self.tokens:
            raise ProtocolError(f"giving {tokens} tokens but holding {self.tokens}")
        if take_owner and not self.owner:
            raise ProtocolError("giving the owner token without holding it")
        self.tokens -= tokens
        data = self.value if self.valid_data else None
        dirty = self.dirty
        if take_owner:
            self.owner = False
            self.dirty = False
        if self.tokens == 0:
            self.valid_data = False
            self.dirty = False
        return tokens, take_owner, data, dirty

    @property
    def empty(self) -> bool:
        return self.tokens == 0 and not self.owner

    def can_read(self) -> bool:
        return self.tokens >= 1 and self.valid_data

    def can_write(self, total_tokens: int) -> bool:
        return self.tokens == total_tokens

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            f for f, on in (("O", self.owner), ("V", self.valid_data), ("D", self.dirty)) if on
        )
        return f"TokenEntry(t={self.tokens}{',' + flags if flags else ''}, v={self.value})"


def check_conservation(
    holders: Iterable[Tuple[str, TokenEntry]],
    mem_tokens: int,
    mem_owner: bool,
    mem_value: int,
    total_tokens: int,
    in_flight: Iterable[Tuple[int, bool, Optional[int]]] = (),
    destroyed_tokens: int = 0,
    destroyed_owner: bool = False,
    recreating: bool = False,
) -> None:
    """Assert the substrate invariants for one block; raise ProtocolError.

    ``holders`` are (name, entry) pairs for every cache; ``in_flight`` are
    (tokens, owner, data) triples for undelivered messages **of the
    block's current recreation epoch** (stale-epoch carriers are walking
    dead: they will be discarded on arrival and must not be counted).

    ``destroyed_tokens`` / ``destroyed_owner`` is the recovery ledger's
    deficit for the block: tokens genuinely destroyed (lossy drops, crash
    wipes) that the home memory controller has not yet recreated.  The
    epoch-aware invariant is that live + destroyed tokens account for
    exactly ``T`` — the deficit is debt the next epoch bump repays.

    ``recreating`` relaxes the global counts while an epoch bump is in
    progress: between the bump and the last surrender ack, caches still
    holding stale-epoch tokens are indistinguishable from wiped ones, so
    only per-holder structural invariants are checked.
    """
    count = mem_tokens
    owners = 1 if mem_owner else 0
    owner_value = mem_value if mem_owner else None
    for name, entry in holders:
        count += entry.tokens
        if entry.owner:
            owners += 1
            owner_value = entry.value
        if entry.owner and not entry.valid_data:
            raise ProtocolError(f"{name}: owner without valid data")
        if entry.tokens == 0 and entry.valid_data:
            raise ProtocolError(f"{name}: valid data without tokens")
    if recreating:
        return
    for tokens, owner, data in in_flight:
        count += tokens
        if owner:
            owners += 1
            owner_value = data
    count += destroyed_tokens
    if destroyed_owner:
        owners += 1
        owner_value = None  # the canonical copy died with the owner token
    if count != total_tokens:
        detail = f" ({destroyed_tokens} destroyed)" if destroyed_tokens else ""
        raise ProtocolError(f"token count {count}{detail} != T={total_tokens}")
    if owners != 1:
        raise ProtocolError(f"{owners} owner tokens in the system")
    if owner_value is not None:
        for name, entry in holders:
            if entry.tokens >= 1 and entry.valid_data and entry.value != owner_value:
                raise ProtocolError(
                    f"{name}: stale data {entry.value} != owner value {owner_value}"
                )
