"""Token-coherence memory controller.

Memory is just another (very large) token holder: initially it owns all
``T`` tokens of every block homed at it.  It answers transient and
persistent requests by the same counting rules as the caches, with DRAM
latency added whenever it must read data.  Because the owner token always
travels with data, writing the image whenever the owner token returns is
sufficient to keep memory up to date.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.common.params import SystemParams
from repro.common.stats import Stats
from repro.common.types import NodeId
from repro.core.persistent import PersistentEntry, PersistentTable, persistent_read_share
from repro.interconnect.message import Message, MessagePool, MsgType
from repro.interconnect.network import Network
from repro.memory.dram import MemoryImage
from repro.sim.kernel import Simulator


class _Recreation:
    """One in-progress token recreation (epoch bump) at the home node."""

    __slots__ = ("epoch", "requestor", "read", "started_ps", "acked")

    def __init__(self, epoch: int, requestor: NodeId, read: bool, started_ps: int):
        self.epoch = epoch
        self.requestor = requestor
        self.read = read
        self.started_ps = started_ps
        self.acked: Set[NodeId] = set()


class TokenMemController:
    """Home memory controller in the TokenCMP protocol."""

    def __init__(
        self,
        node: NodeId,
        sim: Simulator,
        net: Network,
        params: SystemParams,
        stats: Stats,
        cfg,
    ):
        self.node = node
        self.sim = sim
        self.net = net
        self.params = params
        self.stats = stats
        self.cfg = cfg
        self.image = MemoryImage()
        self.table = PersistentTable()
        self._tokens: Dict[int, int] = {}
        self._owner: Dict[int, bool] = {}
        # Token recreation (recovery tier): memory is the ruler of tokens
        # and owns each home block's recreation epoch.  ``ledger`` is the
        # shared RecoveryLedger, wired by Machine.enable_recovery().
        self._epoch: Dict[int, int] = {}
        self._recreating: Dict[int, _Recreation] = {}
        self.ledger = None
        pool = getattr(net, "pool", None)
        self.pool: MessagePool = pool if pool is not None else MessagePool(enabled=False)
        # Hot-path bindings, resolved once instead of per message.
        self._call_after = sim.call_after
        self._process_cb = self._process
        net.register(node, self.handle)

    # ------------------------------------------------------------------
    def tokens_of(self, addr: int) -> int:
        return self._tokens.get(addr, self.params.tokens_per_block)

    def is_owner(self, addr: int) -> bool:
        return self._owner.get(addr, True)

    def epoch_of(self, addr: int) -> int:
        """The block's current recreation epoch (0 = never recreated)."""
        return self._epoch.get(addr, 0)

    def is_recreating(self, addr: int) -> bool:
        return addr in self._recreating

    def pending_recreations(self) -> int:
        """Number of in-progress recreation epochs (telemetry gauge)."""
        return len(self._recreating)

    def recreating_blocks(self) -> Tuple[Tuple[int, int, int], ...]:
        """(addr, epoch, outstanding acks) per in-progress recreation."""
        return tuple(
            (addr, rec.epoch, len(self.params.token_holders(addr)) - len(rec.acked))
            for addr, rec in sorted(self._recreating.items())
        )

    def _set(self, addr: int, tokens: int, owner: bool) -> None:
        self._tokens[addr] = tokens
        self._owner[addr] = owner

    # ------------------------------------------------------------------
    def handle(self, msg: Message) -> None:
        self._call_after(self.params.mem_ctrl_latency_ps, self._process_cb, msg)

    def _process(self, msg: Message) -> None:
        t = msg.mtype
        if t in (MsgType.TOK_GETS, MsgType.TOK_GETX):
            self._on_transient(msg)
        elif t in (MsgType.TOK_DATA, MsgType.TOK_ACK, MsgType.TOK_WB, MsgType.TOK_WB_DATA):
            self._on_tokens(msg)
        elif t is MsgType.PERSIST_ACTIVATE:
            self.table.insert(
                PersistentEntry(
                    proc=msg.extra, requestor=msg.requestor, addr=msg.addr,
                    read=msg.read, prio=msg.prio,
                )
            )
            self._forward_check(msg.addr)
        elif t is MsgType.PERSIST_DEACTIVATE:
            self.table.remove(msg.extra, msg.addr)
            self._forward_check(msg.addr)
        elif t is MsgType.TOK_RECREATE_REQ:
            self._on_recreate_req(msg)
        elif t in (MsgType.TOK_RECREATE_ACK, MsgType.TOK_RECREATE_DATA):
            self._on_recreate_ack(msg)
        else:  # pragma: no cover - defensive
            raise ValueError(f"{self.node}: unexpected message {msg}")
        # Final delivery: recycle the pooled record (pool discipline — the
        # handlers above copy out every scalar they keep).  Inlined
        # MessagePool.release: unflagged messages make the pop a no-op.
        if msg.__dict__.pop("_pooled", None):
            pool = self.pool
            pool.releases += 1
            pool._free.append(msg)

    # ------------------------------------------------------------------
    # Token recreation: the ruler of tokens (Sections 3 & 7).
    #
    # A starving requestor whose persistent request has outlived even the
    # recreation timeout asks its home memory controller to *recreate*
    # the block's tokens.  Memory bumps the block's recreation epoch and
    # broadcasts the new epoch to every possible token holder; each cache
    # discards its (now stale) tokens and acks, the previous owner's data
    # riding along on the ack.  Once every holder has acked, no cache
    # holds or will ever absorb an old-epoch token (stale carriers are
    # discarded on arrival), so memory can safely reconstitute the full
    # token set — single-owner safety is preserved because old-epoch
    # owner tokens are dead on arrival everywhere.
    # ------------------------------------------------------------------
    def _on_recreate_req(self, msg: Message) -> None:
        addr = msg.addr
        rec = self._recreating.get(addr)
        if rec is not None:
            # A retry from a still-starving requestor: the bump or some
            # surrender acks were lost.  Re-broadcast to the holdouts.
            self._broadcast_epoch(addr, rec, only_unacked=True)
            return
        epoch = self.epoch_of(addr) + 1
        self._epoch[addr] = epoch
        rec = _Recreation(
            epoch=epoch, requestor=msg.requestor, read=msg.read,
            started_ps=self.sim.now,
        )
        self._recreating[addr] = rec
        self.stats.bump("recovery.recreations")
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.recreate_epoch(self.node, addr, epoch, msg.requestor)
        self._broadcast_epoch(addr, rec)

    def _broadcast_epoch(self, addr: int, rec: _Recreation,
                         only_unacked: bool = False) -> None:
        pool = self.pool
        template = pool.acquire(MsgType.TOK_RECREATE_EPOCH, self.node, self.node, addr)
        template.epoch = rec.epoch
        self.net.send_fanout(
            template,
            (
                dst for dst in self.params.token_holders(addr)
                if not (only_unacked and dst in rec.acked)
            ),
        )
        pool.release(template)

    def _on_recreate_ack(self, msg: Message) -> None:
        addr = msg.addr
        rec = self._recreating.get(addr)
        if rec is None or msg.epoch != rec.epoch:
            return  # stale or duplicated ack from an already-closed epoch
        rec.acked.add(msg.src)
        if msg.mtype is MsgType.TOK_RECREATE_DATA:
            # The surrendering cache held the owner token: its copy is the
            # canonical value and must seed the recreated block.
            assert msg.data is not None, "owner surrender must carry data"
            self.image.write(addr, msg.data)
        if len(rec.acked) == len(self.params.token_holders(addr)):
            self._finish_recreation(addr, rec)

    def _finish_recreation(self, addr: int, rec: _Recreation) -> None:
        del self._recreating[addr]
        self._set(addr, self.params.tokens_per_block, True)
        if self.ledger is not None:
            self.ledger.recreated(addr)
        self.stats.bump("recovery.completed")
        self.stats.sample("recovery.recreation_ps", self.sim.now - rec.started_ps)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.recreate_done(self.node, addr, rec.epoch,
                                 latency_ps=self.sim.now - rec.started_ps)
        # Serve the starving initiator.  If a persistent request is active
        # the normal forwarding rules apply (arbitration stays fair);
        # otherwise — its activate may itself have been lost — grant the
        # full set directly (E-analogue) so the requestor finishes in one
        # transfer.
        if self.table.active_for(addr) is not None:
            self._forward_check(addr)
        else:
            self._respond(rec.requestor, addr,
                          give=self.params.tokens_per_block, give_owner=True)

    def _discard_stale(self, msg: Message) -> None:
        """An old-epoch token carrier arrived: it is dead on arrival."""
        self.net.token_absorbed(msg)
        self.stats.bump("recovery.stale_discarded")
        self.stats.bump("recovery.stale_tokens", msg.tokens)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.stale_discard(self.node, msg, self.epoch_of(msg.addr))

    # ------------------------------------------------------------------
    def _on_tokens(self, msg: Message) -> None:
        if msg.epoch < self.epoch_of(msg.addr):
            self._discard_stale(msg)
            return
        self.net.token_absorbed(msg)  # retire in-flight conservation tracking
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.token_absorb(self.node, msg)
        addr = msg.addr
        tokens = self.tokens_of(addr) + msg.tokens
        owner = self.is_owner(addr)
        if msg.owner:
            owner = True
            assert msg.data is not None, "owner token must carry data"
            self.image.write(addr, msg.data)
        self._set(addr, tokens, owner)
        self.stats.bump("mem.token_returns")
        self._forward_check(addr)

    def _on_transient(self, msg: Message) -> None:
        addr = msg.addr
        if addr in self._recreating:
            return  # tokens reserved until the epoch bump completes
        if self.table.active_for(addr) is not None:
            return  # tokens reserved for the active persistent request
        tokens = self.tokens_of(addr)
        owner = self.is_owner(addr)
        if msg.mtype is MsgType.TOK_GETX:
            if tokens > 0:
                self._respond(msg.requestor, addr, give=tokens, give_owner=owner)
            return
        # Read request: only the owner supplies data; include C tokens when
        # possible to seed the requesting chip (Section 4).  When memory
        # holds every token (block uncached anywhere) it gives them all —
        # the token-coherence analogue of an exclusive-clean (E) grant, so
        # a read-then-write first touch costs one miss, as in MOESI.
        if not owner:
            return
        if tokens == self.params.tokens_per_block:
            self._respond(msg.requestor, addr, give=tokens, give_owner=True)
            return
        want = self.params.caches_per_chip if self.cfg.read_tokens_c else 1
        give = min(want, tokens)
        if give == 0:
            return
        self._respond(msg.requestor, addr, give=give, give_owner=(give == tokens))

    def _forward_check(self, addr: int) -> None:
        if addr in self._recreating:
            return  # tokens reserved until the epoch bump completes
        active = self.table.active_for(addr)
        if active is None:
            return
        tokens = self.tokens_of(addr)
        owner = self.is_owner(addr)
        if active.read:
            if owner and tokens == self.params.tokens_per_block:
                # Uncached block: grant everything (E-analogue), so a
                # starving read-modify-write completes in one transfer.
                self._respond(active.requestor, addr, give=tokens, give_owner=True)
                return
            give = persistent_read_share(tokens, owner)
            if owner and give < tokens:
                # Memory keeps the owner token but must still supply data.
                if give == 0:
                    give_owner = False
                    # No spare tokens: nothing to send (some cache has >1).
                    return
                self._respond(active.requestor, addr, give=give, give_owner=False, force_data=True)
                return
        else:
            give = tokens
        if give == 0:
            return
        self._respond(active.requestor, addr, give=give, give_owner=owner)

    # ------------------------------------------------------------------
    def _respond(
        self,
        dst: NodeId,
        addr: int,
        give: int,
        give_owner: bool,
        force_data: bool = False,
    ) -> None:
        tokens = self.tokens_of(addr)
        assert give <= tokens, "memory cannot give tokens it does not hold"
        owner = self.is_owner(addr)
        send_data = give_owner or force_data or (owner and not give_owner and False)
        # Data is sent whenever the owner token moves, or when memory keeps
        # ownership but the requestor still needs a valid copy (reads).
        if owner and not give_owner:
            send_data = True
        delay = self.params.dram_latency_ps if send_data else 0
        if send_data:
            self.stats.bump("mem.dram_reads")
        data = self.image.read(addr) if send_data else None
        self._set(addr, tokens - give, owner and not give_owner)
        msg = self.pool.acquire_carrier(
            MsgType.TOK_DATA if send_data else MsgType.TOK_ACK, self.node, dst, addr,
            tokens=give, owner=give_owner, data=data, dirty=False,
            epoch=self.epoch_of(addr),
        )
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.token_send(self.node, msg)
        # send_later (not a bare schedule of send) so fault-injection
        # wrappers count the tokens as in flight during the DRAM access.
        self.net.send_later(delay, msg)
