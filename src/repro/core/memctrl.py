"""Token-coherence memory controller.

Memory is just another (very large) token holder: initially it owns all
``T`` tokens of every block homed at it.  It answers transient and
persistent requests by the same counting rules as the caches, with DRAM
latency added whenever it must read data.  Because the owner token always
travels with data, writing the image whenever the owner token returns is
sufficient to keep memory up to date.
"""

from __future__ import annotations

from typing import Dict

from repro.common.params import SystemParams
from repro.common.stats import Stats
from repro.common.types import NodeId
from repro.core.persistent import PersistentEntry, PersistentTable, persistent_read_share
from repro.interconnect.message import Message, MsgType
from repro.interconnect.network import Network
from repro.memory.dram import MemoryImage
from repro.sim.kernel import Simulator


class TokenMemController:
    """Home memory controller in the TokenCMP protocol."""

    def __init__(
        self,
        node: NodeId,
        sim: Simulator,
        net: Network,
        params: SystemParams,
        stats: Stats,
        cfg,
    ):
        self.node = node
        self.sim = sim
        self.net = net
        self.params = params
        self.stats = stats
        self.cfg = cfg
        self.image = MemoryImage()
        self.table = PersistentTable()
        self._tokens: Dict[int, int] = {}
        self._owner: Dict[int, bool] = {}
        net.register(node, self.handle)

    # ------------------------------------------------------------------
    def tokens_of(self, addr: int) -> int:
        return self._tokens.get(addr, self.params.tokens_per_block)

    def is_owner(self, addr: int) -> bool:
        return self._owner.get(addr, True)

    def _set(self, addr: int, tokens: int, owner: bool) -> None:
        self._tokens[addr] = tokens
        self._owner[addr] = owner

    # ------------------------------------------------------------------
    def handle(self, msg: Message) -> None:
        self.sim.schedule(self.params.mem_ctrl_latency_ps, self._process, msg)

    def _process(self, msg: Message) -> None:
        t = msg.mtype
        if t in (MsgType.TOK_GETS, MsgType.TOK_GETX):
            self._on_transient(msg)
        elif t in (MsgType.TOK_DATA, MsgType.TOK_ACK, MsgType.TOK_WB, MsgType.TOK_WB_DATA):
            self._on_tokens(msg)
        elif t is MsgType.PERSIST_ACTIVATE:
            self.table.insert(
                PersistentEntry(
                    proc=msg.extra, requestor=msg.requestor, addr=msg.addr,
                    read=msg.read, prio=msg.prio,
                )
            )
            self._forward_check(msg.addr)
        elif t is MsgType.PERSIST_DEACTIVATE:
            self.table.remove(msg.extra, msg.addr)
            self._forward_check(msg.addr)
        else:  # pragma: no cover - defensive
            raise ValueError(f"{self.node}: unexpected message {msg}")

    # ------------------------------------------------------------------
    def _on_tokens(self, msg: Message) -> None:
        self.net.token_absorbed(msg)  # retire in-flight conservation tracking
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.token_absorb(self.node, msg)
        addr = msg.addr
        tokens = self.tokens_of(addr) + msg.tokens
        owner = self.is_owner(addr)
        if msg.owner:
            owner = True
            assert msg.data is not None, "owner token must carry data"
            self.image.write(addr, msg.data)
        self._set(addr, tokens, owner)
        self.stats.bump("mem.token_returns")
        self._forward_check(addr)

    def _on_transient(self, msg: Message) -> None:
        addr = msg.addr
        if self.table.active_for(addr) is not None:
            return  # tokens reserved for the active persistent request
        tokens = self.tokens_of(addr)
        owner = self.is_owner(addr)
        if msg.mtype is MsgType.TOK_GETX:
            if tokens > 0:
                self._respond(msg.requestor, addr, give=tokens, give_owner=owner)
            return
        # Read request: only the owner supplies data; include C tokens when
        # possible to seed the requesting chip (Section 4).  When memory
        # holds every token (block uncached anywhere) it gives them all —
        # the token-coherence analogue of an exclusive-clean (E) grant, so
        # a read-then-write first touch costs one miss, as in MOESI.
        if not owner:
            return
        if tokens == self.params.tokens_per_block:
            self._respond(msg.requestor, addr, give=tokens, give_owner=True)
            return
        want = self.params.caches_per_chip if self.cfg.read_tokens_c else 1
        give = min(want, tokens)
        if give == 0:
            return
        self._respond(msg.requestor, addr, give=give, give_owner=(give == tokens))

    def _forward_check(self, addr: int) -> None:
        active = self.table.active_for(addr)
        if active is None:
            return
        tokens = self.tokens_of(addr)
        owner = self.is_owner(addr)
        if active.read:
            if owner and tokens == self.params.tokens_per_block:
                # Uncached block: grant everything (E-analogue), so a
                # starving read-modify-write completes in one transfer.
                self._respond(active.requestor, addr, give=tokens, give_owner=True)
                return
            give = persistent_read_share(tokens, owner)
            if owner and give < tokens:
                # Memory keeps the owner token but must still supply data.
                if give == 0:
                    give_owner = False
                    # No spare tokens: nothing to send (some cache has >1).
                    return
                self._respond(active.requestor, addr, give=give, give_owner=False, force_data=True)
                return
        else:
            give = tokens
        if give == 0:
            return
        self._respond(active.requestor, addr, give=give, give_owner=owner)

    # ------------------------------------------------------------------
    def _respond(
        self,
        dst: NodeId,
        addr: int,
        give: int,
        give_owner: bool,
        force_data: bool = False,
    ) -> None:
        tokens = self.tokens_of(addr)
        assert give <= tokens, "memory cannot give tokens it does not hold"
        owner = self.is_owner(addr)
        send_data = give_owner or force_data or (owner and not give_owner and False)
        # Data is sent whenever the owner token moves, or when memory keeps
        # ownership but the requestor still needs a valid copy (reads).
        if owner and not give_owner:
            send_data = True
        delay = self.params.dram_latency_ps if send_data else 0
        if send_data:
            self.stats.bump("mem.dram_reads")
        data = self.image.read(addr) if send_data else None
        self._set(addr, tokens - give, owner and not give_owner)
        msg = Message(
            mtype=MsgType.TOK_DATA if send_data else MsgType.TOK_ACK,
            src=self.node,
            dst=dst,
            addr=addr,
            tokens=give,
            owner=give_owner,
            data=data,
        )
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.token_send(self.node, msg)
        # send_later (not a bare schedule of send) so fault-injection
        # wrappers count the tokens as in flight during the DRAM access.
        self.net.send_later(delay, msg)
