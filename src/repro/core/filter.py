"""Approximate L1-sharer filter for TokenCMP-dst1-filt (Section 4).

Each L2 bank keeps an *approximate* directory of which local L1 caches may
hold tokens for a block, and forwards external transient requests only to
those caches, conserving intra-CMP bandwidth.  The filter may be wrong in
either direction without affecting correctness: over-forwarding wastes a
tag lookup, under-forwarding at worst makes a transient request fail
(the correctness substrate's persistent requests — which are never
filtered — still guarantee progress).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Set

from repro.common.types import NodeId


class SharerFilter:
    """Bounded LRU map: block -> set of local L1 node ids that may hold it."""

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self._table: "OrderedDict[int, Set[NodeId]]" = OrderedDict()
        self.evictions = 0

    def note_holder(self, addr: int, l1: NodeId) -> None:
        """Record that ``l1`` may now hold tokens for ``addr``."""
        sharers = self._table.get(addr)
        if sharers is None:
            if len(self._table) >= self.capacity:
                self._table.popitem(last=False)
                self.evictions += 1
            sharers = set()
            self._table[addr] = sharers
        self._table.move_to_end(addr)
        sharers.add(l1)

    def note_release(self, addr: int, l1: NodeId) -> None:
        """Record that ``l1`` gave up its tokens for ``addr``."""
        sharers = self._table.get(addr)
        if sharers is not None:
            sharers.discard(l1)

    def destinations(self, addr: int, all_l1s: List[NodeId]) -> List[NodeId]:
        """L1s an external transient request should be forwarded to.

        Unknown blocks (never seen, or evicted from the filter) fall back
        to forwarding to every L1 — the safe, bandwidth-costly default.
        """
        sharers = self._table.get(addr)
        if sharers is None:
            return list(all_l1s)
        return [l1 for l1 in all_l1s if l1 in sharers]
