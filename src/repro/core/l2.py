"""Token-coherence L2 bank: shared cache, on-chip gateway, request filter.

Besides acting as an ordinary token-holding cache, the home L2 bank plays
two performance-policy roles (Section 4):

* **Gateway** — when a local transient request is an L2-level miss (the
  chip collectively cannot satisfy it, judged via the chip token ledger),
  the bank broadcasts the request to the other CMPs' home banks and the
  home memory controller.
* **Ingress** — external transient requests arrive here and are
  re-broadcast to the local L1 caches, optionally through the approximate
  sharer filter (TokenCMP-dst1-filt) to save intra-CMP bandwidth.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.common.types import NodeId, NodeKind
from repro.core.base import TokenCacheController
from repro.core.filter import SharerFilter
from repro.core.ledger import ChipTokenLedger
from repro.interconnect.message import Message, MsgType


class TokenL2Controller(TokenCacheController):
    """One L2 bank participating in TokenCMP."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.ledger: Optional[ChipTokenLedger] = None  # wired by the builder
        self.filter = SharerFilter() if self.cfg.use_filter else None
        # Shared per-chip destination-set predictor (wired by the builder
        # when the variant uses multicast): the chip's L1s train it with
        # the responses they receive; the gateway consults it.
        self.destset = None
        # Interned fan-out sets: the chip's L1 population is fixed, and
        # the all-chips escalation set varies only with the block's home.
        self._local_l1s: Tuple[NodeId, ...] = tuple(self.params.chip_l1s(self.chip))
        self._esc_dests: Dict[int, Tuple[NodeId, ...]] = {}

    def _writeback_destination(self, addr: int) -> NodeId:
        return self.params.home_mem(addr)

    # ------------------------------------------------------------------
    def _on_transient(self, msg: Message) -> None:
        if self.cfg.flat_policy:
            # TokenB addresses every cache directly: the L2 bank is just
            # another token holder — no gateway or ingress duties.
            self._respond_transient(msg.mtype, msg.addr, msg.requestor)
            return
        local = msg.requestor.chip == self.chip
        if local:
            # Decide escalation *before* responding so in-flight tokens
            # from our own response don't skew the ledger.
            if self._is_l2_miss(msg):
                self._escalate(msg)
            if self.filter is not None and msg.requestor.kind in (NodeKind.L1D, NodeKind.L1I):
                self.filter.note_holder(msg.addr, msg.requestor)
            self._respond_transient(msg.mtype, msg.addr, msg.requestor)
        else:
            if self.destset is not None:
                # The remote requestor is about to hold this block.
                self.destset.train(msg.addr, msg.requestor.chip)
            self._respond_transient(msg.mtype, msg.addr, msg.requestor)
            self._rebroadcast(msg)

    def _is_l2_miss(self, msg: Message) -> bool:
        assert self.ledger is not None, "ledger not wired"
        if msg.mtype is MsgType.TOK_GETX:
            return self.ledger.tokens_on_chip(msg.addr) < self.params.tokens_per_block
        return not self.ledger.can_satisfy_read(
            msg.addr, msg.requestor, self.params.tokens_per_block
        )

    def _escalate(self, msg: Message) -> None:
        """Send an L2-level miss to the other CMPs (all of them, or the
        predicted destination set) plus home memory."""
        self.stats.bump("l2.escalations")
        addr = msg.addr
        dests = None
        multicast = False
        if self.destset is not None:
            predicted = self.destset.predict(addr, self.params.all_chips(), self.chip)
            if predicted is not None:
                multicast = True
                self.stats.bump("l2.multicasts")
                dests = [self.params.l2_bank(addr, chip) for chip in predicted]
                dests.append(self.params.home_mem(addr))
        if dests is None:
            dests = self._esc_dests.get(addr)
            if dests is None:
                dests = [
                    self.params.l2_bank(addr, chip)
                    for chip in self.params.all_chips()
                    if chip != self.chip
                ]
                dests.append(self.params.home_mem(addr))
                self._esc_dests[addr] = dests = tuple(dests)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.tx_escalate(
                msg.requestor, addr,
                via=self.node, ndests=len(dests), multicast=multicast,
            )
        template = self._forward_template(msg)
        self.net.send_fanout(template, dests)
        self.pool.release(template)

    def _rebroadcast(self, msg: Message) -> None:
        """Deliver an external transient request to (filtered) local L1s."""
        l1s = self._local_l1s
        if self.filter is not None:
            dests = self.filter.destinations(msg.addr, l1s)
            self.stats.bump("l2.filter_suppressed", len(l1s) - len(dests))
        else:
            dests = l1s
        if not dests:
            return
        template = self._forward_template(msg)
        self.net.send_fanout(template, dests)
        self.pool.release(template)

    def _forward_template(self, msg: Message) -> Message:
        """Pooled template for fanning ``msg`` out; the caller clones it
        per destination (``send_fanout``) and releases it afterwards."""
        template = self.pool.acquire(msg.mtype, self.node, self.node, msg.addr)
        template.requestor = msg.requestor
        return template

    # ------------------------------------------------------------------
    def _hook_absorbed(self, msg: Message) -> None:
        if (
            self.filter is not None
            and msg.mtype in (MsgType.TOK_WB, MsgType.TOK_WB_DATA)
            and msg.src.chip == self.chip
            and msg.src.kind in (NodeKind.L1D, NodeKind.L1I)
        ):
            # A local L1 wrote its tokens back: it no longer holds the block.
            self.filter.note_release(msg.addr, msg.src)
        if self.destset is not None and msg.src.chip != self.chip:
            # Tokens arrived from a remote chip: it held the block.
            self.destset.train(msg.addr, msg.src.chip)
