"""Token-coherence L2 bank: shared cache, on-chip gateway, request filter.

Besides acting as an ordinary token-holding cache, the home L2 bank plays
two performance-policy roles (Section 4):

* **Gateway** — when a local transient request is an L2-level miss (the
  chip collectively cannot satisfy it, judged via the chip token ledger),
  the bank broadcasts the request to the other CMPs' home banks and the
  home memory controller.
* **Ingress** — external transient requests arrive here and are
  re-broadcast to the local L1 caches, optionally through the approximate
  sharer filter (TokenCMP-dst1-filt) to save intra-CMP bandwidth.
"""

from __future__ import annotations

from typing import Optional

from repro.common.types import NodeId, NodeKind
from repro.core.base import TokenCacheController
from repro.core.filter import SharerFilter
from repro.core.ledger import ChipTokenLedger
from repro.interconnect.message import Message, MsgType


class TokenL2Controller(TokenCacheController):
    """One L2 bank participating in TokenCMP."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.ledger: Optional[ChipTokenLedger] = None  # wired by the builder
        self.filter = SharerFilter() if self.cfg.use_filter else None
        # Shared per-chip destination-set predictor (wired by the builder
        # when the variant uses multicast): the chip's L1s train it with
        # the responses they receive; the gateway consults it.
        self.destset = None

    def _writeback_destination(self, addr: int) -> NodeId:
        return self.params.home_mem(addr)

    # ------------------------------------------------------------------
    def _on_transient(self, msg: Message) -> None:
        if self.cfg.flat_policy:
            # TokenB addresses every cache directly: the L2 bank is just
            # another token holder — no gateway or ingress duties.
            self._respond_transient(msg)
            return
        local = msg.requestor.chip == self.chip
        if local:
            # Decide escalation *before* responding so in-flight tokens
            # from our own response don't skew the ledger.
            if self._is_l2_miss(msg):
                self._escalate(msg)
            if self.filter is not None and msg.requestor.kind in (NodeKind.L1D, NodeKind.L1I):
                self.filter.note_holder(msg.addr, msg.requestor)
            self._respond_transient(msg)
        else:
            if self.destset is not None:
                # The remote requestor is about to hold this block.
                self.destset.train(msg.addr, msg.requestor.chip)
            self._respond_transient(msg)
            self._rebroadcast(msg)

    def _is_l2_miss(self, msg: Message) -> bool:
        assert self.ledger is not None, "ledger not wired"
        if msg.mtype is MsgType.TOK_GETX:
            return self.ledger.tokens_on_chip(msg.addr) < self.params.tokens_per_block
        return not self.ledger.can_satisfy_read(
            msg.addr, msg.requestor, self.params.tokens_per_block
        )

    def _escalate(self, msg: Message) -> None:
        """Send an L2-level miss to the other CMPs (all of them, or the
        predicted destination set) plus home memory."""
        self.stats.bump("l2.escalations")
        chips = [c for c in self.params.all_chips() if c != self.chip]
        multicast = False
        if self.destset is not None:
            predicted = self.destset.predict(msg.addr, self.params.all_chips(), self.chip)
            if predicted is not None:
                chips = predicted
                multicast = True
                self.stats.bump("l2.multicasts")
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.tx_escalate(
                msg.requestor, msg.addr,
                via=self.node, ndests=len(chips) + 1, multicast=multicast,
            )
        template = self._forward_template(msg)
        send = self.net.send
        for chip in chips:
            send(template.clone_to(self.params.l2_bank(msg.addr, chip)))
        send(template.clone_to(self.params.home_mem(msg.addr)))

    def _rebroadcast(self, msg: Message) -> None:
        """Deliver an external transient request to (filtered) local L1s."""
        l1s = self.params.chip_l1s(self.chip)
        if self.filter is not None:
            dests = self.filter.destinations(msg.addr, l1s)
            self.stats.bump("l2.filter_suppressed", len(l1s) - len(dests))
        else:
            dests = l1s
        if not dests:
            return
        template = self._forward_template(msg)
        send = self.net.send
        for dst in dests:
            send(template.clone_to(dst))

    def _forward_template(self, msg: Message) -> Message:
        """Template for fanning ``msg`` out; clone per destination."""
        return Message(
            mtype=msg.mtype, src=self.node, dst=self.node, addr=msg.addr,
            requestor=msg.requestor,
        )

    # ------------------------------------------------------------------
    def _hook_absorbed(self, msg: Message) -> None:
        if (
            self.filter is not None
            and msg.mtype in (MsgType.TOK_WB, MsgType.TOK_WB_DATA)
            and msg.src.chip == self.chip
            and msg.src.kind in (NodeKind.L1D, NodeKind.L1I)
        ):
            # A local L1 wrote its tokens back: it no longer holds the block.
            self.filter.note_release(msg.addr, msg.src)
        if self.destset is not None and msg.src.chip != self.chip:
            # Tokens arrived from a remote chip: it held the block.
            self.destset.train(msg.addr, msg.src.chip)
