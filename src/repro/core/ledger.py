"""Per-chip token ledger used by the hierarchical performance policy.

The home L2 bank must decide whether a transient request can be satisfied
on-chip (no escalation) or constitutes an L2-level miss (broadcast to the
other CMPs and the home memory controller).  The ledger models the L2's
on-chip token tracking by summing the live token state of the chip's
caches; it is strictly a performance-policy input — a wrong answer can
only cost traffic or a retry, never correctness (see DESIGN.md).
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.types import NodeId


class ChipTokenLedger:
    """Live view of how many tokens of a block reside on one chip."""

    def __init__(self, controllers: List):
        self._controllers = controllers  # TokenCacheControllers on this chip

    def tokens_on_chip(self, addr: int) -> int:
        total = 0
        for ctrl in self._controllers:
            entry = ctrl.peek_entry(addr)
            if entry is not None:
                total += entry.tokens
        return total

    def can_satisfy_read(self, addr: int, requestor: NodeId, total_tokens: int) -> bool:
        """Would any on-chip cache respond to a local read request?

        Mirrors the local-read response rules: migratory owner with all
        tokens, or any cache with valid data and at least two tokens.
        """
        for ctrl in self._controllers:
            if ctrl.node == requestor:
                continue
            entry = ctrl.peek_entry(addr)
            if entry is None:
                continue
            if entry.owner and entry.dirty and entry.tokens == total_tokens:
                return True
            if entry.valid_data and entry.tokens >= 2:
                return True
        return False
