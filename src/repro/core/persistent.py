"""Persistent-request machinery (Section 3.2): the starvation-avoidance
half of the correctness substrate.

Two activation mechanisms are provided:

* **Arbiter-based** (:class:`Arbiter`): the original TokenB scheme
  extended to M-CMPs.  A starving cache sends its persistent request to
  the block's home arbiter (co-located with the memory controller).  The
  arbiter fair-queues requests and activates them one at a time by
  broadcasting an activate message to *every* cache; deactivation requires
  an indirection back through the arbiter before the next request starts.

* **Distributed activation** (:class:`PersistentTable` alone): each
  processor broadcasts its own persistent request; every cache remembers
  all of them in a small table (one entry per processor) and forwards
  tokens to the highest-*fixed*-priority request for each block.  When the
  winner deactivates, the next request is already active everywhere, so
  contended blocks hand off directly processor-to-processor.  A FutureBus
  style *marking* rule prevents a deactivating processor from re-issuing
  and starving lower-priority waiters: on its own deactivation it marks
  all table entries for the block, and it may issue a new persistent
  request for that block only once those marked entries have deactivated.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.common.params import SystemParams
from repro.common.stats import Stats
from repro.common.types import NodeId, NodeKind
from repro.interconnect.message import Message, MsgType
from repro.interconnect.network import Network
from repro.sim.kernel import Simulator


@dataclasses.dataclass
class PersistentEntry:
    """One remembered persistent request."""

    proc: int
    requestor: NodeId  # the L1D cache tokens must be forwarded to
    addr: int
    read: bool  # persistent read (leave each cache one token)?
    prio: int  # fixed priority: smaller wins
    marked: bool = False


class PersistentTable:
    """Per-cache table of remembered persistent requests.

    Holds at most one entry per processor (each processor initiates at
    most one persistent request at a time).  ``active_for`` returns the
    entry tokens must be forwarded to: the highest-priority request for
    that block.
    """

    def __init__(self) -> None:
        self._entries: Dict[int, PersistentEntry] = {}

    def insert(self, entry: PersistentEntry) -> None:
        """Remember ``entry`` (at most one per processor).

        Re-inserting an entry for the same (processor, block) — a
        duplicated or re-broadcast activate — must not lose the ``marked``
        bit: the FutureBus marking rule's bookkeeping survives redundant
        delivery, otherwise a duplicate could let a deactivating processor
        re-issue early and starve lower-priority waiters.
        """
        prev = self._entries.get(entry.proc)
        if prev is not None and prev.addr == entry.addr:
            entry.marked = entry.marked or prev.marked
        self._entries[entry.proc] = entry

    def remove(self, proc: int, addr: int) -> Optional[PersistentEntry]:
        """Remove ``proc``'s request *for this block*.

        The address check matters: deactivations for different blocks
        travel from different arbiters (or along different broadcast
        trees), so a late deactivate for an old request must not clobber
        the processor's newer request for another block.
        """
        entry = self._entries.get(proc)
        if entry is None or entry.addr != addr:
            return None
        return self._entries.pop(proc)

    def active_for(self, addr: int) -> Optional[PersistentEntry]:
        best: Optional[PersistentEntry] = None
        for entry in self._entries.values():
            if entry.addr == addr and (best is None or entry.prio < best.prio):
                best = entry
        return best

    def mark_all_for(self, addr: int) -> None:
        """The local processor deactivated: mark the current wave."""
        for entry in self._entries.values():
            if entry.addr == addr:
                entry.marked = True

    def has_marked_for(self, addr: int) -> bool:
        return any(e.addr == addr and e.marked for e in self._entries.values())

    def entries_for(self, addr: int) -> List[PersistentEntry]:
        return [e for e in self._entries.values() if e.addr == addr]

    def __len__(self) -> int:
        return len(self._entries)


class Arbiter:
    """Home arbiter for arbiter-based activation (one per memory controller).

    Activates at most one persistent request at a time (fair FIFO over all
    blocks homed at this controller — the serialization that makes
    TokenCMP-arb0 fragile under contention, especially when hot blocks
    share an arbiter).
    """

    def __init__(
        self,
        node: NodeId,
        sim: Simulator,
        net: Network,
        params: SystemParams,
        stats: Stats,
    ):
        self.node = node
        self.sim = sim
        self.net = net
        self.params = params
        self.stats = stats
        self._queue: Deque[Message] = deque()
        self._active: Optional[Message] = None
        net.register(node, self.handle)

    # ------------------------------------------------------------------
    def handle(self, msg: Message) -> None:
        self.sim.schedule(self.params.mem_ctrl_latency_ps, self._process, msg)

    def _process(self, msg: Message) -> None:
        if msg.mtype is MsgType.PERSIST_REQ:
            self._queue.append(msg)
            self.stats.bump("arb.queued")
            self._maybe_activate()
        elif msg.mtype is MsgType.PERSIST_DEACTIVATE:
            self._deactivate(msg)
        else:  # pragma: no cover - defensive
            raise ValueError(f"arbiter got unexpected message {msg}")

    def _maybe_activate(self) -> None:
        if self._active is not None or not self._queue:
            return
        self._active = self._queue.popleft()
        self.stats.bump("arb.activations")
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.persist_activate(
                self.node, self._active.addr,
                requestor=self._active.requestor,
                prio=self._active.prio, scheme="arb",
            )
        self._broadcast(MsgType.PERSIST_ACTIVATE, self._active)

    def _deactivate(self, msg: Message) -> None:
        active = self._active
        if active is not None and active.requestor == msg.requestor and active.addr == msg.addr:
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.persist_deactivate(
                    self.node, active.addr, requestor=active.requestor, scheme="arb"
                )
            self._broadcast(MsgType.PERSIST_DEACTIVATE, active)
            self._active = None
            self._maybe_activate()
            return
        # The requestor may have been satisfied by stray transient-response
        # tokens while its request was still queued: drop it from the queue.
        for queued in list(self._queue):
            if queued.requestor == msg.requestor and queued.addr == msg.addr:
                self._queue.remove(queued)
                self.stats.bump("arb.cancelled_in_queue")
                return
        # A deactivate for a request that is neither active nor queued is a
        # legal race (Section 3.2), not a protocol bug: the request already
        # retired and this copy was duplicated or delayed in the network.
        # Count it and drop it.
        self.stats.bump("arb.spurious_deactivates")

    def _broadcast(self, mtype: MsgType, req: Message) -> None:
        addr = req.addr
        destinations = self.params.token_holders(addr) + [self.params.home_mem(addr)]
        for dst in destinations:
            self.net.send(
                Message(
                    mtype=mtype,
                    src=self.node,
                    dst=dst,
                    addr=addr,
                    requestor=req.requestor,
                    prio=req.prio,
                    read=req.read,
                    extra=req.extra,  # processor id
                )
            )


def persistent_read_share(tokens: int, owner: bool) -> int:
    """Tokens a cache must give up for an active persistent **read**.

    All but one token (Section 3.2).  A cache holding only the owner token
    gives it up (with data) rather than starving the reader — see
    DESIGN.md, "Owner-token handoff on persistent reads".
    """
    if tokens == 0:
        return 0
    if tokens == 1:
        return 1 if owner else 0
    return tokens - 1
