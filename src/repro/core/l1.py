"""Token-coherence L1 controller: processor requests and the performance
policy's transient/persistent escalation ladder (Table 1 variants).

The L1 data cache is where processor misses turn into coherence activity:

1. broadcast a transient request within the CMP (the home L2 bank decides
   whether to escalate it off-chip),
2. on timeout, either retry (TokenCMP-dst4), or fall back to the
   correctness substrate's persistent request (everything else) —
   immediately for the ``*0`` variants, or preemptively when the
   contention predictor fires (TokenCMP-dst1-pred).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Tuple

from repro.common.rng import substream
from repro.common.types import NodeId, NodeKind
from repro.core.base import TokenCacheController
from repro.core.predictor import ContentionPredictor
from repro.core.timeout import TimeoutEstimator
from repro.cpu.ops import Load, Rmw, Store, is_write
from repro.interconnect.message import Message, MsgType
from repro.sim.kernel import Event


@dataclasses.dataclass
class Transaction:
    """One outstanding L1 miss."""

    op: object
    addr: int
    done: Callable[[int], None]
    start_ps: int
    is_write: bool
    retries: int = 0
    persistent: bool = False
    waiting_wave: bool = False  # blocked by the marking rule
    timer: Optional[Event] = None
    data_source: Optional[str] = None  # who supplied the data (profiling)
    recreate_timer: Optional[Event] = None  # recovery tier above persistent
    recreate_attempts: int = 0


class TokenL1Controller(TokenCacheController):
    """L1 cache (data or instruction) in the TokenCMP protocol."""

    # Recreation escalation is armed by Machine.enable_recovery() only on
    # machines with a lossy/crashy fault model: on a reliable fabric the
    # persistent tier already guarantees liveness, and arming the extra
    # timer would perturb event ordering of fault-free runs.
    recovery_enabled = False

    def __init__(self, *args, proc: int, seed: int = 0, **kwargs):
        super().__init__(*args, **kwargs)
        self.proc = proc
        self.prio = self.params.persistent_priority(proc)
        self.estimator = TimeoutEstimator()
        self.predictor = (
            ContentionPredictor(seed=seed + proc) if self.cfg.use_predictor else None
        )
        self.rng = substream(seed, "l1", self.node)
        self.destset = None  # per-chip predictor, wired by the builder
        self._tx: Dict[int, Transaction] = {}
        # Interned destination sets, keyed by block address: broadcast
        # fan-out reuses one frozen tuple per (block, scope) instead of
        # rebuilding the list on every miss.  Workload footprints are
        # bounded, so the caches are too.
        self._dests_local: Dict[int, Tuple[NodeId, ...]] = {}
        self._dests_global: Dict[int, Tuple[NodeId, ...]] = {}
        self._dests_flat: Dict[int, Tuple[NodeId, ...]] = {}
        self._pers_dests: Dict[int, Tuple[NodeId, ...]] = {}

    def _writeback_destination(self, addr: int) -> NodeId:
        return self.params.l2_bank(addr, self.chip)

    def outstanding_tx(self) -> Tuple[int, int]:
        """(outstanding transactions, of which persistent) — telemetry."""
        total = len(self._tx)
        persistent = sum(1 for tx in self._tx.values() if tx.persistent)
        return total, persistent

    # ------------------------------------------------------------------
    # Processor interface.
    # ------------------------------------------------------------------
    def access(self, op, done: Callable[[int], None]) -> None:
        """Perform a memory operation; ``done(result)`` at completion."""
        addr = self.params.block_of(op.addr)
        # Recyclable single-arg event (call_after): the op/addr/done pack
        # rides in one tuple instead of an Event handle with an args tuple.
        self.sim.call_after(self.lookup_latency_ps, self._attempt, (op, addr, done))

    def _attempt(self, pack) -> None:
        op, addr, done = pack
        entry = self.array.lookup(addr)
        write = is_write(op)
        if entry is not None and (
            entry.can_write(self.params.tokens_per_block) if write else entry.can_read()
        ):
            self._counters["l1.hits"] += 1
            done(self._perform(op, addr))
            return
        self._counters["l1.misses"] += 1
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.tx_issue(self.node, addr, write)
        tx = Transaction(
            op=op, addr=addr, done=done, start_ps=self.sim.now, is_write=write
        )
        self._tx[addr] = tx
        self._start_policy(tx)

    def _perform(self, op, addr: int) -> int:
        """Execute the operation against the (now permitted) entry."""
        entry = self.array.lookup(addr)
        old = entry.value
        if isinstance(op, Store):
            entry.value = op.value
        elif isinstance(op, Rmw):
            entry.value = op.fn(old)
        else:
            return old
        entry.dirty = True
        if self.cfg.response_delay:
            # Rajwar-style response delay: an atomic (lock acquire) arms a
            # bounded hold so the critical section completes before the
            # block can be stolen; a subsequent plain store to the same
            # block (the lock release) disarms it so hand-off is instant.
            if isinstance(op, Rmw):
                entry.hold_until = max(
                    entry.hold_until, self.sim.now + self.params.response_delay_ps
                )
            else:
                entry.hold_until = self.sim.now
                self._flush_deferred(addr)
        return old

    # ------------------------------------------------------------------
    # Performance policy: transient requests, retries, escalation.
    # ------------------------------------------------------------------
    def _start_policy(self, tx: Transaction) -> None:
        if self.cfg.max_transient == 0:
            self._go_persistent(tx)
            return
        if self.predictor is not None and self.predictor.predict_contended(tx.addr):
            self.stats.bump("policy.predicted_contended")
            self._go_persistent(tx)
            return
        self._send_transient(tx, global_=False)
        tx.timer = self.sim.schedule(self.estimator.threshold_ps(), self._on_timeout, tx)

    def _transient_destinations(self, addr: int, global_: bool) -> Tuple[NodeId, ...]:
        if self.cfg.flat_policy:
            # TokenB: flat broadcast to every cache in the machine.
            cached = self._dests_flat.get(addr)
            if cached is not None:
                return cached
            dests = [n for n in self.params.token_holders(addr) if n != self.node]
            dests.append(self.params.home_mem(addr))
            self._dests_flat[addr] = cached = tuple(dests)
            return cached
        cache = self._dests_global if global_ else self._dests_local
        cached = cache.get(addr)
        if cached is not None:
            return cached
        dests = [n for n in self.params.chip_l1s(self.chip) if n != self.node]
        dests.append(self.params.l2_bank(addr, self.chip))
        if global_:
            for chip in self.params.all_chips():
                if chip != self.chip:
                    dests.append(self.params.l2_bank(addr, chip))
            dests.append(self.params.home_mem(addr))
        cache[addr] = cached = tuple(dests)
        return cached

    def _send_transient(self, tx: Transaction, global_: bool) -> None:
        mtype = MsgType.TOK_GETX if tx.is_write else MsgType.TOK_GETS
        self.stats.bump("policy.transient_requests")
        dests = self._transient_destinations(tx.addr, global_)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.tx_transient(self.node, tx.addr, global_, len(dests))
        pool = self.pool
        template = pool.acquire(mtype, self.node, self.node, tx.addr)
        template.requestor = self.node
        self.net.send_fanout(template, dests)
        pool.release(template)

    def _on_timeout(self, tx: Transaction) -> None:
        if self._tx.get(tx.addr) is not tx:
            return  # completed meanwhile
        if self.predictor is not None:
            self.predictor.train_timeout(tx.addr)
        if tx.retries + 1 < self.cfg.max_transient:
            tx.retries += 1
            self.stats.bump("policy.retries")
            # Bounded exponential backoff with pseudo-random jitter avoids
            # lock-step retry storms (Section 4): the wait before the next
            # broadcast grows with the retry count, and the jitter spreads
            # colliding requestors apart.
            backoff = int(self.rng.random() * self.estimator.threshold_ps(tx.retries) / 2)
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.tx_retry(self.node, tx.addr, tx.retries, backoff)
            tx.timer = self.sim.schedule(backoff, self._retry, tx)
        else:
            self._go_persistent(tx)

    def _retry(self, tx: Transaction) -> None:
        if self._tx.get(tx.addr) is not tx:
            return
        self._send_transient(tx, global_=True)
        tx.timer = self.sim.schedule(
            self.estimator.threshold_ps(tx.retries), self._on_timeout, tx
        )

    # ------------------------------------------------------------------
    # Persistent requests (the correctness substrate takes over).
    # ------------------------------------------------------------------
    def _go_persistent(self, tx: Transaction) -> None:
        tx.persistent = True
        read = not tx.is_write
        self.stats.bump("persistent.requests")
        if read:
            self.stats.bump("persistent.reads")
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.tx_persistent(self.node, tx.addr, read, self.cfg.activation)
        if self.cfg.activation == "arb":
            self.net.send(
                Message(
                    mtype=MsgType.PERSIST_REQ,
                    src=self.node,
                    dst=self.params.home_arbiter(tx.addr),
                    addr=tx.addr,
                    requestor=self.node,
                    prio=self.prio,
                    read=read,
                    extra=self.proc,
                )
            )
        else:
            if self.table.has_marked_for(tx.addr):
                tx.waiting_wave = True  # wait for the current wave to drain
                self.stats.bump("persistent.wave_blocked")
            else:
                self._dst_activate(tx, read)
        if self.recovery_enabled and tx.recreate_timer is None:
            # Recovery tier above persistent requests: if even persistent
            # arbitration cannot complete this transaction, its tokens
            # were probably destroyed — ask the ruler to recreate them.
            tx.recreate_timer = self.sim.schedule(
                self.estimator.recreation_threshold_ps(), self._on_recreate_timeout, tx
            )

    def _on_recreate_timeout(self, tx: Transaction) -> None:
        if self._tx.get(tx.addr) is not tx:
            return  # completed meanwhile
        self.stats.bump("recovery.escalations")
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.tx_recreate(self.node, tx.addr, tx.recreate_attempts)
        out = self.pool.acquire(
            MsgType.TOK_RECREATE_REQ, self.node, self.params.home_mem(tx.addr), tx.addr
        )
        out.requestor = self.node
        out.read = not tx.is_write
        self.net.send(out)
        tx.recreate_attempts += 1
        # Jittered exponential backoff, like the transient retry path: the
        # request (or the grant it produces) may itself be lost, so keep
        # retrying — but never in lock step with other starving requestors.
        wait = self.estimator.recreation_threshold_ps(tx.recreate_attempts)
        jitter = int(self.rng.random() * wait / 2)
        tx.recreate_timer = self.sim.schedule(
            wait + jitter, self._on_recreate_timeout, tx
        )

    def _dst_activate(self, tx: Transaction, read: bool) -> None:
        tx.waiting_wave = False
        from repro.core.persistent import PersistentEntry

        tracer = self.sim.tracer
        if tracer is not None:
            tracer.persist_activate(
                self.node, tx.addr, requestor=self.node, prio=self.prio, scheme="dst"
            )
        self.table.insert(
            PersistentEntry(
                proc=self.proc, requestor=self.node, addr=tx.addr, read=read, prio=self.prio
            )
        )
        pool = self.pool
        template = pool.acquire(MsgType.PERSIST_ACTIVATE, self.node, self.node, tx.addr)
        template.requestor = self.node
        template.prio = self.prio
        template.read = read
        template.extra = self.proc
        self.net.send_fanout(template, self._persistent_broadcast_set(tx.addr))
        pool.release(template)
        self._token_state_changed(tx.addr)

    def _persistent_broadcast_set(self, addr: int) -> Tuple[NodeId, ...]:
        cached = self._pers_dests.get(addr)
        if cached is not None:
            return cached
        dests = [n for n in self.params.token_holders(addr) if n != self.node]
        dests.append(self.params.home_mem(addr))
        self._pers_dests[addr] = cached = tuple(dests)
        return cached

    def _deactivate(self, tx: Transaction) -> None:
        if self.cfg.activation == "arb":
            self.net.send(
                Message(
                    mtype=MsgType.PERSIST_DEACTIVATE,
                    src=self.node,
                    dst=self.params.home_arbiter(tx.addr),
                    addr=tx.addr,
                    requestor=self.node,
                    extra=self.proc,
                )
            )
            return
        # Distributed scheme: remove our entry locally, mark the wave,
        # and broadcast the deactivation; the next-highest request becomes
        # active everywhere and our own table forwards the block directly.
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.persist_deactivate(
                self.node, tx.addr, requestor=self.node, scheme="dst"
            )
        self.table.remove(self.proc, tx.addr)
        self.table.mark_all_for(tx.addr)
        pool = self.pool
        template = pool.acquire(MsgType.PERSIST_DEACTIVATE, self.node, self.node, tx.addr)
        template.requestor = self.node
        template.extra = self.proc
        self.net.send_fanout(template, self._persistent_broadcast_set(tx.addr))
        pool.release(template)

    def _on_deactivate(self, msg: Message) -> None:
        super()._on_deactivate(msg)
        # The marking rule may now allow a deferred persistent request.
        for tx in list(self._tx.values()):
            if tx.waiting_wave and not self.table.has_marked_for(tx.addr):
                self._dst_activate(tx, read=not tx.is_write)

    # ------------------------------------------------------------------
    # Substrate hooks.
    # ------------------------------------------------------------------
    def _evictable(self, addr: int, entry) -> bool:
        return addr not in self._tx

    def _hook_absorbed(self, msg: Message) -> None:
        # TokenCMP estimates timeouts from memory responses only; TokenB
        # averaged ALL responses, which the paper found causes retry
        # bursts in an M-CMP (fast on-chip hits dominate the average).
        if self.cfg.flat_policy or msg.src.kind is NodeKind.MEM:
            tx = self._tx.get(msg.addr)
            if tx is not None:
                self.estimator.observe_memory_response(self.sim.now - tx.start_ps)
        if msg.data is not None:
            tx = self._tx.get(msg.addr)
            if tx is not None:
                tx.data_source = classify_source(msg.src, self.chip)
                tracer = self.sim.tracer
                if tracer is not None:
                    tracer.tx_data(self.node, msg.addr, tx.data_source)
        if (
            self.destset is not None
            and msg.src.chip != self.chip
            and msg.src.kind is not NodeKind.MEM
        ):
            # A remote chip supplied tokens: remember it as a likely holder.
            self.destset.train(msg.addr, msg.src.chip)

    def _maybe_complete(self, addr: int) -> None:
        tx = self._tx.get(addr)
        if tx is None:
            return
        entry = self.array.lookup(addr, touch=False)
        if entry is None:
            return
        satisfied = (
            entry.can_write(self.params.tokens_per_block)
            if tx.is_write
            else entry.can_read()
        )
        if not satisfied:
            return
        del self._tx[addr]
        if tx.timer is not None:
            tx.timer.cancel()
        if tx.recreate_timer is not None:
            tx.recreate_timer.cancel()
        result = self._perform(tx.op, addr)
        self.stats.sample("l1.miss_latency_ps", self.sim.now - tx.start_ps)
        source = tx.data_source or "tokens-only"
        if tx.persistent:
            source += "+persistent"
        self.stats.bump(f"miss.src.{source}")
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.tx_complete(
                self.node, addr,
                latency_ps=self.sim.now - tx.start_ps,
                source=source, persistent=tx.persistent, retries=tx.retries,
            )
        if tx.persistent and not tx.waiting_wave:
            self._deactivate(tx)
            self._token_state_changed(addr)  # hand contended block onward
        tx.done(result)


def classify_source(src: NodeId, own_chip: int) -> str:
    """Profile label for where a miss's data came from."""
    if src.kind is NodeKind.MEM:
        return "memory"
    local = "local" if src.chip == own_chip else "remote"
    kind = "l2" if src.kind is NodeKind.L2 else "l1"
    return f"{local}-{kind}"
