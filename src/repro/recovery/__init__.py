"""Token-recreation recovery subsystem (paper Sections 3 & 7).

Token coherence's strongest robustness claim is that *genuinely lost*
tokens — destroyed by a lossy fabric or by a controller losing its soft
state — are recoverable: the block's home memory controller is the ruler
of tokens and can, after a timeout tier above persistent requests, bump
the block's *recreation epoch*, invalidate every stale token, and
reconstitute the full token set at memory while preserving the
single-owner safety invariant.

This package holds the recovery bookkeeping shared across layers:

* :class:`~repro.recovery.ledger.RecoveryLedger` — per-block accounting
  of destroyed-then-recreated tokens, consulted by the epoch-aware
  conservation check;
* :mod:`repro.recovery.campaign` — the deterministic fault-campaign
  engine that drives recovery scenarios through the ``repro.exp`` Runner
  and emits canonical ``repro.campaign/1`` reports.

The protocol mechanics themselves live with the controllers
(``repro.core.memctrl`` owns epochs; ``repro.core.l1`` owns the
recreation escalation tier; ``repro.faults`` owns the injectors).
"""

from repro.recovery.campaign import (
    CAMPAIGN_SCHEMA,
    CampaignConfig,
    Scenario,
    cell_verdict,
    render_report,
    render_text,
    run_campaign,
    write_report,
)
from repro.recovery.ledger import RecoveryLedger

__all__ = [
    "CAMPAIGN_SCHEMA",
    "CampaignConfig",
    "RecoveryLedger",
    "Scenario",
    "cell_verdict",
    "render_report",
    "render_text",
    "run_campaign",
    "write_report",
]
