"""Per-block accounting of destroyed and recreated tokens.

The conservation invariant (``repro.core.tokens.check_conservation``)
normally demands that live tokens sum to exactly ``T`` per block.  Under
the lossy fault model tokens can be *genuinely destroyed* — dropped
token carriers (``FaultConfig(lossy=True)``) or a crashed controller's
wiped soft state (:class:`~repro.faults.crash.CrashInjector`).  The
ledger records that debt per block so the invariant stays checkable
*continuously*: live + destroyed == ``T`` at all times, and an epoch
bump (which invalidates every outstanding token of the old epoch and
reconstitutes ``T`` fresh ones at memory) clears the block's debt.

The ledger is deliberately dumb — dict arithmetic only, no simulator
coupling — so it can be shared by the injector (network layer), the
crash injector (kernel layer), the memory controller (protocol layer)
and the invariant monitor (verification layer) without import cycles.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple


class RecoveryLedger:
    """Tracks, per block, tokens destroyed but not yet recreated."""

    __slots__ = ("_destroyed", "_destroyed_owner", "tokens_destroyed",
                 "tokens_recreated", "owners_destroyed", "writes_lost")

    def __init__(self) -> None:
        self._destroyed: Dict[int, int] = {}
        self._destroyed_owner: Set[int] = set()
        # Lifetime counters (monotonic; exported into run stats).
        self.tokens_destroyed = 0
        self.tokens_recreated = 0
        self.owners_destroyed = 0
        self.writes_lost = 0

    # ------------------------------------------------------------------
    # Debits: something destroyed tokens.
    # ------------------------------------------------------------------
    def destroy(self, addr: int, tokens: int, owner: bool, dirty: bool = False) -> None:
        """Record ``tokens`` (and possibly the owner token) of ``addr``
        as destroyed.  ``dirty`` marks that the owner's data held an
        unwritten-back store — a write the recreated block cannot
        restore (memory's image becomes canonical)."""
        if tokens:
            self._destroyed[addr] = self._destroyed.get(addr, 0) + tokens
            self.tokens_destroyed += tokens
        if owner:
            self._destroyed_owner.add(addr)
            self.owners_destroyed += 1
            if dirty:
                self.writes_lost += 1

    # ------------------------------------------------------------------
    # Credits: the ruler of tokens bumped the block's epoch.
    # ------------------------------------------------------------------
    def recreated(self, addr: int) -> None:
        """An epoch bump invalidated every old token of ``addr`` and
        reconstituted the full set at memory: the block's debt is paid."""
        self.tokens_recreated += self._destroyed.pop(addr, 0)
        self._destroyed_owner.discard(addr)

    # ------------------------------------------------------------------
    # Queries (invariant checking, diagnostics, verdicts).
    # ------------------------------------------------------------------
    def deficit(self, addr: int) -> Tuple[int, bool]:
        """(tokens, owner) currently destroyed-and-unrecreated for ``addr``."""
        return self._destroyed.get(addr, 0), addr in self._destroyed_owner

    def residual_tokens(self) -> int:
        """Total tokens still missing across all blocks (end-of-run
        verdicts: > 0 means the run finished degraded-but-live)."""
        return sum(self._destroyed.values())

    def degraded_blocks(self) -> Tuple[int, ...]:
        return tuple(sorted(set(self._destroyed) | self._destroyed_owner))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RecoveryLedger(destroyed={self.tokens_destroyed}, "
                f"recreated={self.tokens_recreated}, "
                f"residual={self.residual_tokens()})")
