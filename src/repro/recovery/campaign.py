"""Deterministic fault-campaign engine.

A *campaign* enumerates scenario cells — fault kind x injection point x
workload x seed — over the token protocol's recovery subsystem and runs
them through the :class:`repro.exp.runner.Runner` (multiprocessing
fan-out, content-addressed caching), then renders one canonical
``repro.campaign/1`` JSON report with a per-cell recovery verdict:

* ``recovered`` — the run completed, every destroyed token was recreated
  and no dirty write was lost;
* ``degraded-but-live`` — the run completed and stayed safe, but some
  destroyed state could not be fully restored (a residual token deficit
  at quiescence, or a lost dirty write whose block reverted to memory's
  last written-back value);
* ``failed`` — the run did not complete (starvation, deadlock or a
  safety violation raised mid-run).

Determinism is the engine's contract: every cell is a pure function of
its spec, scenario expansion is order-stable, and the report is written
in canonical JSON (sorted keys, compact separators) with no wall-clock
content — so the report is byte-identical across repeat runs, across
``--jobs 1`` vs ``--jobs N``, and across cache hits vs fresh computes.

Time-to-recover comes from two independent instruments:

* the memory controller's ``recovery.recreation_ps`` summary stream
  (epoch bump to full-set reconstitution), aggregated per scenario from
  the cell results; and
* transaction-span stitching (:mod:`repro.obs.spans`): one traced
  representative cell per scenario is re-run serially and its
  ``recovered``-category span latencies (requestor-side: miss issue to
  completion through the recreation tier) are reported as percentiles.
  Tracing is observational, so the traced re-run cannot diverge from the
  campaign cell it mirrors.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.common.params import SystemParams
from repro.exp.runner import Runner, run_cell
from repro.exp.spec import Cell

CAMPAIGN_SCHEMA = "repro.campaign/1"

#: Verdicts, worst first (report ordering and exit-code logic).
VERDICTS = ("failed", "degraded-but-live", "recovered")


# ---------------------------------------------------------------------------
# Configuration.
# ---------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Scenario:
    """One fault scenario: what the adversary does to every cell.

    ``fault_rate`` drives the seeded per-message-class policies of
    :meth:`repro.faults.injector.FaultConfig.adversarial`; ``lossy``
    additionally lets the adversary *drop token carriers* (debited in the
    recovery ledger and recreated by the epoch tier).  ``crash_level`` /
    ``crash_at_ps`` / ``crash_victim`` schedule a
    :class:`~repro.faults.crash.CrashInjector` wipe.  A scenario with no
    faults and no crash is a valid baseline cell.
    """

    name: str
    fault_rate: float = 0.0
    lossy: bool = False
    delay_ps: int = 10_000
    reorder_window_ps: int = 2_000
    crash_level: Optional[str] = None
    crash_at_ps: int = 1_000_000
    crash_victim: Optional[int] = None

    def fault_config(self):
        from repro.faults.injector import FaultConfig

        if self.fault_rate:
            return FaultConfig.adversarial(
                self.fault_rate,
                delay_ps=self.delay_ps,
                reorder_window_ps=self.reorder_window_ps,
                lossy=self.lossy,
            )
        # Zero-rate config: perturbs nothing, but the FaultyNetwork
        # wrapper tracks in-flight token carriers so the continuous
        # invariant monitor's census is sound at every event boundary.
        return FaultConfig()

    def crash_spec(self):
        if self.crash_level is None:
            return None
        from repro.faults.crash import CrashSpec

        return CrashSpec(
            level=self.crash_level, at_ps=self.crash_at_ps,
            victim=self.crash_victim,
        )

    @classmethod
    def from_dict(cls, record: dict) -> "Scenario":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(record) - known
        if unknown:
            raise ConfigError(
                f"scenario {record.get('name', '?')!r}: unknown keys "
                f"{sorted(unknown)}; known: {sorted(known)}"
            )
        if "name" not in record:
            raise ConfigError("every scenario needs a 'name'")
        return cls(**record)


@dataclasses.dataclass(frozen=True)
class CampaignConfig:
    """A declarative fault campaign: axes plus per-cell run settings."""

    name: str
    protocol: str
    scenarios: Tuple[Scenario, ...]
    workloads: Tuple[Tuple[str, Tuple[Tuple[str, object], ...]], ...]
    seeds: Tuple[int, ...]
    params: SystemParams
    max_events: int = 20_000_000
    watchdog_budget_ns: float = 5_000_000.0
    invariant_check_every: int = 2_000
    # When set, every cell samples time-series telemetry at this cadence
    # (fired kernel events) and saturation windows ride into the verdict
    # counters.
    telemetry_sample_every: Optional[int] = None

    @classmethod
    def from_dict(cls, record: dict) -> "CampaignConfig":
        try:
            scenarios = tuple(
                Scenario.from_dict(s) for s in record["scenarios"]
            )
            workloads = []
            for wl in record["workloads"]:
                if isinstance(wl, str):
                    workloads.append((wl, ()))
                else:
                    name, kwargs = wl
                    workloads.append((name, tuple(sorted(kwargs.items()))))
            params = SystemParams(**record.get("params", {}))
            return cls(
                name=record["name"],
                protocol=record["protocol"],
                scenarios=scenarios,
                workloads=tuple(workloads),
                seeds=tuple(record["seeds"]),
                params=params,
                max_events=record.get("max_events", cls.max_events),
                watchdog_budget_ns=record.get(
                    "watchdog_budget_ns", cls.watchdog_budget_ns
                ),
                invariant_check_every=record.get(
                    "invariant_check_every", cls.invariant_check_every
                ),
                telemetry_sample_every=record.get(
                    "telemetry_sample_every", cls.telemetry_sample_every
                ),
            )
        except (KeyError, TypeError) as err:
            raise ConfigError(f"bad campaign config: {err}") from err

    @classmethod
    def load(cls, path: str) -> "CampaignConfig":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    # ------------------------------------------------------------------
    def expand(self) -> List[Tuple[Scenario, Cell]]:
        """The scenario grid in canonical order: scenario, workload, seed."""
        telemetry = None
        if self.telemetry_sample_every is not None:
            from repro.obs.telemetry import TelemetryConfig

            telemetry = TelemetryConfig(
                sample_every_events=self.telemetry_sample_every
            )
        out: List[Tuple[Scenario, Cell]] = []
        for scenario in self.scenarios:
            for wl_name, wl_kwargs in self.workloads:
                for seed in self.seeds:
                    out.append(
                        (
                            scenario,
                            Cell(
                                protocol=self.protocol,
                                workload=wl_name,
                                workload_kwargs=wl_kwargs,
                                seed=seed,
                                params=self.params,
                                max_events=self.max_events,
                                faults=scenario.fault_config(),
                                crash=scenario.crash_spec(),
                                watchdog_budget_ns=self.watchdog_budget_ns,
                                invariant_check_every=self.invariant_check_every,
                                check_invariants=True,
                                telemetry=telemetry,
                                label=scenario.name,
                            ),
                        )
                    )
        return out


# ---------------------------------------------------------------------------
# Verdicts.
# ---------------------------------------------------------------------------
def cell_verdict(result) -> str:
    """Classify one completed cell result (``None`` = did not complete)."""
    if result is None:
        return "failed"
    degraded = (
        result.get("recovery.residual_tokens")
        or result.get("recovery.degraded_blocks")
        or result.get("recovery.writes_lost")
    )
    return "degraded-but-live" if degraded else "recovered"


# ---------------------------------------------------------------------------
# Execution.
# ---------------------------------------------------------------------------
def _run_cells(cells: Sequence[Cell], runner: Runner, name: str):
    """Run every cell, attributing per-cell failures instead of aborting.

    Fast path: one Runner call over the whole grid (parallel, cached).
    If any cell raises, fall back to per-cell execution so the failure is
    pinned to its cell and the rest of the campaign still reports.  Cells
    are deterministic and cache-backed, so the retry costs only the cells
    that had not completed before the failing one.
    """
    try:
        return list(runner.run_cells(cells, name=name).results), {}
    except Exception:
        pass
    results: List[Optional[object]] = []
    errors: Dict[int, str] = {}
    for i, cell in enumerate(cells):
        try:
            results.append(runner.run_cells([cell], name=name).results[0])
        except Exception as err:  # noqa: BLE001 - verdict attribution
            results.append(None)
            errors[i] = f"{type(err).__name__}: {err}"
    return results, errors


def _spans_time_to_recover(scenario: Scenario, cell: Cell) -> Optional[dict]:
    """Span-stitched time-to-recover for one traced representative cell.

    Returns the ``recovered``-category latency percentiles (requestor
    side: miss issue through the recreation tier to completion), or
    ``None`` when the scenario produced no recreation-tier spans.
    """
    from repro.obs.spans import SpanBuilder
    from repro.obs.trace import Tracer

    tracer = Tracer()
    try:
        run_cell(cell, tracer=tracer)
    except Exception:  # failed cells get no span data
        return None
    report = SpanBuilder().build(tracer.events)
    spans = [s for s in report.spans if s.category == "recovered"]
    if not spans:
        return None
    latencies = sorted(s.latency_ps for s in spans)

    def pct(p: float) -> int:
        index = min(len(latencies) - 1, int(p / 100.0 * len(latencies)))
        return latencies[index]

    return {
        "count": len(latencies),
        "p50_ps": pct(50),
        "p95_ps": pct(95),
        "p99_ps": pct(99),
        "max_ps": latencies[-1],
    }


_CELL_COUNTERS = (
    "recovery.recreations",
    "recovery.completed",
    "recovery.escalations",
    "recovery.tokens_destroyed",
    "recovery.tokens_recreated",
    "recovery.residual_tokens",
    "recovery.degraded_blocks",
    "recovery.writes_lost",
    "recovery.stale_discarded",
    "recovery.stale_tokens",
    "recovery.tokens_surrendered",
    "crash.fired",
    "crash.blocks_wiped",
    "crash.tokens_wiped",
    "watchdog.trips",
    "invariant.checks",
    "telemetry.ticks",
    "telemetry.saturation_windows",
)


def run_campaign(
    config: CampaignConfig,
    runner: Optional[Runner] = None,
    spans: bool = True,
) -> dict:
    """Execute the campaign and return the ``repro.campaign/1`` report."""
    runner = runner or Runner()
    expanded = config.expand()
    cells = [cell for _s, cell in expanded]
    results, errors = _run_cells(cells, runner, config.name)

    cell_records = []
    by_scenario: Dict[str, List[Tuple[int, Optional[object]]]] = {}
    for i, ((scenario, cell), result) in enumerate(zip(expanded, results)):
        verdict = cell_verdict(result)
        record = {
            "scenario": scenario.name,
            "protocol": cell.protocol_name,
            "workload": cell.workload_name,
            "workload_kwargs": dict(cell.workload_kwargs),
            "seed": cell.seed,
            "verdict": verdict,
            "error": errors.get(i),
            "runtime_ps": result.runtime_ps if result is not None else None,
            "counters": (
                {
                    name: result.get(name)
                    for name in _CELL_COUNTERS
                    if result.get(name)
                }
                if result is not None
                else {}
            ),
        }
        cell_records.append(record)
        by_scenario.setdefault(scenario.name, []).append((i, result))

    scenario_records = []
    for scenario in config.scenarios:
        entries = by_scenario[scenario.name]
        verdicts: Dict[str, int] = {}
        recreation = {"count": 0, "total_ps": 0.0, "max_ps": 0.0}
        for i, result in entries:
            verdicts[cell_verdict(result)] = (
                verdicts.get(cell_verdict(result), 0) + 1
            )
            if result is not None:
                stream = result.summary("recovery.recreation_ps")
                recreation["count"] += int(stream.get("count", 0))
                recreation["total_ps"] += float(stream.get("total", 0.0))
                recreation["max_ps"] = max(
                    recreation["max_ps"], float(stream.get("max", 0.0))
                )
        ttr = None
        if spans:
            # Trace the scenario's first cell as the span representative.
            first_index = entries[0][0]
            ttr = _spans_time_to_recover(scenario, cells[first_index])
        scenario_records.append(
            {
                "name": scenario.name,
                "spec": dataclasses.asdict(scenario),
                "cells": len(entries),
                "verdicts": dict(sorted(verdicts.items())),
                "recreation_ps": recreation if recreation["count"] else None,
                "time_to_recover_ps": ttr,
            }
        )

    totals = {v: 0 for v in VERDICTS}
    for record in cell_records:
        totals[record["verdict"]] += 1
    return {
        "schema": CAMPAIGN_SCHEMA,
        "name": config.name,
        "protocol": config.protocol,
        "params": dataclasses.asdict(config.params),
        "seeds": list(config.seeds),
        "cells": cell_records,
        "scenarios": scenario_records,
        "totals": {"cells": len(cell_records), **totals},
    }


def render_report(report: dict) -> str:
    """Canonical JSON: the campaign determinism contract's byte form."""
    return json.dumps(report, sort_keys=True, separators=(",", ":")) + "\n"


def write_report(report: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_report(report))


def render_text(report: dict) -> str:
    """Human-readable campaign summary."""
    totals = report["totals"]
    lines = [
        f"campaign {report['name']!r}: {totals['cells']} cells — "
        + ", ".join(f"{totals[v]} {v}" for v in VERDICTS if totals[v])
    ]
    for scenario in report["scenarios"]:
        verdicts = ", ".join(
            f"{n} {v}" for v, n in scenario["verdicts"].items()
        )
        lines.append(f"  {scenario['name']}: {verdicts}")
        ttr = scenario["time_to_recover_ps"]
        if ttr:
            lines.append(
                f"    time-to-recover (spans): n={ttr['count']}"
                f" p50={ttr['p50_ps']} ps p95={ttr['p95_ps']} ps"
            )
        rec = scenario["recreation_ps"]
        if rec:
            mean = rec["total_ps"] / rec["count"]
            lines.append(
                f"    recreation latency: n={rec['count']}"
                f" mean={mean:.0f} ps max={rec['max_ps']:.0f} ps"
            )
    for record in report["cells"]:
        if record["verdict"] == "failed":
            lines.append(
                f"  FAILED {record['scenario']} / {record['workload']}"
                f" seed={record['seed']}: {record['error']}"
            )
    return "\n".join(lines)
