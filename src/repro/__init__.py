"""TokenCMP reproduction: token coherence for Multiple-CMP systems.

Reproduces Marty et al., "Improving Multiple-CMP Systems Using Token
Coherence" (HPCA 2005).  Public entry points:

* :class:`repro.common.params.SystemParams` — the target machine (Table 3)
* :class:`repro.system.machine.Machine` — build + run one protocol
* :data:`repro.system.config.PROTOCOLS` — every protocol by paper name
* :mod:`repro.workloads` — locking / barrier / counter / commercial
* :mod:`repro.verification` — the model checker and protocol models
* :mod:`repro.exp` — the experiment engine (cells, runner, result cache)
* :mod:`repro.obs` — tracing, transaction spans, metrics, profiling

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

from repro.common.params import SystemParams
from repro.system.config import PROTOCOLS, protocol
from repro.system.machine import Machine, RunResult

__version__ = "1.0.0"

__all__ = [
    "SystemParams",
    "Machine",
    "RunResult",
    "PROTOCOLS",
    "protocol",
    "__version__",
]
