"""L1 cache controller for DirectoryCMP (hierarchical MOESI directory).

All L1 misses go to the block's home L2 bank on the same chip, which
serializes them through the intra-CMP directory.  The L1 responds to
forwarded requests, invalidations and recalls at any time — including
while it has its own transaction outstanding or is mid-writeback — which
is what keeps the two directory levels deadlock-free.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.common.params import SystemParams
from repro.common.stats import Stats
from repro.common.types import NodeId
from repro.cpu.ops import Load, Rmw, Store, is_write
from repro.directory.states import E, EvictBuf, GRANT_E, GRANT_M, GRANT_S, L1Entry, L1Tx, M, O, S
from repro.interconnect.message import Message, MsgType
from repro.interconnect.network import Network
from repro.memory.cache import CacheArray
from repro.sim.kernel import Simulator


class DirL1Controller:
    """One L1 data cache in DirectoryCMP."""

    def __init__(
        self,
        node: NodeId,
        sim: Simulator,
        net: Network,
        params: SystemParams,
        stats: Stats,
        cfg,
        array: CacheArray,
    ):
        self.node = node
        self.sim = sim
        self.net = net
        self.params = params
        self.stats = stats
        self.cfg = cfg
        self.array = array
        self._tx: Dict[int, L1Tx] = {}
        self._evicting: Dict[int, EvictBuf] = {}
        self._deferred: Dict[int, list] = {}  # msgs parked on the hold window
        net.register(node, self.handle)

    # ------------------------------------------------------------------
    def _home_l2(self, addr: int) -> NodeId:
        return self.params.l2_bank(addr, self.node.chip)

    def _send(self, mtype: MsgType, dst: NodeId, addr: int, **kw) -> None:
        self.net.send(Message(mtype=mtype, src=self.node, dst=dst, addr=addr, **kw))

    # ------------------------------------------------------------------
    # Processor interface.
    # ------------------------------------------------------------------
    def access(self, op, done: Callable[[int], None]) -> None:
        addr = self.params.block_of(op.addr)
        self.sim.schedule(self.params.l1_latency_ps, self._attempt, op, addr, done)

    def _attempt(self, op, addr: int, done: Callable[[int], None]) -> None:
        entry = self.array.lookup(addr)
        write = is_write(op)
        if entry is not None and (entry.state in (M, E) if write else True):
            self.stats.bump("l1.hits")
            done(self._perform(op, entry))
            return
        self.stats.bump("l1.misses")
        tx = L1Tx(op=op, addr=addr, done=done, start_ps=self.sim.now, is_write=write)
        self._tx[addr] = tx
        self._send(
            MsgType.DIR_GETX if write else MsgType.DIR_GETS,
            self._home_l2(addr),
            addr,
            requestor=self.node,
        )

    def _perform(self, op, entry: L1Entry) -> int:
        old = entry.value
        if isinstance(op, Store):
            entry.value = op.value
        elif isinstance(op, Rmw):
            entry.value = op.fn(old)
        else:
            return old
        entry.state = M
        entry.dirty = True
        if self.cfg.response_delay:
            # Same Rajwar-style delay as the token protocols (Section 3.2
            # notes all evaluated protocols implement it): an atomic arms a
            # bounded hold; a later plain store (the release) disarms it.
            if isinstance(op, Rmw):
                entry.hold_until = max(
                    entry.hold_until, self.sim.now + self.params.response_delay_ps
                )
            else:
                entry.hold_until = self.sim.now
                self._flush_deferred(self.params.block_of(op.addr))
        return old

    # ------------------------------------------------------------------
    # Message handling.
    # ------------------------------------------------------------------
    def handle(self, msg: Message) -> None:
        self.sim.schedule(self.params.l1_latency_ps, self._process, msg)

    def _process(self, msg: Message) -> None:
        t = msg.mtype
        if t is MsgType.DIR_DATA:
            self._on_data(msg)
        elif t is MsgType.DIR_ACK:
            self._on_ack(msg)
        elif t in (MsgType.DIR_FWD_GETS, MsgType.DIR_FWD_GETX, MsgType.DIR_INV, MsgType.DIR_RECALL):
            self._on_demand(msg)
        elif t is MsgType.DIR_WB_GRANT:
            self._on_wb_grant(msg)
        else:  # pragma: no cover - defensive
            raise ValueError(f"{self.node}: unexpected message {msg}")

    # ------------------------------------------------------------------
    # Completing our own transaction.
    # ------------------------------------------------------------------
    def _on_data(self, msg: Message) -> None:
        from repro.core.l1 import classify_source

        tx = self._tx.get(msg.addr)
        assert tx is not None, f"{self.node}: data grant with no transaction ({msg})"
        tx.data_source = classify_source(msg.src, self.node.chip)
        tx.data = msg.data
        tx.granted = msg.extra
        tx.dirty = msg.dirty
        tx.acks_expected = msg.acks
        self._try_complete(msg.addr)

    def _on_ack(self, msg: Message) -> None:
        tx = self._tx.get(msg.addr)
        assert tx is not None, f"{self.node}: stray ack ({msg})"
        tx.acks_received += 1
        self._try_complete(msg.addr)

    def _try_complete(self, addr: int) -> None:
        tx = self._tx.get(addr)
        if tx is None or tx.granted is None:
            return
        if tx.acks_received < (tx.acks_expected or 0):
            return
        del self._tx[addr]
        state = {GRANT_M: M, GRANT_E: E, GRANT_S: S}[tx.granted]
        entry = self.array.lookup(addr)
        if entry is None:
            entry = L1Entry(state=state)
            victim = self.array.allocate(addr, entry, evictable=self._evictable)
            if victim is not None:
                self._evict(*victim)
        entry.state = state
        entry.value = tx.data
        entry.dirty = tx.dirty
        result = self._perform(tx.op, entry)
        self.stats.sample("l1.miss_latency_ps", self.sim.now - tx.start_ps)
        self.stats.bump(f"miss.src.{tx.data_source or 'unknown'}")
        self._send(MsgType.DIR_UNBLOCK, self._home_l2(addr), addr, requestor=self.node)
        tx.done(result)

    def _evictable(self, addr: int, entry: L1Entry) -> bool:
        return addr not in self._tx and addr not in self._evicting

    # ------------------------------------------------------------------
    # Serving forwarded requests, invalidations and recalls.
    # ------------------------------------------------------------------
    def _on_demand(self, msg: Message) -> None:
        addr = msg.addr
        entry = self.array.lookup(addr, touch=False)
        if entry is not None and entry.hold_until > self.sim.now and msg.requestor != self.node:
            self._defer(addr, entry.hold_until, msg)
            return
        buf = self._evicting.get(addr)
        t = msg.mtype

        if t is MsgType.DIR_INV:
            if entry is not None:
                self.array.deallocate(addr)
            if buf is not None:
                buf.cancelled = True
            self._send(MsgType.DIR_ACK, msg.requestor, addr)
            return

        if t is MsgType.DIR_FWD_GETX:
            # We are (or were) the local owner: hand data + M to requestor.
            value, dirty = self._surrender(addr, entry, buf)
            self._send(
                MsgType.DIR_DATA, msg.requestor, addr,
                data=value, dirty=dirty, acks=msg.acks, extra=GRANT_M,
            )
            return

        if t is MsgType.DIR_FWD_GETS:
            if msg.extra == "migrate":
                value, dirty = self._surrender(addr, entry, buf)
                self._send(
                    MsgType.DIR_DATA, msg.requestor, addr,
                    data=value, dirty=dirty, acks=0, extra=GRANT_M,
                )
                self.stats.bump("dir.migratory_transfers")
            else:
                src = entry if entry is not None else buf
                assert src is not None, f"{self.node}: fwd-gets but no data @{addr:#x}"
                if entry is not None and entry.state in (M, E):
                    entry.state = O  # others now share: E may no longer upgrade
                self._send(
                    MsgType.DIR_DATA, msg.requestor, addr,
                    data=src.value, dirty=src.dirty, acks=0, extra=GRANT_S,
                )
            return

        if t is MsgType.DIR_RECALL:
            self._on_recall(msg, entry, buf)
            return

    def _defer(self, addr: int, when_ps: int, msg: Message) -> None:
        """Park a demand message until the hold window ends (or is disarmed)."""
        holder = self._deferred.setdefault(addr, [])
        record = []

        def _fire() -> None:
            holder.remove(record[0])
            self._process(msg)

        event = self.sim.schedule_at(when_ps, _fire)
        record.append((event, msg))
        holder.append(record[0])

    def _flush_deferred(self, addr: int) -> None:
        """The hold was disarmed (lock release): serve parked messages now."""
        for event, msg in self._deferred.pop(addr, []):
            event.cancel()
            self._process(msg)

    def _surrender(self, addr: int, entry, buf):
        """Give up the block entirely (forwarded GETX or migratory GETS)."""
        if entry is not None:
            value, dirty = entry.value, entry.dirty
            self.array.deallocate(addr)
        else:
            assert buf is not None, f"{self.node}: surrender without data @{addr:#x}"
            value, dirty = buf.value, buf.dirty
        if buf is not None:
            buf.cancelled = True
        return value, dirty

    def _on_recall(self, msg: Message, entry, buf) -> None:
        """The home L2 needs our copy: for eviction (inv) or an external
        read (copy).  Responses are tagged 'recall' so the L2 routes them
        to its recall bookkeeping rather than treating them as writebacks.
        """
        addr = msg.addr
        if msg.extra == "copy":
            src = entry if entry is not None else buf
            assert src is not None, f"{self.node}: recall-copy but no data @{addr:#x}"
            if entry is not None and entry.state in (M, E):
                entry.state = O
            self._send(
                MsgType.DIR_WB_DATA, msg.src, addr,
                data=src.value, dirty=src.dirty, extra="recall", requestor=self.node,
            )
            return
        # Full recall: invalidate, returning data if we own it.
        owned = False
        value = dirty = None
        if entry is not None:
            # E holds the only valid copy (clean): it must supply data too.
            owned = entry.state in (M, O, E)
            value, dirty = entry.value, entry.dirty
            self.array.deallocate(addr)
        elif buf is not None and not buf.cancelled:
            owned = True
            value, dirty = buf.value, buf.dirty
        if buf is not None:
            buf.cancelled = True
        if owned:
            self._send(
                MsgType.DIR_WB_DATA, msg.src, addr,
                data=value, dirty=dirty, extra="recall", requestor=self.node,
            )
        else:
            self._send(
                MsgType.DIR_WB_TOKEN, msg.src, addr, extra="recall", requestor=self.node
            )

    # ------------------------------------------------------------------
    # Three-phase writebacks.
    # ------------------------------------------------------------------
    def _evict(self, addr: int, entry: L1Entry) -> None:
        if entry.state in (M, O, E):
            self.stats.bump("l1.dirty_evictions")
            self._evicting[addr] = EvictBuf(entry.value, entry.dirty, entry.state)
            # Messages parked on the hold window must not outlive the
            # entry: serve them from the eviction buffer now.
            self._flush_deferred(addr)
            self._send(MsgType.DIR_WB_REQ, self._home_l2(addr), addr, requestor=self.node)
        else:
            self.stats.bump("l1.clean_evictions")
            self._send(
                MsgType.DIR_WB_TOKEN, self._home_l2(addr), addr,
                extra="notice", requestor=self.node,
            )

    def _on_wb_grant(self, msg: Message) -> None:
        buf = self._evicting.pop(msg.addr, None)
        assert buf is not None, f"{self.node}: WB grant without eviction ({msg})"
        if buf.cancelled:
            self._send(
                MsgType.DIR_WB_TOKEN, self._home_l2(msg.addr), msg.addr,
                extra="cancelled", requestor=self.node,
            )
        else:
            self._send(
                MsgType.DIR_WB_DATA, self._home_l2(msg.addr), msg.addr,
                data=buf.value, dirty=buf.dirty, requestor=self.node,
            )
