"""State definitions for the hierarchical MOESI directory protocol.

DirectoryCMP (paper Section 2) keeps coherence with two coupled
directories:

* the **intra-CMP directory** at each L2 bank tracks which local L1s hold
  a block (owner + sharer vector) along with the chip-level permission;
* the **inter-CMP directory** at each home memory controller tracks which
  *chips* hold the block, not individual caches.

Both levels use per-block busy states to serialize transactions (deferred
requests queue at the directory) and three-phase writebacks — the choices
the paper describes as moderating DirectoryCMP's complexity.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Set

from repro.common.types import NodeId

# Stable L1 cache states (MOESI; I = no entry).
M, O, E, S = "M", "O", "E", "S"

# Grant kinds carried in DIR_DATA.extra / DIR_UNBLOCK.extra.
GRANT_M, GRANT_E, GRANT_S = "M", "E", "S"


@dataclasses.dataclass
class L1Entry:
    """One block in an L1 cache under DirectoryCMP."""

    state: str  # M / O / E / S
    value: int = 0
    dirty: bool = False
    hold_until: int = 0  # response-delay window (ps)


@dataclasses.dataclass
class L1Tx:
    """Outstanding L1 miss (IS = read, IM = write)."""

    op: object
    addr: int
    done: object
    start_ps: int
    is_write: bool
    data: Optional[int] = None
    granted: Optional[str] = None
    dirty: bool = False
    acks_expected: Optional[int] = None
    acks_received: int = 0
    data_source: Optional[str] = None  # who supplied the data (profiling)


@dataclasses.dataclass
class EvictBuf:
    """Dirty/ownership data parked during a three-phase writeback."""

    value: int
    dirty: bool
    state: str  # M or O (ownership states need the handshake)
    cancelled: bool = False  # lost ownership to a forwarded request


@dataclasses.dataclass
class L2Line:
    """Intra-CMP directory record for one block at the home L2 bank."""

    gstate: str = "I"  # chip-level permission: I/S/E/M/O
    owner_l1: Optional[NodeId] = None
    owner_state: str = "M"  # local owner's state (M or O)
    sharers: Set[NodeId] = dataclasses.field(default_factory=set)
    l2_data: bool = False
    value: int = 0
    dirty: bool = False
    busy: bool = False
    queue: List = dataclasses.field(default_factory=list)
    pending: Optional[object] = None  # outstanding global transaction

    @property
    def has_local_data(self) -> bool:
        return self.l2_data or self.owner_l1 is not None

    def evictable(self) -> bool:
        return not self.busy and self.pending is None


@dataclasses.dataclass
class HomeLine:
    """Inter-CMP directory record for one block at its home controller."""

    state: str = "I"  # I (memory owner) / S / O / M
    owner_chip: Optional[int] = None
    sharer_chips: Set[int] = dataclasses.field(default_factory=set)
    busy: bool = False
    queue: List = dataclasses.field(default_factory=list)
