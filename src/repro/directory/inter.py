"""Inter-CMP directory at each home memory controller (DirectoryCMP).

Tracks which *chips* cache a block (owner chip + sharer chips), not which
caches within a chip — that is the intra-CMP directory's job.  Transactions
serialize per block behind a busy bit; requesting chips send a final
unblock (carrying the state they installed) that both releases the block
and teaches the directory the transaction's outcome, which lets the owner
chip make the migratory-sharing decision locally.

Directory state lives in DRAM: every request pays a directory access
latency (``dram_latency``) before any forward/invalidate is sent, unless
the unrealistic zero-cycle variant (DirectoryCMP-zero) is configured.
Data reads from memory proceed in parallel with the directory access.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.common.params import SystemParams
from repro.common.stats import Stats
from repro.common.types import NodeId, NodeKind
from repro.directory.states import GRANT_E, GRANT_M, GRANT_S, HomeLine
from repro.interconnect.message import Message, MsgType
from repro.interconnect.network import Network
from repro.memory.dram import MemoryImage
from repro.sim.kernel import Simulator


class InterDirController:
    """Home memory controller with the inter-CMP directory."""

    def __init__(
        self,
        node: NodeId,
        sim: Simulator,
        net: Network,
        params: SystemParams,
        stats: Stats,
        cfg,
    ):
        self.node = node
        self.sim = sim
        self.net = net
        self.params = params
        self.stats = stats
        self.cfg = cfg
        self.image = MemoryImage()
        self.lines: Dict[int, HomeLine] = {}
        self.dir_latency_ps = 0 if cfg.dir_zero_cycle else params.dram_latency_ps
        net.register(node, self.handle)

    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Number of home directory lines ever touched — telemetry."""
        return len(self.lines)

    def _line(self, addr: int) -> HomeLine:
        line = self.lines.get(addr)
        if line is None:
            line = HomeLine()
            self.lines[addr] = line
        return line

    def _chip_l2(self, addr: int, chip: int) -> NodeId:
        return self.params.l2_bank(addr, chip)

    def _send(self, mtype: MsgType, dst: NodeId, addr: int, **kw) -> None:
        self.net.send(Message(mtype=mtype, src=self.node, dst=dst, addr=addr, **kw))

    def handle(self, msg: Message) -> None:
        self.sim.schedule(self.params.mem_ctrl_latency_ps, self._receive, msg)

    def _receive(self, msg: Message) -> None:
        t = msg.mtype
        if t in (MsgType.DIR_GETS, MsgType.DIR_GETX, MsgType.DIR_WB_REQ):
            line = self._line(msg.addr)
            if line.busy:
                line.queue.append(msg)
                self.stats.bump("interdir.deferred_requests")
            else:
                self._begin(msg, line)
        elif t is MsgType.DIR_UNBLOCK:
            self._on_unblock(msg)
        elif t in (MsgType.DIR_WB_DATA, MsgType.DIR_WB_TOKEN):
            self._on_writeback_phase3(msg)
        else:  # pragma: no cover - defensive
            raise ValueError(f"{self.node}: unexpected message {msg}")

    def _begin(self, msg: Message, line: HomeLine) -> None:
        line.busy = True
        # The directory lookup itself costs a DRAM access (or nothing in
        # the zero-cycle variant) before any action can be taken.
        self.sim.schedule(self.dir_latency_ps, self._execute, msg, line)

    # ------------------------------------------------------------------
    def _execute(self, msg: Message, line: HomeLine) -> None:
        t = msg.mtype
        if t is MsgType.DIR_WB_REQ:
            self._send(MsgType.DIR_WB_GRANT, msg.src, msg.addr)
            return  # stays busy until phase 3 arrives
        req_chip = msg.src.chip
        if t is MsgType.DIR_GETS:
            self._execute_gets(msg, line, req_chip)
        else:
            self._execute_getx(msg, line, req_chip)

    def _memory_data_send(self, dst: NodeId, addr: int, grant: str, acks: int) -> None:
        """Send data read from DRAM; the read overlaps the directory access."""
        extra_delay = max(0, self.params.dram_latency_ps - self.dir_latency_ps)
        msg = Message(
            mtype=MsgType.DIR_DATA, src=self.node, dst=dst, addr=addr,
            data=self.image.read(addr), dirty=False, acks=acks, extra=grant,
        )
        self.stats.bump("interdir.dram_reads")
        self.sim.schedule(extra_delay, self.net.send, msg)

    def _execute_gets(self, msg: Message, line: HomeLine, req_chip: int) -> None:
        addr = msg.addr
        if line.state == "I":
            self._memory_data_send(msg.src, addr, GRANT_E, acks=0)
        elif line.state == "S":
            self._memory_data_send(msg.src, addr, GRANT_S, acks=0)
        else:  # M or O: forward to the owner chip (it decides migratory).
            self.stats.bump("interdir.forwards")
            self._send(
                MsgType.DIR_FWD_GETS,
                self._chip_l2(addr, line.owner_chip),
                addr,
                requestor=msg.src,
            )

    def _execute_getx(self, msg: Message, line: HomeLine, req_chip: int) -> None:
        addr = msg.addr
        inv_chips = {c for c in line.sharer_chips if c != req_chip}
        for chip in sorted(inv_chips):
            self._send(
                MsgType.DIR_INV, self._chip_l2(addr, chip), addr, requestor=msg.src
            )
        self.stats.bump("interdir.invalidations", len(inv_chips))
        if line.state in ("I", "S"):
            self._memory_data_send(msg.src, addr, GRANT_M, acks=len(inv_chips))
        else:  # M or O: owner chip supplies data (possibly the requestor).
            self.stats.bump("interdir.forwards")
            self._send(
                MsgType.DIR_FWD_GETX,
                self._chip_l2(addr, line.owner_chip),
                addr,
                requestor=msg.src,
                acks=len(inv_chips),
            )

    # ------------------------------------------------------------------
    def _on_unblock(self, msg: Message) -> None:
        line = self._line(msg.addr)
        assert line.busy, f"{self.node}: unblock while idle ({msg})"
        chip = msg.src.chip
        granted = msg.extra
        old = line.state
        if granted in (GRANT_M, GRANT_E):
            line.state = "M"
            line.owner_chip = chip
            line.sharer_chips = set()
        else:  # GRANT_S
            line.sharer_chips.add(chip)
            line.state = "O" if line.owner_chip is not None else "S"
        line.busy = False
        tracer = self.sim.tracer
        if tracer is not None and line.state != old:
            tracer.dir_transition(
                self.node, msg.addr, old=old, new=line.state,
                cause=f"unblock:{granted}",
            )
        self._drain(msg.addr, line)

    def _on_writeback_phase3(self, msg: Message) -> None:
        addr = msg.addr
        line = self._line(addr)
        chip = msg.src.chip
        old_state = line.state
        if msg.mtype is MsgType.DIR_WB_TOKEN and msg.extra == "notice":
            # Spontaneous clean-shared eviction notice; no handshake.
            line.sharer_chips.discard(chip)
            if line.state == "S" and not line.sharer_chips:
                line.state = "I"
            elif line.state == "O" and not line.sharer_chips:
                line.state = "M"
            tracer = self.sim.tracer
            if tracer is not None and line.state != old_state:
                tracer.dir_transition(
                    self.node, addr, old=old_state, new=line.state,
                    cause="wb-notice",
                )
            return
        assert line.busy, f"{self.node}: WB data while idle ({msg})"
        if msg.mtype is MsgType.DIR_WB_DATA:
            self.image.write(addr, msg.data)
            if line.owner_chip == chip:
                line.owner_chip = None
                line.state = "S" if line.sharer_chips else "I"
        else:  # cancelled: ownership moved while the WB raced a forward
            line.sharer_chips.discard(chip)
            if line.owner_chip == chip:
                line.owner_chip = None
                line.state = "S" if line.sharer_chips else "I"
        line.busy = False
        tracer = self.sim.tracer
        if tracer is not None and line.state != old_state:
            tracer.dir_transition(
                self.node, addr, old=old_state, new=line.state, cause="writeback"
            )
        self._drain(addr, line)

    def _drain(self, addr: int, line: HomeLine) -> None:
        if line.queue and not line.busy:
            self._begin(line.queue.pop(0), line)


def coherent_value(machine, addr: int) -> int:
    """Architecturally current value of ``addr`` in a DirectoryCMP machine."""
    from repro.directory.intra import IntraDirL2Controller
    from repro.directory.l1 import DirL1Controller
    from repro.directory.states import M as _M, O as _O

    addr = machine.params.block_of(addr)
    for ctrl in machine.controllers.values():
        if isinstance(ctrl, DirL1Controller):
            entry = ctrl.array.lookup(addr, touch=False)
            if entry is not None and entry.state in (_M, _O):
                return entry.value
            buf = ctrl._evicting.get(addr)
            if buf is not None and not buf.cancelled:
                return buf.value
    for ctrl in machine.controllers.values():
        if isinstance(ctrl, IntraDirL2Controller):
            line = ctrl.array.lookup(addr, touch=False)
            if line is not None and line.l2_data and line.gstate in ("M", "E", "O"):
                return line.value
            buf = ctrl._evicting.get(addr)
            if buf is not None and not buf.cancelled:
                return buf.value
    return machine.mems[machine.params.home_chip(addr)].image.read(addr)
