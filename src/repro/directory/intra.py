"""Intra-CMP directory at each L2 bank (DirectoryCMP, Section 2).

The bank is simultaneously:

* a shared cache holding data for its chip;
* the **intra-CMP directory**: per-block record of the chip-level
  permission (``gstate``), the owning local L1 (if any) and local sharers;
* the chip's agent to the **inter-CMP directory**: local misses that the
  chip cannot satisfy become chip-level GETS/GETX requests, and forwarded
  requests / invalidations from other chips are serviced here by recalling
  or invalidating local L1 copies.

Local transactions are serialized per block with a busy bit and a FIFO
queue.  Requests arriving from the inter-CMP directory are *never* queued
behind local work — they are serviced immediately from current state —
which (together with the inter directory's own per-block serialization)
is what keeps the hierarchy deadlock-free.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Set, Tuple

from repro.common.errors import ConfigError
from repro.common.params import SystemParams
from repro.common.stats import Stats
from repro.common.types import NodeId, NodeKind
from repro.directory.states import E, GRANT_E, GRANT_M, GRANT_S, L2Line, M, O, S
from repro.interconnect.message import Message, MsgType
from repro.interconnect.network import Network
from repro.memory.cache import CacheArray
from repro.sim.kernel import Simulator


@dataclasses.dataclass
class PendingGlobal:
    """A chip-level request in flight to the inter-CMP directory."""

    kind: str  # "GETS" | "GETX"
    proc: NodeId  # the local L1 that will receive the final grant
    data: Optional[int] = None
    granted: Optional[str] = None
    dirty: bool = False
    acks_expected: Optional[int] = None
    acks_received: int = 0


@dataclasses.dataclass
class ExtTx:
    """A forwarded request from the inter-CMP directory being serviced —
    or a recall-based L2 eviction ("evict"), which gathers local copies
    exactly the same way before writing the line back."""

    kind: str  # "fwdx" | "fwds" | "inv" | "evict"
    requestor: Optional[NodeId]  # remote L2 (None for evictions)
    carry_acks: int  # ack count to embed in the data response
    need: int  # local responses still outstanding
    grant: str = GRANT_M
    data: Optional[int] = None
    dirty: bool = False
    gstate: str = "I"  # chip state at eviction start (evict kind)


@dataclasses.dataclass
class ChipEvictBuf:
    """Chip-level three-phase writeback in progress."""

    value: int
    dirty: bool
    gstate: str
    cancelled: bool = False


class IntraDirL2Controller:
    """One L2 bank with its intra-CMP directory."""

    def __init__(
        self,
        node: NodeId,
        sim: Simulator,
        net: Network,
        params: SystemParams,
        stats: Stats,
        cfg,
        array: CacheArray,
    ):
        self.node = node
        self.sim = sim
        self.net = net
        self.params = params
        self.stats = stats
        self.cfg = cfg
        self.array = array
        self._ext: Dict[int, ExtTx] = {}
        self._ext_deferred: Dict[int, list] = {}  # forwards parked on evictions
        self._evicting: Dict[int, ChipEvictBuf] = {}
        net.register(node, self.handle)

    # ------------------------------------------------------------------
    @property
    def chip(self) -> int:
        return self.node.chip

    def occupancy(self) -> Tuple[int, int, int]:
        """(L2 lines, outstanding external tx, evicting) — telemetry."""
        return len(self.array), len(self._ext), len(self._evicting)

    def _home_mem(self, addr: int) -> NodeId:
        return self.params.home_mem(addr)

    def _send(self, mtype: MsgType, dst: NodeId, addr: int, **kw) -> None:
        self.net.send(Message(mtype=mtype, src=self.node, dst=dst, addr=addr, **kw))

    def handle(self, msg: Message) -> None:
        self.sim.schedule(self.params.l2_latency_ps, self._process, msg)

    def _process(self, msg: Message) -> None:
        t = msg.mtype
        if t in (MsgType.DIR_GETS, MsgType.DIR_GETX):
            if msg.src.chip == self.chip and msg.src.kind in (NodeKind.L1D, NodeKind.L1I):
                self._on_local_request(msg)
            else:  # pragma: no cover - defensive
                raise ValueError(f"{self.node}: chip-level request routed here: {msg}")
        elif t is MsgType.DIR_UNBLOCK:
            self._on_local_unblock(msg)
        elif t is MsgType.DIR_DATA:
            self._on_global_data(msg)
        elif t is MsgType.DIR_ACK:
            self._on_ack(msg)
        elif t in (MsgType.DIR_FWD_GETS, MsgType.DIR_FWD_GETX, MsgType.DIR_INV):
            self._on_external(msg)
        elif t in (MsgType.DIR_WB_REQ, MsgType.DIR_WB_DATA, MsgType.DIR_WB_TOKEN):
            self._on_writeback(msg)
        elif t is MsgType.DIR_WB_GRANT:
            self._on_chip_wb_grant(msg)
        else:  # pragma: no cover - defensive
            raise ValueError(f"{self.node}: unexpected message {msg}")

    # ------------------------------------------------------------------
    # Line management.
    # ------------------------------------------------------------------
    def _line(self, addr: int, create: bool = False) -> Optional[L2Line]:
        line = self.array.lookup(addr)
        if line is None and create:
            line = L2Line()
            try:
                victim = self.array.allocate(addr, line, evictable=self._evictable)
            except ConfigError:
                # No copy-free victim: recall a quiescent line's L1 copies
                # (inclusion recall), freeing its slot for the allocation.
                self._recall_evict_some_line(addr)
                victim = self.array.allocate(addr, line, evictable=self._evictable)
            if victim is not None:
                self._evict_line(*victim)
        return line

    def _recall_evict_some_line(self, addr: int) -> None:
        """Evict a non-busy line that still has local L1 copies."""
        for vaddr, vline in self.array.entries_in_set(addr):
            if (
                vline.evictable()
                and vaddr not in self._ext
                and vaddr not in self._evicting
            ):
                self.array.deallocate(vaddr)
                self._start_recall_eviction(vaddr, vline)
                return
        raise ConfigError(f"{self.node}: set for {addr:#x} fully in transaction")

    def _start_recall_eviction(self, addr: int, line: L2Line) -> None:
        """Gather the line's L1 copies, then write the line back."""
        self.stats.bump("l2.recall_evictions")
        targets = set(line.sharers)
        owner = line.owner_l1
        if owner is not None:
            targets.discard(owner)
        ext = ExtTx(
            kind="evict",
            requestor=None,
            carry_acks=0,
            need=len(targets) + (1 if owner is not None else 0),
            data=line.value if line.l2_data else None,
            dirty=line.dirty,
            gstate=line.gstate,
        )
        assert ext.need > 0, "recall eviction of a line without copies"
        self._ext[addr] = ext
        if owner is not None:
            self._send(MsgType.DIR_RECALL, owner, addr, extra="inv")
        # Sorted fan-out: NodeId hashes are randomized per process, so raw
        # set order would reorder invalidations (and thus the event stream).
        for l1 in sorted(targets):
            self._send(MsgType.DIR_INV, l1, addr, requestor=self.node)

    def _evictable(self, addr: int, line: L2Line) -> bool:
        # Only lines with no transaction and no local L1 copies are victim
        # candidates, so L2 evictions never need an inclusion-recall dance.
        return (
            line.evictable()
            and line.owner_l1 is None
            and not line.sharers
            and addr not in self._ext
            and addr not in self._evicting
        )

    def _drop_line_if_idle(self, addr: int, line: L2Line) -> None:
        if not line.busy and line.pending is None and line.gstate == "I":
            if line.owner_l1 is None and not line.sharers and not line.queue:
                self.array.deallocate(addr)

    def _evict_line(self, addr: int, line: L2Line) -> None:
        assert line.owner_l1 is None and not line.sharers and not line.busy
        if line.gstate in (M, O, E):
            self.stats.bump("l2.dirty_evictions")
            self._evicting[addr] = ChipEvictBuf(line.value, line.dirty, line.gstate)
            self._send(MsgType.DIR_WB_REQ, self._home_mem(addr), addr, requestor=self.node)
        elif line.gstate == S:
            self.stats.bump("l2.clean_evictions")
            self._send(
                MsgType.DIR_WB_TOKEN, self._home_mem(addr), addr,
                extra="notice", requestor=self.node,
            )

    # ------------------------------------------------------------------
    # Local L1 requests.
    # ------------------------------------------------------------------
    def _on_local_request(self, msg: Message) -> None:
        try:
            line = self._line(msg.addr, create=True)
        except ConfigError:
            # Every way of the set is mid-transaction (e.g. the victims'
            # L1 copies are still being written back).  A real controller
            # stalls the request; retry shortly.
            self.stats.bump("l2.alloc_stalls")
            self.sim.schedule(self.params.l2_latency_ps * 2, self._on_local_request, msg)
            return
        if line.busy:
            line.queue.append(msg)
            self.stats.bump("l2.deferred_requests")
            return
        self._start_local(msg, line)

    def _start_local(self, msg: Message, line: L2Line) -> None:
        addr = msg.addr
        p = msg.requestor
        if msg.mtype is MsgType.DIR_GETS:
            if line.gstate != "I" and line.has_local_data:
                line.busy = True
                self._grant_read_locally(addr, line, p)
            else:
                self._go_global(addr, line, "GETS", p)
        else:  # GETX
            if line.gstate in (E, M):
                line.busy = True
                self._grant_write_locally(addr, line, p)
            else:
                self._go_global(addr, line, "GETX", p)

    def _grant_read_locally(self, addr: int, line: L2Line, p: NodeId) -> None:
        if line.owner_l1 is not None:
            migrate = (
                self.cfg.migratory and line.owner_state == M and line.owner_l1 != p
            )
            self._send(
                MsgType.DIR_FWD_GETS, line.owner_l1, addr,
                requestor=p, extra="migrate" if migrate else "share",
            )
            if migrate:
                line.owner_l1 = p
                line.owner_state = M
            else:
                line.owner_state = O
                line.sharers.add(p)
        else:
            exclusive = (
                line.gstate in (E, M) and not line.sharers and line.owner_l1 is None
            )
            if exclusive and self.cfg.migratory and line.gstate == M and line.dirty:
                grant = GRANT_M  # migratory: give the dirty block away whole
            elif exclusive:
                grant = GRANT_E
            else:
                grant = GRANT_S
            self._send(
                MsgType.DIR_DATA, p, addr,
                data=line.value, dirty=line.dirty if grant == GRANT_M else False,
                acks=0, extra=grant,
            )
            if grant in (GRANT_M, GRANT_E):
                line.owner_l1 = p
                line.owner_state = M
                line.l2_data = False
                line.dirty = False
            else:
                line.sharers.add(p)

    def _grant_write_locally(self, addr: int, line: L2Line, p: NodeId) -> None:
        invs = line.sharers - {p}
        for sharer in sorted(invs):
            self._send(MsgType.DIR_INV, sharer, addr, requestor=p)
        if line.owner_l1 is not None:
            # Forward to the owner (possibly p itself after a stale record).
            self._send(
                MsgType.DIR_FWD_GETX, line.owner_l1, addr, requestor=p, acks=len(invs)
            )
        else:
            self._send(
                MsgType.DIR_DATA, p, addr,
                data=line.value, dirty=line.dirty, acks=len(invs), extra=GRANT_M,
            )
            line.l2_data = False
            line.dirty = False
        line.owner_l1 = p
        line.owner_state = M
        line.sharers = set()

    def _go_global(self, addr: int, line: L2Line, kind: str, p: NodeId) -> None:
        line.busy = True
        line.pending = PendingGlobal(kind=kind, proc=p)
        self.stats.bump("l2.global_requests")
        self._send(
            MsgType.DIR_GETS if kind == "GETS" else MsgType.DIR_GETX,
            self._home_mem(addr),
            addr,
            requestor=self.node,
        )

    def _on_local_unblock(self, msg: Message) -> None:
        line = self.array.lookup(msg.addr)
        assert line is not None and line.busy, f"{self.node}: stray unblock {msg}"
        line.busy = False
        self._drain_queue(msg.addr, line)

    def _drain_queue(self, addr: int, line: L2Line) -> None:
        if line.busy or line.pending is not None:
            return
        if line.queue:
            nxt = line.queue.pop(0)
            if nxt.mtype in (MsgType.DIR_GETS, MsgType.DIR_GETX):
                self._start_local(nxt, line)
            elif nxt.mtype is MsgType.DIR_WB_REQ:
                self._start_l1_writeback(nxt, line)
            else:
                # A deferred external request: service it, then keep
                # draining (external service never sets the busy bit).
                self._on_external(nxt)
                self._drain_queue(addr, line)
        else:
            self._drop_line_if_idle(addr, line)

    # ------------------------------------------------------------------
    # Completion of a chip-level (global) request.
    # ------------------------------------------------------------------
    def _on_global_data(self, msg: Message) -> None:
        line = self.array.lookup(msg.addr)
        assert line is not None and line.pending is not None, f"stray global data {msg}"
        pend = line.pending
        pend.data = msg.data
        pend.granted = msg.extra
        pend.dirty = msg.dirty
        pend.acks_expected = msg.acks
        self._try_complete_global(msg.addr, line)

    def _on_ack(self, msg: Message) -> None:
        # Chip-level acks (from remote L2s) feed the pending transaction;
        # local L1 acks feed an external-invalidation transaction.
        if msg.src.chip != self.chip:
            line = self.array.lookup(msg.addr)
            assert line is not None and line.pending is not None, f"stray ack {msg}"
            line.pending.acks_received += 1
            self._try_complete_global(msg.addr, line)
        else:
            self._ext_response(msg.addr, data=None, dirty=False)

    def _try_complete_global(self, addr: int, line: L2Line) -> None:
        pend = line.pending
        if pend is None or pend.granted is None:
            return
        if pend.acks_received < (pend.acks_expected or 0):
            return
        line.pending = None
        line.value = pend.data
        line.dirty = pend.dirty
        line.l2_data = True
        old_gstate = line.gstate
        line.gstate = {GRANT_M: M, GRANT_E: E, GRANT_S: S}[pend.granted]
        tracer = self.sim.tracer
        if tracer is not None and line.gstate != old_gstate:
            tracer.dir_transition(
                self.node, addr, old=old_gstate, new=line.gstate,
                cause=f"global:{pend.granted}",
            )
        self._send(
            MsgType.DIR_UNBLOCK, self._home_mem(addr), addr,
            requestor=self.node, extra=pend.granted,
        )
        # Now grant locally; the line stays busy until the L1 unblocks.
        if pend.kind == "GETS":
            self._grant_read_locally(addr, line, pend.proc)
        else:
            self._grant_write_locally(addr, line, pend.proc)

    # ------------------------------------------------------------------
    # Requests forwarded from the inter-CMP directory (never queued).
    # ------------------------------------------------------------------
    def _on_external(self, msg: Message) -> None:
        addr = msg.addr
        buf = self._evicting.get(addr)
        if buf is not None:
            self._external_on_evict_buffer(msg, buf)
            return
        ext = self._ext.get(addr)
        if ext is not None and ext.kind == "evict":
            # A recall-based eviction is gathering this line's L1 copies;
            # serve the forwarded request from the buffer once it forms.
            self._ext_deferred.setdefault(addr, []).append(msg)
            return
        line = self.array.lookup(addr)
        if line is not None and line.busy and line.pending is None:
            # A purely local transaction is mid-grant: defer the external
            # request behind it (it completes via local messages only, so
            # this cannot deadlock).  When we are instead *waiting on the
            # inter directory* (pending set), we must service the external
            # request immediately — queueing it would deadlock the levels.
            line.queue.append(msg)
            return
        t = msg.mtype

        if t is MsgType.DIR_INV:
            self._ext_invalidate(addr, line, msg.requestor)
            return

        assert line is not None, f"{self.node}: forwarded request but no line ({msg})"

        if t is MsgType.DIR_FWD_GETX:
            self._ext_take_all(addr, line, msg.requestor, msg.acks, GRANT_M)
            return

        # FWD_GETS: migratory hand-off of a modified block, else share a copy.
        if self.cfg.migratory and line.gstate == M and (
            line.dirty or (line.owner_l1 is not None and line.owner_state == M)
        ):
            self.stats.bump("dir.chip_migratory")
            self._ext_take_all(addr, line, msg.requestor, 0, GRANT_M)
            return
        if line.l2_data:
            self._send(
                MsgType.DIR_DATA, msg.requestor, addr,
                data=line.value, dirty=False, acks=0, extra=GRANT_S,
            )
            line.gstate = O if line.gstate in (M, E, O) else S
            return
        assert line.owner_l1 is not None, f"{self.node}: no data for fwd-gets @{addr:#x}"
        self._ext[addr] = ExtTx(
            kind="fwds", requestor=msg.requestor, carry_acks=0, need=1, grant=GRANT_S
        )
        self._send(MsgType.DIR_RECALL, line.owner_l1, addr, extra="copy")

    def _ext_invalidate(self, addr: int, line: Optional[L2Line], ack_to: NodeId) -> None:
        """Chip-level invalidation: wipe L2 + local sharers, then ack."""
        if line is None:
            self._send(MsgType.DIR_ACK, ack_to, addr)
            return
        targets = set(line.sharers)
        if line.owner_l1 is not None:
            targets.add(line.owner_l1)  # defensive: INV normally has no owner
        tracer = self.sim.tracer
        if tracer is not None and line.gstate != "I":
            tracer.dir_transition(
                self.node, addr, old=line.gstate, new="I", cause="ext-inv"
            )
        line.sharers = set()
        line.owner_l1 = None
        line.gstate = "I"
        line.l2_data = False
        line.dirty = False
        if not targets:
            self._send(MsgType.DIR_ACK, ack_to, addr)
            self._drop_line_if_idle(addr, line)
            return
        self._ext[addr] = ExtTx(
            kind="inv", requestor=ack_to, carry_acks=0, need=len(targets)
        )
        # Sorted fan-out: NodeId hashes are randomized per process, so raw
        # set order would reorder invalidations (and thus the event stream).
        for l1 in sorted(targets):
            self._send(MsgType.DIR_INV, l1, addr, requestor=self.node)

    def _ext_take_all(
        self, addr: int, line: L2Line, requestor: NodeId, carry_acks: int, grant: str
    ) -> None:
        """Hand the whole block to another chip (GETX or migratory GETS)."""
        targets = set(line.sharers)
        owner = line.owner_l1
        if owner is not None:
            targets.discard(owner)
        ext = ExtTx(
            kind="fwdx",
            requestor=requestor,
            carry_acks=carry_acks,
            need=len(targets) + (1 if owner is not None else 0),
            grant=grant,
            data=line.value if line.l2_data else None,
            dirty=line.dirty,
        )
        tracer = self.sim.tracer
        if tracer is not None and line.gstate != "I":
            tracer.dir_transition(
                self.node, addr, old=line.gstate, new="I", cause="ext-take-all"
            )
        line.sharers = set()
        line.owner_l1 = None
        line.gstate = "I"
        line.l2_data = False
        line.dirty = False
        if ext.need == 0:
            assert ext.data is not None, f"{self.node}: take-all without data @{addr:#x}"
            self._finish_ext(addr, ext)
            self._drop_line_if_idle(addr, line)
            return
        self._ext[addr] = ext
        if owner is not None:
            self._send(MsgType.DIR_RECALL, owner, addr, extra="inv")
        # Sorted fan-out: NodeId hashes are randomized per process, so raw
        # set order would reorder invalidations (and thus the event stream).
        for l1 in sorted(targets):
            self._send(MsgType.DIR_INV, l1, addr, requestor=self.node)

    def _ext_response(self, addr: int, data: Optional[int], dirty: bool) -> None:
        """A local L1 answered a recall/inv belonging to an external tx."""
        ext = self._ext.get(addr)
        assert ext is not None, f"{self.node}: unmatched local response @{addr:#x}"
        if data is not None:
            ext.data = data
            ext.dirty = ext.dirty or dirty
        ext.need -= 1
        if ext.need == 0:
            del self._ext[addr]
            self._finish_ext(addr, ext)

    def _finish_ext(self, addr: int, ext: ExtTx) -> None:
        if ext.kind == "evict":
            # Local copies gathered: now write the line back to the home.
            if ext.gstate in (M, O, E) or ext.dirty:
                assert ext.data is not None, f"{self.node}: evict without data"
                self._evicting[addr] = ChipEvictBuf(ext.data, ext.dirty, ext.gstate)
                self.stats.bump("l2.dirty_evictions")
                self._send(
                    MsgType.DIR_WB_REQ, self._home_mem(addr), addr, requestor=self.node
                )
            else:
                self.stats.bump("l2.clean_evictions")
                self._send(
                    MsgType.DIR_WB_TOKEN, self._home_mem(addr), addr,
                    extra="notice", requestor=self.node,
                )
            for deferred in self._ext_deferred.pop(addr, []):
                self._on_external(deferred)
            return
        if ext.kind == "inv":
            self._send(MsgType.DIR_ACK, ext.requestor, addr)
            return
        if ext.kind == "fwds":
            line = self.array.lookup(addr)
            assert line is not None
            line.l2_data = True
            line.value = ext.data
            line.dirty = ext.dirty
            line.owner_state = O
            line.gstate = O
            self._send(
                MsgType.DIR_DATA, ext.requestor, addr,
                data=ext.data, dirty=False, acks=0, extra=GRANT_S,
            )
            return
        # fwdx / migratory hand-off.
        self._send(
            MsgType.DIR_DATA, ext.requestor, addr,
            data=ext.data, dirty=ext.dirty, acks=ext.carry_acks, extra=ext.grant,
        )

    # ------------------------------------------------------------------
    # Writebacks: local L1 three-phase, plus our own chip-level eviction.
    # ------------------------------------------------------------------
    def _on_writeback(self, msg: Message) -> None:
        t = msg.mtype
        if t is MsgType.DIR_WB_REQ:
            line = self.array.lookup(msg.addr)
            assert line is not None, f"{self.node}: WB request for unknown line {msg}"
            if line.busy:
                line.queue.append(msg)
            else:
                self._start_l1_writeback(msg, line)
            return
        if msg.extra == "recall":
            # Response to a recall we issued for an external transaction.
            self._ext_response(
                msg.addr,
                data=msg.data if t is MsgType.DIR_WB_DATA else None,
                dirty=msg.dirty,
            )
            return
        if t is MsgType.DIR_WB_TOKEN and msg.extra == "notice":
            line = self.array.lookup(msg.addr)
            if line is not None:
                line.sharers.discard(msg.requestor)
            return
        # Phase 3 of a local L1 writeback (data, or cancelled).
        line = self.array.lookup(msg.addr)
        assert line is not None and line.busy, f"{self.node}: stray WB data {msg}"
        if t is MsgType.DIR_WB_DATA:
            if line.owner_l1 == msg.requestor:
                line.owner_l1 = None
            line.l2_data = True
            line.value = msg.data
            line.dirty = line.dirty or msg.dirty
        else:  # cancelled: ownership moved while the WB was in flight
            if line.owner_l1 == msg.requestor:
                line.owner_l1 = None
            line.sharers.discard(msg.requestor)
        line.busy = False
        self._drain_queue(msg.addr, line)

    def _start_l1_writeback(self, msg: Message, line: L2Line) -> None:
        line.busy = True
        self._send(MsgType.DIR_WB_GRANT, msg.requestor, msg.addr)

    def _on_chip_wb_grant(self, msg: Message) -> None:
        buf = self._evicting.pop(msg.addr, None)
        assert buf is not None, f"{self.node}: chip WB grant without eviction {msg}"
        if buf.cancelled:
            self._send(
                MsgType.DIR_WB_TOKEN, self._home_mem(msg.addr), msg.addr,
                extra="cancelled", requestor=self.node,
            )
        else:
            self._send(
                MsgType.DIR_WB_DATA, self._home_mem(msg.addr), msg.addr,
                data=buf.value, dirty=buf.dirty, requestor=self.node,
            )

    def _external_on_evict_buffer(self, msg: Message, buf: ChipEvictBuf) -> None:
        """Serve forwarded requests from a line mid-chip-writeback."""
        t = msg.mtype
        if t is MsgType.DIR_INV:
            buf.cancelled = True
            self._send(MsgType.DIR_ACK, msg.requestor, msg.addr)
        elif t is MsgType.DIR_FWD_GETX:
            buf.cancelled = True
            self._send(
                MsgType.DIR_DATA, msg.requestor, msg.addr,
                data=buf.value, dirty=buf.dirty, acks=msg.acks, extra=GRANT_M,
            )
        else:  # FWD_GETS: share a copy; the writeback still proceeds.
            self._send(
                MsgType.DIR_DATA, msg.requestor, msg.addr,
                data=buf.value, dirty=False, acks=0, extra=GRANT_S,
            )
