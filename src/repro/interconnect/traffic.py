"""Traffic classification and byte accounting (paper Figures 7a/7b).

Every message belongs to one :class:`TrafficClass`, mirroring the
categories of the paper's traffic breakdown.  The :class:`TrafficMeter`
counts bytes per (network scope, class); a message is charged once per
link it traverses on each network, which is the bandwidth it actually
consumes there.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from typing import Dict, Tuple


class TrafficClass(str, enum.Enum):
    """Message classes used in the paper's Figure 7 breakdown.

    ``str`` is mixed in for hashing speed: :meth:`TrafficMeter.record`
    keys ``bytes`` by ``(scope, class)`` once per link per message, and
    the mixin replaces the Python-level ``enum`` hash with the C-level
    ``str`` one.  Values and identity semantics are unchanged.
    """

    RESPONSE_DATA = "Response Data"
    WRITEBACK_DATA = "Writeback Data"
    WRITEBACK_CONTROL = "Writeback Control"
    REQUEST = "Request"
    INV_FWD_ACK_TOKEN = "Inv/Fwd/Acks/Tokens"
    UNBLOCK = "Unblock"
    PERSISTENT = "Persistent"


class Scope(str, enum.Enum):
    """Which physical network a link belongs to (str-mixed for C-level
    hashing on the per-message metering path, like :class:`TrafficClass`)."""

    INTRA = "intra"
    INTER = "inter"
    MEM = "mem"


class TrafficMeter:
    """Byte counters per (scope, traffic class) and message counts."""

    def __init__(self) -> None:
        self.bytes: Dict[Tuple[Scope, TrafficClass], int] = defaultdict(int)
        self.messages: Dict[Scope, int] = defaultdict(int)

    def record(self, scope: Scope, klass: TrafficClass, nbytes: int) -> None:
        self.bytes[(scope, klass)] += nbytes
        self.messages[scope] += 1

    def scope_bytes(self, scope: Scope) -> int:
        return sum(v for (s, _k), v in self.bytes.items() if s is scope)

    def breakdown(self, scope: Scope) -> Dict[TrafficClass, int]:
        """Bytes per class on one network, including zero entries."""
        out = {klass: 0 for klass in TrafficClass}
        for (s, klass), v in self.bytes.items():
            if s is scope:
                out[klass] += v
        return out
