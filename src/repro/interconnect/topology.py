"""Declarative interconnect topologies and graph-based routing.

The paper's Table-3 machine hard-wires one fabric shape: a per-chip
crossbar ("every on-chip component has one egress link"), a directly
connected point-to-point global network, and one memory link per CMP.
This module generalizes that into a declarative :class:`Topology` spec —
a named *generator* plus frozen kwargs and per-link overrides — that
compiles against a :class:`~repro.common.params.SystemParams` into a
:class:`TopologyGraph`: a directed link graph over which deterministic
shortest-path routes are computed for every endpoint pair.

Generators (the inter-CMP fabric; the on-chip crossbar and the memory
links are common scaffolding):

``ptp``
    The paper's directly connected global network: every chip interface
    has one egress link onto the fabric (star through a zero-cost hub —
    exactly the shape the :meth:`Network._path` branch ladder encodes,
    which stays as the executable oracle for this generator).
``mesh``
    2D mesh of chips (near-square by default, ``rows``/``cols`` kwargs
    override); each directed neighbor hop is its own link.
``torus``
    The mesh with wrap-around links in both dimensions.
``fattree``
    Chips grouped ``arity``-at-a-time under leaf switches, recursively
    up to a single root; uplinks get ``up_bw_factor`` more bandwidth per
    level (fatter toward the root).

Determinism
-----------

Route construction must be byte-stable across processes and
``PYTHONHASHSEED`` values: two runs of the same cell must route — and
therefore time — every message identically.  All graph vertices are
strings, adjacency lists are built in deterministic construction order,
and the shortest-path search orders its frontier by the fully comparable
tuple ``(link count, total latency, link-name path, vertex)``, so ties
are broken lexicographically, never by hash order.

Buffering overrides are *diagnostic*: links model unbounded
store-and-forward queues, and a ``buffer_bytes`` capacity marks where
backlog beyond the configured buffer would have overflowed (reported by
:meth:`repro.interconnect.network.Network.buffer_report`), without
changing message timing.
"""

from __future__ import annotations

import dataclasses
import heapq
from fnmatch import fnmatch
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.common.types import NodeId, NodeKind, ns
from repro.interconnect.traffic import Scope

#: Canonical JSON schema tag for the ``topo`` CLI link-table document.
TOPOLOGY_SCHEMA = "repro.topology/1"


@dataclasses.dataclass
class LinkSpec:
    """One physical link: name, network scope, latency, bandwidth.

    ``buffer_bytes`` is an optional egress-queue capacity used for
    overflow diagnostics (see module docstring); ``None`` = unbounded.
    """

    name: str
    scope: Scope
    latency_ps: int
    bytes_per_ns: float
    buffer_bytes: Optional[int] = None

    def validate(self) -> None:
        if self.bytes_per_ns <= 0:
            raise ConfigError(f"link {self.name!r}: bandwidth must be positive")
        if self.latency_ps < 0:
            raise ConfigError(f"link {self.name!r}: latency must be >= 0")
        if self.buffer_bytes is not None and self.buffer_bytes <= 0:
            raise ConfigError(f"link {self.name!r}: buffer_bytes must be positive")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "scope": self.scope.value,
            "latency_ps": self.latency_ps,
            "bytes_per_ns": self.bytes_per_ns,
            "buffer_bytes": self.buffer_bytes,
        }


class GraphBuilder:
    """Accumulates vertices, links and directed edges for one topology.

    Edges are ``(next_vertex, link_name | None)``; a ``None`` link is a
    zero-cost hand-off inside a routing site (e.g. crossbar delivery to
    the destination port), which is how the paper's per-source-egress
    bandwidth accounting is expressed as a graph.
    """

    def __init__(self, params) -> None:
        self.params = params
        self.links: Dict[str, LinkSpec] = {}
        self.adj: Dict[str, List[Tuple[str, Optional[str]]]] = {}
        self.endpoints: Dict[NodeId, str] = {}
        self._overrides: Tuple[Tuple[str, Tuple[Tuple[str, object], ...]], ...] = ()

    # ------------------------------------------------------------------
    def endpoint(self, node: NodeId) -> str:
        """Register ``node`` as an addressable endpoint; returns its vertex."""
        vertex = str(node)
        self.endpoints[node] = vertex
        return vertex

    def link(self, name: str, scope: Scope, latency_ps: int, bytes_per_ns: float,
             buffer_bytes: Optional[int] = None) -> str:
        """Declare (or re-reference) the link ``name``; returns the name.

        One name = one physical link: routes that share a name share its
        serialization queue.  Per-link overrides from the topology spec
        are applied here, at declaration time.
        """
        if name in self.links:
            return name
        spec = LinkSpec(name, scope, latency_ps, bytes_per_ns, buffer_bytes)
        for pattern, fields in self._overrides:
            if fnmatch(name, pattern):
                for field_name, value in fields:
                    if field_name == "latency_ns":
                        spec.latency_ps = ns(value)
                    elif field_name == "bytes_per_ns":
                        spec.bytes_per_ns = value
                    elif field_name == "buffer_bytes":
                        spec.buffer_bytes = value
                    else:
                        raise ConfigError(
                            f"unknown link override field {field_name!r} "
                            f"(want latency_ns, bytes_per_ns or buffer_bytes)"
                        )
        spec.validate()
        self.links[name] = spec
        return name

    def edge(self, src: str, dst: str, link: Optional[str] = None) -> None:
        """Add the directed edge ``src -> dst`` (free hop unless ``link``)."""
        self.adj.setdefault(src, []).append((dst, link))
        self.adj.setdefault(dst, [])


# ---------------------------------------------------------------------------
# Common scaffolding: the on-chip crossbar and the per-CMP memory site.
# ---------------------------------------------------------------------------

def _build_chip(b: GraphBuilder, chip: int) -> None:
    """One CMP: crossbar star over L1s/L2 banks/interface + memory site.

    Mirrors the Table-3 shapes the ladder encodes: every on-chip
    component owns one intra egress link onto the chip crossbar
    (``hub``), delivery from the crossbar is free, and the co-located
    memory controller + persistent-request arbiter (``memsite``) hang
    off dedicated ``mem-in``/``mem-out`` links.  The chip *interface*
    additionally gets a direct ``mem-out`` edge: it sits at the fabric
    boundary, one hop from the memory port.
    """
    p = b.params
    hub = f"hub:{chip}"
    memsite = f"memsite:{chip}"
    for node in p.chip_l1s(chip) + p.chip_l2_banks(chip):
        v = b.endpoint(node)
        b.edge(v, hub, b.link(f"intra:{v}", Scope.INTRA,
                              p.intra_link_latency_ps, p.intra_link_bw))
        b.edge(hub, v)
    iface = b.endpoint(p.iface_of(chip))
    b.edge(iface, hub, b.link(f"intra:{iface}", Scope.INTRA,
                              p.intra_link_latency_ps, p.intra_link_bw))
    b.edge(hub, iface)
    mem = b.endpoint(NodeId(NodeKind.MEM, chip))
    arb = b.endpoint(NodeId(NodeKind.ARB, chip))
    b.edge(mem, memsite)
    b.edge(memsite, mem)
    b.edge(arb, memsite)
    b.edge(memsite, arb)
    b.edge(memsite, hub, b.link(f"mem-in:{chip}", Scope.MEM,
                                p.mem_link_latency_ps, p.mem_link_bw))
    mem_out = b.link(f"mem-out:{chip}", Scope.MEM,
                     p.mem_link_latency_ps, p.mem_link_bw)
    b.edge(hub, memsite, mem_out)
    b.edge(iface, memsite, mem_out)


def _attach_gateways(b: GraphBuilder, gateways: Dict[int, str]) -> None:
    """Wire each chip's fabric gateway: free delivery to the chip
    interface, plus the chip's ``mem-out`` link to its memory site
    (inbound memory traffic never crosses the on-chip crossbar)."""
    p = b.params
    for chip in range(p.num_chips):
        gw = gateways[chip]
        b.edge(gw, str(p.iface_of(chip)))
        b.edge(gw, f"memsite:{chip}", f"mem-out:{chip}")


# ---------------------------------------------------------------------------
# Inter-CMP fabric generators.
# ---------------------------------------------------------------------------

def _gen_ptp(b: GraphBuilder) -> Dict[int, str]:
    """Directly connected global network (the paper's Table-3 fabric)."""
    p = b.params
    hub = "ghub"
    gateways = {}
    for chip in range(p.num_chips):
        b.edge(str(p.iface_of(chip)), hub,
               b.link(f"inter:{chip}", Scope.INTER,
                      p.inter_link_latency_ps, p.inter_link_bw))
        gateways[chip] = hub
    return gateways


def grid_dims(num_chips: int, rows: Optional[int] = None,
              cols: Optional[int] = None) -> Tuple[int, int]:
    """Near-square grid for ``num_chips``; explicit dims must factor it."""
    if rows is not None or cols is not None:
        if rows is None:
            rows = num_chips // cols if cols else 0
        if cols is None:
            cols = num_chips // rows if rows else 0
        if rows < 1 or cols < 1 or rows * cols != num_chips:
            raise ConfigError(
                f"mesh dims {rows}x{cols} do not tile {num_chips} chips"
            )
        return rows, cols
    rows = int(num_chips ** 0.5)
    while rows > 1 and num_chips % rows:
        rows -= 1
    return rows, num_chips // rows


def _gen_grid(b: GraphBuilder, wrap: bool, rows: Optional[int] = None,
              cols: Optional[int] = None,
              link_latency_ns: Optional[float] = None,
              link_bw: Optional[float] = None) -> Dict[int, str]:
    """2D mesh (``wrap=False``) or torus (``wrap=True``) of chips."""
    p = b.params
    rows, cols = grid_dims(p.num_chips, rows, cols)
    latency = p.inter_link_latency_ps if link_latency_ns is None else ns(link_latency_ns)
    bw = p.inter_link_bw if link_bw is None else link_bw

    def chip_at(r: int, c: int) -> int:
        return r * cols + c

    gateways = {}
    for chip in range(p.num_chips):
        router = f"r:{chip}"
        b.edge(str(p.iface_of(chip)), router)
        gateways[chip] = router
    for r in range(rows):
        for c in range(cols):
            here = chip_at(r, c)
            neighbors = []
            if c + 1 < cols:
                neighbors.append(chip_at(r, c + 1))
            elif wrap and cols > 2:
                neighbors.append(chip_at(r, 0))
            if r + 1 < rows:
                neighbors.append(chip_at(r + 1, c))
            elif wrap and rows > 2:
                neighbors.append(chip_at(0, c))
            for there in neighbors:
                for a, z in ((here, there), (there, here)):
                    b.edge(f"r:{a}", f"r:{z}",
                           b.link(f"inter:{a}>{z}", Scope.INTER, latency, bw))
    return gateways


def _gen_mesh(b: GraphBuilder, **kwargs) -> Dict[int, str]:
    return _gen_grid(b, wrap=False, **kwargs)


def _gen_torus(b: GraphBuilder, **kwargs) -> Dict[int, str]:
    return _gen_grid(b, wrap=True, **kwargs)


def _gen_fattree(b: GraphBuilder, arity: int = 4,
                 up_bw_factor: float = 2.0,
                 link_latency_ns: Optional[float] = None,
                 link_bw: Optional[float] = None) -> Dict[int, str]:
    """Chips under leaf switches, recursively aggregated to one root.

    Each level multiplies link bandwidth by ``up_bw_factor`` (fat links
    toward the root); both directions of every switch-to-switch trunk
    are modeled so down-traffic serializes too.
    """
    if arity < 2:
        raise ConfigError(f"fat-tree arity must be >= 2 (got {arity})")
    p = b.params
    latency = p.inter_link_latency_ps if link_latency_ns is None else ns(link_latency_ns)
    bw = p.inter_link_bw if link_bw is None else link_bw

    gateways = {}
    level = 0
    members: List[str] = []
    for chip in range(p.num_chips):
        leaf = f"sw:0:{chip // arity}"
        b.edge(str(p.iface_of(chip)), leaf,
               b.link(f"fat:up:{chip}", Scope.INTER, latency, bw))
        gateways[chip] = leaf
    width = (p.num_chips + arity - 1) // arity
    members = [f"sw:0:{i}" for i in range(width)]
    while len(members) > 1:
        level += 1
        trunk_bw = bw * (up_bw_factor ** level)
        width = (len(members) + arity - 1) // arity
        parents = [f"sw:{level}:{i}" for i in range(width)]
        for i, child in enumerate(members):
            parent = parents[i // arity]
            b.edge(child, parent,
                   b.link(f"fat:up:{child}", Scope.INTER, latency, trunk_bw))
            b.edge(parent, child,
                   b.link(f"fat:down:{child}", Scope.INTER, latency, trunk_bw))
        members = parents
    return gateways


#: Registered generators: name -> (builder fn, one-line description).
GENERATORS = {
    "ptp": (_gen_ptp, "directly connected point-to-point fabric (paper Table 3)"),
    "mesh": (_gen_mesh, "2D mesh of chips (kwargs: rows, cols, link_latency_ns, link_bw)"),
    "torus": (_gen_torus, "2D torus (mesh with wrap-around links)"),
    "fattree": (_gen_fattree,
                "fat-tree of switches (kwargs: arity, up_bw_factor, "
                "link_latency_ns, link_bw)"),
}


# ---------------------------------------------------------------------------
# The compiled graph.
# ---------------------------------------------------------------------------

class TopologyGraph:
    """A compiled topology: link specs, adjacency, and shortest routes."""

    def __init__(self, builder: GraphBuilder, generator: str) -> None:
        self.generator = generator
        self.params = builder.params
        self.links: Dict[str, LinkSpec] = builder.links
        self.adj: Dict[str, List[Tuple[str, Optional[str]]]] = builder.adj
        self.endpoints: Dict[NodeId, str] = builder.endpoints
        self._sssp_cache: Dict[str, Dict[str, Tuple[str, ...]]] = {}

    # ------------------------------------------------------------------
    def _sssp(self, src_vertex: str) -> Dict[str, Tuple[str, ...]]:
        """Deterministic single-source shortest paths from ``src_vertex``.

        Minimizes (link count, total latency) with ties broken by the
        lexicographically smallest link-name path — a total order over
        candidate routes, so the result is independent of dict/set hash
        order and of ``PYTHONHASHSEED``.
        """
        cached = self._sssp_cache.get(src_vertex)
        if cached is not None:
            return cached
        out: Dict[str, Tuple[str, ...]] = {}
        heap: List[Tuple[int, int, Tuple[str, ...], str]] = [(0, 0, (), src_vertex)]
        links = self.links
        adj = self.adj
        while heap:
            nlinks, latency, names, vertex = heapq.heappop(heap)
            if vertex in out:
                continue
            out[vertex] = names
            for nxt, link_name in adj.get(vertex, ()):
                if nxt in out:
                    continue
                if link_name is None:
                    heapq.heappush(heap, (nlinks, latency, names, nxt))
                else:
                    spec = links[link_name]
                    heapq.heappush(heap, (nlinks + 1, latency + spec.latency_ps,
                                          names + (link_name,), nxt))
        self._sssp_cache[src_vertex] = out
        return out

    def route(self, src: NodeId, dst: NodeId) -> Tuple[str, ...]:
        """Link names a message crosses from endpoint ``src`` to ``dst``."""
        try:
            src_v = self.endpoints[src]
            dst_v = self.endpoints[dst]
        except KeyError as err:
            raise ConfigError(f"{err.args[0]} is not a topology endpoint") from None
        paths = self._sssp(src_v)
        if dst_v not in paths:
            raise ConfigError(
                f"topology {self.generator!r} has no route {src} -> {dst}"
            )
        return paths[dst_v]

    def all_routes(self) -> Dict[Tuple[NodeId, NodeId], Tuple[str, ...]]:
        """Routes for every ordered endpoint pair (the Network's table)."""
        routes = {}
        for src in self.endpoints:
            paths = self._sssp(self.endpoints[src])
            for dst, dst_v in self.endpoints.items():
                names = paths.get(dst_v)
                if names is None:
                    raise ConfigError(
                        f"topology {self.generator!r} is not connected: "
                        f"no route {src} -> {dst}"
                    )
                routes[(src, dst)] = names
        return routes

    # ------------------------------------------------------------------
    def validate(self) -> dict:
        """Check connectivity + link sanity; return summary statistics."""
        for spec in self.links.values():
            spec.validate()
        hops = [len(names) for names in self.all_routes().values()]
        return {
            "endpoints": len(self.endpoints),
            "vertices": len(self.adj),
            "links": len(self.links),
            "diameter_hops": max(hops),
            "mean_hops": sum(hops) / len(hops),
        }

    def link_table(self) -> List[dict]:
        """The canonical (name-sorted) link table."""
        return [self.links[name].to_dict() for name in sorted(self.links)]

    def describe(self) -> dict:
        """The canonical ``repro.topology/1`` document."""
        stats = self.validate()
        return {
            "schema": TOPOLOGY_SCHEMA,
            "generator": self.generator,
            "num_chips": self.params.num_chips,
            "stats": stats,
            "links": self.link_table(),
        }


# ---------------------------------------------------------------------------
# The declarative spec.
# ---------------------------------------------------------------------------

def _freeze(value):
    """Deep-freeze dicts/lists into sorted tuples (hashable, canonical)."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


@dataclasses.dataclass(frozen=True)
class Topology:
    """Declarative interconnect spec: generator name + kwargs + overrides.

    Pure data — frozen, hashable, picklable, and JSON-representable via
    :func:`dataclasses.asdict` — so it rides inside
    :class:`~repro.common.params.SystemParams` and is content-addressed
    by the experiment cache exactly like every other machine knob.

    ``overrides`` is a tuple of ``(link-name glob, ((field, value), ...))``
    pairs applied to matching links at compile time; fields are
    ``latency_ns``, ``bytes_per_ns`` and ``buffer_bytes``.
    """

    generator: str = "ptp"
    kwargs: Tuple[Tuple[str, object], ...] = ()
    overrides: Tuple[Tuple[str, Tuple[Tuple[str, object], ...]], ...] = ()

    def __post_init__(self) -> None:
        if self.generator not in GENERATORS:
            raise ConfigError(
                f"unknown topology generator {self.generator!r}; "
                f"known: {', '.join(sorted(GENERATORS))}"
            )
        object.__setattr__(self, "kwargs", _freeze(dict(self.kwargs)))
        object.__setattr__(
            self, "overrides",
            tuple((pattern, _freeze(dict(fields)))
                  for pattern, fields in self.overrides),
        )

    # ------------------------------------------------------------------
    @classmethod
    def named(cls, generator: str, **kwargs) -> "Topology":
        return cls(generator=generator, kwargs=_freeze(kwargs))

    @classmethod
    def mesh(cls, **kwargs) -> "Topology":
        return cls.named("mesh", **kwargs)

    @classmethod
    def torus(cls, **kwargs) -> "Topology":
        return cls.named("torus", **kwargs)

    @classmethod
    def fattree(cls, **kwargs) -> "Topology":
        return cls.named("fattree", **kwargs)

    def with_override(self, pattern: str, **fields) -> "Topology":
        """A copy with ``fields`` applied to links matching ``pattern``."""
        return dataclasses.replace(
            self, overrides=self.overrides + ((pattern, _freeze(fields)),)
        )

    @property
    def is_default(self) -> bool:
        """True when the :meth:`Network._path` ladder is a valid oracle
        (the ptp generator builds exactly the ladder's link structure)."""
        return self.generator == "ptp"

    # ------------------------------------------------------------------
    def build(self, params) -> TopologyGraph:
        """Compile against ``params`` into a routed link graph."""
        gen, _desc = GENERATORS[self.generator]
        builder = GraphBuilder(params)
        builder._overrides = self.overrides
        for chip in range(params.num_chips):
            _build_chip(builder, chip)
        gateways = gen(builder, **dict(self.kwargs))
        _attach_gateways(builder, gateways)
        return TopologyGraph(builder, self.generator)
