"""Coherence message definitions shared by all protocols.

A :class:`MsgType` fixes a message's traffic class and whether it carries
a data payload (and therefore its size: 72-byte data messages vs 8-byte
control messages, Section 8).  The :class:`Message` dataclass carries the
union of fields the protocols need; unused fields stay ``None``.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
# Sanctioned impurity: the pooling kill-switch is read once per pool from
# the environment (debug/equivalence-testing aid); it never feeds
# simulated state.  See docs/static-analysis.md.
import os  # staticcheck: ignore[purity-import]
from typing import Any, Optional

from repro.common.types import NodeId
from repro.interconnect.traffic import TrafficClass

_K = TrafficClass


class MsgType(enum.Enum):
    """All message types, each tagged (traffic class, carries data).

    The first tuple element repeats the member name so every enum value is
    unique — otherwise members with equal (class, has_data) pairs would
    silently become aliases of each other.
    """

    # ---- Token coherence (TokenCMP) ----
    TOK_GETS = ("TOK_GETS", _K.REQUEST, False)  # transient read request
    TOK_GETX = ("TOK_GETX", _K.REQUEST, False)  # transient write request
    TOK_DATA = ("TOK_DATA", _K.RESPONSE_DATA, True)  # tokens + data response
    TOK_ACK = ("TOK_ACK", _K.INV_FWD_ACK_TOKEN, False)  # tokens without data
    TOK_WB_DATA = ("TOK_WB_DATA", _K.WRITEBACK_DATA, True)  # writeback with data
    TOK_WB = ("TOK_WB", _K.WRITEBACK_CONTROL, False)  # writeback, tokens only
    PERSIST_REQ = ("PERSIST_REQ", _K.PERSISTENT, False)  # to arbiter (arb scheme)
    PERSIST_ACTIVATE = ("PERSIST_ACTIVATE", _K.PERSISTENT, False)
    PERSIST_DEACTIVATE = ("PERSIST_DEACTIVATE", _K.PERSISTENT, False)
    # Token recreation (recovery tier above persistent requests): a starving
    # requestor asks the block's home memory controller -- the ruler of
    # tokens -- to bump the block's recreation epoch, invalidate every
    # stale token, and reconstitute the full token set at memory.
    TOK_RECREATE_REQ = ("TOK_RECREATE_REQ", _K.PERSISTENT, False)  # to home mem
    TOK_RECREATE_EPOCH = ("TOK_RECREATE_EPOCH", _K.PERSISTENT, False)  # epoch bump
    TOK_RECREATE_ACK = ("TOK_RECREATE_ACK", _K.PERSISTENT, False)  # surrendered, clean
    TOK_RECREATE_DATA = ("TOK_RECREATE_DATA", _K.PERSISTENT, True)  # surrendered owner data

    # ---- Hierarchical directory (DirectoryCMP) ----
    DIR_GETS = ("DIR_GETS", _K.REQUEST, False)
    DIR_GETX = ("DIR_GETX", _K.REQUEST, False)
    DIR_FWD_GETS = ("DIR_FWD_GETS", _K.INV_FWD_ACK_TOKEN, False)
    DIR_FWD_GETX = ("DIR_FWD_GETX", _K.INV_FWD_ACK_TOKEN, False)
    DIR_INV = ("DIR_INV", _K.INV_FWD_ACK_TOKEN, False)
    DIR_ACK = ("DIR_ACK", _K.INV_FWD_ACK_TOKEN, False)
    DIR_DATA = ("DIR_DATA", _K.RESPONSE_DATA, True)
    DIR_WB_REQ = ("DIR_WB_REQ", _K.WRITEBACK_CONTROL, False)  # 3-phase WB: 1
    DIR_WB_GRANT = ("DIR_WB_GRANT", _K.WRITEBACK_CONTROL, False)  # 3-phase WB: 2
    DIR_WB_DATA = ("DIR_WB_DATA", _K.WRITEBACK_DATA, True)  # 3-phase WB: 3
    DIR_WB_TOKEN = ("DIR_WB_TOKEN", _K.WRITEBACK_CONTROL, False)  # clean WB notice
    DIR_UNBLOCK = ("DIR_UNBLOCK", _K.UNBLOCK, False)
    DIR_RECALL = ("DIR_RECALL", _K.INV_FWD_ACK_TOKEN, False)  # inclusion recall

    def __init__(self, _name: str, klass: TrafficClass, has_data: bool) -> None:
        self.klass = klass
        self.has_data = has_data


_msg_ids = itertools.count()


@dataclasses.dataclass
class Message:
    """One coherence message in flight.

    ``addr`` is always block-aligned.  Protocol-specific payload fields:

    * ``tokens`` / ``owner`` — token transfer (token protocol).
    * ``data`` — the block's modelled data value (one int per block).
    * ``requestor`` — the node the response should ultimately serve.
    * ``req_type`` — for forwarded requests, the original request kind.
    * ``acks`` — number of acknowledgements the receiver should expect.
    * ``serial`` — requestor-local transaction id (stale-response filter).
    * ``prio`` — persistent-request priority (smaller wins).
    * ``epoch`` — the block's recreation epoch as known by the sender;
      token carriers stamped with an older epoch than the receiver's are
      stale and must be discarded, never absorbed.
    * ``extra`` — anything else (kept rare).
    """

    mtype: MsgType
    src: NodeId
    dst: NodeId
    addr: int
    tokens: int = 0
    owner: bool = False
    dirty: bool = False
    data: Optional[int] = None
    read: bool = False  # persistent-read flag (Section 3.2)
    requestor: Optional[NodeId] = None
    req_type: Optional[MsgType] = None
    acks: int = 0
    serial: int = 0
    prio: int = 0
    epoch: int = 0
    extra: Any = None
    uid: int = dataclasses.field(default_factory=lambda: next(_msg_ids))

    def size_bytes(self, data_bytes: int, control_bytes: int) -> int:
        return data_bytes if self.mtype.has_data else control_bytes

    def clone_to(self, dst: NodeId) -> "Message":
        """A copy of this message addressed to ``dst``, with a fresh uid.

        Broadcast fan-out builds one template message and clones it per
        destination — a dict copy plus two field writes instead of a
        full 16-field dataclass construction per destination.  The fresh
        ``uid`` keeps per-message identity (in-flight token tracking,
        trace message ids) intact.
        """
        clone = Message.__new__(Message)
        clone.__dict__.update(self.__dict__)
        clone.dst = dst
        clone.uid = next(_msg_ids)
        return clone

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        bits = [f"{self.mtype.name} {self.src}->{self.dst} @{self.addr:#x}"]
        if self.tokens:
            bits.append(f"tok={self.tokens}{'+O' if self.owner else ''}")
        if self.data is not None:
            bits.append(f"data={self.data}")
        return " ".join(bits)


# Field defaults stamped into a pooled instance on acquire.  ``uid`` is
# excluded on purpose: the caller always assigns it from ``_msg_ids`` so
# the uid draw sequence is identical with pooling on or off.
_DEFAULTS = {
    "tokens": 0,
    "owner": False,
    "dirty": False,
    "data": None,
    "read": False,
    "requestor": None,
    "req_type": None,
    "acks": 0,
    "serial": 0,
    "prio": 0,
    "epoch": 0,
    "extra": None,
}


def pooling_enabled() -> bool:
    """Whether message pooling is on (default) — ``REPRO_POOLING=0`` disables.

    The off switch exists only for the on/off equivalence test and for
    debugging aliasing suspicions; both modes draw uids in the same order,
    so all experiment outputs are byte-identical either way.
    """
    return os.environ.get("REPRO_POOLING", "1") != "0"


class MessagePool:
    """Freelist of recyclable :class:`Message` instances.

    The steady-state lifecycle is: a controller *acquires* a message (or
    stamps a broadcast template into pooled *clones*), the network routes
    it, and the receiving controller *releases* it once its ``_process``
    dispatch returns.  A released instance goes back on the freelist and
    is reused by a later acquire — so in steady state the message rate is
    serviced with zero allocations.

    Discipline (checked by the ``pool-discipline`` staticcheck pass and
    the aliasing tests):

    * never store a handled message on ``self`` or capture it in a
      deferred callback — copy the scalars you need instead;
    * release exactly once, at final delivery (``release`` tolerates a
      second call on an instance that was already recycled *and not yet
      reissued*, but that is a safety net, not a contract);
    * messages absorbed by the fault injector's in-flight ledger are
      released by the injector, not the controller.

    With pooling disabled every acquire constructs a fresh instance, and
    release is a no-op; uid draws are identical in both modes.
    """

    __slots__ = ("enabled", "_free", "acquires", "news", "releases")

    def __init__(self, enabled: Optional[bool] = None) -> None:
        self.enabled = pooling_enabled() if enabled is None else enabled
        self._free: list = []
        self.acquires = 0  # total messages handed out
        self.news = 0  # handed out by fresh construction (freelist empty)
        self.releases = 0  # returned to the freelist

    def acquire(
        self,
        mtype: MsgType,
        src: NodeId,
        dst: NodeId,
        addr: int,
    ) -> Message:
        """A message with all payload fields at their defaults."""
        self.acquires += 1
        free = self._free
        if free:
            msg = free.pop()
            d = msg.__dict__
            d.update(_DEFAULTS)
            d["mtype"] = mtype
            d["src"] = src
            d["dst"] = dst
            d["addr"] = addr
            d["uid"] = next(_msg_ids)
            d["_pooled"] = True
            return msg
        self.news += 1
        msg = Message(mtype, src, dst, addr)
        if self.enabled:
            msg.__dict__["_pooled"] = True
        return msg

    def acquire_carrier(
        self,
        mtype: MsgType,
        src: NodeId,
        dst: NodeId,
        addr: int,
        tokens: int,
        owner: bool,
        data: Optional[int],
        dirty: bool,
        epoch: int,
    ) -> Message:
        """Acquire a token-carrier message with its payload stamped.

        Token/owner stores are concentrated here (and audited once) so the
        ``token-mutation`` staticcheck keeps flagging stray carrier
        rewrites at controller level — a freshly acquired message is the
        pooled equivalent of a ``Message(tokens=..., owner=...)``
        construction, not a token-state mutation.
        """
        msg = self.acquire(mtype, src, dst, addr)
        d = msg.__dict__
        d["tokens"] = tokens
        d["owner"] = owner
        d["data"] = data
        d["dirty"] = dirty
        d["epoch"] = epoch
        return msg

    def clone(self, template: Message, dst: NodeId) -> Message:
        """Stamp ``template``'s fields into a pooled instance bound to ``dst``.

        The pooled equivalent of :meth:`Message.clone_to` — broadcast
        fan-out builds one template and clones it per destination.
        """
        self.acquires += 1
        free = self._free
        if free:
            msg = free.pop()
            d = msg.__dict__
            # No clear() needed: a recycled dict holds exactly the message
            # fields (pool discipline forbids ad-hoc attributes), and the
            # template update overwrites every one of them.
            d.update(template.__dict__)
            d["dst"] = dst
            d["uid"] = next(_msg_ids)
            d["_pooled"] = True
            return msg
        self.news += 1
        msg = template.clone_to(dst)
        if self.enabled:
            msg.__dict__["_pooled"] = True
        return msg

    def release(self, msg: Message) -> None:
        """Return ``msg`` to the freelist (no-op unless pool-owned).

        The ``_pooled`` marker is popped first, so double releases and
        releases of caller-constructed messages are both safe no-ops.
        """
        if not self.enabled:
            return
        if msg.__dict__.pop("_pooled", None):
            self.releases += 1
            self._free.append(msg)

    def stats(self) -> dict:
        """Deterministic counters for telemetry / the alloc gate."""
        return {
            "acquires": self.acquires,
            "news": self.news,
            "releases": self.releases,
            "free_end": len(self._free),
        }
