"""Coherence message definitions shared by all protocols.

A :class:`MsgType` fixes a message's traffic class and whether it carries
a data payload (and therefore its size: 72-byte data messages vs 8-byte
control messages, Section 8).  The :class:`Message` dataclass carries the
union of fields the protocols need; unused fields stay ``None``.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
from typing import Any, Optional

from repro.common.types import NodeId
from repro.interconnect.traffic import TrafficClass

_K = TrafficClass


class MsgType(enum.Enum):
    """All message types, each tagged (traffic class, carries data).

    The first tuple element repeats the member name so every enum value is
    unique — otherwise members with equal (class, has_data) pairs would
    silently become aliases of each other.
    """

    # ---- Token coherence (TokenCMP) ----
    TOK_GETS = ("TOK_GETS", _K.REQUEST, False)  # transient read request
    TOK_GETX = ("TOK_GETX", _K.REQUEST, False)  # transient write request
    TOK_DATA = ("TOK_DATA", _K.RESPONSE_DATA, True)  # tokens + data response
    TOK_ACK = ("TOK_ACK", _K.INV_FWD_ACK_TOKEN, False)  # tokens without data
    TOK_WB_DATA = ("TOK_WB_DATA", _K.WRITEBACK_DATA, True)  # writeback with data
    TOK_WB = ("TOK_WB", _K.WRITEBACK_CONTROL, False)  # writeback, tokens only
    PERSIST_REQ = ("PERSIST_REQ", _K.PERSISTENT, False)  # to arbiter (arb scheme)
    PERSIST_ACTIVATE = ("PERSIST_ACTIVATE", _K.PERSISTENT, False)
    PERSIST_DEACTIVATE = ("PERSIST_DEACTIVATE", _K.PERSISTENT, False)
    # Token recreation (recovery tier above persistent requests): a starving
    # requestor asks the block's home memory controller -- the ruler of
    # tokens -- to bump the block's recreation epoch, invalidate every
    # stale token, and reconstitute the full token set at memory.
    TOK_RECREATE_REQ = ("TOK_RECREATE_REQ", _K.PERSISTENT, False)  # to home mem
    TOK_RECREATE_EPOCH = ("TOK_RECREATE_EPOCH", _K.PERSISTENT, False)  # epoch bump
    TOK_RECREATE_ACK = ("TOK_RECREATE_ACK", _K.PERSISTENT, False)  # surrendered, clean
    TOK_RECREATE_DATA = ("TOK_RECREATE_DATA", _K.PERSISTENT, True)  # surrendered owner data

    # ---- Hierarchical directory (DirectoryCMP) ----
    DIR_GETS = ("DIR_GETS", _K.REQUEST, False)
    DIR_GETX = ("DIR_GETX", _K.REQUEST, False)
    DIR_FWD_GETS = ("DIR_FWD_GETS", _K.INV_FWD_ACK_TOKEN, False)
    DIR_FWD_GETX = ("DIR_FWD_GETX", _K.INV_FWD_ACK_TOKEN, False)
    DIR_INV = ("DIR_INV", _K.INV_FWD_ACK_TOKEN, False)
    DIR_ACK = ("DIR_ACK", _K.INV_FWD_ACK_TOKEN, False)
    DIR_DATA = ("DIR_DATA", _K.RESPONSE_DATA, True)
    DIR_WB_REQ = ("DIR_WB_REQ", _K.WRITEBACK_CONTROL, False)  # 3-phase WB: 1
    DIR_WB_GRANT = ("DIR_WB_GRANT", _K.WRITEBACK_CONTROL, False)  # 3-phase WB: 2
    DIR_WB_DATA = ("DIR_WB_DATA", _K.WRITEBACK_DATA, True)  # 3-phase WB: 3
    DIR_WB_TOKEN = ("DIR_WB_TOKEN", _K.WRITEBACK_CONTROL, False)  # clean WB notice
    DIR_UNBLOCK = ("DIR_UNBLOCK", _K.UNBLOCK, False)
    DIR_RECALL = ("DIR_RECALL", _K.INV_FWD_ACK_TOKEN, False)  # inclusion recall

    def __init__(self, _name: str, klass: TrafficClass, has_data: bool) -> None:
        self.klass = klass
        self.has_data = has_data


_msg_ids = itertools.count()


@dataclasses.dataclass
class Message:
    """One coherence message in flight.

    ``addr`` is always block-aligned.  Protocol-specific payload fields:

    * ``tokens`` / ``owner`` — token transfer (token protocol).
    * ``data`` — the block's modelled data value (one int per block).
    * ``requestor`` — the node the response should ultimately serve.
    * ``req_type`` — for forwarded requests, the original request kind.
    * ``acks`` — number of acknowledgements the receiver should expect.
    * ``serial`` — requestor-local transaction id (stale-response filter).
    * ``prio`` — persistent-request priority (smaller wins).
    * ``epoch`` — the block's recreation epoch as known by the sender;
      token carriers stamped with an older epoch than the receiver's are
      stale and must be discarded, never absorbed.
    * ``extra`` — anything else (kept rare).
    """

    mtype: MsgType
    src: NodeId
    dst: NodeId
    addr: int
    tokens: int = 0
    owner: bool = False
    dirty: bool = False
    data: Optional[int] = None
    read: bool = False  # persistent-read flag (Section 3.2)
    requestor: Optional[NodeId] = None
    req_type: Optional[MsgType] = None
    acks: int = 0
    serial: int = 0
    prio: int = 0
    epoch: int = 0
    extra: Any = None
    uid: int = dataclasses.field(default_factory=lambda: next(_msg_ids))

    def size_bytes(self, data_bytes: int, control_bytes: int) -> int:
        return data_bytes if self.mtype.has_data else control_bytes

    def clone_to(self, dst: NodeId) -> "Message":
        """A copy of this message addressed to ``dst``, with a fresh uid.

        Broadcast fan-out builds one template message and clones it per
        destination — a dict copy plus two field writes instead of a
        full 16-field dataclass construction per destination.  The fresh
        ``uid`` keeps per-message identity (in-flight token tracking,
        trace message ids) intact.
        """
        clone = Message.__new__(Message)
        clone.__dict__.update(self.__dict__)
        clone.dst = dst
        clone.uid = next(_msg_ids)
        return clone

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        bits = [f"{self.mtype.name} {self.src}->{self.dst} @{self.addr:#x}"]
        if self.tokens:
            bits.append(f"tok={self.tokens}{'+O' if self.owner else ''}")
        if self.data is not None:
            bits.append(f"data={self.data}")
        return " ".join(bits)
