"""Point-to-point interconnect model with latency and bandwidth.

The target machine (Table 3) has three networks:

* **intra-CMP**: directly connected on-chip network, 2 ns one-way links at
  64 GB/s;
* **inter-CMP**: directly connected global network between chip
  interfaces, 20 ns links (including interface/wire/sync) at 16 GB/s;
* **memory links**: each CMP to its off-chip memory controller, 20 ns.

We model each network as per-source egress links with store-and-forward
semantics: a message occupies a link for ``bytes / bandwidth`` and arrives
after the link latency; back-to-back messages on one link queue behind
each other.  A cross-chip message traverses (intra egress) -> (inter
egress of the source chip) -> (intra egress of the destination chip's
interface), so it consumes bandwidth on every network it crosses, which
is what the paper's traffic figures measure.

Topologies
----------

The link structure is no longer hard-coded: ``params.topology`` (a
declarative :class:`~repro.interconnect.topology.Topology` spec) compiles
to a link graph, and routes are deterministic shortest paths over it.
The default ``ptp`` topology compiles to exactly the Table-3 machine
above, and for it the :meth:`_path` branch ladder is retained as the
executable reference the route tests replay; mesh/torus/fat-tree
fabrics have no ladder — the graph is the only statement of their
routing.

Hot-path design
---------------

``send`` sits under every coherence message, so its per-message work is
precomputed at construction time:

* a **route cache** — ``(src, dst) -> tuple[Link, ...]`` for every node
  pair in the machine, built once from the compiled topology graph
  (checked against the :meth:`_path` ladder on the default topology);
* a **size table** — ``MsgType -> bytes``, so sizing a message is one
  dict hit instead of a method call and branch;
* **integer link serialization** — each :class:`Link` folds its
  bandwidth into an exact integer numerator/denominator pair at
  construction, so ``traverse`` is pure integer arithmetic (no float
  rounding, no platform-dependent timing).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.common.errors import ConfigError
from repro.common.params import SystemParams
from repro.common.types import NodeId, NodeKind
from repro.interconnect.message import Message, MsgType
from repro.interconnect.topology import LinkSpec, TopologyGraph
from repro.interconnect.traffic import Scope, TrafficMeter
from repro.sim.kernel import Simulator


class Link:
    """One egress link: fixed latency plus serialization at a bandwidth."""

    __slots__ = (
        "name", "scope", "latency_ps", "bytes_per_ns", "busy_until",
        "bytes_carried", "_ser_num", "_ser_den",
    )

    def __init__(self, name: str, scope: Scope, latency_ps: int, bytes_per_ns: float):
        self.name = name
        self.scope = scope
        self.latency_ps = latency_ps
        self.bytes_per_ns = bytes_per_ns
        self.busy_until = 0
        self.bytes_carried = 0
        # Serialization is ``nbytes / bytes_per_ns`` ns = ``nbytes * 1000
        # / bytes_per_ns`` ps.  Expand the (possibly fractional) bandwidth
        # into an exact integer ratio once, so ``traverse`` computes an
        # exact integer ceiling — float ``round()`` banker's-rounds and
        # risks platform-dependent timing on inexact quotients.
        num, den = float(bytes_per_ns).as_integer_ratio()
        self._ser_num = 1000 * den
        self._ser_den = num

    def serialization_ps(self, nbytes: int) -> int:
        """Exact integer serialization delay for ``nbytes`` on this link.

        Computed as ``ceil(nbytes * 1000 / bytes_per_ns)`` in integer
        arithmetic, clamped to >= 1 ps: zero-byte/control messages on a
        fast link must still advance ``busy_until``, so same-cycle
        messages on one link keep strict FIFO order.
        """
        ser = -(-nbytes * self._ser_num // self._ser_den)
        return ser if ser > 1 else 1

    def traverse(self, start_ps: int, nbytes: int) -> int:
        """Occupy the link for one message; return its arrival time."""
        ser = -(-nbytes * self._ser_num // self._ser_den)
        if ser < 1:
            ser = 1
        begin = self.busy_until
        if start_ps > begin:
            begin = start_ps
        self.busy_until = begin + ser
        self.bytes_carried += nbytes
        return begin + ser + self.latency_ps


class BufferedLink(Link):
    """A link with a *diagnostic* egress-buffer capacity.

    Queues stay unbounded (timing is identical to :class:`Link`); the
    capacity only marks where backlog beyond the configured buffer would
    have overflowed, surfaced via :meth:`Network.buffer_report`.
    """

    __slots__ = ("buffer_bytes", "peak_backlog_bytes", "overflow_events")

    def __init__(self, name: str, scope: Scope, latency_ps: int,
                 bytes_per_ns: float, buffer_bytes: int):
        super().__init__(name, scope, latency_ps, bytes_per_ns)
        self.buffer_bytes = buffer_bytes
        self.peak_backlog_bytes = 0
        self.overflow_events = 0

    def traverse(self, start_ps: int, nbytes: int) -> int:
        backlog_ps = self.busy_until - start_ps
        if backlog_ps > 0:
            # Bytes still queued ahead of this message, inferred from the
            # time the link needs to drain them (serialization inverse).
            backlog = backlog_ps * self._ser_den // self._ser_num + nbytes
        else:
            backlog = nbytes
        if backlog > self.peak_backlog_bytes:
            self.peak_backlog_bytes = backlog
        if backlog > self.buffer_bytes:
            self.overflow_events += 1
        return super().traverse(start_ps, nbytes)


Handler = Callable[[Message], None]


class Network:
    """Routes messages between registered endpoints, collecting traffic."""

    def __init__(self, sim: Simulator, params: SystemParams, meter: TrafficMeter):
        self.sim = sim
        self.params = params
        self.meter = meter
        self._endpoints: Dict[NodeId, Handler] = {}
        self.topology = params.topology
        self.graph: TopologyGraph = self.topology.build(params)
        self._links: Dict[str, Link] = {}
        self._build_links()
        # Legacy per-network tables, aliasing the same Link objects.
        # Populated only on the default topology, where the :meth:`_path`
        # branch ladder is still a valid statement of the routing rules.
        self._intra: Dict[NodeId, Link] = {}
        self._inter: Dict[int, Link] = {}
        self._mem_out: Dict[int, Link] = {}
        self._mem_in: Dict[int, Link] = {}
        if self.topology.is_default:
            self._build_legacy_tables()
        # (src, dst) -> tuple of egress links, for every node pair in the
        # machine; lazily extended for pairs outside the enumeration
        # (tests register ad-hoc endpoints).
        self._routes: Dict[Tuple[NodeId, NodeId], Tuple[Link, ...]] = {}
        self._build_routes()
        # MsgType -> wire size in bytes (Section 8 sizes from params).
        # ``send`` itself branches on the two ints below (an attribute
        # load beats hashing an enum member), but the full table stays
        # the introspectable statement of the sizing rule.
        self._data_bytes: int = params.data_msg_bytes
        self._ctrl_bytes: int = params.control_msg_bytes
        self._msg_size: Dict[MsgType, int] = {
            mtype: (self._data_bytes if mtype.has_data else self._ctrl_bytes)
            for mtype in MsgType
        }

    def _build_links(self) -> None:
        """Instantiate one :class:`Link` per compiled :class:`LinkSpec`."""
        for name, spec in self.graph.links.items():
            self._links[name] = self._make_link(spec)

    @staticmethod
    def _make_link(spec: LinkSpec) -> Link:
        if spec.buffer_bytes is None:
            return Link(spec.name, spec.scope, spec.latency_ps, spec.bytes_per_ns)
        return BufferedLink(spec.name, spec.scope, spec.latency_ps,
                            spec.bytes_per_ns, spec.buffer_bytes)

    def _build_legacy_tables(self) -> None:
        """Index the default topology's links by network, as PR-4 did.

        The tables alias ``self._links`` (one physical link, two views)
        and exist so the :meth:`_path` ladder — the executable oracle the
        route tests replay — keeps working verbatim.
        """
        p = self.params
        for chip in range(p.num_chips):
            nodes = p.chip_l1s(chip) + p.chip_l2_banks(chip) + [p.iface_of(chip)]
            for node in nodes:
                self._intra[node] = self._links[f"intra:{node}"]
            self._inter[chip] = self._links[f"inter:{chip}"]
            self._mem_out[chip] = self._links[f"mem-out:{chip}"]
            self._mem_in[chip] = self._links[f"mem-in:{chip}"]

    def _all_nodes(self) -> List[NodeId]:
        """Every addressable endpoint in the machine, for route building."""
        p = self.params
        nodes: List[NodeId] = []
        for chip in range(p.num_chips):
            nodes.extend(p.chip_l1s(chip))
            nodes.extend(p.chip_l2_banks(chip))
            nodes.append(p.iface_of(chip))
            nodes.append(NodeId(NodeKind.MEM, chip))
            nodes.append(NodeId(NodeKind.ARB, chip))
        return nodes

    def _build_routes(self) -> None:
        """Precompute the route for every (src, dst) node pair.

        Built once at machine construction from the compiled topology
        graph's deterministic shortest paths, so ``send`` never routes
        per message.  On the default topology the :meth:`_path` branch
        ladder remains the executable reference — the route cache tests
        exhaustively compare every cached entry against it.
        """
        links = self._links
        routes = self._routes
        for pair, names in self.graph.all_routes().items():
            routes[pair] = tuple(links[name] for name in names)

    # ------------------------------------------------------------------
    def register(self, node: NodeId, handler: Handler) -> None:
        """Attach a controller callback as the endpoint for ``node``."""
        if node in self._endpoints:
            raise ConfigError(f"endpoint {node} registered twice")
        self._endpoints[node] = handler

    def send(self, msg: Message) -> None:
        """Route ``msg`` from ``msg.src`` to ``msg.dst`` and deliver it."""
        endpoint = self._endpoints.get(msg.dst)
        if endpoint is None:
            raise ConfigError(f"no endpoint registered for {msg.dst}")
        mtype = msg.mtype
        nbytes = self._data_bytes if mtype.has_data else self._ctrl_bytes
        route = self._routes.get((msg.src, msg.dst))
        if route is None:  # ad-hoc endpoint outside the machine enumeration
            route = self._route_fallback(msg.src, msg.dst)
            self._routes[(msg.src, msg.dst)] = route
        sim = self.sim
        arrival = sim._now
        klass = mtype.klass
        record = self.meter.record
        for link in route:
            arrival = link.traverse(arrival, nbytes)
            record(link.scope, klass, nbytes)
        tracer = sim.tracer
        if tracer is None:
            sim.schedule(arrival - sim._now, endpoint, msg)
        else:
            # Same event count and (time, seq) order as the untraced path:
            # the delivery shim only adds the msg.recv emission.
            tracer.msg_send(msg, nbytes=nbytes, hops=len(route), arrival_ps=arrival)
            sim.schedule(arrival - sim._now, self._deliver_traced, msg)

    def _deliver_traced(self, msg: Message) -> None:
        """Delivery shim used while tracing: emit ``msg.recv``, then act.

        ``msg.recv`` marks the *nominal* arrival at the endpoint; on a
        fault-injected machine the injector's ``fault.*`` events follow it
        when the delivery is then dropped, duplicated or rescheduled.
        """
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.msg_recv(msg)
        self._endpoints[msg.dst](msg)

    def send_later(self, delay_ps: int, msg: Message) -> None:
        """Send ``msg`` after a local processing delay (e.g. DRAM access).

        Fault-injection wrappers override this so a token-carrying message
        counts as in flight from the moment its sender gave the tokens up,
        not from when it finally enters the interconnect.
        """
        self.sim.schedule(delay_ps, self.send, msg)

    def token_absorbed(self, msg: Message) -> None:
        """A controller folded ``msg``'s tokens into its state (no-op here;
        fault-injection wrappers use it to retire in-flight tracking)."""

    # ------------------------------------------------------------------
    def _route_fallback(self, src: NodeId, dst: NodeId) -> Tuple[Link, ...]:
        """Route a pair missing from the prebuilt table (ad-hoc endpoints
        tests register).  The default topology replays the ladder —
        exactly PR-4's lazy path; other topologies route on the graph."""
        if self.topology.is_default:
            return tuple(self._path(src, dst))
        links = self._links
        return tuple(links[name] for name in self.graph.route(src, dst))

    def _path(self, src: NodeId, dst: NodeId) -> List[Link]:
        """Egress links a message crosses from ``src`` to ``dst``.

        The reference branch ladder for the *default* (``ptp``) topology.
        ``send`` reads the precomputed ``_routes`` table instead; this
        stays as the executable statement of the Table-3 routing rules
        (and the oracle the route-cache tests replay against the graph).
        """
        if not self.topology.is_default:
            raise ConfigError(
                f"_path describes the default ptp fabric only; "
                f"topology {self.topology.generator!r} routes on the graph"
            )
        if src == dst:
            return []
        p = self.params
        src_mem = src.kind in (NodeKind.MEM, NodeKind.ARB)
        dst_mem = dst.kind in (NodeKind.MEM, NodeKind.ARB)

        if src_mem and dst_mem:
            if src.chip == dst.chip:  # arbiter <-> memory controller, same site
                return []
            return [self._mem_in[src.chip], self._inter[src.chip], self._mem_out[dst.chip]]

        if src_mem:
            links = [self._mem_in[src.chip]]
            if src.chip != dst.chip:
                links.append(self._inter[src.chip])
                # Same dst-IFACE exception as the cache-source branch
                # below: the interface sits on the fabric, so delivery to
                # it never re-crosses its own intra egress link.  (No
                # traffic is affected — interfaces are routing points,
                # never registered endpoints.)
                if dst.kind is not NodeKind.IFACE:
                    links.append(self._intra[p.iface_of(dst.chip)])
            return links

        if dst_mem:
            links = [] if src.kind is NodeKind.IFACE else [self._intra[src]]
            if src.chip != dst.chip:
                links.append(self._inter[src.chip])
            links.append(self._mem_out[dst.chip])
            return links

        # chip component to chip component
        if src.chip == dst.chip:
            return [self._intra[src]]
        links = [] if src.kind is NodeKind.IFACE else [self._intra[src]]
        links.append(self._inter[src.chip])
        if dst.kind is not NodeKind.IFACE:
            links.append(self._intra[p.iface_of(dst.chip)])
        return links

    # ------------------------------------------------------------------
    def links_by_name(self) -> Dict[str, Link]:
        """Read-only view of every physical link, keyed by name.

        The canonical enumeration surface for observers (the telemetry
        sampler probes each link's counters through this); callers must
        not mutate the returned links.
        """
        return dict(self._links)

    def link_utilization(self) -> Dict[str, int]:
        """Bytes carried per link (diagnostics)."""
        out: Dict[str, int] = {}
        if self.topology.is_default:
            # Preserve the historical per-network iteration order.
            for table in (self._intra, self._inter, self._mem_out, self._mem_in):
                for link in table.values():
                    out[link.name] = link.bytes_carried
            return out
        for name in sorted(self._links):
            out[name] = self._links[name].bytes_carried
        return out

    def buffer_report(self) -> Dict[str, Dict[str, int]]:
        """Overflow diagnostics for links declared with ``buffer_bytes``."""
        out: Dict[str, Dict[str, int]] = {}
        for name in sorted(self._links):
            link = self._links[name]
            if isinstance(link, BufferedLink):
                out[name] = {
                    "buffer_bytes": link.buffer_bytes,
                    "peak_backlog_bytes": link.peak_backlog_bytes,
                    "overflow_events": link.overflow_events,
                }
        return out
