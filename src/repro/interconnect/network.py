"""Point-to-point interconnect model with latency and bandwidth.

The target machine (Table 3) has three networks:

* **intra-CMP**: directly connected on-chip network, 2 ns one-way links at
  64 GB/s;
* **inter-CMP**: directly connected global network between chip
  interfaces, 20 ns links (including interface/wire/sync) at 16 GB/s;
* **memory links**: each CMP to its off-chip memory controller, 20 ns.

We model each network as per-source egress links with store-and-forward
semantics: a message occupies a link for ``bytes / bandwidth`` and arrives
after the link latency; back-to-back messages on one link queue behind
each other.  A cross-chip message traverses (intra egress) -> (inter
egress of the source chip) -> (intra egress of the destination chip's
interface), so it consumes bandwidth on every network it crosses, which
is what the paper's traffic figures measure.

Topologies
----------

The link structure is no longer hard-coded: ``params.topology`` (a
declarative :class:`~repro.interconnect.topology.Topology` spec) compiles
to a link graph, and routes are deterministic shortest paths over it.
The default ``ptp`` topology compiles to exactly the Table-3 machine
above, and for it the :meth:`_path` branch ladder is retained as the
executable reference the route tests replay; mesh/torus/fat-tree
fabrics have no ladder — the graph is the only statement of their
routing.

Hot-path design
---------------

``send`` sits under every coherence message, so its per-message work is
precomputed at construction time:

* a **route cache** — ``(src, dst) -> tuple[Link, ...]`` for every node
  pair in the machine, built once from the compiled topology graph
  (checked against the :meth:`_path` ladder on the default topology);
* a **size table** — ``MsgType -> bytes``, so sizing a message is one
  dict hit instead of a method call and branch;
* **integer link serialization** — each :class:`Link` folds its
  bandwidth into an exact integer numerator/denominator pair at
  construction, so ``traverse`` is pure integer arithmetic (no float
  rounding, no platform-dependent timing).
"""

from __future__ import annotations

from heapq import heappush
from typing import Callable, Dict, List, Tuple

from repro.common.errors import ConfigError
from repro.common.params import SystemParams
from repro.common.types import NodeId, NodeKind
from repro.interconnect.message import Message, MessagePool, MsgType, _msg_ids
from repro.interconnect.topology import LinkSpec, TopologyGraph
from repro.interconnect.traffic import Scope, TrafficClass, TrafficMeter
from repro.sim.kernel import Simulator


class Link:
    """One egress link: fixed latency plus serialization at a bandwidth."""

    __slots__ = (
        "name", "scope", "latency_ps", "bytes_per_ns", "busy_until",
        "bytes_carried", "_ser_num", "_ser_den", "plain",
    )

    def __init__(self, name: str, scope: Scope, latency_ps: int, bytes_per_ns: float):
        self.name = name
        self.scope = scope
        self.latency_ps = latency_ps
        self.bytes_per_ns = bytes_per_ns
        self.busy_until = 0
        self.bytes_carried = 0
        # True for exactly this class: ``Network.send`` inlines the plain
        # traverse arithmetic and dispatches to :meth:`traverse` only for
        # subclasses that override it (BufferedLink diagnostics).
        self.plain = type(self) is Link
        # Serialization is ``nbytes / bytes_per_ns`` ns = ``nbytes * 1000
        # / bytes_per_ns`` ps.  Expand the (possibly fractional) bandwidth
        # into an exact integer ratio once, so ``traverse`` computes an
        # exact integer ceiling — float ``round()`` banker's-rounds and
        # risks platform-dependent timing on inexact quotients.
        num, den = float(bytes_per_ns).as_integer_ratio()
        self._ser_num = 1000 * den
        self._ser_den = num

    def serialization_ps(self, nbytes: int) -> int:
        """Exact integer serialization delay for ``nbytes`` on this link.

        Computed as ``ceil(nbytes * 1000 / bytes_per_ns)`` in integer
        arithmetic, clamped to >= 1 ps: zero-byte/control messages on a
        fast link must still advance ``busy_until``, so same-cycle
        messages on one link keep strict FIFO order.
        """
        ser = -(-nbytes * self._ser_num // self._ser_den)
        return ser if ser > 1 else 1

    def traverse(self, start_ps: int, nbytes: int) -> int:
        """Occupy the link for one message; return its arrival time."""
        ser = -(-nbytes * self._ser_num // self._ser_den)
        if ser < 1:
            ser = 1
        begin = self.busy_until
        if start_ps > begin:
            begin = start_ps
        self.busy_until = begin + ser
        self.bytes_carried += nbytes
        return begin + ser + self.latency_ps


class BufferedLink(Link):
    """A link with a *diagnostic* egress-buffer capacity.

    Queues stay unbounded (timing is identical to :class:`Link`); the
    capacity only marks where backlog beyond the configured buffer would
    have overflowed, surfaced via :meth:`Network.buffer_report`.
    """

    __slots__ = ("buffer_bytes", "peak_backlog_bytes", "overflow_events")

    def __init__(self, name: str, scope: Scope, latency_ps: int,
                 bytes_per_ns: float, buffer_bytes: int):
        super().__init__(name, scope, latency_ps, bytes_per_ns)
        self.buffer_bytes = buffer_bytes
        self.peak_backlog_bytes = 0
        self.overflow_events = 0

    def traverse(self, start_ps: int, nbytes: int) -> int:
        backlog_ps = self.busy_until - start_ps
        if backlog_ps > 0:
            # Bytes still queued ahead of this message, inferred from the
            # time the link needs to drain them (serialization inverse).
            backlog = backlog_ps * self._ser_den // self._ser_num + nbytes
        else:
            backlog = nbytes
        if backlog > self.peak_backlog_bytes:
            self.peak_backlog_bytes = backlog
        if backlog > self.buffer_bytes:
            self.overflow_events += 1
        return super().traverse(start_ps, nbytes)


Handler = Callable[[Message], None]


class Network:
    """Routes messages between registered endpoints, collecting traffic."""

    def __init__(self, sim: Simulator, params: SystemParams, meter: TrafficMeter):
        self.sim = sim
        self.params = params
        self.meter = meter
        self._endpoints: Dict[NodeId, Handler] = {}
        # Prebound dict.get of the endpoint table (mutated in place by
        # ``register``, so the bound method stays valid).
        self._endpoint_of = self._endpoints.get
        self.topology = params.topology
        self.graph: TopologyGraph = self.topology.build(params)
        self._links: Dict[str, Link] = {}
        self._build_links()
        # Legacy per-network tables, aliasing the same Link objects.
        # Populated only on the default topology, where the :meth:`_path`
        # branch ladder is still a valid statement of the routing rules.
        self._intra: Dict[NodeId, Link] = {}
        self._inter: Dict[int, Link] = {}
        self._mem_out: Dict[int, Link] = {}
        self._mem_in: Dict[int, Link] = {}
        if self.topology.is_default:
            self._build_legacy_tables()
        # (src, dst) -> tuple of egress links, for every node pair in the
        # machine; lazily extended for pairs outside the enumeration
        # (tests register ad-hoc endpoints).
        self._routes: Dict[Tuple[NodeId, NodeId], Tuple[Link, ...]] = {}
        # The same table nested src -> dst -> route, so the hot ``send``
        # path needs no per-message (src, dst) key tuple.  Empty routes
        # (src == dst) are valid entries, hence the ``is None`` probes.
        self._routes_from: Dict[NodeId, Dict[NodeId, Tuple[Link, ...]]] = {}
        self._route_row = self._routes_from.get  # prebound, table mutated in place
        self._build_routes()
        # MsgType -> wire size in bytes (Section 8 sizes from params).
        # ``send`` itself branches on the two ints below (an attribute
        # load beats hashing an enum member), but the full table stays
        # the introspectable statement of the sizing rule.
        self._data_bytes: int = params.data_msg_bytes
        self._ctrl_bytes: int = params.control_msg_bytes
        self._msg_size: Dict[MsgType, int] = {
            mtype: (self._data_bytes if mtype.has_data else self._ctrl_bytes)
            for mtype in MsgType
        }
        # Interned (scope, class) metering keys plus direct views of the
        # meter's counter dicts: the per-link charge in ``send`` becomes
        # two dict bumps with no tuple construction per message.
        self._meter_keys: Dict[TrafficClass, Dict[Scope, Tuple[Scope, TrafficClass]]] = {
            klass: {scope: (scope, klass) for scope in Scope}
            for klass in TrafficClass
        }
        self._meter_bytes = meter.bytes
        self._meter_msgs = meter.messages
        # Freelist of recyclable Message records; controllers acquire at
        # send and release at final delivery (see MessagePool).
        self.pool = MessagePool()
        # Fan-out plans, keyed by destination-tuple identity: broadcasts
        # use interned destination tuples, so the (endpoint, route) pairs
        # and the per-scope link counts of a fan-out are resolved once
        # per (src, dests) instead of per message.  Each entry keeps a
        # strong reference to its dests tuple, so the id key cannot be
        # reused while the entry lives; the identity re-check catches a
        # same-src fan-out to a different (non-interned) tuple.
        self._fanout_plans: Dict[NodeId, Dict[int, tuple]] = {}

    def _build_links(self) -> None:
        """Instantiate one :class:`Link` per compiled :class:`LinkSpec`."""
        for name, spec in self.graph.links.items():
            self._links[name] = self._make_link(spec)

    @staticmethod
    def _make_link(spec: LinkSpec) -> Link:
        if spec.buffer_bytes is None:
            return Link(spec.name, spec.scope, spec.latency_ps, spec.bytes_per_ns)
        return BufferedLink(spec.name, spec.scope, spec.latency_ps,
                            spec.bytes_per_ns, spec.buffer_bytes)

    def _build_legacy_tables(self) -> None:
        """Index the default topology's links by network, as PR-4 did.

        The tables alias ``self._links`` (one physical link, two views)
        and exist so the :meth:`_path` ladder — the executable oracle the
        route tests replay — keeps working verbatim.
        """
        p = self.params
        for chip in range(p.num_chips):
            nodes = p.chip_l1s(chip) + p.chip_l2_banks(chip) + [p.iface_of(chip)]
            for node in nodes:
                self._intra[node] = self._links[f"intra:{node}"]
            self._inter[chip] = self._links[f"inter:{chip}"]
            self._mem_out[chip] = self._links[f"mem-out:{chip}"]
            self._mem_in[chip] = self._links[f"mem-in:{chip}"]

    def _all_nodes(self) -> List[NodeId]:
        """Every addressable endpoint in the machine, for route building."""
        p = self.params
        nodes: List[NodeId] = []
        for chip in range(p.num_chips):
            nodes.extend(p.chip_l1s(chip))
            nodes.extend(p.chip_l2_banks(chip))
            nodes.append(p.iface_of(chip))
            nodes.append(NodeId(NodeKind.MEM, chip))
            nodes.append(NodeId(NodeKind.ARB, chip))
        return nodes

    def _build_routes(self) -> None:
        """Precompute the route for every (src, dst) node pair.

        Built once at machine construction from the compiled topology
        graph's deterministic shortest paths, so ``send`` never routes
        per message.  On the default topology the :meth:`_path` branch
        ladder remains the executable reference — the route cache tests
        exhaustively compare every cached entry against it.
        """
        links = self._links
        routes = self._routes
        routes_from = self._routes_from
        for pair, names in self.graph.all_routes().items():
            route = tuple(links[name] for name in names)
            routes[pair] = route
            src, dst = pair
            by_dst = routes_from.get(src)
            if by_dst is None:
                by_dst = routes_from[src] = {}
            by_dst[dst] = route

    # ------------------------------------------------------------------
    def register(self, node: NodeId, handler: Handler) -> None:
        """Attach a controller callback as the endpoint for ``node``."""
        if node in self._endpoints:
            raise ConfigError(f"endpoint {node} registered twice")
        self._endpoints[node] = handler

    def send(self, msg: Message) -> None:
        """Route ``msg`` from ``msg.src`` to ``msg.dst`` and deliver it."""
        dst = msg.dst
        endpoint = self._endpoint_of(dst)
        if endpoint is None:
            raise ConfigError(f"no endpoint registered for {dst}")
        mtype = msg.mtype
        nbytes = self._data_bytes if mtype.has_data else self._ctrl_bytes
        src = msg.src
        by_dst = self._route_row(src)
        route = None if by_dst is None else by_dst.get(dst)
        if route is None:  # ad-hoc endpoint outside the machine enumeration
            route = self._route_fallback(src, dst)
            self._routes[(src, dst)] = route
            self._routes_from.setdefault(src, {})[dst] = route
        sim = self.sim
        arrival = sim._now
        keys = self._meter_keys[mtype.klass]
        mbytes = self._meter_bytes
        mmsgs = self._meter_msgs
        for link in route:
            if link.plain:
                # Inlined Link.traverse (identical integer arithmetic):
                # the plain link is the whole fabric in steady state, and
                # skipping the method call pays on every hop.
                ser = -(-nbytes * link._ser_num // link._ser_den)
                if ser < 1:
                    ser = 1
                begin = link.busy_until
                if arrival > begin:
                    begin = arrival
                link.busy_until = begin + ser
                link.bytes_carried += nbytes
                arrival = begin + ser + link.latency_ps
            else:
                arrival = link.traverse(arrival, nbytes)
            scope = link.scope
            mbytes[keys[scope]] += nbytes
            mmsgs[scope] += 1
        tracer = sim.tracer
        if tracer is None:
            sim.call_at(arrival, endpoint, msg)
        else:
            # Same event count and (time, seq) order as the untraced path:
            # the delivery shim only adds the msg.recv emission.
            tracer.msg_send(msg, nbytes=nbytes, hops=len(route), arrival_ps=arrival)
            sim.call_at(arrival, self._deliver_traced, msg)

    def send_fanout(self, template: Message, dests) -> None:
        """Clone ``template`` to every destination, sending each clone.

        The pooled fast path of the template/``clone_to`` broadcast idiom:
        clones come from the message pool (one dict stamp per destination,
        no allocation in steady state) and each is released by its
        receiving controller when its dispatch completes.  The template
        itself stays with the caller, which releases it after the fan-out.

        Fault-injection wrappers deliberately do not override this: the
        messages that fan out (transient requests, persistent activates/
        deactivates, epoch bumps) never carry tokens, so in-flight token
        tracking has nothing to track, and fault policies apply at arrival
        through the wrapped endpoint handlers either way.
        """
        pool = self.pool
        send = self.send
        if not pool.enabled:
            for dst in dests:
                send(template.clone_to(dst))
            return
        clone = pool.clone
        sim = self.sim
        if sim.tracer is not None:
            for dst in dests:
                send(clone(template, dst))
            return
        # Untraced pooled fast path: every clone shares the template's
        # src/mtype, so the route row, wire size and metering keys are
        # resolved once for the whole fan-out instead of per destination,
        # and the (endpoint, route) pairs plus per-scope link counts come
        # from a plan cached by destination-tuple identity (broadcast
        # dest tuples are interned per controller).  Clone order, link
        # busy_until order and event (time, seq) order are identical to
        # the per-destination ``send`` loop; metering is applied as one
        # aggregate bump per scope — same final counters, addition is
        # commutative and the meter is only read between events.
        src = template.src
        row = self._fanout_plans.get(src)
        if row is None:
            row = self._fanout_plans[src] = {}
        entry = row.get(id(dests))
        if entry is None or entry[0] is not dests:
            entry = self._build_fanout_plan(src, dests)
            if entry is None:  # ad-hoc endpoint / route fallback
                for dst in dests:
                    send(clone(template, dst))
                return
            if len(row) >= 64:
                # Callers are expected to intern their destination tuples;
                # a caller that does not would otherwise grow the cache
                # (and pin its tuples) without bound.
                row.clear()
            row[id(dests)] = entry
        _dests, pairs, scope_links = entry
        mtype = template.mtype
        nbytes = self._data_bytes if mtype.has_data else self._ctrl_bytes
        keys = self._meter_keys[mtype.klass]
        mbytes = self._meter_bytes
        mmsgs = self._meter_msgs
        for scope, nlinks in scope_links:
            mbytes[keys[scope]] += nbytes * nlinks
            mmsgs[scope] += nlinks
        now = sim._now
        free = pool._free
        tdict = template.__dict__
        # Kernel internals hoisted for the inlined no-handle scheduling
        # below (the exact ``call_at`` body; arrivals can never precede
        # ``now`` — serialization is >= 1 ps — so the past-check is
        # statically satisfied).
        queue = sim._queue
        efree = sim._free_events
        pending = 0
        for dst, endpoint, route in pairs:
            # Inlined pool.clone (same counter and uid-draw order).
            pool.acquires += 1
            if free:
                msg = free.pop()
                d = msg.__dict__
                d.update(tdict)
                d["dst"] = dst
                d["uid"] = next(_msg_ids)
                d["_pooled"] = True
            else:
                pool.news += 1
                msg = template.clone_to(dst)
                msg.__dict__["_pooled"] = True
            arrival = now
            for link in route:
                if link.plain:
                    ser = -(-nbytes * link._ser_num // link._ser_den)
                    if ser < 1:
                        ser = 1
                    begin = link.busy_until
                    if arrival > begin:
                        begin = arrival
                    link.busy_until = begin + ser
                    link.bytes_carried += nbytes
                    arrival = begin + ser + link.latency_ps
                else:
                    arrival = link.traverse(arrival, nbytes)
            # Inlined Simulator.call_at (identical time/seq semantics).
            sim._seq = seq = sim._seq + 1
            if efree:
                event = efree.pop()
                event[0] = arrival
                event[1] = seq
                event[2] = endpoint
                event[3] = msg
            else:
                sim.event_news += 1
                event = [arrival, seq, endpoint, msg, True]
            pending += 1
            heappush(queue, event)
        sim._pending += pending

    def _build_fanout_plan(self, src: NodeId, dests):
        """Resolve a broadcast's per-destination (endpoint, route) pairs.

        Returns ``(dests, pairs, scope_links)`` — the dests tuple itself
        (kept so the identity-keyed cache holds its key alive), one
        ``(dst, endpoint, route)`` triple per destination, and the total
        link count per scope for aggregate metering.  ``None`` when any
        destination lacks a prebuilt route or a registered endpoint (the
        caller falls back to per-destination ``send``).
        """
        by_dst = self._route_row(src)
        if by_dst is None:
            return None
        endpoint_of = self._endpoint_of
        pairs = []
        counts: Dict[Scope, int] = {}
        for dst in dests:
            route = by_dst.get(dst)
            endpoint = endpoint_of(dst)
            if route is None or endpoint is None:
                return None
            pairs.append((dst, endpoint, route))
            for link in route:
                scope = link.scope
                counts[scope] = counts.get(scope, 0) + 1
        return (dests, tuple(pairs), tuple(counts.items()))

    def release(self, msg: Message) -> None:
        """Return a delivered pooled message to the pool (no-op for
        messages the pool does not own, including with pooling off)."""
        self.pool.release(msg)

    def _deliver_traced(self, msg: Message) -> None:
        """Delivery shim used while tracing: emit ``msg.recv``, then act.

        ``msg.recv`` marks the *nominal* arrival at the endpoint; on a
        fault-injected machine the injector's ``fault.*`` events follow it
        when the delivery is then dropped, duplicated or rescheduled.
        """
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.msg_recv(msg)
        self._endpoints[msg.dst](msg)

    def send_later(self, delay_ps: int, msg: Message) -> None:
        """Send ``msg`` after a local processing delay (e.g. DRAM access).

        Fault-injection wrappers override this so a token-carrying message
        counts as in flight from the moment its sender gave the tokens up,
        not from when it finally enters the interconnect.
        """
        self.sim.schedule(delay_ps, self.send, msg)

    def token_absorbed(self, msg: Message) -> None:
        """A controller folded ``msg``'s tokens into its state (no-op here;
        fault-injection wrappers use it to retire in-flight tracking)."""

    # ------------------------------------------------------------------
    def _route_fallback(self, src: NodeId, dst: NodeId) -> Tuple[Link, ...]:
        """Route a pair missing from the prebuilt table (ad-hoc endpoints
        tests register).  The default topology replays the ladder —
        exactly PR-4's lazy path; other topologies route on the graph."""
        if self.topology.is_default:
            return tuple(self._path(src, dst))
        links = self._links
        return tuple(links[name] for name in self.graph.route(src, dst))

    def _path(self, src: NodeId, dst: NodeId) -> List[Link]:
        """Egress links a message crosses from ``src`` to ``dst``.

        The reference branch ladder for the *default* (``ptp``) topology.
        ``send`` reads the precomputed ``_routes`` table instead; this
        stays as the executable statement of the Table-3 routing rules
        (and the oracle the route-cache tests replay against the graph).
        """
        if not self.topology.is_default:
            raise ConfigError(
                f"_path describes the default ptp fabric only; "
                f"topology {self.topology.generator!r} routes on the graph"
            )
        if src == dst:
            return []
        p = self.params
        src_mem = src.kind in (NodeKind.MEM, NodeKind.ARB)
        dst_mem = dst.kind in (NodeKind.MEM, NodeKind.ARB)

        if src_mem and dst_mem:
            if src.chip == dst.chip:  # arbiter <-> memory controller, same site
                return []
            return [self._mem_in[src.chip], self._inter[src.chip], self._mem_out[dst.chip]]

        if src_mem:
            links = [self._mem_in[src.chip]]
            if src.chip != dst.chip:
                links.append(self._inter[src.chip])
                # Same dst-IFACE exception as the cache-source branch
                # below: the interface sits on the fabric, so delivery to
                # it never re-crosses its own intra egress link.  (No
                # traffic is affected — interfaces are routing points,
                # never registered endpoints.)
                if dst.kind is not NodeKind.IFACE:
                    links.append(self._intra[p.iface_of(dst.chip)])
            return links

        if dst_mem:
            links = [] if src.kind is NodeKind.IFACE else [self._intra[src]]
            if src.chip != dst.chip:
                links.append(self._inter[src.chip])
            links.append(self._mem_out[dst.chip])
            return links

        # chip component to chip component
        if src.chip == dst.chip:
            return [self._intra[src]]
        links = [] if src.kind is NodeKind.IFACE else [self._intra[src]]
        links.append(self._inter[src.chip])
        if dst.kind is not NodeKind.IFACE:
            links.append(self._intra[p.iface_of(dst.chip)])
        return links

    # ------------------------------------------------------------------
    def links_by_name(self) -> Dict[str, Link]:
        """Read-only view of every physical link, keyed by name.

        The canonical enumeration surface for observers (the telemetry
        sampler probes each link's counters through this); callers must
        not mutate the returned links.
        """
        return dict(self._links)

    def link_utilization(self) -> Dict[str, int]:
        """Bytes carried per link (diagnostics)."""
        out: Dict[str, int] = {}
        if self.topology.is_default:
            # Preserve the historical per-network iteration order.
            for table in (self._intra, self._inter, self._mem_out, self._mem_in):
                for link in table.values():
                    out[link.name] = link.bytes_carried
            return out
        for name in sorted(self._links):
            out[name] = self._links[name].bytes_carried
        return out

    def buffer_report(self) -> Dict[str, Dict[str, int]]:
        """Overflow diagnostics for links declared with ``buffer_bytes``."""
        out: Dict[str, Dict[str, int]] = {}
        for name in sorted(self._links):
            link = self._links[name]
            if isinstance(link, BufferedLink):
                out[name] = {
                    "buffer_bytes": link.buffer_bytes,
                    "peak_backlog_bytes": link.peak_backlog_bytes,
                    "overflow_events": link.overflow_events,
                }
        return out
