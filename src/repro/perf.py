"""Performance benchmark suite: kernel, network, and end-to-end.

The repo's figures are produced by millions of events flowing through
``Simulator._run`` and ``Network.send``; this module gives that hot path
a *perf trajectory* — canonical microbenchmarks whose results are written
to ``BENCH_perf.json`` and checked by CI for regressions.

Three layers are measured:

* ``kernel_chain``   — pure event-loop throughput: parallel self-
  rescheduling callback chains, no cancellation, no watchers.
* ``kernel_cancel``  — scheduling churn: every step schedules an extra
  event and cancels it (lazy-deletion path) under an active watcher.
* ``network_send``   — ``Network.send`` throughput on the paper's 4x4
  machine: route-cache lookups, integer link serialization, traffic
  metering and delivery scheduling.
* ``e2e_fig6_smoke`` — one real experiment cell (TokenCMP-dst1 running
  the scaled-down OLTP workload from the Figure 6 smoke test).

Every benchmark reports wall-clock *timing* fields (``wall_s``,
``*_per_sec``) and *deterministic* fields (event counts, byte totals,
metrics hashes).  :func:`deterministic_stats` projects a report onto the
deterministic fields only — two runs of the suite must produce
byte-identical projections, which is what the CI ``perf-smoke`` job
asserts.  :func:`compare` checks timing fields against a committed
baseline with a tolerance.

Run it as ``python -m repro perf`` or ``python benchmarks/bench_perf.py``
(same flags; see :func:`main`).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from time import perf_counter
from typing import Dict, List, Optional

SCHEMA = "repro.bench_perf/1"

# The fig6 smoke cell: must stay in lockstep with the determinism tests
# so the metrics hash below is comparable across harness versions.  The
# cell itself now lives in repro.exp.library.fig6_smoke_cell (shared with
# the CI telemetry-smoke job); these constants remain its pinned identity.
E2E_PROTOCOL = "TokenCMP-dst1"
E2E_WORKLOAD = "oltp"
E2E_REFS_PER_PROC = 120
E2E_SEED = 1


def _noop() -> None:
    pass


# ----------------------------------------------------------------------
# kernel microbenchmarks
# ----------------------------------------------------------------------

def bench_kernel_chain(n_events: int = 200_000, chains: int = 4,
                       repeats: int = 3) -> Dict[str, object]:
    """Raw event-loop throughput: ``chains`` self-rescheduling callbacks.

    Each chain schedules its own next step, so the heap stays small and
    the measurement isolates pop/dispatch/push cost — the floor every
    simulated machine pays per event.
    """
    from repro.sim.kernel import Simulator

    per_chain = n_events // chains
    best = None
    events = 0
    for _ in range(repeats):
        sim = Simulator()

        def make(sim=sim, per_chain=per_chain):
            remaining = [per_chain]

            def tick() -> None:
                remaining[0] -= 1
                if remaining[0] > 0:
                    sim.schedule(10, tick)

            return tick

        for _c in range(chains):
            sim.schedule(10, make())
        t0 = perf_counter()
        sim.run()
        dt = perf_counter() - t0
        events = sim.events_fired
        best = dt if best is None or dt < best else best
    return {
        "events": events,
        "wall_s": best,
        "events_per_sec": events / best,
    }


def bench_kernel_cancel(n_events: int = 120_000,
                        repeats: int = 3) -> Dict[str, object]:
    """Scheduling churn: every step also schedules-and-cancels an event,
    with a watcher ticking every 256 fired events (threshold path)."""
    from repro.sim.kernel import Simulator

    best = None
    fired = 0
    ticks = 0
    for _ in range(repeats):
        sim = Simulator()
        watcher_ticks = [0]

        def watch(watcher_ticks=watcher_ticks) -> None:
            watcher_ticks[0] += 1

        sim.add_watcher(watch, every_events=256)
        remaining = [n_events]

        def tick(sim=sim, remaining=remaining) -> None:
            sim.schedule(50, _noop).cancel()
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(10, tick)

        sim.schedule(10, tick)
        t0 = perf_counter()
        sim.run()
        dt = perf_counter() - t0
        fired = sim.events_fired
        ticks = watcher_ticks[0]
        best = dt if best is None or dt < best else best
    return {
        "events": fired,
        "watcher_ticks": ticks,
        "wall_s": best,
        "events_per_sec": fired / best,
    }


# ----------------------------------------------------------------------
# network microbenchmark
# ----------------------------------------------------------------------

def bench_network_send(n_sends: int = 50_000,
                       repeats: int = 3) -> Dict[str, object]:
    """``Network.send`` throughput on the paper's 4x4 machine.

    A fixed rotation of destinations (local L1s/L2 banks, remote chips,
    memory controllers) exercises intra, inter and memory routes; the
    endpoints are no-ops so only the interconnect layer is measured.
    """
    from repro.common.params import SystemParams
    from repro.common.types import NodeId, NodeKind
    from repro.interconnect.message import Message, MsgType
    from repro.interconnect.network import Network
    from repro.interconnect.traffic import TrafficMeter
    from repro.sim.kernel import Simulator

    best = None
    total_bytes = 0
    total_msgs = 0
    for _ in range(repeats):
        params = SystemParams()
        sim = Simulator()
        meter = TrafficMeter()
        net = Network(sim, params, meter)
        nodes = []
        for chip in range(params.num_chips):
            nodes += params.chip_l1s(chip) + params.chip_l2_banks(chip)
        for chip in range(params.num_chips):
            nodes.append(NodeId(NodeKind.MEM, chip))
        for node in nodes:
            net.register(node, _noop_handler)
        src = nodes[0]
        n_nodes = len(nodes)
        msgs = [
            Message(MsgType.TOK_DATA, src, nodes[i % n_nodes], addr=i * 64)
            for i in range(n_sends)
        ]
        t0 = perf_counter()
        for msg in msgs:
            net.send(msg)
        dt = perf_counter() - t0
        total_bytes = sum(meter.bytes.values())
        total_msgs = sum(meter.messages.values())
        best = dt if best is None or dt < best else best
    return {
        "sends": n_sends,
        "link_messages": total_msgs,
        "link_bytes": total_bytes,
        "wall_s": best,
        "sends_per_sec": n_sends / best,
    }


def _noop_handler(_msg) -> None:
    pass


def bench_network_send_mesh(n_sends: int = 30_000,
                            repeats: int = 3) -> Dict[str, object]:
    """``Network.send`` throughput on an 8-CMP mesh (graph routing).

    Same shape as :func:`bench_network_send` but on a multi-hop fabric
    compiled by the declarative topology builder, so the regression gate
    covers graph-routed construction + the route cache on long paths.
    """
    from repro.common.params import SystemParams
    from repro.common.types import NodeId, NodeKind
    from repro.interconnect.message import Message, MsgType
    from repro.interconnect.network import Network
    from repro.interconnect.topology import Topology
    from repro.interconnect.traffic import TrafficMeter
    from repro.sim.kernel import Simulator

    best = None
    total_bytes = 0
    total_msgs = 0
    for _ in range(repeats):
        params = SystemParams(num_chips=8, procs_per_chip=2,
                              tokens_per_block=64, topology=Topology.mesh())
        sim = Simulator()
        meter = TrafficMeter()
        net = Network(sim, params, meter)
        nodes = []
        for chip in range(params.num_chips):
            nodes += params.chip_l1s(chip) + params.chip_l2_banks(chip)
        for chip in range(params.num_chips):
            nodes.append(NodeId(NodeKind.MEM, chip))
        for node in nodes:
            net.register(node, _noop_handler)
        src = nodes[0]
        n_nodes = len(nodes)
        msgs = [
            Message(MsgType.TOK_DATA, src, nodes[i % n_nodes], addr=i * 64)
            for i in range(n_sends)
        ]
        t0 = perf_counter()
        for msg in msgs:
            net.send(msg)
        dt = perf_counter() - t0
        total_bytes = sum(meter.bytes.values())
        total_msgs = sum(meter.messages.values())
        best = dt if best is None or dt < best else best
    return {
        "sends": n_sends,
        "link_messages": total_msgs,
        "link_bytes": total_bytes,
        "wall_s": best,
        "sends_per_sec": n_sends / best,
    }


# ----------------------------------------------------------------------
# end-to-end benchmark
# ----------------------------------------------------------------------

def bench_e2e_fig6_smoke(repeats: int = 3) -> Dict[str, object]:
    """One real experiment cell: the Figure 6 smoke configuration.

    Reports the cell's fired-event count, runtime and a SHA-256 over its
    canonical metrics JSON — the same digest the determinism tests pin,
    so *any* behavioural drift in the optimised hot path shows up here.
    """
    from repro.exp.library import fig6_smoke_cell
    from repro.exp.runner import run_cell

    cell = fig6_smoke_cell()
    best = None
    events = 0
    runtime_ps = 0
    digest = ""
    for _ in range(repeats):
        t0 = perf_counter()
        res = run_cell(cell)
        dt = perf_counter() - t0
        events = res.raw.machine.sim.events_fired
        runtime_ps = res.runtime_ps
        blob = json.dumps(res.metrics(), sort_keys=True)
        digest = hashlib.sha256(blob.encode()).hexdigest()
        best = dt if best is None or dt < best else best
    return {
        "cell": f"{E2E_PROTOCOL}/{E2E_WORKLOAD}"
                f"[refs={E2E_REFS_PER_PROC},seed={E2E_SEED}]",
        "events": events,
        "runtime_ps": runtime_ps,
        "metrics_sha256": digest,
        "wall_s": best,
        "events_per_sec": events / best,
    }


# ----------------------------------------------------------------------
# suite driver
# ----------------------------------------------------------------------

def run_suite(quick: bool = False,
              progress=None) -> Dict[str, object]:
    """Run every benchmark; ``quick`` shrinks sizes for CI smoke runs."""

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    repeats = 2 if quick else 3
    note("kernel_chain ...")
    chain = bench_kernel_chain(
        n_events=50_000 if quick else 200_000, repeats=repeats)
    note("kernel_cancel ...")
    cancel = bench_kernel_cancel(
        n_events=30_000 if quick else 120_000, repeats=repeats)
    note("network_send ...")
    send = bench_network_send(
        n_sends=20_000 if quick else 50_000, repeats=repeats)
    note("network_send_mesh ...")
    send_mesh = bench_network_send_mesh(
        n_sends=10_000 if quick else 30_000, repeats=repeats)
    note("e2e_fig6_smoke ...")
    e2e = bench_e2e_fig6_smoke(repeats=1 if quick else 3)
    return {
        "schema": SCHEMA,
        "quick": quick,
        "benchmarks": {
            "kernel_chain": chain,
            "kernel_cancel": cancel,
            "network_send": send,
            "network_send_mesh": send_mesh,
            "e2e_fig6_smoke": e2e,
        },
    }


# Deterministic (simulation-derived) fields per benchmark: two runs of the
# suite must agree on these byte-for-byte.  Timing fields are excluded.
DETERMINISTIC_FIELDS = {
    "kernel_chain": ("events",),
    "kernel_cancel": ("events", "watcher_ticks"),
    "network_send": ("sends", "link_messages", "link_bytes"),
    "network_send_mesh": ("sends", "link_messages", "link_bytes"),
    "e2e_fig6_smoke": ("cell", "events", "runtime_ps", "metrics_sha256"),
}


def deterministic_stats(report: Dict[str, object]) -> Dict[str, object]:
    """Project a suite report onto its deterministic fields only."""
    out: Dict[str, Dict[str, object]] = {}
    benchmarks = report["benchmarks"]
    for name, fields in DETERMINISTIC_FIELDS.items():
        if name in benchmarks:
            bench = benchmarks[name]
            out[name] = {f: bench[f] for f in fields if f in bench}
    return {"schema": SCHEMA, "benchmarks": out}


def compare(current: Dict[str, object], baseline: Dict[str, object],
            tolerance: float = 0.30) -> List[str]:
    """Regressions in ``current`` vs ``baseline`` (same-schema reports).

    Every ``*_per_sec`` timing field must be no more than ``tolerance``
    below the baseline value; returns a human-readable list of failures
    (empty = no regression).  Deterministic fields must match exactly —
    for the microbenchmarks only when both reports used the same sizes
    (``quick`` flag), for the end-to-end cell always (its configuration
    never varies with ``quick``).
    """
    problems: List[str] = []
    cur_b = current.get("benchmarks", {})
    base_b = baseline.get("benchmarks", {})
    same_sizes = current.get("quick") == baseline.get("quick")
    for name, base in base_b.items():
        cur = cur_b.get(name)
        if cur is None:
            problems.append(f"{name}: missing from current run")
            continue
        for key, base_val in base.items():
            if not key.endswith("_per_sec"):
                continue
            cur_val = cur.get(key, 0.0)
            floor = base_val * (1.0 - tolerance)
            if cur_val < floor:
                problems.append(
                    f"{name}.{key}: {cur_val:,.0f} < {floor:,.0f} "
                    f"(baseline {base_val:,.0f} - {tolerance:.0%})"
                )
        if not same_sizes and name != "e2e_fig6_smoke":
            continue
        for field in DETERMINISTIC_FIELDS.get(name, ()):
            if field in base and field in cur and base[field] != cur[field]:
                problems.append(
                    f"{name}.{field}: {cur[field]!r} != baseline "
                    f"{base[field]!r} (determinism)"
                )
    return problems


def attach_reference(report: Dict[str, object],
                     reference: Dict[str, object],
                     note: str = "") -> Dict[str, object]:
    """Embed a pre-optimization reference run and per-benchmark speedups."""
    ref_b = reference.get("benchmarks", {})
    speedup: Dict[str, float] = {}
    for name, cur in report["benchmarks"].items():
        base = ref_b.get(name)
        if not base:
            continue
        for key in cur:
            if key.endswith("_per_sec") and key in base and base[key]:
                speedup[name] = round(cur[key] / base[key], 3)
    report["reference"] = {"note": note, "benchmarks": ref_b}
    report["speedup"] = speedup
    return report


def render(report: Dict[str, object]) -> str:
    """Human-readable table of a suite report."""
    lines = [f"{'benchmark':18s} {'throughput':>16s} {'wall':>9s}  detail"]
    for name, bench in report["benchmarks"].items():
        rate_key = next(k for k in bench if k.endswith("_per_sec"))
        unit = rate_key[:-len("_per_sec")]
        detail = " ".join(
            f"{f}={bench[f]}" for f in DETERMINISTIC_FIELDS.get(name, ())
            if f in bench and f != "cell"
        )
        lines.append(
            f"{name:18s} {bench[rate_key]:>10,.0f} {unit + '/s':<9s}"
            f" {bench['wall_s']:>8.3f}s  {detail}"
        )
    speedup = report.get("speedup")
    if speedup:
        pretty = ", ".join(f"{k} {v:.2f}x" for k, v in speedup.items())
        lines.append(f"speedup vs reference: {pretty}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for CI smoke runs")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the full report JSON (BENCH_perf.json)")
    parser.add_argument("--stats-out", default=None, metavar="PATH",
                        help="write only the deterministic stats "
                             "(byte-identical across runs)")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="compare against a committed BENCH_perf.json; "
                             "exit 1 on regression")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed throughput drop vs baseline "
                             "(default 0.30)")
    parser.add_argument("--merge-reference", default=None, metavar="REF",
                        help="embed a reference report (pre-optimization "
                             "run) plus speedups into --out")
    parser.add_argument("--reference-note", default="",
                        help="provenance note stored with --merge-reference")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_perf",
        description="kernel/network/end-to-end performance suite",
    )
    add_arguments(parser)
    args = parser.parse_args(argv)
    return run_from_args(args)


def run_from_args(args: argparse.Namespace) -> int:
    report = run_suite(quick=args.quick,
                       progress=lambda msg: print(f"... {msg}"))
    if args.merge_reference:
        with open(args.merge_reference) as fh:
            reference = json.load(fh)
        attach_reference(report, reference, note=args.reference_note)
    print()
    print(render(report))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.stats_out:
        with open(args.stats_out, "w") as fh:
            json.dump(deterministic_stats(report), fh, indent=2,
                      sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.stats_out}")
    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        problems = compare(report, baseline, tolerance=args.tolerance)
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.check} "
              f"(tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via bench_perf.py
    sys.exit(main())
