"""Performance benchmark suite: kernel, network, and end-to-end.

The repo's figures are produced by millions of events flowing through
``Simulator._run`` and ``Network.send``; this module gives that hot path
a *perf trajectory* — canonical microbenchmarks whose results are written
to ``BENCH_perf.json`` and checked by CI for regressions.

Three layers are measured:

* ``kernel_chain``   — pure event-loop throughput: parallel self-
  rescheduling callback chains, no cancellation, no watchers.
* ``kernel_cancel``  — scheduling churn: every step schedules an extra
  event and cancels it (lazy-deletion path) under an active watcher.
* ``network_send``   — ``Network.send`` throughput on the paper's 4x4
  machine: route-cache lookups, integer link serialization, traffic
  metering and delivery scheduling.
* ``e2e_fig6_smoke`` — one real experiment cell (TokenCMP-dst1 running
  the scaled-down OLTP workload from the Figure 6 smoke test).

Every benchmark reports wall-clock *timing* fields (``wall_s``,
``*_per_sec``) and *deterministic* fields (event counts, byte totals,
metrics hashes).  :func:`deterministic_stats` projects a report onto the
deterministic fields only — two runs of the suite must produce
byte-identical projections, which is what the CI ``perf-smoke`` job
asserts.  :func:`compare` checks timing fields against a committed
baseline with a tolerance.

Run it as ``python -m repro perf`` or ``python benchmarks/bench_perf.py``
(same flags; see :func:`main`).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
from time import perf_counter
from typing import Dict, List, Optional

SCHEMA = "repro.bench_perf/1"
ALLOC_SCHEMA = "repro.bench_alloc/1"


def machine_fingerprint() -> Dict[str, str]:
    """Identify the host well enough to know when timings are comparable.

    Committed throughput baselines are only meaningful on the machine
    that produced them; :func:`compare` gates the ``*_per_sec`` fields
    only when the current fingerprint matches the baseline's (see
    docs/performance.md).  Deterministic fields are machine-independent
    and always gated.
    """
    return {
        "system": platform.system(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "impl": platform.python_implementation(),
    }

# The fig6 smoke cell: must stay in lockstep with the determinism tests
# so the metrics hash below is comparable across harness versions.  The
# cell itself now lives in repro.exp.library.fig6_smoke_cell (shared with
# the CI telemetry-smoke job); these constants remain its pinned identity.
E2E_PROTOCOL = "TokenCMP-dst1"
E2E_WORKLOAD = "oltp"
E2E_REFS_PER_PROC = 120
E2E_SEED = 1


def _noop() -> None:
    pass


# ----------------------------------------------------------------------
# kernel microbenchmarks
# ----------------------------------------------------------------------

def bench_kernel_chain(n_events: int = 200_000, chains: int = 4,
                       repeats: int = 3) -> Dict[str, object]:
    """Raw event-loop throughput: ``chains`` self-rescheduling callbacks.

    Each chain schedules its own next step, so the heap stays small and
    the measurement isolates pop/dispatch/push cost — the floor every
    simulated machine pays per event.
    """
    from repro.sim.kernel import Simulator

    per_chain = n_events // chains
    best = None
    events = 0
    for _ in range(repeats):
        sim = Simulator()

        def make(sim=sim, per_chain=per_chain):
            remaining = [per_chain]

            def tick() -> None:
                remaining[0] -= 1
                if remaining[0] > 0:
                    sim.schedule(10, tick)

            return tick

        for _c in range(chains):
            sim.schedule(10, make())
        t0 = perf_counter()
        sim.run()
        dt = perf_counter() - t0
        events = sim.events_fired
        best = dt if best is None or dt < best else best
    return {
        "events": events,
        "wall_s": best,
        "events_per_sec": events / best,
    }


def bench_kernel_cancel(n_events: int = 120_000,
                        repeats: int = 3) -> Dict[str, object]:
    """Scheduling churn: every step also schedules-and-cancels an event,
    with a watcher ticking every 256 fired events (threshold path)."""
    from repro.sim.kernel import Simulator

    best = None
    fired = 0
    ticks = 0
    for _ in range(repeats):
        sim = Simulator()
        watcher_ticks = [0]

        def watch(watcher_ticks=watcher_ticks) -> None:
            watcher_ticks[0] += 1

        sim.add_watcher(watch, every_events=256)
        remaining = [n_events]

        def tick(sim=sim, remaining=remaining) -> None:
            sim.schedule(50, _noop).cancel()
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(10, tick)

        sim.schedule(10, tick)
        t0 = perf_counter()
        sim.run()
        dt = perf_counter() - t0
        fired = sim.events_fired
        ticks = watcher_ticks[0]
        best = dt if best is None or dt < best else best
    return {
        "events": fired,
        "watcher_ticks": ticks,
        "wall_s": best,
        "events_per_sec": fired / best,
    }


# ----------------------------------------------------------------------
# network microbenchmark
# ----------------------------------------------------------------------

def bench_network_send(n_sends: int = 50_000,
                       repeats: int = 3) -> Dict[str, object]:
    """``Network.send`` throughput on the paper's 4x4 machine.

    A fixed rotation of destinations (local L1s/L2 banks, remote chips,
    memory controllers) exercises intra, inter and memory routes; the
    endpoints are no-ops so only the interconnect layer is measured.
    """
    from repro.common.params import SystemParams
    from repro.common.types import NodeId, NodeKind
    from repro.interconnect.message import Message, MsgType
    from repro.interconnect.network import Network
    from repro.interconnect.traffic import TrafficMeter
    from repro.sim.kernel import Simulator

    best = None
    total_bytes = 0
    total_msgs = 0
    for _ in range(repeats):
        params = SystemParams()
        sim = Simulator()
        meter = TrafficMeter()
        net = Network(sim, params, meter)
        nodes = []
        for chip in range(params.num_chips):
            nodes += params.chip_l1s(chip) + params.chip_l2_banks(chip)
        for chip in range(params.num_chips):
            nodes.append(NodeId(NodeKind.MEM, chip))
        for node in nodes:
            net.register(node, _noop_handler)
        src = nodes[0]
        n_nodes = len(nodes)
        msgs = [
            Message(MsgType.TOK_DATA, src, nodes[i % n_nodes], addr=i * 64)
            for i in range(n_sends)
        ]
        t0 = perf_counter()
        for msg in msgs:
            net.send(msg)
        dt = perf_counter() - t0
        total_bytes = sum(meter.bytes.values())
        total_msgs = sum(meter.messages.values())
        best = dt if best is None or dt < best else best
    return {
        "sends": n_sends,
        "link_messages": total_msgs,
        "link_bytes": total_bytes,
        "wall_s": best,
        "sends_per_sec": n_sends / best,
    }


def _noop_handler(_msg) -> None:
    pass


def bench_network_send_mesh(n_sends: int = 30_000,
                            repeats: int = 3) -> Dict[str, object]:
    """``Network.send`` throughput on an 8-CMP mesh (graph routing).

    Same shape as :func:`bench_network_send` but on a multi-hop fabric
    compiled by the declarative topology builder, so the regression gate
    covers graph-routed construction + the route cache on long paths.
    """
    from repro.common.params import SystemParams
    from repro.common.types import NodeId, NodeKind
    from repro.interconnect.message import Message, MsgType
    from repro.interconnect.network import Network
    from repro.interconnect.topology import Topology
    from repro.interconnect.traffic import TrafficMeter
    from repro.sim.kernel import Simulator

    best = None
    total_bytes = 0
    total_msgs = 0
    for _ in range(repeats):
        params = SystemParams(num_chips=8, procs_per_chip=2,
                              tokens_per_block=64, topology=Topology.mesh())
        sim = Simulator()
        meter = TrafficMeter()
        net = Network(sim, params, meter)
        nodes = []
        for chip in range(params.num_chips):
            nodes += params.chip_l1s(chip) + params.chip_l2_banks(chip)
        for chip in range(params.num_chips):
            nodes.append(NodeId(NodeKind.MEM, chip))
        for node in nodes:
            net.register(node, _noop_handler)
        src = nodes[0]
        n_nodes = len(nodes)
        msgs = [
            Message(MsgType.TOK_DATA, src, nodes[i % n_nodes], addr=i * 64)
            for i in range(n_sends)
        ]
        t0 = perf_counter()
        for msg in msgs:
            net.send(msg)
        dt = perf_counter() - t0
        total_bytes = sum(meter.bytes.values())
        total_msgs = sum(meter.messages.values())
        best = dt if best is None or dt < best else best
    return {
        "sends": n_sends,
        "link_messages": total_msgs,
        "link_bytes": total_bytes,
        "wall_s": best,
        "sends_per_sec": n_sends / best,
    }


# ----------------------------------------------------------------------
# end-to-end benchmark
# ----------------------------------------------------------------------

def bench_e2e_fig6_smoke(repeats: int = 3) -> Dict[str, object]:
    """One real experiment cell: the Figure 6 smoke configuration.

    Reports the cell's fired-event count, runtime and a SHA-256 over its
    canonical metrics JSON — the same digest the determinism tests pin,
    so *any* behavioural drift in the optimised hot path shows up here.
    """
    from repro.exp.library import fig6_smoke_cell
    from repro.exp.runner import run_cell

    cell = fig6_smoke_cell()
    best = None
    events = 0
    runtime_ps = 0
    digest = ""
    for _ in range(repeats):
        t0 = perf_counter()
        res = run_cell(cell)
        dt = perf_counter() - t0
        events = res.raw.machine.sim.events_fired
        runtime_ps = res.runtime_ps
        blob = json.dumps(res.metrics(), sort_keys=True)
        digest = hashlib.sha256(blob.encode()).hexdigest()
        best = dt if best is None or dt < best else best
    return {
        "cell": f"{E2E_PROTOCOL}/{E2E_WORKLOAD}"
                f"[refs={E2E_REFS_PER_PROC},seed={E2E_SEED}]",
        "events": events,
        "runtime_ps": runtime_ps,
        "metrics_sha256": digest,
        "wall_s": best,
        "events_per_sec": events / best,
    }


# ----------------------------------------------------------------------
# allocation accounting
# ----------------------------------------------------------------------

def _saturate_type_freelists() -> None:
    """Fill CPython's per-type freelists to capacity.

    ``sys.getallocatedblocks()`` counts an object sitting on a type
    freelist (list/tuple/dict/float caches) as still allocated, so
    freelist *occupancy* at a snapshot depends on everything the
    interpreter did before the benchmark — CLI imports, a prior test,
    the REPL.  Allocating a burst of each shape (held live together,
    forcing fresh blocks) and dropping it leaves every relevant
    freelist exactly at capacity, making the subsequent window deltas
    independent of interpreter history.
    """
    hoard = []
    for i in range(4096):
        hoard.append([i])
        hoard.append({i: i})
        hoard.append(float(i) + 0.5)
        for width in range(1, 21):
            hoard.append((i,) * width)
    del hoard


def bench_alloc_steady_state(warmup_events: int = 40_000,
                             window_events: int = 10_000,
                             windows: int = 8) -> Dict[str, object]:
    """Steady-state allocation accounting on the fig6 smoke cell.

    Runs the pinned cell's machine in event windows and samples
    ``sys.getallocatedblocks()`` (gc disabled, so the deltas are a pure
    function of the simulation) plus the two freelist "fresh allocation"
    counters — ``Simulator.event_news`` and ``MessagePool.news``.  After
    warmup both counters must stay flat: every event record and every
    coherence message is recycled, which is the zero-allocation claim
    the CI ``alloc-gate`` job pins.

    ``blocks_delta`` per window is *near* zero rather than exactly zero:
    retained measurement state (latency-percentile samples, first-touch
    interning) still grows at a decaying rate, and the exact count
    wobbles by ±1 across processes (id-hashed enum members make some
    set/dict layouts address-dependent), so the raw sawtooth is
    informational.  What the gate pins exactly is ``event_news`` /
    ``pool_news`` (must be all zero) and ``blocks_within_budget``
    (every window delta under :data:`BLOCKS_WINDOW_BUDGET`) — see
    :func:`alloc_report` for the committed projection.
    """
    import gc

    from repro.cpu.thread import ProcThread
    from repro.exp.library import fig6_smoke_cell
    from repro.workloads import make_workload

    cell = fig6_smoke_cell()
    machine = cell.machine.build()
    workload = make_workload(
        cell.workload, cell.params, seed=cell.seed, **cell.kwargs
    )
    sim = machine.sim
    pool = machine.net.pool
    threads = [
        ProcThread(sim, machine.sequencers[p], gen, lambda _t: None)
        for p, gen in enumerate(workload.generators())
    ]
    for thread in threads:
        thread.start()
    sim.run(max_events=warmup_events)

    blocks_delta = [0] * windows
    event_news = [0] * windows
    pool_news = [0] * windows
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        _saturate_type_freelists()
        base_blocks = sys.getallocatedblocks()
        base_events = sim.event_news
        base_pool = pool.news
        for i in range(windows):
            sim.run(max_events=window_events)
            blocks = sys.getallocatedblocks()
            blocks_delta[i] = blocks - base_blocks
            base_blocks = blocks
            event_news[i] = sim.event_news - base_events
            base_events = sim.event_news
            pool_news[i] = pool.news - base_pool
            base_pool = pool.news
    finally:
        if gc_was_enabled:
            gc.enable()
        gc.collect()
    return {
        "cell": f"{E2E_PROTOCOL}/{E2E_WORKLOAD}"
                f"[refs={E2E_REFS_PER_PROC},seed={E2E_SEED}]",
        "warmup_events": warmup_events,
        "window_events": window_events,
        "windows": windows,
        "blocks_delta": blocks_delta,
        "blocks_delta_max_abs": max(abs(d) for d in blocks_delta),
        "blocks_window_budget": BLOCKS_WINDOW_BUDGET,
        "blocks_within_budget":
            max(abs(d) for d in blocks_delta) <= BLOCKS_WINDOW_BUDGET,
        "event_news": event_news,
        "pool_news": pool_news,
        "pool": pool.stats(),
        "pooling_enabled": pool.enabled,
    }


# Retained-growth ceiling per measurement window, in allocator blocks.
# The steady-state sawtooth (latency-percentile sample retention,
# first-touch interning, fan-out plan rows filling to their bound and
# clearing) peaks around 0.45 blocks/event and is bounded, not
# accumulating; a single leaked message or event record per simulated
# event would cost ~4+ blocks/event (~40k/window), so this budget keeps
# ~5x of air while still catching any per-event leak.
BLOCKS_WINDOW_BUDGET = 8192

# The committed projection of a steady-state run: every field here is
# byte-reproducible across processes and machines (counts of *fresh*
# freelist constructions, budget booleans, run geometry) — unlike the
# raw ``blocks_delta`` sawtooth, which wobbles ±1 with address layout.
ALLOC_DETERMINISTIC_FIELDS = (
    "cell",
    "warmup_events",
    "window_events",
    "windows",
    "blocks_window_budget",
    "blocks_within_budget",
    "event_news",
    "pool_news",
    "pooling_enabled",
)


def _python_key() -> str:
    return f"{sys.version_info[0]}.{sys.version_info[1]}"


def alloc_report(full: Optional[Dict[str, object]] = None
                 ) -> Dict[str, object]:
    """The committed-file shape: alloc stats keyed by Python version.

    Only the :data:`ALLOC_DETERMINISTIC_FIELDS` projection is included,
    so two runs of the gate — on any machine — produce byte-identical
    files.  Entries are keyed by Python major.minor because freelist
    and allocator behaviour can shift between interpreter versions.
    """
    if full is None:
        full = bench_alloc_steady_state()
    steady = {k: full[k] for k in ALLOC_DETERMINISTIC_FIELDS}
    return {
        "schema": ALLOC_SCHEMA,
        "python": {_python_key(): {
            "steady_state": steady,
        }},
    }


def compare_alloc(current: Dict[str, object],
                  committed: Dict[str, object]) -> List[str]:
    """Zero-tolerance allocation gate: exact match for this interpreter.

    Returns human-readable failures (empty = gate passes).  A missing
    entry for the running Python version is a failure — regenerate the
    committed file with ``--alloc-out`` on the version the gate runs.
    """
    key = _python_key()
    base = committed.get("python", {}).get(key)
    if base is None:
        return [
            f"BENCH_alloc.json has no entry for Python {key}; regenerate "
            f"with: python -m repro perf --quick --alloc-out BENCH_alloc.json"
        ]
    cur = current["python"][key]
    problems: List[str] = []
    for bench, base_stats in base.items():
        cur_stats = cur.get(bench)
        if cur_stats is None:
            problems.append(f"alloc.{bench}: missing from current run")
            continue
        for field, base_val in base_stats.items():
            cur_val = cur_stats.get(field)
            if cur_val != base_val:
                problems.append(
                    f"alloc.{bench}.{field}: {cur_val!r} != committed "
                    f"{base_val!r} (zero tolerance)"
                )
    return problems


# ----------------------------------------------------------------------
# suite driver
# ----------------------------------------------------------------------

def run_suite(quick: bool = False,
              progress=None) -> Dict[str, object]:
    """Run every benchmark; ``quick`` shrinks sizes for CI smoke runs."""

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    repeats = 2 if quick else 3
    note("kernel_chain ...")
    chain = bench_kernel_chain(
        n_events=50_000 if quick else 200_000, repeats=repeats)
    note("kernel_cancel ...")
    cancel = bench_kernel_cancel(
        n_events=30_000 if quick else 120_000, repeats=repeats)
    note("network_send ...")
    send = bench_network_send(
        n_sends=20_000 if quick else 50_000, repeats=repeats)
    note("network_send_mesh ...")
    send_mesh = bench_network_send_mesh(
        n_sends=10_000 if quick else 30_000, repeats=repeats)
    note("e2e_fig6_smoke ...")
    e2e = bench_e2e_fig6_smoke(repeats=1 if quick else 3)
    return {
        "schema": SCHEMA,
        "quick": quick,
        "host": machine_fingerprint(),
        "benchmarks": {
            "kernel_chain": chain,
            "kernel_cancel": cancel,
            "network_send": send,
            "network_send_mesh": send_mesh,
            "e2e_fig6_smoke": e2e,
        },
    }


# Deterministic (simulation-derived) fields per benchmark: two runs of the
# suite must agree on these byte-for-byte.  Timing fields are excluded.
DETERMINISTIC_FIELDS = {
    "kernel_chain": ("events",),
    "kernel_cancel": ("events", "watcher_ticks"),
    "network_send": ("sends", "link_messages", "link_bytes"),
    "network_send_mesh": ("sends", "link_messages", "link_bytes"),
    "e2e_fig6_smoke": ("cell", "events", "runtime_ps", "metrics_sha256"),
}


def deterministic_stats(report: Dict[str, object]) -> Dict[str, object]:
    """Project a suite report onto its deterministic fields only."""
    out: Dict[str, Dict[str, object]] = {}
    benchmarks = report["benchmarks"]
    for name, fields in DETERMINISTIC_FIELDS.items():
        if name in benchmarks:
            bench = benchmarks[name]
            out[name] = {f: bench[f] for f in fields if f in bench}
    return {"schema": SCHEMA, "benchmarks": out}


def compare(current: Dict[str, object], baseline: Dict[str, object],
            tolerance: float = 0.30) -> List[str]:
    """Regressions in ``current`` vs ``baseline`` (same-schema reports).

    Every ``*_per_sec`` timing field must be no more than ``tolerance``
    below the baseline value; returns a human-readable list of failures
    (empty = no regression).  Deterministic fields must match exactly —
    for the microbenchmarks only when both reports used the same sizes
    (``quick`` flag), for the end-to-end cell always (its configuration
    never varies with ``quick``).

    Timing fields are gated only when both reports carry a ``host``
    fingerprint and the fingerprints match: wall-clock throughput from a
    different machine (or Python build) is not a regression baseline —
    see docs/performance.md.  Deterministic fields are always gated.
    """
    problems: List[str] = []
    cur_b = current.get("benchmarks", {})
    base_b = baseline.get("benchmarks", {})
    same_sizes = current.get("quick") == baseline.get("quick")
    hosts_known = "host" in current and "host" in baseline
    gate_timing = not hosts_known or current["host"] == baseline["host"]
    for name, base in base_b.items():
        cur = cur_b.get(name)
        if cur is None:
            problems.append(f"{name}: missing from current run")
            continue
        for key, base_val in base.items():
            if not gate_timing or not key.endswith("_per_sec"):
                continue
            cur_val = cur.get(key, 0.0)
            floor = base_val * (1.0 - tolerance)
            if cur_val < floor:
                problems.append(
                    f"{name}.{key}: {cur_val:,.0f} < {floor:,.0f} "
                    f"(baseline {base_val:,.0f} - {tolerance:.0%})"
                )
        if not same_sizes and name != "e2e_fig6_smoke":
            continue
        for field in DETERMINISTIC_FIELDS.get(name, ()):
            if field in base and field in cur and base[field] != cur[field]:
                problems.append(
                    f"{name}.{field}: {cur[field]!r} != baseline "
                    f"{base[field]!r} (determinism)"
                )
    return problems


def attach_reference(report: Dict[str, object],
                     reference: Dict[str, object],
                     note: str = "") -> Dict[str, object]:
    """Embed a pre-optimization reference run and per-benchmark speedups."""
    ref_b = reference.get("benchmarks", {})
    speedup: Dict[str, float] = {}
    for name, cur in report["benchmarks"].items():
        base = ref_b.get(name)
        if not base:
            continue
        for key in cur:
            if key.endswith("_per_sec") and key in base and base[key]:
                speedup[name] = round(cur[key] / base[key], 3)
    report["reference"] = {"note": note, "benchmarks": ref_b}
    report["speedup"] = speedup
    return report


def render(report: Dict[str, object]) -> str:
    """Human-readable table of a suite report."""
    lines = [f"{'benchmark':18s} {'throughput':>16s} {'wall':>9s}  detail"]
    for name, bench in report["benchmarks"].items():
        rate_key = next(k for k in bench if k.endswith("_per_sec"))
        unit = rate_key[:-len("_per_sec")]
        detail = " ".join(
            f"{f}={bench[f]}" for f in DETERMINISTIC_FIELDS.get(name, ())
            if f in bench and f != "cell"
        )
        lines.append(
            f"{name:18s} {bench[rate_key]:>10,.0f} {unit + '/s':<9s}"
            f" {bench['wall_s']:>8.3f}s  {detail}"
        )
    speedup = report.get("speedup")
    if speedup:
        pretty = ", ".join(f"{k} {v:.2f}x" for k, v in speedup.items())
        lines.append(f"speedup vs reference: {pretty}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for CI smoke runs")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the full report JSON (BENCH_perf.json)")
    parser.add_argument("--stats-out", default=None, metavar="PATH",
                        help="write only the deterministic stats "
                             "(byte-identical across runs)")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="compare against a committed BENCH_perf.json; "
                             "exit 1 on regression")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed throughput drop vs baseline "
                             "(default 0.30)")
    parser.add_argument("--merge-reference", default=None, metavar="REF",
                        help="embed a reference report (pre-optimization "
                             "run) plus speedups into --out")
    parser.add_argument("--reference-note", default="",
                        help="provenance note stored with --merge-reference")
    parser.add_argument("--alloc-out", default=None, metavar="PATH",
                        help="run the allocation benchmark and write/merge "
                             "its report (BENCH_alloc.json, keyed by Python "
                             "version)")
    parser.add_argument("--alloc-check", default=None, metavar="BASELINE",
                        help="run the allocation benchmark and compare "
                             "exactly (zero tolerance) against a committed "
                             "BENCH_alloc.json; exit 1 on any drift")
    parser.add_argument("--alloc-only", action="store_true",
                        help="skip the timing suite; only run the "
                             "allocation benchmark (with --alloc-out / "
                             "--alloc-check)")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_perf",
        description="kernel/network/end-to-end performance suite",
    )
    add_arguments(parser)
    args = parser.parse_args(argv)
    return run_from_args(args)


def _run_alloc_from_args(args: argparse.Namespace) -> int:
    print("... alloc (steady-state allocation accounting)")
    full = bench_alloc_steady_state()
    current = alloc_report(full)
    print(f"alloc: event_news={full['event_news']} "
          f"pool_news={full['pool_news']} "
          f"blocks_delta={full['blocks_delta']} "
          f"(budget {full['blocks_window_budget']}/window, "
          f"within={full['blocks_within_budget']})")
    if args.alloc_out:
        merged = current
        if os.path.exists(args.alloc_out):
            with open(args.alloc_out) as fh:
                merged = json.load(fh)
            # Keep other interpreters' entries; replace only ours.
            merged["schema"] = ALLOC_SCHEMA
            merged.setdefault("python", {}).update(current["python"])
        with open(args.alloc_out, "w") as fh:
            json.dump(merged, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.alloc_out}")
    if args.alloc_check:
        with open(args.alloc_check) as fh:
            committed = json.load(fh)
        problems = compare_alloc(current, committed)
        if problems:
            for problem in problems:
                print(f"ALLOC REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(f"allocation accounting identical to {args.alloc_check} "
              f"(Python {_python_key()}, zero tolerance)")
    return 0


def run_from_args(args: argparse.Namespace) -> int:
    if getattr(args, "alloc_only", False):
        return _run_alloc_from_args(args)
    report = run_suite(quick=args.quick,
                       progress=lambda msg: print(f"... {msg}"))
    if args.merge_reference:
        with open(args.merge_reference) as fh:
            reference = json.load(fh)
        attach_reference(report, reference, note=args.reference_note)
    print()
    print(render(report))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.stats_out:
        with open(args.stats_out, "w") as fh:
            json.dump(deterministic_stats(report), fh, indent=2,
                      sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.stats_out}")
    rc = 0
    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        if "host" in baseline and baseline["host"] != report["host"]:
            print("note: baseline was recorded on a different machine; "
                  "timing is not gated (deterministic fields still are) — "
                  "see docs/performance.md", file=sys.stderr)
        problems = compare(report, baseline, tolerance=args.tolerance)
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.check} "
              f"(tolerance {args.tolerance:.0%})")
    if args.alloc_out or args.alloc_check:
        rc = _run_alloc_from_args(args)
    return rc


if __name__ == "__main__":  # pragma: no cover - exercised via bench_perf.py
    sys.exit(main())
