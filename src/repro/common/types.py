"""Core identifier and unit types shared across the simulator.

Time is kept internally in integer **picoseconds** so that bandwidth
serialization delays (fractions of a nanosecond) stay exact and event
ordering is deterministic.  Public configuration is written in nanoseconds
and converted with :func:`ns`.
"""

from __future__ import annotations

import enum
from typing import NamedTuple

PS_PER_NS = 1000


def ns(value: float) -> int:
    """Convert a duration in nanoseconds to integer picoseconds."""
    return round(value * PS_PER_NS)


def to_ns(value_ps: int) -> float:
    """Convert integer picoseconds back to (possibly fractional) nanoseconds."""
    return value_ps / PS_PER_NS


class NodeKind(str, enum.Enum):
    """The kind of coherence endpoint a :class:`NodeId` names.

    ``str`` is mixed in purely for speed: :class:`NodeId` tuples key the
    interconnect's route and endpoint tables, and the mixin gives members
    the C-level ``str.__hash__``/``str.__eq__`` instead of the
    Python-level ``enum`` ones — the hot ``send`` path hashes millions of
    these per run.  Values and identity semantics are unchanged.
    """

    L1D = "l1d"
    L1I = "l1i"
    L2 = "l2"
    IFACE = "iface"  # a chip's global interconnect interface
    MEM = "mem"  # a chip's off-chip memory/directory controller
    ARB = "arb"  # persistent-request arbiter (co-located with MEM)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NodeKind.{self.name}"


class NodeId(NamedTuple):
    """Globally unique name of a coherence endpoint.

    ``chip`` is the CMP index the endpoint belongs to (memory controllers
    are per-CMP in the target system, Table 3).  ``index`` distinguishes
    endpoints of the same kind on one chip: the processor number for L1
    caches, the bank number for L2 banks, and 0 otherwise.
    """

    kind: NodeKind
    chip: int
    index: int = 0

    def __str__(self) -> str:
        return f"{self.kind.value}[{self.chip}.{self.index}]"

    @property
    def is_on_chip(self) -> bool:
        """True for endpoints that sit on the CMP die itself."""
        return self.kind in (NodeKind.L1D, NodeKind.L1I, NodeKind.L2)


class Address(int):
    """A physical byte address.  Plain ``int`` with a nicer repr."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Address({int(self):#x})"
