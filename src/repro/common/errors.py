"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """Raised for invalid or inconsistent configuration parameters."""


class ProtocolError(ReproError):
    """Raised when a coherence controller observes an impossible event.

    A ``ProtocolError`` always indicates a bug in a protocol implementation
    (e.g. token conservation violated, an unexpected message in a state),
    never a legal race.
    """


class DeadlockError(ReproError):
    """Raised when the simulator runs out of events before workloads finish.

    ``diagnostics`` holds a :class:`repro.faults.watchdog.LivenessDiagnostics`
    snapshot (token census, persistent tables, arbiter queues, in-flight
    messages) when a liveness watchdog was attached to the machine.
    """

    diagnostics = None


class StarvationError(DeadlockError):
    """Raised by the liveness watchdog when a processor stops retiring.

    Distinct from :class:`DeadlockError` proper: the simulation is still
    firing events (tokens may even be moving), but some processor has not
    completed an instruction within its simulated-time budget — the
    forward-progress guarantee of the correctness substrate is violated.
    """


class VerificationError(ReproError):
    """Raised by the model checker when a checked property is violated."""
