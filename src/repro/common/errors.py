"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """Raised for invalid or inconsistent configuration parameters."""


class ProtocolError(ReproError):
    """Raised when a coherence controller observes an impossible event.

    A ``ProtocolError`` always indicates a bug in a protocol implementation
    (e.g. token conservation violated, an unexpected message in a state),
    never a legal race.
    """


class DeadlockError(ReproError):
    """Raised when the simulator runs out of events before workloads finish."""


class VerificationError(ReproError):
    """Raised by the model checker when a checked property is violated."""
