"""Lightweight statistics collection.

A :class:`Stats` object is shared by all controllers in one simulated
machine.  It holds named counters and simple online summaries; the traffic
meter (bytes per message class per network) lives in
:mod:`repro.interconnect.traffic` but registers itself here so reports can
find it.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict

#: Percentiles reported everywhere (summary exports, span reports, CLI).
PERCENTILES = (50, 95, 99)


class Summary:
    """Online count/sum/min/max summary plus approximate percentiles.

    Percentiles come from a bounded systematic sample: every value is kept
    until the buffer fills, then the keep-rate halves (deterministic, no
    RNG) — accurate enough for reporting p50/p95/p99 of miss latencies
    without storing whole runs.
    """

    __slots__ = ("count", "total", "min", "max", "_sample", "_stride", "_limit")

    def __init__(self, sample_limit: int = 2048) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._sample = []
        self._stride = 1
        self._limit = sample_limit

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if (self.count - 1) % self._stride == 0:
            self._sample.append(value)
            if len(self._sample) >= self._limit:
                self._sample = self._sample[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate q-quantile (0 <= q <= 100) of the sampled stream."""
        if not self._sample:
            return 0.0
        ordered = sorted(self._sample)
        index = min(len(ordered) - 1, max(0, round(q / 100 * (len(ordered) - 1))))
        return ordered[index]

    def merge(self, other: "Summary") -> "Summary":
        """Fold ``other`` into this summary in place (and return self).

        The percentile samples are combined at a common stride: the finer
        sample is downsampled (deterministically, ``[::2]`` per halving)
        until both represent the same keep-rate, then concatenated and
        re-halved while over the buffer limit — the same reduction
        :meth:`add` applies, so a merged summary behaves like one built
        from the concatenated streams.
        """
        if other.count == 0:
            return self
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        mine, my_stride = self._sample, self._stride
        theirs, their_stride = other._sample, other._stride
        while my_stride < their_stride:
            mine = mine[::2]
            my_stride *= 2
        while their_stride < my_stride:
            theirs = theirs[::2]
            their_stride *= 2
        merged = mine + theirs
        while len(merged) >= self._limit:
            merged = merged[::2]
            my_stride *= 2
        self._sample = merged
        self._stride = my_stride
        return self

    def to_dict(self) -> Dict[str, float]:
        """count/total/mean/min/max/p50/p95/p99 as plain floats (JSON-safe)."""
        if not self.count:
            return {"count": 0, "total": 0.0}
        record = {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }
        for q in PERCENTILES:
            record[f"p{q}"] = self.percentile(q)
        return record

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Summary(n={self.count}, mean={self.mean:.1f})"


class Stats:
    """Named counters plus named :class:`Summary` streams."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = defaultdict(int)
        self.summaries: Dict[str, Summary] = defaultdict(Summary)

    def bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def sample(self, name: str, value: float) -> None:
        self.summaries[name].add(value)

    def get(self, name: str) -> int:
        return self.counters.get(name, 0)

    def ratio(self, numerator: str, denominator: str) -> float:
        den = self.counters.get(denominator, 0)
        return self.counters.get(numerator, 0) / den if den else 0.0

    def snapshot(self) -> Dict[str, int]:
        return dict(self.counters)

    def to_dict(self) -> Dict[str, dict]:
        """Counters plus every non-empty summary, fully serialized.

        This is the canonical stats export: :class:`repro.exp.result
        .CellResult` and the metrics-JSON document both build on it, so a
        summary's field layout is defined in exactly one place
        (:meth:`Summary.to_dict`).
        """
        return {
            "counters": dict(self.counters),
            "summaries": {
                name: s.to_dict() for name, s in self.summaries.items() if s.count
            },
        }
