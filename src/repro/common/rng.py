"""Deterministic random-number helpers.

Every stochastic component (workload think times, pseudo-random backoff,
predictor reset) draws from its own :class:`random.Random` stream derived
from a master seed, so runs are reproducible across processes and
components do not perturb each other when one of them changes how many
numbers it draws.  Seeds are derived with SHA-256 (not ``hash()``, whose
string hashing is randomized per process).
"""

from __future__ import annotations

import hashlib
import random


def substream(master_seed: int, *tags: object) -> random.Random:
    """Return an independent RNG derived from ``master_seed`` and ``tags``."""
    label = repr(master_seed) + "/" + "/".join(str(t) for t in tags)
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))
