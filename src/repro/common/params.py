"""Target system parameters (paper Table 3) and address mapping helpers.

Every latency is stored in picoseconds (see :mod:`repro.common.types`);
the constructor accepts nanoseconds for readability.  The defaults encode
the 4-CMP x 4-processor target machine evaluated in the paper.
"""

from __future__ import annotations

import dataclasses

from repro.common.errors import ConfigError
from repro.common.types import NodeId, NodeKind, ns
from repro.interconnect.topology import Topology


@dataclasses.dataclass(frozen=True)
class SystemParams:
    """Machine-level configuration shared by all protocols.

    The defaults reproduce paper Table 3.  Construct with keyword
    arguments in *nanoseconds* / bytes / counts; latencies are converted
    to picoseconds on construction and exposed through ``*_ps`` fields.
    """

    # Topology.
    num_chips: int = 4
    procs_per_chip: int = 4
    l2_banks_per_chip: int = 4
    # Interconnect fabric shape (declarative; see repro.interconnect.topology).
    # The default compiles to exactly the paper's Table-3 star/point-to-point
    # machine; mesh/torus/fattree generators scale past it.
    topology: Topology = dataclasses.field(default_factory=Topology)

    # Geometry.
    block_size: int = 64
    l1_size: int = 128 * 1024
    l1_assoc: int = 4
    l2_bank_size: int = 2 * 1024 * 1024  # 8 MB shared L2 in 4 banks
    l2_assoc: int = 4

    # Latencies (nanoseconds as given in Table 3).
    l1_latency_ns: float = 2.0
    l2_latency_ns: float = 7.0
    mem_ctrl_latency_ns: float = 6.0
    dram_latency_ns: float = 80.0
    intra_link_latency_ns: float = 2.0
    inter_link_latency_ns: float = 20.0
    mem_link_latency_ns: float = 20.0

    # Bandwidths (bytes per nanosecond == GB/s).
    intra_link_bw: float = 64.0
    inter_link_bw: float = 16.0
    mem_link_bw: float = 64.0

    # Message sizes (Section 8: data 72 bytes, control 8 bytes).
    data_msg_bytes: int = 72
    control_msg_bytes: int = 8

    # Token coherence knobs.
    tokens_per_block: int = 64
    response_delay_ns: float = 80.0  # bounded hold window (Section 3.2)

    def __post_init__(self) -> None:
        if self.num_chips < 1 or self.procs_per_chip < 1:
            raise ConfigError("need at least one chip and one processor")
        if self.block_size & (self.block_size - 1):
            raise ConfigError("block_size must be a power of two")
        if self.l2_banks_per_chip < 1:
            raise ConfigError("need at least one L2 bank per chip")
        if not isinstance(self.topology, Topology):
            raise ConfigError(
                "topology must be a repro.interconnect.topology.Topology "
                "(e.g. Topology.mesh()); got "
                f"{type(self.topology).__name__}"
            )
        min_tokens = self.num_caches + 1
        if self.tokens_per_block < min_tokens:
            raise ConfigError(
                f"tokens_per_block={self.tokens_per_block} must exceed the "
                f"number of caches ({self.num_caches}) for persistent reads"
            )

    # ------------------------------------------------------------------
    # Derived counts.
    # ------------------------------------------------------------------
    @property
    def num_procs(self) -> int:
        return self.num_chips * self.procs_per_chip

    @property
    def num_caches(self) -> int:
        """Caches that may hold tokens for one block.

        Per chip: every L1D, every L1I, and the single home L2 bank the
        block maps to.
        """
        return self.num_chips * (2 * self.procs_per_chip + 1)

    @property
    def caches_per_chip(self) -> int:
        """C in Section 4: caches on one CMP that can hold a given block."""
        return 2 * self.procs_per_chip + 1

    # ------------------------------------------------------------------
    # Latency accessors in picoseconds.
    # ------------------------------------------------------------------
    @property
    def l1_latency_ps(self) -> int:
        return ns(self.l1_latency_ns)

    @property
    def l2_latency_ps(self) -> int:
        return ns(self.l2_latency_ns)

    @property
    def mem_ctrl_latency_ps(self) -> int:
        return ns(self.mem_ctrl_latency_ns)

    @property
    def dram_latency_ps(self) -> int:
        return ns(self.dram_latency_ns)

    @property
    def intra_link_latency_ps(self) -> int:
        return ns(self.intra_link_latency_ns)

    @property
    def inter_link_latency_ps(self) -> int:
        return ns(self.inter_link_latency_ns)

    @property
    def mem_link_latency_ps(self) -> int:
        return ns(self.mem_link_latency_ns)

    @property
    def response_delay_ps(self) -> int:
        return ns(self.response_delay_ns)

    # ------------------------------------------------------------------
    # Address mapping.
    # ------------------------------------------------------------------
    def block_of(self, addr: int) -> int:
        """Return the block-aligned address containing ``addr``."""
        return addr & ~(self.block_size - 1)

    def block_index(self, addr: int) -> int:
        return addr // self.block_size

    def home_chip(self, addr: int) -> int:
        """Chip whose memory controller is home for ``addr`` (interleaved)."""
        return self.block_index(addr) % self.num_chips

    def home_mem(self, addr: int) -> NodeId:
        return NodeId(NodeKind.MEM, self.home_chip(addr))

    def home_arbiter(self, addr: int) -> NodeId:
        return NodeId(NodeKind.ARB, self.home_chip(addr))

    def l2_bank(self, addr: int, chip: int) -> NodeId:
        """The L2 bank on ``chip`` responsible for ``addr`` (interleaved)."""
        bank = (self.block_index(addr) // self.num_chips) % self.l2_banks_per_chip
        return NodeId(NodeKind.L2, chip, bank)

    def proc_chip(self, proc: int) -> int:
        return proc // self.procs_per_chip

    def l1d_of(self, proc: int) -> NodeId:
        return NodeId(NodeKind.L1D, self.proc_chip(proc), proc % self.procs_per_chip)

    def l1i_of(self, proc: int) -> NodeId:
        return NodeId(NodeKind.L1I, self.proc_chip(proc), proc % self.procs_per_chip)

    def iface_of(self, chip: int) -> NodeId:
        return NodeId(NodeKind.IFACE, chip)

    # ------------------------------------------------------------------
    # Enumerations used by builders and broadcast logic.
    # ------------------------------------------------------------------
    def chip_l1s(self, chip: int, include_icache: bool = True):
        """All L1 cache node ids on ``chip``."""
        out = []
        for i in range(self.procs_per_chip):
            out.append(NodeId(NodeKind.L1D, chip, i))
            if include_icache:
                out.append(NodeId(NodeKind.L1I, chip, i))
        return out

    def chip_l2_banks(self, chip: int):
        return [NodeId(NodeKind.L2, chip, b) for b in range(self.l2_banks_per_chip)]

    def all_chips(self):
        return list(range(self.num_chips))

    def token_holders(self, addr: int, include_icache: bool = True):
        """Every cache node that may hold tokens for ``addr``."""
        out = []
        for chip in range(self.num_chips):
            out.extend(self.chip_l1s(chip, include_icache))
            out.append(self.l2_bank(addr, chip))
        return out

    # Fixed persistent-request priority (Section 3.2): low bits vary within
    # a CMP, high bits across CMPs, so contended hand-offs favour locality.
    def persistent_priority(self, proc: int) -> int:
        """Smaller value = higher priority."""
        chip = self.proc_chip(proc)
        local = proc % self.procs_per_chip
        return chip * self.procs_per_chip + local
