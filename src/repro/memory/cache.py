"""Set-associative cache arrays with LRU replacement.

The array stores protocol-specific entry objects keyed by block address.
Protocols mark entries un-evictable while a transaction is in flight via
the ``evictable`` predicate passed to :meth:`CacheArray.allocate`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterator, Optional, Tuple, TypeVar

from repro.common.errors import ConfigError

E = TypeVar("E")


class CacheArray:
    """A set-associative array mapping block addresses to entries."""

    def __init__(self, size_bytes: int, assoc: int, block_size: int, name: str = "cache"):
        if size_bytes % (assoc * block_size) != 0:
            raise ConfigError(f"{name}: size must be a multiple of assoc*block_size")
        self.name = name
        self.assoc = assoc
        self.block_size = block_size
        self.num_sets = size_bytes // (assoc * block_size)
        if self.num_sets & (self.num_sets - 1):
            raise ConfigError(f"{name}: number of sets must be a power of two")
        self._set_mask = self.num_sets - 1
        self._sets: Dict[int, OrderedDict] = {}

    def _set_of(self, addr: int) -> int:
        return (addr // self.block_size) & self._set_mask

    def lookup(self, addr: int, touch: bool = True) -> Optional[E]:
        """Return the entry for ``addr`` or None; optionally update LRU."""
        # Inlined _set_of plus a single-probe bucket.get: this sits under
        # every processor access and every protocol dispatch.
        bucket = self._sets.get((addr // self.block_size) & self._set_mask)
        if bucket is None:
            return None
        entry = bucket.get(addr)
        if entry is not None and touch:
            bucket.move_to_end(addr)
        return entry

    def allocate(
        self,
        addr: int,
        entry: E,
        evictable: Callable[[int, E], bool] = lambda a, e: True,
    ) -> Optional[Tuple[int, E]]:
        """Insert ``entry`` for ``addr``, evicting the LRU entry if needed.

        Returns the evicted ``(addr, entry)`` pair, or None if no eviction
        was necessary.  Raises :class:`ConfigError` if the set is full and
        nothing is evictable (callers should size MSHRs/sets to avoid it).
        """
        index = self._set_of(addr)
        bucket = self._sets.setdefault(index, OrderedDict())
        if addr in bucket:
            bucket[addr] = entry
            bucket.move_to_end(addr)
            return None
        victim = None
        if len(bucket) >= self.assoc:
            for vaddr in bucket:  # LRU order: oldest first
                if evictable(vaddr, bucket[vaddr]):
                    victim = (vaddr, bucket[vaddr])
                    break
            if victim is None:
                raise ConfigError(f"{self.name}: set {index} full of un-evictable blocks")
            del bucket[victim[0]]
        bucket[addr] = entry
        return victim

    def deallocate(self, addr: int) -> Optional[E]:
        """Remove and return the entry for ``addr`` (None if absent)."""
        bucket = self._sets.get(self._set_of(addr))
        if bucket is None:
            return None
        return bucket.pop(addr, None)

    def __contains__(self, addr: int) -> bool:
        return self.lookup(addr, touch=False) is not None

    def __len__(self) -> int:
        return sum(len(b) for b in self._sets.values())

    def items(self) -> Iterator[Tuple[int, E]]:
        for bucket in self._sets.values():
            yield from bucket.items()

    def entries_in_set(self, addr: int) -> Iterator[Tuple[int, E]]:
        """Entries of the set ``addr`` maps to, in LRU order (oldest first)."""
        bucket = self._sets.get(self._set_of(addr))
        if bucket is not None:
            yield from bucket.items()
