"""Backing-store model.

Each home memory controller owns a :class:`MemoryImage`: the modelled data
value of every block whose home it is (one integer per 64-byte block; see
DESIGN.md).  Blocks default to value 0.
"""

from __future__ import annotations

from typing import Dict


class MemoryImage:
    """Sparse map from block address to the block's modelled value."""

    def __init__(self) -> None:
        self._values: Dict[int, int] = {}

    def read(self, addr: int) -> int:
        return self._values.get(addr, 0)

    def write(self, addr: int, value: int) -> None:
        self._values[addr] = value

    def __len__(self) -> int:
        return len(self._values)
