"""MOESI bus-snooping protocol for Single-CMP systems.

The paper's Section 1 baseline for S-CMPs: every L1 snoops a logical bus
(total order), a shared L2 sits below the bus, memory below that.  The
bus's total order is what keeps this protocol simple — no directories, no
transient-state explosion, no persistent requests: exactly the contrast
the paper draws before diving into the M-CMP problem.

Implementation notes: the synchronous snoop is modelled by a single
:class:`SnoopCoordinator` attached to the bus.  For each ordered
transaction it updates every cache's state in one step (that is what
"same order at every snooper" buys), picks the data source
(owning L1 -> cache-to-cache; else L2; else DRAM), and schedules the data
delivery.  Races reduce to one case: a queued upgrade whose block gets
invalidated by an earlier foreign GETX is promoted to a full GETX —
the classic snooping upgrade race.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional

from repro.common.errors import ConfigError
from repro.common.params import SystemParams
from repro.common.stats import Stats
from repro.common.types import NodeId, ns
from repro.cpu.ops import Fetch, Load, Rmw, Store, is_write
from repro.memory.cache import CacheArray
from repro.memory.dram import MemoryImage
from repro.sim.kernel import Simulator
from repro.snooping.bus import BusTransaction, LogicalBus

M, O, E, S, I = "M", "O", "E", "S", "I"


@dataclasses.dataclass
class SnoopEntry:
    state: str
    value: int = 0


@dataclasses.dataclass
class Pending:
    """One outstanding miss/upgrade at an L1."""

    op: object
    done: Callable[[int], None]
    kind: str  # "GETS" | "GETX" | "UPGRADE"
    txn: BusTransaction
    ordered: bool = False
    result: Optional[int] = None


@dataclasses.dataclass
class L2Line:
    value: int
    dirty: bool = False


class SnoopL1Controller:
    """One L1 cache snooping the bus."""

    def __init__(self, node: NodeId, sim: Simulator, params: SystemParams,
                 stats: Stats, coordinator: "SnoopCoordinator"):
        self.node = node
        self.sim = sim
        self.params = params
        self.stats = stats
        self.coordinator = coordinator
        self.array: CacheArray = CacheArray(
            params.l1_size, params.l1_assoc, params.block_size, str(node)
        )
        self._pending: Dict[int, Pending] = {}

    # -- processor side --------------------------------------------------
    def access(self, op, done: Callable[[int], None]) -> None:
        addr = self.params.block_of(op.addr)
        self.sim.schedule(self.params.l1_latency_ps, self._attempt, op, addr, done)

    def _attempt(self, op, addr: int, done) -> None:
        entry = self.array.lookup(addr)
        write = is_write(op)
        if entry is not None and (entry.state in (M, E) if write else entry.state != I):
            self.stats.bump("l1.hits")
            done(self._perform(op, entry))
            return
        self.stats.bump("l1.misses")
        if write and entry is not None and entry.state in (S, O):
            kind = "UPGRADE"
        else:
            kind = "GETX" if write else "GETS"
        txn = BusTransaction(kind, addr, self.node)
        self._pending[addr] = Pending(op=op, done=done, kind=kind, txn=txn)
        self.coordinator.bus.request(txn)

    def _perform(self, op, entry: SnoopEntry) -> int:
        old = entry.value
        if isinstance(op, Store):
            entry.value = op.value
        elif isinstance(op, Rmw):
            entry.value = op.fn(old)
        else:
            return old
        entry.state = M
        return old

    # -- coordinator side (synchronous snoop actions) ---------------------
    def entry(self, addr: int) -> Optional[SnoopEntry]:
        return self.array.lookup(addr, touch=False)

    def install(self, addr: int, state: str, value: int) -> None:
        entry = self.array.lookup(addr)
        if entry is None:
            entry = SnoopEntry(state=state, value=value)
            victim = self.array.allocate(addr, entry,
                                         evictable=lambda a, e: a not in self._pending)
            if victim is not None:
                self.coordinator.writeback(self.node, *victim)
        entry.state = state
        entry.value = value

    def complete(self, addr: int) -> None:
        """Perform the pending operation and resume the processor.

        The coordinator serializes transactions per block, so by the time
        this fires the entry's state/data reflect exactly this
        transaction's grant — the operation is atomic here."""
        pending = self._pending.pop(addr)
        entry = self.array.lookup(addr)
        result = self._perform(pending.op, entry)
        pending.done(result)

    def pending_for(self, addr: int) -> Optional[Pending]:
        return self._pending.get(addr)


class SnoopCoordinator:
    """The synchronous snoop: applies each ordered transaction everywhere."""

    def __init__(self, sim: Simulator, params: SystemParams, stats: Stats):
        if params.num_chips != 1:
            raise ConfigError(
                "SnoopingSCMP is a Single-CMP protocol (num_chips must be 1); "
                "use TokenCMP or DirectoryCMP for M-CMP systems"
            )
        self.sim = sim
        self.params = params
        self.stats = stats
        self.bus = LogicalBus(sim)
        self.bus.attach(self._snoop)
        self.l1s: Dict[NodeId, SnoopL1Controller] = {}
        self._block_queues: Dict[int, list] = {}  # per-block conflict retry
        self.l2 = CacheArray(
            params.l2_bank_size * params.l2_banks_per_chip,
            params.l2_assoc, params.block_size, "snoop-l2",
        )
        self.image = MemoryImage()
        # Data-path latencies.
        self.c2c_ps = params.l1_latency_ps + 2 * params.intra_link_latency_ps
        self.l2_ps = params.l2_latency_ps + 2 * params.intra_link_latency_ps
        self.mem_ps = (
            params.mem_ctrl_latency_ps + params.dram_latency_ps
            + 2 * params.mem_link_latency_ps
        )

    def add_l1(self, l1: SnoopL1Controller) -> None:
        self.l1s[l1.node] = l1

    # ------------------------------------------------------------------
    def _snoop(self, txn: BusTransaction) -> None:
        """Bus-order entry point for every transaction."""
        self.stats.bump("bus.transactions")
        self._process(txn)

    def _process(self, txn: BusTransaction) -> None:
        if txn.kind == "WB":
            self._absorb_writeback(txn)
            return
        # Per-block serialization: a transaction hitting a block with
        # another transaction still in flight waits and retries when it
        # completes — the snoop-stall/retry of real buses.  Within a block
        # everything is therefore atomic at completion time.
        if txn.addr in self._block_queues:
            self._block_queues[txn.addr].append(txn)
            self.stats.bump("bus.conflict_retries")
            return
        requestor = self.l1s[txn.requestor]
        pending = requestor.pending_for(txn.addr)
        if pending is None or pending.txn is not txn:
            return  # stale (e.g. an upgrade that was already satisfied)
        pending.ordered = True
        self._block_queues[txn.addr] = []
        kind = txn.kind
        if kind == "UPGRADE":
            entry = requestor.entry(txn.addr)
            if entry is None or entry.state not in (S, O):
                kind = "GETX"  # lost the copy while queued: full fetch
        if kind == "UPGRADE":
            self._apply_getx_invalidation(txn, keep=requestor)
            requestor.entry(txn.addr).state = M
            self.sim.schedule(self.bus.occupancy_ps, self._finish, requestor, txn.addr)
            return
        source_ps, value = self._find_data(txn, requestor)
        if kind == "GETX":
            self._apply_getx_invalidation(txn, keep=requestor)
            grant = M
        else:
            grant = self._apply_gets_downgrade(txn, requestor)
        requestor.install(txn.addr, grant, value)
        self.sim.schedule(source_ps, self._finish, requestor, txn.addr)

    def _finish(self, requestor: SnoopL1Controller, addr: int) -> None:
        requestor.complete(addr)
        deferred = self._block_queues.pop(addr, [])
        for txn in deferred:
            self._process(txn)  # first re-claims the block; rest re-queue

    def _absorb_writeback(self, txn: BusTransaction) -> None:
        """L2 absorbs an evicted line — unless it is stale (the evictor
        lost the block to a transaction that raced ahead of the WB)."""
        if txn.addr in self._block_queues:
            self.stats.bump("bus.stale_writebacks")
            return
        for l1 in self.l1s.values():
            entry = l1.entry(txn.addr)
            if entry is not None and entry.state in (M, O, E):
                self.stats.bump("bus.stale_writebacks")
                return
        value, dirty = txn.payload
        line = self.l2.lookup(txn.addr)
        if line is None:
            victim = self.l2.allocate(txn.addr, L2Line(value, dirty))
            if victim is not None:
                self._l2_evict(*victim)
        else:
            line.value = value
            line.dirty = line.dirty or dirty

    # ------------------------------------------------------------------
    def _find_data(self, txn, requestor):
        """Pick the data source: owning L1, then L2, then memory."""
        for l1 in self.l1s.values():
            if l1 is requestor:
                continue
            entry = l1.entry(txn.addr)
            if entry is not None and entry.state in (M, O, E):
                self.stats.bump("bus.cache_to_cache")
                return self.c2c_ps, entry.value
        line = self.l2.lookup(txn.addr)
        if line is not None:
            self.stats.bump("bus.l2_hits")
            return self.l2_ps, line.value
        self.stats.bump("bus.memory_fetches")
        value = self.image.read(txn.addr)
        self.l2.allocate(txn.addr, L2Line(value, dirty=False))
        return self.mem_ps, value

    def _apply_getx_invalidation(self, txn, keep: SnoopL1Controller) -> None:
        for l1 in self.l1s.values():
            if l1 is keep:
                continue
            entry = l1.entry(txn.addr)
            if entry is not None and entry.state != I:
                if entry.state in (M, O):
                    # Dirty copy dies: its value was just sourced (GETX) or
                    # is being overwritten (UPGRADE implies keep had O/S of
                    # the same value).
                    pass
                l1.array.deallocate(txn.addr)
            # The classic upgrade race: a queued upgrade loses its copy and
            # must become a full GETX when it reaches the bus.
            foreign = l1.pending_for(txn.addr)
            if foreign is not None and not foreign.ordered and foreign.kind == "UPGRADE":
                foreign.kind = "GETX"
                foreign.txn.kind = "GETX"
        line = self.l2.lookup(txn.addr)
        if line is not None:
            self.l2.deallocate(txn.addr)

    def _apply_gets_downgrade(self, txn, requestor) -> str:
        sharers = False
        for l1 in self.l1s.values():
            if l1 is requestor:
                continue
            entry = l1.entry(txn.addr)
            if entry is not None and entry.state != I:
                sharers = True
                if entry.state == M:
                    entry.state = O
                elif entry.state == E:
                    entry.state = S
        if self.l2.lookup(txn.addr) is not None and not sharers:
            return E if not sharers else S
        return S if sharers else E

    # ------------------------------------------------------------------
    def writeback(self, node: NodeId, addr: int, entry: SnoopEntry) -> None:
        if entry.state in (M, O, E):
            self.stats.bump("l1.dirty_evictions")
            self.bus.request(BusTransaction(
                "WB", addr, node, payload=(entry.value, entry.state in (M, O))
            ))

    def _l2_evict(self, addr: int, line: L2Line) -> None:
        if line.dirty:
            self.image.write(addr, line.value)

    # ------------------------------------------------------------------
    def coherent_value(self, addr: int) -> int:
        for l1 in self.l1s.values():
            entry = l1.entry(addr)
            if entry is not None and entry.state in (M, O, E):
                return entry.value
        line = self.l2.lookup(addr, touch=False)
        if line is not None and line.dirty:
            return line.value
        return self.image.read(addr)
