"""Logical snooping bus for Single-CMP systems (paper Section 1).

The paper contrasts M-CMP coherence with "conceptually straightforward"
S-CMP designs that keep caches coherent with a traditional snooping
protocol over a logical bus.  This module provides that bus: a totally
ordered broadcast medium with arbitration.

Model: requestors enqueue transactions; the bus grants them FIFO.  A
granted transaction occupies the bus for an arbitration + snoop window,
during which every attached snooper sees it *in the same order* — the
total order is what makes snooping protocols simple.  Data responses use
a separate (unordered) data path with its own latency.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List

from repro.common.types import ns
from repro.sim.kernel import Simulator


class BusTransaction:
    """One address-bus transaction (request kind + block + requestor)."""

    __slots__ = ("kind", "addr", "requestor", "payload")

    def __init__(self, kind: str, addr: int, requestor, payload=None):
        self.kind = kind  # "GETS" | "GETX" | "UPGRADE" | "WB"
        self.addr = addr
        self.requestor = requestor
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bus({self.kind} @{self.addr:#x} by {self.requestor})"


class LogicalBus:
    """Totally ordered broadcast with FIFO arbitration."""

    def __init__(self, sim: Simulator, occupancy_ns: float = 10.0,
                 arbitration_ns: float = 4.0):
        self.sim = sim
        self.occupancy_ps = ns(occupancy_ns)
        self.arbitration_ps = ns(arbitration_ns)
        self._snoopers: List[Callable[[BusTransaction], None]] = []
        self._queue: deque = deque()
        self._busy = False
        self.transactions = 0

    def attach(self, snooper: Callable[[BusTransaction], None]) -> None:
        """Register a snoop callback (sees every transaction, in order)."""
        self._snoopers.append(snooper)

    def request(self, txn: BusTransaction) -> None:
        """Queue a transaction for the bus."""
        self._queue.append(txn)
        if not self._busy:
            self._grant_next()

    def _grant_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        txn = self._queue.popleft()
        self.sim.schedule(self.arbitration_ps, self._broadcast, txn)

    def _broadcast(self, txn: BusTransaction) -> None:
        self.transactions += 1
        for snooper in self._snoopers:
            snooper(txn)
        self.sim.schedule(self.occupancy_ps, self._grant_next)
