"""Named experiment definitions: one code path from spec to table.

Every figure/table experiment the repository reproduces is declared here
as an :class:`Experiment` — a spec builder plus a table renderer over the
structured :class:`~repro.exp.result.CellResult` records.  The pytest
benchmarks under ``benchmarks/`` and the ``python -m repro bench``
subcommand drive the *same* definitions, so there is exactly one source
of truth for each experiment's grid and its rendered output.

Model checking (Section 5) is not cell-shaped (no machine, no workload)
and stays in ``bench_sec5_modelcheck`` / ``python -m repro verify``.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List

from repro.analysis.report import ResultTable
from repro.common.params import SystemParams
from repro.exp.runner import ExperimentResult
from repro.exp.spec import Cell, ExperimentSpec
from repro.interconnect.topology import Topology
from repro.interconnect.traffic import Scope, TrafficClass

# ---------------------------------------------------------------------------
# Figures 2 & 3: locking micro-benchmark.
# ---------------------------------------------------------------------------

LOCK_COUNTS = [2, 4, 8, 16, 32, 64, 128, 256, 512]
FIG2_PROTOCOLS = [
    "TokenCMP-arb0", "DirectoryCMP", "DirectoryCMP-zero", "TokenCMP-dst0",
]
FIG3_PROTOCOLS = [
    "DirectoryCMP", "DirectoryCMP-zero", "TokenCMP-dst4", "TokenCMP-dst1",
    "TokenCMP-dst1-pred",
]
LOCK_ACQUIRES = 12
GRID_MAX_EVENTS = 120_000_000


def _locking_spec(name: str, protocols: List[str]) -> ExperimentSpec:
    cells = []
    for nl in LOCK_COUNTS:
        # High-contention points are noisy: average over perturbed runs,
        # the paper's Alameldeen & Wood methodology (error bars).
        seeds = (1, 2, 3) if nl <= 8 else (1,)
        for proto in protocols:
            for seed in seeds:
                cells.append(Cell(
                    protocol=proto, workload="locking",
                    workload_kwargs={
                        "num_locks": nl, "acquires_per_proc": LOCK_ACQUIRES,
                    },
                    seed=seed, max_events=GRID_MAX_EVENTS, label=str(nl),
                ))
    return ExperimentSpec(name=name, cells=tuple(cells))


def locking_grid(result: ExperimentResult, protocols: List[str]
                 ) -> Dict[int, Dict[str, float]]:
    return {
        nl: result.runtime_grid(protocols, label=str(nl))
        for nl in LOCK_COUNTS
    }


def _render_locking(result, protocols, title) -> List[ResultTable]:
    grid = locking_grid(result, protocols)
    base = grid[512]["DirectoryCMP"]
    table = ResultTable(title, ["locks"] + protocols)
    for nl in LOCK_COUNTS:
        table.add(nl, *(f"{grid[nl][p] / base:.2f}" for p in protocols))
    return [table]


# ---------------------------------------------------------------------------
# Table 4: barrier micro-benchmark.
# ---------------------------------------------------------------------------

TABLE4_PROTOCOLS = [
    "TokenCMP-arb0", "TokenCMP-dst0", "DirectoryCMP", "DirectoryCMP-zero",
    "TokenCMP-dst4", "TokenCMP-dst1", "TokenCMP-dst1-pred", "TokenCMP-dst1-filt",
]
TABLE4_PAPER = {
    "TokenCMP-arb0": (1.40, 1.29),
    "TokenCMP-dst0": (0.94, 0.91),
    "DirectoryCMP": (1.00, 1.00),
    "DirectoryCMP-zero": (0.95, 0.93),
    "TokenCMP-dst4": (1.15, 1.01),
    "TokenCMP-dst1": (0.99, 0.95),
    "TokenCMP-dst1-pred": (0.96, 0.93),
    "TokenCMP-dst1-filt": (0.99, 0.95),
}
BARRIER_PHASES = 16


def _table4_spec() -> ExperimentSpec:
    cells = []
    for label, jitter in (("fixed", 0.0), ("jitter", 1000.0)):
        for proto in TABLE4_PROTOCOLS:
            cells.append(Cell(
                protocol=proto, workload="barrier",
                workload_kwargs={
                    "phases": BARRIER_PHASES, "work_ns": 3000.0,
                    "work_jitter_ns": jitter,
                },
                seed=1, max_events=GRID_MAX_EVENTS, label=label,
            ))
    return ExperimentSpec(name="table4", cells=tuple(cells))


def _render_table4(result) -> List[ResultTable]:
    fixed = result.runtime_grid(TABLE4_PROTOCOLS, label="fixed")
    jitter = result.runtime_grid(TABLE4_PROTOCOLS, label="jitter")
    table = ResultTable(
        "Table 4 - barrier micro-benchmark runtime, normalized to DirectoryCMP",
        ["protocol", "3000ns fixed", "paper", "3000ns +-U(1000)", "paper"],
    )
    for proto in TABLE4_PROTOCOLS:
        table.add(
            proto,
            f"{fixed[proto] / fixed['DirectoryCMP']:.2f}",
            f"{TABLE4_PAPER[proto][0]:.2f}",
            f"{jitter[proto] / jitter['DirectoryCMP']:.2f}",
            f"{TABLE4_PAPER[proto][1]:.2f}",
        )
    return [table]


# ---------------------------------------------------------------------------
# Figures 6 & 7: commercial workloads.
# ---------------------------------------------------------------------------

FIG6_PROTOCOLS = [
    "DirectoryCMP", "DirectoryCMP-zero", "TokenCMP-dst4", "TokenCMP-dst1",
    "TokenCMP-dst1-pred", "TokenCMP-dst1-filt", "PerfectL2",
]
FIG7_PROTOCOLS = [
    "DirectoryCMP", "TokenCMP-dst4", "TokenCMP-dst1", "TokenCMP-dst1-pred",
    "TokenCMP-dst1-filt",
]
COMMERCIAL_WORKLOADS = ["oltp", "apache", "specjbb"]
PAPER_SPEEDUP = {"oltp": 0.50, "apache": 0.29, "specjbb": 0.10}
COMMERCIAL_REFS = 250


def _commercial_spec(name: str, protocols: List[str]) -> ExperimentSpec:
    return ExperimentSpec.grid(
        name, protocols,
        [(wl, {"refs_per_proc": COMMERCIAL_REFS}) for wl in COMMERCIAL_WORKLOADS],
        max_events=GRID_MAX_EVENTS,
    )


def commercial_results(result: ExperimentResult, protocols: List[str]
                       ) -> Dict[str, Dict[str, object]]:
    return {
        wl: result.by_protocol(protocols, workload=wl)
        for wl in COMMERCIAL_WORKLOADS
    }


def _render_fig6(result) -> List[ResultTable]:
    all_results = commercial_results(result, FIG6_PROTOCOLS)
    table = ResultTable(
        "Figure 6 - commercial workload runtime normalized to DirectoryCMP "
        "(smaller is better)",
        ["protocol"] + COMMERCIAL_WORKLOADS,
    )
    for proto in FIG6_PROTOCOLS:
        cells = []
        for wl in COMMERCIAL_WORKLOADS:
            base = all_results[wl]["DirectoryCMP"].runtime_ps
            cells.append(f"{all_results[wl][proto].runtime_ps / base:.2f}")
        table.add(proto, *cells)
    speedups = ResultTable(
        "TokenCMP-dst1 speedup over DirectoryCMP (paper: OLTP 50%, Apache 29%, "
        "SPECjbb 10%)",
        ["workload", "measured", "paper"],
    )
    for wl in COMMERCIAL_WORKLOADS:
        base = all_results[wl]["DirectoryCMP"].runtime_ps
        tok = all_results[wl]["TokenCMP-dst1"].runtime_ps
        speedups.add(wl, f"{base / tok - 1:+.0%}", f"+{PAPER_SPEEDUP[wl]:.0%}")
    latency = ResultTable(
        "L1 miss latency in ns (mean / p50 / p95) - the indirection gap",
        ["workload", "protocol", "mean", "p50", "p95"],
    )
    for wl in COMMERCIAL_WORKLOADS:
        for proto in ("DirectoryCMP", "TokenCMP-dst1"):
            summary = all_results[wl][proto].summary("l1.miss_latency_ps")
            latency.add(
                wl, proto,
                f"{summary['mean'] / 1000:.0f}",
                f"{summary['p50'] / 1000:.0f}",
                f"{summary['p95'] / 1000:.0f}",
            )
    return [table, speedups, latency]


def traffic_norm(results: Dict[str, object], scope: Scope, baseline: str
                 ) -> Dict[str, Dict[TrafficClass, float]]:
    """Per-protocol traffic by class, normalized to ``baseline``'s total."""
    base_total = results[baseline].scope_bytes(scope)
    return {
        name: {
            klass: (value / base_total if base_total else 0.0)
            for klass, value in res.breakdown(scope).items()
        }
        for name, res in results.items()
    }


def _render_fig7(result) -> List[ResultTable]:
    all_results = commercial_results(result, FIG7_PROTOCOLS)
    tables = []
    for scope, title in (
        (Scope.INTER, "Figure 7a - inter-CMP traffic by message class "
                      "(bytes, normalized to DirectoryCMP total)"),
        (Scope.INTRA, "Figure 7b - intra-CMP traffic by message class "
                      "(bytes, normalized to DirectoryCMP total)"),
    ):
        table = ResultTable(
            title,
            ["workload", "protocol", "total"] + [k.value for k in TrafficClass],
        )
        for wl in COMMERCIAL_WORKLOADS:
            norm = traffic_norm(all_results[wl], scope, "DirectoryCMP")
            for proto in FIG7_PROTOCOLS:
                row = norm[proto]
                table.add(
                    wl, proto, f"{sum(row.values()):.2f}",
                    *(f"{row[k]:.3f}" for k in TrafficClass),
                )
        tables.append(table)
    return tables


# ---------------------------------------------------------------------------
# The fig6 smoke cell: the pinned end-to-end determinism anchor.
# ---------------------------------------------------------------------------

SMOKE_CELL_PROTOCOL = "TokenCMP-dst1"
SMOKE_CELL_WORKLOAD = "oltp"
SMOKE_CELL_REFS = 120
SMOKE_CELL_SEED = 1


def fig6_smoke_cell(telemetry=None) -> Cell:
    """One representative fig6 cell, pinned across PRs.

    The perf suite's e2e benchmark, the determinism tests and the CI
    telemetry-smoke job all run exactly this cell (metrics sha
    ``8d0b5685...``, 163255 events), so any behavioral drift shows up as
    one diff everywhere.  ``telemetry`` optionally attaches a
    :class:`~repro.obs.telemetry.TelemetryConfig` — sampling is
    observational, so the simulated outcome is identical either way.
    """
    return Cell(
        protocol=SMOKE_CELL_PROTOCOL,
        workload=SMOKE_CELL_WORKLOAD,
        workload_kwargs={"refs_per_proc": SMOKE_CELL_REFS},
        seed=SMOKE_CELL_SEED,
        max_events=GRID_MAX_EVENTS,
        telemetry=telemetry,
    )


# ---------------------------------------------------------------------------
# Hand-off latency (mechanism behind Figure 6).
# ---------------------------------------------------------------------------

HANDOFF_PROTOCOLS = ["DirectoryCMP", "DirectoryCMP-zero", "TokenCMP-dst1", "TokenB"]
HANDOFF_ROUNDS = 24


def _handoff_spec() -> ExperimentSpec:
    params = SystemParams()
    cells = []
    for label, proc_b in (("same chip", 1), ("cross chip", params.procs_per_chip)):
        for proto in HANDOFF_PROTOCOLS:
            cells.append(Cell(
                protocol=proto, workload="pingpong",
                workload_kwargs={
                    "proc_a": 0, "proc_b": proc_b, "rounds": HANDOFF_ROUNDS,
                },
                seed=1, params=params, label=label,
            ))
    return ExperimentSpec(name="handoff", cells=tuple(cells))


def handoff_grid(result: ExperimentResult) -> Dict[tuple, float]:
    """ns per ping-pong round trip, keyed by (pair label, protocol)."""
    return {
        (label, proto): result.cell(protocol=proto, label=label).runtime_ps
        / HANDOFF_ROUNDS / 1000.0
        for label in ("same chip", "cross chip")
        for proto in HANDOFF_PROTOCOLS
    }


def _render_handoff(result) -> List[ResultTable]:
    grid = handoff_grid(result)
    table = ResultTable(
        "Sharing-miss hand-off: ns per ping-pong round trip (lower is better)",
        ["pair"] + HANDOFF_PROTOCOLS,
    )
    for label in ("same chip", "cross chip"):
        table.add(label, *(f"{grid[(label, p)]:.0f}" for p in HANDOFF_PROTOCOLS))
    return [table]


# ---------------------------------------------------------------------------
# CMP-count scaling (paper Section 8).
# ---------------------------------------------------------------------------

SCALING_PROTOCOLS = ["DirectoryCMP", "TokenCMP-dst1", "TokenCMP-dst1-mcast"]
CHIP_COUNTS = [2, 4, 8]
SCALING_REFS = 120


def _scaling_spec() -> ExperimentSpec:
    cells = []
    for chips in CHIP_COUNTS:
        params = SystemParams(
            num_chips=chips, tokens_per_block=128 if chips > 4 else 64
        )
        for proto in SCALING_PROTOCOLS:
            cells.append(Cell(
                protocol=proto, workload="oltp",
                workload_kwargs={"refs_per_proc": SCALING_REFS},
                seed=1, params=params, label=str(chips),
            ))
    return ExperimentSpec(name="scaling", cells=tuple(cells))


def scaling_grid(result: ExperimentResult) -> Dict[int, Dict[str, object]]:
    return {
        chips: result.by_protocol(SCALING_PROTOCOLS, label=str(chips))
        for chips in CHIP_COUNTS
    }


def _render_scaling(result) -> List[ResultTable]:
    grid = scaling_grid(result)
    table = ResultTable(
        "Scaling - inter-CMP traffic normalized to DirectoryCMP (OLTP) "
        "and runtime normalized to DirectoryCMP, by CMP count",
        ["CMPs"] + [f"{p} traffic" for p in SCALING_PROTOCOLS[1:]]
        + [f"{p} runtime" for p in SCALING_PROTOCOLS[1:]],
    )
    for chips in CHIP_COUNTS:
        res = grid[chips]
        base_b = res["DirectoryCMP"].scope_bytes(Scope.INTER)
        base_t = res["DirectoryCMP"].runtime_ps
        cells = [f"{res[p].scope_bytes(Scope.INTER) / base_b:.2f}"
                 for p in SCALING_PROTOCOLS[1:]]
        cells += [f"{res[p].runtime_ps / base_t:.2f}" for p in SCALING_PROTOCOLS[1:]]
        table.add(chips, *cells)
    return [table]


# ---------------------------------------------------------------------------
# Big-topology scaling (ROADMAP: 8/16-CMP mesh sweeps — where does flat
# token counting break down vs DirectoryCMP, and how much does the
# multicast destination-set predictor claw back?).
# ---------------------------------------------------------------------------

BIG_CHIP_COUNTS = [8, 16]
BIG_PROCS_PER_CHIP = 8
BIG_SCALING_REFS = 40
SMOKE_CHIPS = 8
SMOKE_PROCS_PER_CHIP = 2
SMOKE_REFS = 30


def mesh_params(chips: int, procs: int) -> SystemParams:
    """An ``chips``-CMP mesh machine with a valid power-of-two token count."""
    caches = chips * (2 * procs + 1)
    tokens = 64
    while tokens <= caches:
        tokens *= 2
    return SystemParams(
        num_chips=chips, procs_per_chip=procs,
        tokens_per_block=tokens, topology=Topology.mesh(),
    )


def _mesh_scaling_spec(name: str, chip_counts: List[int], procs: int,
                       refs: int) -> ExperimentSpec:
    cells = []
    for chips in chip_counts:
        params = mesh_params(chips, procs)
        for proto in SCALING_PROTOCOLS:
            cells.append(Cell(
                protocol=proto, workload="oltp",
                workload_kwargs={"refs_per_proc": refs},
                seed=1, params=params, label=str(chips),
            ))
    return ExperimentSpec(name=name, cells=tuple(cells))


def _scaling_big_spec() -> ExperimentSpec:
    return _mesh_scaling_spec("scaling-big", BIG_CHIP_COUNTS,
                              BIG_PROCS_PER_CHIP, BIG_SCALING_REFS)


def _scaling_smoke_spec() -> ExperimentSpec:
    return _mesh_scaling_spec("scaling-smoke", [SMOKE_CHIPS],
                              SMOKE_PROCS_PER_CHIP, SMOKE_REFS)


def request_fanout_per_miss(res) -> float:
    """Inter-CMP request messages per L1 miss (broadcast fan-out proxy).

    Derived from existing traffic counters — request-class messages are
    control-sized, so inter-CMP request bytes / control size counts the
    inter-chip link crossings the protocol's request fan-out caused.
    """
    misses = res.get("l1.misses")
    if not misses:
        return 0.0
    ctrl = SystemParams().control_msg_bytes
    return res.breakdown(Scope.INTER)[TrafficClass.REQUEST] / ctrl / misses


def mesh_scaling_grid(result: ExperimentResult, chip_counts: List[int]
                      ) -> Dict[int, Dict[str, object]]:
    return {
        chips: result.by_protocol(SCALING_PROTOCOLS, label=str(chips))
        for chips in chip_counts
    }


def _render_mesh_scaling(result: ExperimentResult, chip_counts: List[int],
                         title: str) -> List[ResultTable]:
    tables = []
    grid = mesh_scaling_grid(result, chip_counts)
    for chips in chip_counts:
        res = grid[chips]
        base = res["DirectoryCMP"]
        table = ResultTable(
            f"{title} - {chips} CMPs (mesh)",
            ["protocol", "runtime(us)", "inter KB", "inter vs dir",
             "persistent", "req fan-out/miss"],
        )
        for proto in SCALING_PROTOCOLS:
            r = res[proto]
            inter = r.scope_bytes(Scope.INTER)
            table.add(
                proto,
                f"{r.runtime_ns / 1000:.1f}",
                f"{inter / 1024:.0f}",
                f"{inter / base.scope_bytes(Scope.INTER):.2f}",
                r.get("persistent.requests"),
                f"{request_fanout_per_miss(r):.2f}",
            )
        tables.append(table)
    return tables


def _render_scaling_big(result) -> List[ResultTable]:
    return _render_mesh_scaling(
        result, BIG_CHIP_COUNTS,
        "Big-topology scaling - TokenCMP vs DirectoryCMP",
    )


def _render_scaling_smoke(result) -> List[ResultTable]:
    return _render_mesh_scaling(
        result, [SMOKE_CHIPS], "Mesh scaling smoke (CI determinism gate)",
    )


# ---------------------------------------------------------------------------
# Time-resolved saturation on the big mesh sweep: the same cells as
# scaling-big, with telemetry sampling on — *which* links saturate, and
# *when*, as non-multicast TokenCMP crosses over at 16 CMPs.
# ---------------------------------------------------------------------------

TELEMETRY_SAMPLE_EVERY = 4096


def _scaling_telemetry_spec() -> ExperimentSpec:
    from repro.obs.telemetry import TelemetryConfig

    telemetry = TelemetryConfig(sample_every_events=TELEMETRY_SAMPLE_EVERY)
    cells = []
    for chips in BIG_CHIP_COUNTS:
        params = mesh_params(chips, BIG_PROCS_PER_CHIP)
        for proto in SCALING_PROTOCOLS:
            cells.append(Cell(
                protocol=proto, workload="oltp",
                workload_kwargs={"refs_per_proc": BIG_SCALING_REFS},
                seed=1, params=params, telemetry=telemetry,
                label=str(chips),
            ))
    return ExperimentSpec(name="scaling-telemetry", cells=tuple(cells))


def saturation_summary(doc: dict) -> Dict[str, object]:
    """Window counts by kind plus the earliest-starting window."""
    by_kind: Dict[str, int] = {}
    first = None
    for window in doc["saturation"]:
        by_kind[window["kind"]] = by_kind.get(window["kind"], 0) + 1
        if first is None or window["start_ps"] < first["start_ps"]:
            first = window
    return {"by_kind": by_kind, "first": first}


def _render_scaling_telemetry(result: ExperimentResult) -> List[ResultTable]:
    tables = []
    grid = mesh_scaling_grid(result, BIG_CHIP_COUNTS)
    for chips in BIG_CHIP_COUNTS:
        table = ResultTable(
            f"Saturation windows - {chips} CMPs (mesh, sampled every "
            f"{TELEMETRY_SAMPLE_EVERY} events)",
            ["protocol", "samples", "windows", "util", "backlog", "ptable",
             "first saturated"],
        )
        for proto in SCALING_PROTOCOLS:
            doc = grid[chips][proto].telemetry
            summary = saturation_summary(doc)
            kinds = summary["by_kind"]
            first = summary["first"]
            table.add(
                proto,
                len(doc["t_ps"]),
                len(doc["saturation"]),
                kinds.get("link-utilization", 0),
                kinds.get("backlog-growth", 0),
                kinds.get("ptable-near-full", 0),
                f"{first['subject']} @ {first['start_ps'] / 1e6:.1f} us"
                if first else "-",
            )
        tables.append(table)
    return tables


# ---------------------------------------------------------------------------
# The registry.
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class Experiment:
    """A named, reproducible experiment: spec builder + table renderer."""

    id: str
    title: str
    build: Callable[[], ExperimentSpec]
    render: Callable[[ExperimentResult], List[ResultTable]]


EXPERIMENTS: Dict[str, Experiment] = {
    exp.id: exp
    for exp in (
        Experiment(
            "fig2", "Figure 2: locking, persistent requests only",
            lambda: _locking_spec("fig2", FIG2_PROTOCOLS),
            lambda r: _render_locking(
                r, FIG2_PROTOCOLS,
                "Figure 2 - locking micro-benchmark, persistent requests only "
                "(runtime normalized to DirectoryCMP @ 512 locks; smaller is "
                "better)",
            ),
        ),
        Experiment(
            "fig3", "Figure 3: locking, transient + persistent requests",
            lambda: _locking_spec("fig3", FIG3_PROTOCOLS),
            lambda r: _render_locking(
                r, FIG3_PROTOCOLS,
                "Figure 3 - locking micro-benchmark, transient + persistent "
                "requests (runtime normalized to DirectoryCMP @ 512 locks; "
                "smaller is better)",
            ),
        ),
        Experiment(
            "table4", "Table 4: barrier micro-benchmark",
            _table4_spec, _render_table4,
        ),
        Experiment(
            "fig6", "Figure 6: commercial workload runtime",
            lambda: _commercial_spec("fig6", FIG6_PROTOCOLS), _render_fig6,
        ),
        Experiment(
            "fig7", "Figures 7a/7b: commercial workload traffic",
            lambda: _commercial_spec("fig7", FIG7_PROTOCOLS), _render_fig7,
        ),
        Experiment(
            "handoff", "Sharing-miss hand-off latency (ping-pong)",
            _handoff_spec, _render_handoff,
        ),
        Experiment(
            "scaling", "CMP-count scaling of inter-CMP traffic (Section 8)",
            _scaling_spec, _render_scaling,
        ),
        Experiment(
            "scaling-big",
            "8/16-CMP mesh scaling: runtime, traffic, fan-out (ROADMAP)",
            _scaling_big_spec, _render_scaling_big,
        ),
        Experiment(
            "scaling-smoke",
            "small 8-CMP mesh sweep (CI determinism gate)",
            _scaling_smoke_spec, _render_scaling_smoke,
        ),
        Experiment(
            "scaling-telemetry",
            "8/16-CMP mesh sweep with time-series telemetry (saturation)",
            _scaling_telemetry_spec, _render_scaling_telemetry,
        ),
    )
}
