"""Structured per-cell results.

A :class:`CellResult` is the serializable record one cell run produces:
runtime, every stats counter, per-(scope, class) traffic bytes and the
summary streams (count/total/min/max plus sampled percentiles).  Its JSON
form is canonical — sorted keys, compact separators — so byte-identical
output is a meaningful determinism check: a parallel run, a serial run
and a cache hit of the same cell all render the same bytes.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, Optional, Union

from repro.common.stats import PERCENTILES  # noqa: F401  (canonical home)
from repro.common.types import to_ns
from repro.interconnect.traffic import Scope, TrafficClass


@dataclasses.dataclass
class CellResult:
    """Outcome of one experiment cell."""

    protocol: str
    workload: str
    seed: int
    runtime_ps: int
    counters: Dict[str, int]
    traffic: Dict[str, Dict[str, int]]  # scope value -> class value -> bytes
    summaries: Dict[str, Dict[str, float]]
    label: str = ""
    cache_key: Optional[str] = None
    # repro.telemetry/1 document, present only when the cell enabled
    # sampling (kept out of to_dict otherwise so pre-telemetry records
    # and cache entries stay byte-identical).
    telemetry: Optional[dict] = None
    # Bookkeeping, not part of the record (or of equality):
    from_cache: bool = dataclasses.field(default=False, compare=False)
    # The in-process RunResult (machine attached); only populated for
    # serial in-process execution — never survives a worker process or
    # the cache.
    raw: Optional[object] = dataclasses.field(
        default=None, compare=False, repr=False
    )

    # ------------------------------------------------------------------
    @property
    def runtime_ns(self) -> float:
        return to_ns(self.runtime_ps)

    def get(self, counter: str) -> int:
        return self.counters.get(counter, 0)

    def scope_bytes(self, scope: Union[Scope, str]) -> int:
        scope = scope.value if isinstance(scope, Scope) else scope
        return sum(self.traffic.get(scope, {}).values())

    def breakdown(self, scope: Union[Scope, str]) -> Dict[TrafficClass, int]:
        """Bytes per traffic class on one network, zero entries included."""
        scope = scope.value if isinstance(scope, Scope) else scope
        per_class = self.traffic.get(scope, {})
        return {k: per_class.get(k.value, 0) for k in TrafficClass}

    def summary(self, name: str) -> Dict[str, float]:
        return self.summaries.get(name, {"count": 0, "total": 0.0})

    # ------------------------------------------------------------------
    @classmethod
    def from_run(cls, run_result, cell, cache_key: Optional[str] = None
                 ) -> "CellResult":
        """Convert a :class:`repro.system.machine.RunResult`."""
        traffic: Dict[str, Dict[str, int]] = {}
        for (scope, klass), nbytes in run_result.meter.bytes.items():
            traffic.setdefault(scope.value, {})[klass.value] = nbytes
        stats = run_result.stats.to_dict()
        return cls(
            protocol=cell.protocol_name,
            workload=cell.workload_name,
            seed=cell.seed,
            runtime_ps=run_result.runtime_ps,
            counters=stats["counters"],
            traffic=traffic,
            summaries=stats["summaries"],
            label=cell.label,
            cache_key=cache_key,
            raw=run_result,
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        # Built explicitly (not dataclasses.asdict) so the record never
        # recurses into ``raw`` — the RunResult drags the whole Machine
        # (simulator, generators, fault proxies) behind it.
        record = {
            "protocol": self.protocol,
            "workload": self.workload,
            "seed": self.seed,
            "runtime_ps": self.runtime_ps,
            "counters": dict(self.counters),
            "traffic": {s: dict(c) for s, c in self.traffic.items()},
            "summaries": {n: dict(v) for n, v in self.summaries.items()},
            "label": self.label,
            "cache_key": self.cache_key,
        }
        if self.telemetry is not None:
            record["telemetry"] = self.telemetry
        return record

    def to_json(self) -> str:
        """Canonical JSON — the determinism contract's unit of comparison."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def metrics(self) -> dict:
        """The canonical metrics-JSON document for this result.

        Schema-tagged (``repro.metrics/1``) and validated by
        :func:`repro.obs.metrics.validate_metrics`.
        """
        from repro.obs.metrics import cell_metrics  # lazy: obs is optional here

        return cell_metrics(self)

    @classmethod
    def from_dict(cls, record: dict) -> "CellResult":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in record.items() if k in known})

    @classmethod
    def from_json(cls, text: str) -> "CellResult":
        return cls.from_dict(json.loads(text))
