"""Content-addressed on-disk result cache.

A cell's cache key is the SHA-256 of its canonical JSON
:meth:`~repro.exp.spec.Cell.key_material` — the full protocol config,
system parameters, workload name + kwargs, seed, fault config and checker
settings — plus :data:`CACHE_SCHEMA`.  Because every run is a
deterministic function of exactly that material, a hit can be replayed
without recomputation; any change to a code-relevant knob changes the key
and forces a recompute.

``CACHE_SCHEMA`` must be bumped whenever the *simulator itself* changes
behaviour (protocol fixes, timing model changes), which invalidates every
stale entry at once.  Records live under ``<root>/<k[:2]>/<key>.json``
(``benchmarks/results/.cache/`` by convention); writes are atomic
(tempfile + rename) so concurrent runners never observe torn records.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Optional

from repro.exp.result import CellResult
from repro.exp.spec import Cell

# Bump on any simulator-behaviour change; stale entries then never match.
CACHE_SCHEMA = 1

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = os.path.join("benchmarks", "results", ".cache")


def default_cache_dir() -> str:
    return os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR


def cell_key(cell: Cell) -> Optional[str]:
    """Stable content hash of a cell, or ``None`` if uncacheable."""
    material = cell.key_material()
    if material is None:
        return None
    material["schema"] = CACHE_SCHEMA
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """Directory of ``CellResult`` records addressed by cell hash."""

    def __init__(self, root: Optional[str] = None):
        self.root = root or default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------
    def key(self, cell: Cell) -> Optional[str]:
        return cell_key(cell)

    def path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def load(self, key: str) -> Optional[CellResult]:
        """Return the cached result for ``key``, or ``None`` on a miss."""
        try:
            with open(self.path(key)) as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if record.get("schema") != CACHE_SCHEMA:
            self.misses += 1
            return None
        result = CellResult.from_dict(record["result"])
        result.from_cache = True
        result.cache_key = key
        self.hits += 1
        return result

    def store(self, key: str, result: CellResult) -> None:
        path = self.path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        record = {"schema": CACHE_SCHEMA, "result": result.to_dict()}
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(record, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self.stores += 1
