"""Declarative experiment specifications.

A :class:`Cell` names everything one simulation run depends on — protocol
config, workload (by registry name + kwargs), system parameters, seed,
fault config and checker settings — *as data*, so a cell can be

* executed anywhere (pickled to a worker process),
* hashed for the content-addressed result cache, and
* compared: two equal cells are guaranteed to produce equal results,
  because every run is a deterministic function of its cell.

An :class:`ExperimentSpec` is an ordered tuple of cells; the grid helper
covers the common ``protocol x workload x seed`` sweep.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple, Union

from repro.common.params import SystemParams
from repro.system.config import ProtocolConfig, protocol as lookup_protocol

DEFAULT_MAX_EVENTS = 80_000_000


def _freeze_kwargs(kwargs) -> Tuple[Tuple[str, object], ...]:
    if isinstance(kwargs, dict):
        return tuple(sorted(kwargs.items()))
    return tuple(kwargs)


@dataclasses.dataclass(frozen=True)
class Cell:
    """One independent simulation run, described declaratively.

    ``workload`` is normally a :data:`repro.workloads.REGISTRY` name; a
    bare factory callable ``(params, seed) -> Workload`` is accepted for
    legacy callers but makes the cell uncacheable and unparallelizable
    (it cannot be hashed or pickled).
    """

    protocol: Union[str, ProtocolConfig]
    workload: Union[str, Callable]
    workload_kwargs: Tuple[Tuple[str, object], ...] = ()
    seed: int = 1
    params: SystemParams = dataclasses.field(default_factory=SystemParams)
    max_events: Optional[int] = DEFAULT_MAX_EVENTS
    faults: Optional[object] = None  # repro.faults.injector.FaultConfig
    crash: Optional[object] = None  # repro.faults.crash.CrashSpec
    watchdog_budget_ns: Optional[float] = None
    watchdog_check_every: Optional[int] = None
    invariant_check_every: Optional[int] = None
    check_invariants: bool = False
    # repro.obs.telemetry.TelemetryConfig; sampling is observational but
    # the result carries the telemetry document, so it is part of the key.
    telemetry: Optional[object] = None
    # Free-form grouping tag (e.g. a lock count or chip count); not part
    # of the cache key because it cannot affect the simulation.
    label: str = ""

    def __post_init__(self) -> None:
        if isinstance(self.protocol, str):
            object.__setattr__(self, "protocol", lookup_protocol(self.protocol))
        object.__setattr__(
            self, "workload_kwargs", _freeze_kwargs(self.workload_kwargs)
        )

    # ------------------------------------------------------------------
    @property
    def kwargs(self) -> Dict[str, object]:
        return dict(self.workload_kwargs)

    @property
    def protocol_name(self) -> str:
        return self.protocol.name

    @property
    def workload_name(self) -> str:
        if isinstance(self.workload, str):
            return self.workload
        return getattr(self.workload, "__name__", "<factory>")

    @property
    def cacheable(self) -> bool:
        """Only declaratively-described workloads can be hashed/pickled."""
        return isinstance(self.workload, str)

    @property
    def machine(self) -> "MachineSpec":
        """The cell's machine construction recipe (the run-side half).

        ``run_cell`` builds the machine via ``cell.machine.build()``; the
        remaining cell fields describe the workload and the checkers that
        ride on top of the built machine.
        """
        from repro.system.spec import MachineSpec

        return MachineSpec(
            params=self.params,
            protocol=self.protocol,
            seed=self.seed,
            faults=self.faults,
            crash=self.crash,
        )

    # ------------------------------------------------------------------
    def key_material(self) -> Optional[dict]:
        """Everything the simulation outcome depends on, JSON-ready.

        Returns ``None`` for uncacheable (callable-workload) cells.  The
        protocol is expanded to its full config so *any* change to a
        code-relevant knob (e.g. ``max_transient``) changes the key.
        """
        if not self.cacheable:
            return None
        material = {
            "protocol": dataclasses.asdict(self.protocol),
            "workload": self.workload,
            "workload_kwargs": dict(self.workload_kwargs),
            "params": dataclasses.asdict(self.params),
            "seed": self.seed,
            "max_events": self.max_events,
            "faults": dataclasses.asdict(self.faults) if self.faults else None,
            "watchdog_budget_ns": self.watchdog_budget_ns,
            "watchdog_check_every": self.watchdog_check_every,
            "invariant_check_every": self.invariant_check_every,
            "check_invariants": self.check_invariants,
        }
        # Added conditionally so cells without a crash keep the key (and
        # any cached result) they had before the field existed.
        if self.crash is not None:
            material["crash"] = dataclasses.asdict(self.crash)
        if self.telemetry is not None:
            material["telemetry"] = dataclasses.asdict(self.telemetry)
        return material


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """An ordered collection of cells, executed by a Runner."""

    name: str
    cells: Tuple[Cell, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "cells", tuple(self.cells))

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    @classmethod
    def grid(
        cls,
        name: str,
        protocols: Sequence[Union[str, ProtocolConfig]],
        workloads: Union[str, Iterable],
        seeds: Sequence[int] = (1,),
        params: Optional[SystemParams] = None,
        **common,
    ) -> "ExperimentSpec":
        """The common sweep: every ``workload x protocol x seed`` cell.

        ``workloads`` accepts a registry name, a ``(name, kwargs)`` pair,
        or a list of either; ``common`` (max_events, faults, ...) is
        applied to every cell.
        """
        if isinstance(workloads, (str, tuple)) and (
            isinstance(workloads, str) or isinstance(workloads[0], str)
        ):
            workloads = [workloads]
        params = params or SystemParams()
        cells = []
        for wl in workloads:
            wl_name, wl_kwargs = (wl, {}) if isinstance(wl, str) else wl
            for proto in protocols:
                for seed in seeds:
                    cells.append(
                        Cell(
                            protocol=proto,
                            workload=wl_name,
                            workload_kwargs=wl_kwargs,
                            seed=seed,
                            params=params,
                            **common,
                        )
                    )
        return cls(name=name, cells=tuple(cells))
