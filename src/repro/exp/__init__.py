"""``repro.exp`` — the declarative experiment-execution engine.

* :class:`~repro.exp.spec.Cell` / :class:`~repro.exp.spec.ExperimentSpec`
  describe runs as data (protocol x workload x seed x params x faults);
* :func:`~repro.exp.runner.run_cell` is the single machine-construction
  path every evaluation entry point funnels through;
* :class:`~repro.exp.runner.Runner` executes specs across a process pool
  with a content-addressed on-disk result cache
  (:class:`~repro.exp.cache.ResultCache`);
* :mod:`~repro.exp.library` holds the named paper experiments.

Determinism guarantee: each cell is an independent simulation seeded only
from its own description, so ``Runner(jobs=N)`` and serial execution
produce byte-identical :class:`~repro.exp.result.CellResult` JSON, and a
cache hit replays exactly what a recompute would produce.
"""

from repro.exp.cache import CACHE_SCHEMA, ResultCache, cell_key, default_cache_dir
from repro.exp.result import CellResult
from repro.exp.runner import ExperimentResult, Runner, run_cell
from repro.exp.spec import Cell, ExperimentSpec

__all__ = [
    "CACHE_SCHEMA",
    "Cell",
    "CellResult",
    "ExperimentResult",
    "ExperimentSpec",
    "ResultCache",
    "Runner",
    "cell_key",
    "default_cache_dir",
    "run_cell",
]
