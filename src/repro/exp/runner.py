"""Cell execution: the one machine-construction path, serial or parallel.

:func:`run_cell` is the *only* place in the repository that builds a
``Machine`` + workload for an experiment — the CLI, the benchmarks, the
analysis battery and the fault battery all funnel through it, so fault
injection, watchdog arming and invariant checking behave identically
everywhere.

:class:`Runner` executes a spec's cells across a ``multiprocessing`` pool.
Each cell is an independent deterministic simulation (its own kernel, its
own seeded RNG substreams), so parallel execution is bit-identical to
serial: the runner only changes *when* cells run, never what they
compute.  Results come back in spec order regardless of completion order.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.exp.cache import ResultCache
from repro.exp.result import CellResult
from repro.exp.spec import Cell, ExperimentSpec
from repro.workloads import make_workload


def run_cell(cell: Cell, tracer=None, profiler=None) -> CellResult:
    """Execute one cell: build the machine + workload, run, record.

    This is the single supported entry point for running an experiment
    cell; the deprecated ``run_one`` / ``runtime_grid`` helpers delegate
    here.  The returned result carries the in-process ``RunResult`` in
    ``.raw`` (dropped when the result crosses a process boundary or the
    cache).

    ``tracer`` (:class:`repro.obs.trace.Tracer`) and ``profiler``
    (:class:`repro.obs.profile.KernelProfiler`) attach to the machine's
    kernel before the run; both are observational only — attaching them
    never changes the simulated outcome.
    """
    machine = cell.machine.build()
    if tracer is not None:
        tracer.attach(machine.sim)
    if profiler is not None:
        profiler.attach(machine.sim)
    sampler = None
    if cell.telemetry is not None:
        from repro.obs.telemetry import TelemetrySampler

        sampler = TelemetrySampler(cell.telemetry).attach(machine)
    watchdog = monitor = None
    if cell.watchdog_budget_ns is not None:
        from repro.faults.watchdog import LivenessWatchdog

        kwargs = {}
        if cell.watchdog_check_every is not None:
            kwargs["check_every_events"] = cell.watchdog_check_every
        watchdog = LivenessWatchdog(
            machine, budget_ns=cell.watchdog_budget_ns, **kwargs
        )
    if cell.invariant_check_every is not None:
        from repro.faults.watchdog import InvariantMonitor

        monitor = InvariantMonitor(machine, cell.invariant_check_every)

    if callable(cell.workload):
        workload = cell.workload(cell.params, cell.seed)
    else:
        workload = make_workload(
            cell.workload, cell.params, seed=cell.seed, **cell.kwargs
        )
    run_result = machine.run(workload, max_events=cell.max_events)
    if cell.check_invariants and machine.cfg.family == "token":
        machine.check_token_invariants()  # quiescent re-check
    if watchdog is not None:
        run_result.stats.counters["watchdog.trips"] = watchdog.trips
    if monitor is not None:
        run_result.stats.counters["invariant.checks"] = monitor.checks
    if machine.recovery is not None:
        # End-of-run recovery residuals: the campaign verdict inputs.
        ledger = machine.recovery
        counters = run_result.stats.counters
        counters["recovery.residual_tokens"] = ledger.residual_tokens()
        counters["recovery.degraded_blocks"] = len(ledger.degraded_blocks())
        counters["recovery.writes_lost"] = ledger.writes_lost
        counters["recovery.tokens_destroyed"] = ledger.tokens_destroyed
        counters["recovery.tokens_recreated"] = ledger.tokens_recreated
    telemetry_doc = None
    if sampler is not None:
        telemetry_doc = sampler.finalize()
        counters = run_result.stats.counters
        counters["telemetry.ticks"] = sampler.ticks
        counters["telemetry.saturation_windows"] = len(
            telemetry_doc["saturation"]
        )
    result = CellResult.from_run(run_result, cell)
    result.telemetry = telemetry_doc
    return result


def _run_cell_worker(cell: Cell) -> CellResult:
    """Pool target: run a cell and strip the unpicklable machine handle."""
    result = run_cell(cell)
    result.raw = None
    return result


@dataclasses.dataclass
class ExperimentResult:
    """All cell results of one spec, in spec order, plus cache stats."""

    spec: ExperimentSpec
    results: List[CellResult]
    cache_hits: int = 0
    cache_misses: int = 0

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    # ------------------------------------------------------------------
    def _match(self, cell: Cell, result: CellResult, filters: dict) -> bool:
        for field, want in filters.items():
            if field == "protocol":
                got = cell.protocol_name
            elif field == "workload":
                got = cell.workload_name
            elif field == "seed":
                got = cell.seed
            elif field == "label":
                got = cell.label
            else:
                raise KeyError(f"unknown filter {field!r}")
            if got != want:
                return False
        return True

    def select(self, **filters) -> List[CellResult]:
        return [
            res
            for cell, res in zip(self.spec.cells, self.results)
            if self._match(cell, res, filters)
        ]

    def cell(self, **filters) -> CellResult:
        """The unique result matching the filters."""
        matches = self.select(**filters)
        if len(matches) != 1:
            raise KeyError(
                f"{len(matches)} results match {filters!r} in "
                f"{self.spec.name!r} (want exactly 1)"
            )
        return matches[0]

    def mean_runtime(self, **filters) -> float:
        """Mean runtime (ps) over matching cells — the per-seed average."""
        matches = self.select(**filters)
        if not matches:
            raise KeyError(f"no results match {filters!r} in {self.spec.name!r}")
        return sum(r.runtime_ps for r in matches) / len(matches)

    def runtime_grid(self, protocols: Sequence[str], **filters
                     ) -> Dict[str, float]:
        return {p: self.mean_runtime(protocol=p, **filters) for p in protocols}

    def by_protocol(self, protocols: Sequence[str], **filters
                    ) -> Dict[str, CellResult]:
        return {p: self.cell(protocol=p, **filters) for p in protocols}

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """One canonical JSON line per cell, in spec order."""
        return "\n".join(res.to_json() for res in self.results)


class Runner:
    """Executes specs: fan-out across processes, memoize on disk.

    ``jobs`` bounds worker processes (1 = serial, in-process).  With
    ``cache=True`` each cell's result is looked up in / stored to the
    content-addressed cache; only cache *misses* are computed.  Both knobs
    only affect scheduling — results are bit-identical either way.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: bool = True,
        cache_dir: Optional[str] = None,
        progress: Optional[Callable[[str], None]] = None,
    ):
        self.jobs = max(1, int(jobs))
        self.cache = ResultCache(cache_dir) if cache else None
        self._say = progress or (lambda msg: None)

    # ------------------------------------------------------------------
    def run_cells(self, cells: Sequence[Cell], name: str = "adhoc"
                  ) -> ExperimentResult:
        return self.run(ExperimentSpec(name=name, cells=tuple(cells)))

    def run(self, spec: ExperimentSpec) -> ExperimentResult:
        cells = list(spec.cells)
        results: List[Optional[CellResult]] = [None] * len(cells)
        hits = 0

        pending = []  # (index, cell, key) still to compute
        for i, cell in enumerate(cells):
            key = self.cache.key(cell) if self.cache else None
            if key is not None:
                cached = self.cache.load(key)
                if cached is not None:
                    results[i] = cached
                    hits += 1
                    continue
            pending.append((i, cell, key))
        if hits:
            self._say(f"{spec.name}: {hits}/{len(cells)} cells from cache")

        # Cells with callable workloads cannot cross a process boundary;
        # run them in-process (keeps .raw populated for legacy callers).
        parallelizable = [p for p in pending if p[1].cacheable]
        serial = [p for p in pending if not p[1].cacheable]
        if self.jobs > 1 and len(parallelizable) > 1:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            workers = min(self.jobs, len(parallelizable))
            self._say(
                f"{spec.name}: computing {len(parallelizable)} cells "
                f"on {workers} workers"
            )
            with ctx.Pool(workers) as pool:
                computed = pool.map(
                    _run_cell_worker, [c for _, c, _ in parallelizable]
                )
            for (i, _cell, key), res in zip(parallelizable, computed):
                res.cache_key = key
                results[i] = res
        else:
            serial = parallelizable + serial
        for i, cell, key in serial:
            self._say(
                f"{spec.name}: {cell.protocol_name} / {cell.workload_name}"
                f" seed={cell.seed}" + (f" [{cell.label}]" if cell.label else "")
            )
            res = run_cell(cell)
            res.cache_key = key
            results[i] = res

        if self.cache is not None:
            for i, _cell, key in pending:
                if key is not None:
                    self.cache.store(key, results[i])
        return ExperimentResult(
            spec=spec,
            results=results,
            cache_hits=hits,
            cache_misses=len(pending),
        )
