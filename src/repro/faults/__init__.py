"""Fault injection and liveness checking for the correctness substrate.

The paper argues (Sections 3 & 7) that token counting plus persistent
requests keep TokenCMP safe and live no matter how the interconnect
delays, reorders, or drops transient traffic.  This package makes that
claim testable:

* :mod:`repro.faults.injector` — :class:`FaultyNetwork`, an adversarial
  decorator over the interconnect with seeded, per-message-class fault
  policies;
* :mod:`repro.faults.watchdog` — :class:`LivenessWatchdog` (starvation /
  quiescence detection with structured diagnostics) and
  :class:`InvariantMonitor` (continuous token-conservation checking);
* :mod:`repro.faults.battery` — the fault-rate sweep behind
  ``python -m repro faults`` and ``benchmarks/bench_robustness.py``;
* :mod:`repro.faults.crash` — :class:`CrashInjector`, a seeded kernel
  fault that wipes an L1/L2's token soft-state mid-run (recovered by the
  token-recreation tier, see :mod:`repro.recovery`).
"""

from repro.faults.crash import CrashInjector, CrashSpec
from repro.faults.injector import ClassPolicy, FaultConfig, FaultyNetwork
from repro.faults.watchdog import (
    InvariantMonitor,
    LivenessDiagnostics,
    LivenessWatchdog,
    collect_diagnostics,
)

__all__ = [
    "ClassPolicy",
    "CrashInjector",
    "CrashSpec",
    "FaultConfig",
    "FaultyNetwork",
    "InvariantMonitor",
    "LivenessDiagnostics",
    "LivenessWatchdog",
    "collect_diagnostics",
]
