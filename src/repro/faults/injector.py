"""Adversarial network: fault injection over the interconnect.

The paper's central correctness argument (Sections 3 & 7) is that the
token-coherence substrate is *flat for correctness*: token counting plus
persistent requests keep the system safe and live **regardless of how
transient requests and responses are delayed, reordered, or dropped**.
:class:`FaultyNetwork` lets us demonstrate that claim instead of merely
asserting it: it decorates a :class:`~repro.interconnect.network.Network`
and, at delivery time, subjects messages to seeded-random **drop**,
**duplicate**, **reorder** (jitter within a window) and **delay** faults,
with a distinct :class:`ClassPolicy` per message class.

The fault model is honest about what the substrate does and does not
tolerate (see docs/robustness.md):

* **transient requests** (GETS/GETX) are hints — they may be dropped,
  duplicated, delayed and reordered freely;
* **token carriers** (data/ack/writeback responses) may be delayed and
  reordered arbitrarily, but never dropped or duplicated: token counting
  assumes tokens are neither destroyed nor forged.  The paper makes the
  same non-lossy-fabric assumption for responses;
* **persistent messages** may be delayed (and activates/deactivates even
  duplicated) but are delivered FIFO per (source, destination) pair and
  never dropped — dropping an activate starves the initiator, which the
  paper's arbiter scheme explicitly assumes cannot happen.  A duplicated
  ``PERSIST_REQ`` is indistinguishable from a fresh arbitration request,
  so it is also suppressed;
* every other class (directory-protocol messages) is fault-free unless a
  policy is explicitly configured — the directory baselines assume a
  reliable network and are outside the robustness claim.

Violating the clamps on purpose (``allow_unsafe=True``) is how the tests
prove the invariant monitor and watchdog actually catch token destruction
and starvation.

Every random decision draws from one :func:`repro.common.rng.substream`,
so a faulty run is exactly reproducible from its seed.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Tuple

from repro.common.rng import substream
from repro.common.stats import Stats
from repro.common.types import NodeId
from repro.interconnect.message import Message, MsgType
from repro.interconnect.network import Handler, Network

TRANSIENT_REQUESTS = (MsgType.TOK_GETS, MsgType.TOK_GETX)
TOKEN_CARRIERS = (
    MsgType.TOK_DATA, MsgType.TOK_ACK, MsgType.TOK_WB, MsgType.TOK_WB_DATA
)
PERSISTENT = (
    MsgType.PERSIST_REQ, MsgType.PERSIST_ACTIVATE, MsgType.PERSIST_DEACTIVATE
)
# Recovery-tier messages share the persistent class's policies and clamps:
# they are the mechanism that makes token loss survivable, so the fault
# model never drops them (they may be delayed, reordered or duplicated —
# every recreation message is idempotent at its receiver).
RECREATION = (
    MsgType.TOK_RECREATE_REQ, MsgType.TOK_RECREATE_EPOCH,
    MsgType.TOK_RECREATE_ACK, MsgType.TOK_RECREATE_DATA,
)


@dataclasses.dataclass(frozen=True)
class ClassPolicy:
    """Fault rates for one message class (all probabilities in [0, 1])."""

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0  # probability of jitter within the reorder window
    delay: float = 0.0  # probability of a long random extra delay
    reorder_window_ps: int = 2_000
    delay_ps: int = 10_000  # maximum extra delay when a delay fault fires
    fifo: bool = False  # preserve per-(src, dst) delivery order

    def __post_init__(self) -> None:
        for field in ("drop", "duplicate", "reorder", "delay"):
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field} rate {value} outside [0, 1]")


NO_FAULTS = ClassPolicy()


@dataclasses.dataclass(frozen=True)
class FaultConfig:
    """Per-message-class fault policies for one :class:`FaultyNetwork`.

    ``lossy`` lifts the "never drop token carriers" clamp *with recovery*:
    dropped carriers genuinely destroy their tokens, and the destruction
    is recorded in the machine's :class:`RecoveryLedger` so the
    epoch-aware conservation invariant stays checkable and the token
    recreation tier can restore the block.  A ``lossy`` machine must have
    recovery enabled (``Machine`` arms it automatically).

    ``allow_unsafe`` disables *all* safety clamps with no ledger and no
    recovery (forged tokens, dropped persistent messages).  It exists so
    tests can *induce* the failures the watchdog and invariant monitor
    are meant to detect.
    """

    request: ClassPolicy = NO_FAULTS
    response: ClassPolicy = NO_FAULTS
    persistent: ClassPolicy = NO_FAULTS
    other: ClassPolicy = NO_FAULTS
    allow_unsafe: bool = False
    lossy: bool = False

    @staticmethod
    def adversarial(rate: float, delay_ps: int = 10_000,
                    reorder_window_ps: int = 2_000,
                    lossy: bool = False) -> "FaultConfig":
        """The battery's standard adversary at one fault ``rate``:
        drop + duplicate + reorder + delay transient requests, reorder +
        delay token carriers, duplicate + delay persistent messages.
        With ``lossy=True`` token carriers are additionally *dropped* at
        ``rate`` — tokens are genuinely destroyed and must be recreated
        by the recovery tier."""
        return FaultConfig(
            request=ClassPolicy(
                drop=rate, duplicate=rate, reorder=rate, delay=rate / 2,
                reorder_window_ps=reorder_window_ps, delay_ps=delay_ps,
            ),
            response=ClassPolicy(
                drop=rate if lossy else 0.0,
                reorder=rate, delay=rate / 2,
                reorder_window_ps=reorder_window_ps, delay_ps=delay_ps,
            ),
            persistent=ClassPolicy(
                duplicate=rate, delay=rate / 2,
                reorder_window_ps=reorder_window_ps, delay_ps=delay_ps,
                fifo=True,
            ),
            lossy=lossy,
        )


class FaultyNetwork:
    """Decorator over :class:`Network` that injects delivery faults.

    Wraps each registered endpoint handler: the inner network models
    nominal latency and bandwidth as usual, and faults are applied at the
    nominal arrival instant — a message can be dropped, duplicated, or
    rescheduled later (reorder jitter / long delay), but never delivered
    early.  Persistent messages additionally pass a per-(src, dst) FIFO
    clamp so activates and deactivates from one source are never observed
    out of order (the point-to-point ordering the paper assumes for the
    persistent-request channels).

    The wrapper also tracks every token-carrying message from ``send`` to
    the instant a controller absorbs its tokens
    (:meth:`token_absorbed`), so token conservation can be checked
    *continuously* — not just at quiescence — by including the in-flight
    tokens in the census.
    """

    def __init__(self, inner: Network, config: FaultConfig, seed: int, stats: Stats):
        self._inner = inner
        self.config = config
        self.stats = stats
        self.sim = inner.sim
        self.params = inner.params
        self.meter = inner.meter
        self._rng = substream(seed, "faults")
        self._in_flight: Dict[int, Message] = {}
        self._fifo_last: Dict[Tuple[NodeId, NodeId], int] = {}
        # Recovery wiring (Machine.enable_recovery): the shared ledger of
        # destroyed-then-recreated tokens, and a callback returning a
        # block's current recreation epoch at its home controller.
        self.ledger = None
        self.epoch_of = None

    # ------------------------------------------------------------------
    # Network interface (controllers are oblivious to the wrapper).
    # ------------------------------------------------------------------
    def register(self, node: NodeId, handler: Handler) -> None:
        self._inner.register(node, lambda msg: self._on_arrival(handler, msg))

    def send(self, msg: Message) -> None:
        self._track(msg)
        self._inner.send(msg)

    def send_later(self, delay_ps: int, msg: Message) -> None:
        self._track(msg)  # the sender already gave its tokens up
        self.sim.schedule(delay_ps, self._inner.send, msg)

    def token_absorbed(self, msg: Message) -> None:
        self._in_flight.pop(msg.uid, None)

    def link_utilization(self) -> Dict[str, int]:
        return self._inner.link_utilization()

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    # ------------------------------------------------------------------
    # In-flight token tracking (continuous conservation checking).
    # ------------------------------------------------------------------
    def _track(self, msg: Message) -> None:
        if msg.tokens > 0 or msg.owner:
            self._in_flight[msg.uid] = msg

    def in_flight_tokens(self) -> Iterator[Tuple[int, Tuple[int, bool, object]]]:
        """(addr, (tokens, owner, data)) for every undelivered carrier."""
        for msg in self._in_flight.values():
            yield msg.addr, (msg.tokens, msg.owner, msg.data)

    def in_flight_token_epochs(
        self,
    ) -> Iterator[Tuple[int, int, Tuple[int, bool, object]]]:
        """(addr, epoch, (tokens, owner, data)) for every undelivered
        carrier — the epoch-aware census: carriers stamped with an older
        epoch than their block's current one are walking dead and must be
        excluded from conservation."""
        for msg in self._in_flight.values():
            yield msg.addr, msg.epoch, (msg.tokens, msg.owner, msg.data)

    def in_flight_messages(self) -> List[str]:
        return [str(msg) for msg in self._in_flight.values()]

    # ------------------------------------------------------------------
    # Fault application (runs at each message's nominal arrival time).
    # ------------------------------------------------------------------
    def _policy_for(self, msg: Message) -> Tuple[str, ClassPolicy]:
        if msg.mtype in TRANSIENT_REQUESTS:
            return "request", self.config.request
        if msg.mtype in TOKEN_CARRIERS:
            return "response", self.config.response
        if msg.mtype in PERSISTENT or msg.mtype in RECREATION:
            return "persistent", self.config.persistent
        return "other", self.config.other

    def _on_arrival(self, handler: Handler, msg: Message) -> None:
        klass, policy = self._policy_for(msg)
        carries_tokens = msg.tokens > 0 or msg.owner
        unsafe = self.config.allow_unsafe
        tracer = self.sim.tracer

        # ---- drop ----------------------------------------------------
        if policy.drop > 0.0 and self._rng.random() < policy.drop:
            # Safety clamp: persistent messages must always arrive, and
            # tokens may only be destroyed when the recovery subsystem is
            # there to recreate them (``lossy``) or the caller explicitly
            # asked for unrecoverable destruction (``allow_unsafe``).
            lossy = self.config.lossy and msg.mtype in TOKEN_CARRIERS
            if klass != "request" and not unsafe and not lossy:
                self.stats.bump("faults.suppressed")
                self.stats.bump(f"faults.suppressed.drop.{klass}")
            else:
                self.stats.bump("faults.dropped")
                self.stats.bump(f"faults.dropped.{klass}")
                if tracer is not None:
                    tracer.fault("drop", msg, klass)
                if carries_tokens:
                    self._in_flight.pop(msg.uid, None)
                    self.stats.bump("faults.tokens_destroyed", msg.tokens)
                    if self.ledger is not None:
                        if (self.epoch_of is not None
                                and msg.epoch < self.epoch_of(msg.addr)):
                            # A stale-epoch carrier was already walking
                            # dead — dropping it destroys nothing live.
                            self.stats.bump("recovery.stale_discarded")
                            self.stats.bump("recovery.stale_tokens", msg.tokens)
                        else:
                            self.ledger.destroy(
                                msg.addr, msg.tokens, msg.owner, dirty=msg.dirty
                            )
                # A dropped message never reaches a controller, so its
                # pooled record is recycled here (no-op for the unpooled
                # duplicate copies this wrapper itself constructs).
                self._inner.pool.release(msg)
                return

        # ---- extra latency: long delay and/or reorder jitter ---------
        extra = 0
        if policy.delay > 0.0 and self._rng.random() < policy.delay:
            delay_ps = 1 + self._rng.randrange(max(1, policy.delay_ps))
            extra += delay_ps
            self.stats.bump("faults.delayed")
            if tracer is not None:
                tracer.fault("delay", msg, klass, extra_ps=delay_ps)
        if policy.reorder > 0.0 and self._rng.random() < policy.reorder:
            jitter_ps = self._rng.randrange(policy.reorder_window_ps + 1)
            extra += jitter_ps
            self.stats.bump("faults.reordered")
            if tracer is not None:
                tracer.fault("reorder", msg, klass, extra_ps=jitter_ps)

        # Persistent channels are FIFO per (src, dst) no matter what the
        # jitter drew: activate/deactivate order is load-bearing.
        fifo = policy.fifo or klass == "persistent"
        deliver_at = self.sim.now + extra
        if fifo:
            key = (msg.src, msg.dst)
            deliver_at = max(deliver_at, self._fifo_last.get(key, 0))
            self._fifo_last[key] = deliver_at

        # ---- duplicate ----------------------------------------------
        if policy.duplicate > 0.0 and self._rng.random() < policy.duplicate:
            forge = carries_tokens  # a duplicated carrier forges tokens
            fresh_req = msg.mtype is MsgType.PERSIST_REQ  # looks like a new request
            if (forge or fresh_req) and not unsafe:
                self.stats.bump("faults.suppressed")
                self.stats.bump(f"faults.suppressed.duplicate.{klass}")
            else:
                copy = dataclasses.replace(msg)
                copy_at = deliver_at + self._rng.randrange(
                    policy.reorder_window_ps + 1
                )
                if fifo:
                    key = (msg.src, msg.dst)
                    copy_at = max(copy_at, self._fifo_last.get(key, 0))
                    self._fifo_last[key] = copy_at
                self.stats.bump("faults.duplicated")
                self.stats.bump(f"faults.duplicated.{klass}")
                if tracer is not None:
                    tracer.fault(
                        "duplicate", msg, klass, extra_ps=copy_at - self.sim.now
                    )
                if forge:
                    self.stats.bump("faults.tokens_created", msg.tokens)
                self.sim.schedule_at(copy_at, handler, copy)

        if deliver_at == self.sim.now:
            handler(msg)
        else:
            self.sim.schedule_at(deliver_at, handler, msg)
