"""Liveness watchdog and continuous invariant monitor.

Fault injection only demonstrates robustness if something *checks* the
correctness substrate while the adversary runs.  Two checkers register
with the simulation kernel's watcher hook
(:meth:`repro.sim.kernel.Simulator.add_watcher`), so they piggyback on
event progress instead of scheduling their own events (and therefore
cannot keep a drained queue alive):

* :class:`LivenessWatchdog` — detects **per-processor starvation** (no
  instruction retired within a simulated-time budget while events are
  still firing) and enriches **global quiescence-without-completion**
  (the queue drained but threads never finished).  Both produce a
  structured :class:`LivenessDiagnostics` dump: per-block token census,
  pending persistent-table entries, arbiter queue depths, in-progress
  token recreations (with outstanding-ack counts), ledger-degraded
  blocks, and the fault-injected messages still in flight.

* :class:`InvariantMonitor` — re-runs the token-conservation and
  single-owner checks *during* the run, counting tokens inside undelivered
  messages via the :class:`~repro.faults.injector.FaultyNetwork` in-flight
  ledger.  Token destruction or forgery is caught within one check
  interval instead of at the end of the run.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.common.errors import DeadlockError, StarvationError
from repro.common.types import NodeKind, ns, to_ns


@dataclasses.dataclass
class LivenessDiagnostics:
    """Snapshot of everything relevant to a stuck protocol."""

    now_ps: int
    stalled_procs: List[Tuple[int, int]]  # (proc, idle_ps)
    token_census: Dict[int, List[str]]  # addr -> "holder: t=N[,O]" lines
    persistent_entries: Dict[str, List[str]]  # node -> entry descriptions
    arbiter_queues: Dict[str, Tuple[int, Optional[str]]]  # node -> (depth, active)
    in_flight: List[str]  # fault-injected messages not yet delivered
    recreation_pending: List[str] = dataclasses.field(default_factory=list)
    degraded_blocks: List[int] = dataclasses.field(default_factory=list)

    def render(self, max_blocks: int = 16) -> str:
        lines = [f"liveness diagnostics at t={to_ns(self.now_ps):.1f} ns"]
        for proc, idle in self.stalled_procs:
            lines.append(f"  stalled: proc {proc} idle {to_ns(idle):.1f} ns")

        def capped(items, describe):
            for i, item in enumerate(items):
                if i >= max_blocks:
                    lines.append(f"  ... {len(items) - max_blocks} more")
                    break
                lines.append("  " + describe(item))

        capped(sorted(self.token_census.items()),
               lambda kv: f"block {kv[0]:#x}: " + "; ".join(kv[1]))
        capped(self.recreation_pending, lambda s: f"recreating: {s}")
        if self.degraded_blocks:
            shown = ", ".join(f"{a:#x}" for a in self.degraded_blocks[:max_blocks])
            more = len(self.degraded_blocks) - max_blocks
            lines.append(f"  degraded blocks: {shown}"
                         + (f" ... {more} more" if more > 0 else ""))
        for node, entries in sorted(self.persistent_entries.items()):
            shown = entries[:max_blocks]
            more = len(entries) - max_blocks
            lines.append(f"  persistent@{node}: " + "; ".join(shown)
                         + (f" ... {more} more" if more > 0 else ""))
        for node, (depth, active) in sorted(self.arbiter_queues.items()):
            lines.append(f"  arbiter@{node}: queued={depth} active={active}")
        capped(self.in_flight, lambda msg: f"in flight: {msg}")
        return "\n".join(lines)


def collect_diagnostics(machine, stalled: List[Tuple[int, int]] = ()) -> LivenessDiagnostics:
    """Build a :class:`LivenessDiagnostics` snapshot of ``machine``."""
    census: Dict[int, List[str]] = {}
    persistent: Dict[str, List[str]] = {}
    arbiters: Dict[str, Tuple[int, Optional[str]]] = {}
    if machine.cfg.family == "token":
        from repro.core.base import TokenCacheController
        from repro.core.persistent import Arbiter

        for addr in machine.touched_blocks():
            holders = []
            for node, ctrl in machine.controllers.items():
                if isinstance(ctrl, TokenCacheController):
                    entry = ctrl.peek_entry(addr)
                    if entry is not None and (entry.tokens or entry.owner):
                        owner = "+O" if entry.owner else ""
                        holders.append(f"{node}: t={entry.tokens}{owner}")
            home = machine.mems[machine.params.home_chip(addr)]
            if home.tokens_of(addr):
                owner = "+O" if home.is_owner(addr) else ""
                holders.append(f"{home.node}: t={home.tokens_of(addr)}{owner}")
            if holders:
                census[addr] = holders
        for node, ctrl in machine.controllers.items():
            table = getattr(ctrl, "table", None)
            if table is not None and len(table):
                persistent[str(node)] = [
                    f"proc{e.proc}@{e.addr:#x}{'(marked)' if e.marked else ''}"
                    for addr in {e.addr for e in table._entries.values()}
                    for e in table.entries_for(addr)
                ]
            if isinstance(ctrl, Arbiter):
                active = str(ctrl._active) if ctrl._active is not None else None
                arbiters[str(node)] = (len(ctrl._queue), active)
    in_flight = getattr(machine.net, "in_flight_messages", lambda: [])()
    recreating: List[str] = []
    degraded: List[int] = []
    if machine.cfg.family == "token":
        for mem in machine.mems.values():
            for addr, epoch, outstanding in mem.recreating_blocks():
                recreating.append(
                    f"{mem.node}@{addr:#x} epoch={epoch} awaiting {outstanding} ack(s)"
                )
        if machine.recovery is not None:
            degraded = list(machine.recovery.degraded_blocks())
    return LivenessDiagnostics(
        now_ps=machine.sim.now,
        stalled_procs=list(stalled),
        token_census=census,
        persistent_entries=persistent,
        arbiter_queues=arbiters,
        in_flight=in_flight,
        recreation_pending=recreating,
        degraded_blocks=degraded,
    )


class LivenessWatchdog:
    """Detects starvation while the simulation is still making progress.

    A processor is starved when it has an unfinished thread but has not
    completed a memory operation (or think step boundary) within
    ``budget_ns`` of simulated time.  The budget must exceed the worst
    *legitimate* wait — a queue of persistent requests ahead of you — so
    the default is generous; the paper's guarantee is eventual progress,
    and the watchdog bounds "eventual".
    """

    def __init__(self, machine, budget_ns: float = 100_000.0,
                 check_every_events: int = 2048):
        self.machine = machine
        self.budget_ps = ns(budget_ns)
        self.trips = 0
        self._threads = None
        self._armed_at_ps = 0
        machine.sim.add_watcher(self._check, check_every_events)
        machine.watchdog = self

    # Called by Machine.run --------------------------------------------
    def arm(self, threads) -> None:
        self._threads = threads
        self._armed_at_ps = self.machine.sim.now

    def disarm(self) -> None:
        self._threads = None

    # ------------------------------------------------------------------
    def _check(self) -> None:
        if self._threads is None:
            return
        now = self.machine.sim.now
        stalled = []
        for proc, seq in enumerate(self.machine.sequencers):
            if proc < len(self._threads) and self._threads[proc].finished:
                continue
            idle = now - max(seq.last_complete_ps, self._armed_at_ps)
            if idle > self.budget_ps:
                stalled.append((proc, idle))
        if stalled:
            self.trips += 1
            proc, idle = stalled[0]
            err = StarvationError(
                f"processor {proc} retired nothing for {to_ns(idle):.0f} ns "
                f"(budget {to_ns(self.budget_ps):.0f} ns) at "
                f"t={to_ns(now):.0f} ns while events kept firing"
            )
            err.diagnostics = collect_diagnostics(self.machine, stalled)
            raise err

    def attach_diagnostics(self, err: DeadlockError) -> DeadlockError:
        """Enrich a quiescence/deadlock error with a structured dump."""
        if err.diagnostics is None:
            now = self.machine.sim.now
            stalled = []
            if self._threads is not None:
                for proc, seq in enumerate(self.machine.sequencers):
                    if proc < len(self._threads) and self._threads[proc].finished:
                        continue
                    stalled.append(
                        (proc, now - max(seq.last_complete_ps, self._armed_at_ps))
                    )
            err.diagnostics = collect_diagnostics(self.machine, stalled)
        return err


class InvariantMonitor:
    """Continuously verifies token conservation and the single-owner rule.

    Runs the same census as the post-run checker, extended with the tokens
    inside undelivered messages (the fault injector's in-flight ledger),
    every ``check_every_events`` fired events.  Raises
    :class:`~repro.common.errors.ProtocolError` at the first violation —
    under fault injection this catches token destruction or forgery the
    moment it becomes visible rather than at quiescence.
    """

    def __init__(self, machine, check_every_events: int = 2048):
        if machine.cfg.family != "token":
            raise ValueError("token invariants only apply to the token family")
        self.machine = machine
        self.checks = 0
        machine.sim.add_watcher(self._check, check_every_events)

    def _check(self) -> None:
        self.checks += 1
        self.machine.check_token_invariants()
