"""Seeded controller-crash fault: wipe a cache's token soft-state.

The paper's robustness story (Section 7) covers more than a lossy
fabric: a controller that loses its soft state (soft error, reset) must
not wedge the system.  :class:`CrashInjector` models exactly that — at a
pinned simulated time it erases one L1/L2's entire token table (tokens,
owner bits, cached values, the lot).  The destroyed tokens are debited
in the machine's :class:`~repro.recovery.ledger.RecoveryLedger`, so the
epoch-aware conservation invariant keeps holding, and the recreation
tier (timeout-driven ``TOK_RECREATE_REQ`` to the ruler of tokens)
restores the block's full token set when somebody next starves on it.

Everything is seeded and pinned in picoseconds, so a crash campaign cell
is exactly reproducible — serially, under ``Runner --jobs N``, and from
the content-addressed cache.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.common.rng import substream


@dataclasses.dataclass(frozen=True)
class CrashSpec:
    """One controller crash: who (level + victim) and when (ps).

    ``victim`` indexes the level's controller list (L1 data caches in
    processor order, or L2 banks in chip/bank order); ``None`` picks one
    from the seeded substream.  The index is taken modulo the list length
    so campaign grids can sweep victims without knowing the topology.
    """

    level: str = "l1"  # "l1" | "l2"
    at_ps: int = 1_000_000
    victim: Optional[int] = None

    def __post_init__(self) -> None:
        if self.level not in ("l1", "l2"):
            raise ValueError(f"crash level {self.level!r} not in ('l1', 'l2')")
        if self.at_ps <= 0:
            raise ValueError("crash time must be a positive ps instant")


class CrashInjector:
    """Wipes one cache controller's token soft-state at ``spec.at_ps``."""

    def __init__(self, machine, spec: CrashSpec, seed: int = 0):
        machine.enable_recovery()  # wiped tokens need the recreation tier
        self.machine = machine
        self.spec = spec
        self.stats = machine.stats
        self.fired = False
        targets = self._targets(machine, spec.level)
        if not targets:
            raise ValueError(f"no {spec.level} controllers to crash")
        if spec.victim is not None:
            index = spec.victim % len(targets)
        else:
            index = substream(seed, "crash", spec.level, spec.at_ps).randrange(
                len(targets)
            )
        self.victim = targets[index]
        machine.sim.schedule_at(spec.at_ps, self._fire)

    @staticmethod
    def _targets(machine, level: str):
        if level == "l1":
            return list(machine.l1ds)
        from repro.core.l2 import TokenL2Controller

        return [c for c in machine.controllers.values()
                if isinstance(c, TokenL2Controller)]

    # ------------------------------------------------------------------
    def _fire(self) -> None:
        ctrl = self.victim
        ledger = self.machine.recovery  # wired by enable_recovery() in ctor
        wiped_tokens = 0
        wiped_blocks = 0
        for addr, entry in list(ctrl.array.items()):
            if entry.empty:
                ctrl.array.deallocate(addr)
                continue
            # Tokens the victim knew to be stale (an epoch bump it has
            # already processed) are walking dead either way; only
            # current-epoch tokens are genuinely destroyed.
            stale = ctrl._block_epoch.get(addr, 0) < self.machine.block_epoch(addr)
            if stale:
                self.stats.bump("recovery.stale_tokens", entry.tokens)
            else:
                ledger.destroy(
                    addr, entry.tokens, entry.owner,
                    dirty=entry.owner and entry.dirty,
                )
            wiped_tokens += entry.tokens
            wiped_blocks += 1
            entry.take(entry.tokens, entry.owner)
            ctrl.array.deallocate(addr)
        self.fired = True
        self.stats.bump("crash.fired")
        self.stats.bump("crash.tokens_wiped", wiped_tokens)
        self.stats.bump("crash.blocks_wiped", wiped_blocks)
        tracer = self.machine.sim.tracer
        if tracer is not None:
            tracer.crash(ctrl.node, wiped_blocks, wiped_tokens)
