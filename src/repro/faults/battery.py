"""Robustness battery: sweep fault rates over the contention benchmarks.

For every (workload, protocol, fault-rate) cell the battery builds a
fresh machine wrapped in the adversarial network, arms the liveness
watchdog and the continuous invariant monitor, runs the workload to
completion, and then re-checks token conservation at quiescence.  It
asserts three things the paper claims fault tolerance buys for free:

* **completion** — every thread finishes (no starvation, no deadlock);
* **token conservation** — zero violations, continuously and at the end;
* **bounded slowdown** — runtime under faults stays within a constant
  factor of the fault-free run (dropped transients cost retries and
  persistent escalations, not correctness).

Run it as ``python -m repro faults`` (writes
``benchmarks/results/robustness_battery.txt``) or through
``benchmarks/bench_robustness.py``.  Output contains no timestamps, so a
fixed seed reproduces byte-identical reports.

The sweep's cells run through the :mod:`repro.exp` engine (watchdog,
invariant monitor and quiescent re-check armed declaratively), so
``jobs`` parallelizes the grid and repeated sweeps replay from the result
cache without recomputation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import ResultTable
from repro.common.errors import ReproError
from repro.common.params import SystemParams
from repro.exp.runner import Runner
from repro.exp.spec import Cell, ExperimentSpec
from repro.faults.injector import FaultConfig

DEFAULT_RATES = (0.0, 0.05, 0.10, 0.20)
DEFAULT_PROTOCOLS = ("TokenCMP-arb0", "TokenCMP-dst0", "TokenCMP-dst1")
MAX_SLOWDOWN = 50.0  # bounded-slowdown assertion, vs the fault-free run

FAULT_COUNTERS = (
    "faults.dropped", "faults.duplicated", "faults.reordered",
    "faults.delayed", "faults.suppressed",
)


class RobustnessFailure(ReproError):
    """The battery's bounded-slowdown (or completion) assertion failed."""


def _workload_specs(scale: float) -> Dict[str, Tuple[str, Dict[str, int]]]:
    def n(base: int) -> int:
        return max(2, round(base * scale))

    return {
        "locking": ("locking", {"num_locks": 4, "acquires_per_proc": n(8)}),
        "barrier": ("barrier", {"phases": n(6)}),
    }


def run_robustness_battery(
    rates: Sequence[float] = DEFAULT_RATES,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    scale: float = 1.0,
    seed: int = 1,
    params: Optional[SystemParams] = None,
    watchdog_budget_ns: float = 100_000.0,
    check_every_events: int = 2048,
    max_events: int = 40_000_000,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
    cache: bool = True,
    cache_dir: Optional[str] = None,
) -> List[ResultTable]:
    """Run the sweep; returns rendered tables.  Raises on any violation."""
    say = progress or (lambda msg: None)
    params = params or SystemParams(num_chips=2, procs_per_chip=2, tokens_per_block=16)
    workloads = _workload_specs(scale)

    # Every cell arms the watchdog + continuous invariant monitor and
    # re-checks token conservation at quiescence; a violation raises out
    # of the engine (serial or parallel) exactly as it used to.
    cells = []
    for wl_name, (registry_name, wl_kwargs) in workloads.items():
        for proto in protocols:
            for rate in rates:
                cells.append(Cell(
                    protocol=proto, workload=registry_name,
                    workload_kwargs=wl_kwargs, seed=seed, params=params,
                    max_events=max_events,
                    faults=FaultConfig.adversarial(rate),
                    watchdog_budget_ns=watchdog_budget_ns,
                    watchdog_check_every=check_every_events,
                    invariant_check_every=check_every_events,
                    check_invariants=True,
                    label=f"{wl_name}@{rate}",
                ))
    runner = Runner(jobs=jobs, cache=cache, cache_dir=cache_dir, progress=say)
    result = runner.run(ExperimentSpec("robustness", tuple(cells)))

    runtimes: Dict[Tuple[str, str, float], int] = {}
    fault_totals: Dict[float, Dict[str, int]] = {r: {} for r in rates}
    runs = completions = checks = 0
    spurious = 0

    for wl_name in workloads:
        for proto in protocols:
            for rate in rates:
                res = result.cell(protocol=proto, label=f"{wl_name}@{rate}")
                runs += 1
                completions += 1  # run_cell raises if any thread starves
                checks += res.get("invariant.checks") + 1
                spurious += res.get("arb.spurious_deactivates")
                assert res.get("watchdog.trips") == 0  # a trip would have raised
                runtimes[(wl_name, proto, rate)] = res.runtime_ps
                for counter in FAULT_COUNTERS:
                    totals = fault_totals[rate]
                    totals[counter] = totals.get(counter, 0) + res.get(counter)

                base = runtimes[(wl_name, proto, rates[0])]
                slowdown = res.runtime_ps / base if base else 1.0
                if slowdown > MAX_SLOWDOWN:
                    raise RobustnessFailure(
                        f"{wl_name}/{proto} at fault rate {rate}: slowdown "
                        f"{slowdown:.1f}x exceeds the {MAX_SLOWDOWN:.0f}x bound"
                    )

    tables: List[ResultTable] = []
    for wl_name in workloads:
        t = ResultTable(
            f"{wl_name} under fault injection: runtime normalized to the "
            "fault-free run of each protocol",
            ["fault rate"] + list(protocols),
        )
        for rate in rates:
            t.add(
                f"{rate:.0%}",
                *(
                    f"{runtimes[(wl_name, p, rate)] / runtimes[(wl_name, p, rates[0])]:.2f}"
                    for p in protocols
                ),
            )
        tables.append(t)

    t = ResultTable(
        "Injected fault events (summed over workloads and protocols)",
        ["fault rate"] + [c.split(".", 1)[1] for c in FAULT_COUNTERS],
    )
    for rate in rates:
        t.add(f"{rate:.0%}", *(fault_totals[rate].get(c, 0) for c in FAULT_COUNTERS))
    tables.append(t)

    t = ResultTable(
        "Correctness substrate under the adversary",
        ["runs", "completed", "conservation checks", "violations",
         "watchdog trips", "spurious deactivates absorbed"],
    )
    t.add(runs, completions, checks, 0, 0, spurious)
    tables.append(t)
    return tables


def write_battery(
    path: str,
    rates: Sequence[float] = DEFAULT_RATES,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    scale: float = 1.0,
    seed: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
    cache: bool = True,
    cache_dir: Optional[str] = None,
) -> str:
    """Run the battery and write its report; returns the text.

    The report is deterministic: with a fixed seed two runs produce
    byte-identical files (no timestamps, seeded faults, seeded workloads)
    — regardless of ``jobs`` or cache hits.
    """
    tables = run_robustness_battery(
        rates=rates, protocols=protocols, scale=scale, seed=seed,
        progress=progress, jobs=jobs, cache=cache, cache_dir=cache_dir,
    )
    header = (
        "Robustness battery: TokenCMP correctness substrate under an "
        "adversarial network\n"
        f"(2 CMPs x 2 processors, seed {seed}, scale {scale}; fault model: "
        "docs/robustness.md)\n"
    )
    text = header + "\n" + "\n\n".join(t.render() for t in tables) + "\n"
    with open(path, "w") as fh:
        fh.write(text)
    return text
