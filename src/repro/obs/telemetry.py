"""Time-series telemetry: sampled gauges and saturation detection.

The trace bus (PR 3) records *every* event and the metrics document
records *end-of-run totals*; nothing in between explains a sustained
contention episode.  :class:`TelemetrySampler` fills that gap: it rides
the kernel's threshold-driven watcher hook (one integer compare per
event while idle — the same zero-cost-when-off contract as the tracer)
and, every ``sample_every_events`` fired events, snapshots a fixed
registry of probes into ring-buffered series keyed by simulated time:

* **interconnect** — per-link cumulative bytes carried, instantaneous
  egress backlog (``busy_until - now``) and, for :class:`BufferedLink`,
  cumulative overflow events;
* **token controllers** — per-level (L1/L2) token-state census (cached
  blocks, tokens held, owner blocks), persistent-table occupancy
  (total and the fullest single table), outstanding-transaction and
  persistent-transaction counts;
* **directory controllers** — L2 directory lines, outstanding external
  transactions, home directory lines;
* **recovery** — in-progress recreations and the ledger's residual
  token deficit;
* **cumulative counters** — retry/backoff and request activity from the
  shared :class:`~repro.common.stats.Stats` counters.

The exported document (:data:`TELEMETRY_SCHEMA`) is canonical JSON:
sorted keys, compact separators, integer gauges, no wall-clock content —
byte-identical across repeats, worker counts and ``PYTHONHASHSEED``
values.  :func:`saturation_windows` scans the collected series for
*sustained* trouble — link utilization above a threshold, monotone
backlog growth, a persistent table near capacity — and reports maximal
windows, which ``run_cell`` surfaces in the cell result and the campaign
engine folds into its verdict records.

Sampling is purely observational: the watcher reads controller state and
never schedules events, draws randomness or mutates anything, so a
sampled run produces byte-identical simulation results to an unsampled
one (enforced by ``tests/test_telemetry.py``).
"""

from __future__ import annotations

import dataclasses
import json
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

#: Schema identifier (bump on layout changes).
TELEMETRY_SCHEMA = "repro.telemetry/1"

#: Cumulative stats counters sampled as ``ctr:<name>`` series (missing
#: counters read 0, so the probe list is identical for every family).
COUNTER_PROBES = (
    "l1.misses",
    "persistent.requests",
    "policy.retries",
    "policy.transient_requests",
    "recovery.escalations",
)

#: Saturation-window kinds (report ordering).
WINDOW_KINDS = ("backlog-growth", "link-utilization", "ptable-near-full")


@dataclasses.dataclass(frozen=True)
class TelemetryConfig:
    """Sampling cadence, ring capacity and saturation thresholds.

    Frozen and JSON-able so it can live inside a :class:`~repro.exp.spec
    .Cell` and participate in content-addressed caching: a cell with
    telemetry enabled is a *different* cell (its result carries the
    telemetry document), so the config is part of the cache key.
    """

    #: Watcher cadence: one sample every N fired kernel events.
    sample_every_events: int = 4096
    #: Ring capacity in rows; the oldest rows are dropped (and counted)
    #: once a run outlives the ring.
    ring_capacity: int = 1024
    #: A link tick is "hot" when its serialization busy time covers at
    #: least this fraction (in permille) of the tick's simulated span.
    util_threshold_permille: int = 750
    #: Minimum consecutive hot/growing/near-full ticks for a window.
    min_window_ticks: int = 8
    #: A persistent table is "near full" when its occupancy reaches this
    #: fraction (in permille) of its capacity (one entry per processor).
    table_frac_permille: int = 500

    def __post_init__(self) -> None:
        if self.sample_every_events < 1:
            raise ValueError("sample_every_events must be >= 1")
        if self.ring_capacity < 2:
            raise ValueError("ring_capacity must be >= 2")
        if self.min_window_ticks < 2:
            raise ValueError("min_window_ticks must be >= 2")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, record: dict) -> "TelemetryConfig":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(record) - known
        if unknown:
            raise ValueError(
                f"unknown telemetry config keys {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return cls(**record)


class TelemetrySampler:
    """Samples a probe registry into ring-buffered time series.

    Usage::

        sampler = TelemetrySampler(TelemetryConfig())
        sampler.attach(machine)     # registers one kernel watcher
        machine.run(workload)
        doc = sampler.finalize()    # repro.telemetry/1 document

    ``attach`` walks the machine once and builds a *fixed*, sorted probe
    list (so series order never depends on dict/set hash order); each
    watcher tick evaluates every probe into one integer row.
    """

    def __init__(self, config: Optional[TelemetryConfig] = None):
        self.config = config or TelemetryConfig()
        self._machine = None
        self._probes: List[Tuple[str, Callable[[], int]]] = []
        self._links: Dict[str, dict] = {}
        self._rows = deque(maxlen=self.config.ring_capacity)
        self.ticks = 0  # total ticks taken, including dropped ones
        self._doc: Optional[dict] = None

    # ------------------------------------------------------------------
    # Probe registry construction.
    # ------------------------------------------------------------------
    def attach(self, machine) -> "TelemetrySampler":
        """Build the probe registry for ``machine`` and start sampling."""
        if self._machine is not None:
            raise RuntimeError("sampler is already attached")
        self._machine = machine
        self._build_probes(machine)
        machine.sim.add_watcher(self._tick, self.config.sample_every_events)
        self._tick()  # baseline row at attach time (t = now)
        return self

    def _build_probes(self, machine) -> None:
        probes = self._probes
        sim = machine.sim
        net = machine.net  # may be a FaultyNetwork proxy (delegates)

        for name, link in sorted(net.links_by_name().items()):
            self._links[name] = {
                "scope": str(link.scope),
                "latency_ps": link.latency_ps,
                "bytes_per_ns": link.bytes_per_ns,
                "ser_num": link._ser_num,
                "ser_den": link._ser_den,
                "buffer_bytes": getattr(link, "buffer_bytes", None),
            }
            probes.append((f"link:{name}:bytes",
                           lambda link=link: link.bytes_carried))
            probes.append((f"link:{name}:backlog_ps",
                           lambda link=link, sim=sim:
                           max(0, link.busy_until - sim.now)))
            if hasattr(link, "overflow_events"):
                probes.append((f"link:{name}:overflows",
                               lambda link=link: link.overflow_events))

        if machine.cfg.family == "token":
            self._build_token_probes(machine)
        elif machine.cfg.family == "directory":
            self._build_directory_probes(machine)

        counters = machine.stats.counters
        for name in COUNTER_PROBES:
            probes.append((f"ctr:{name}",
                           lambda counters=counters, name=name:
                           counters.get(name, 0)))
        probes.sort(key=lambda pair: pair[0])

    def _build_token_probes(self, machine) -> None:
        from repro.core.base import TokenCacheController
        from repro.core.l1 import TokenL1Controller

        l1s, l2s, tables = [], [], []
        for ctrl in machine.controllers.values():
            if isinstance(ctrl, TokenL1Controller):
                l1s.append(ctrl)
            elif isinstance(ctrl, TokenCacheController):
                l2s.append(ctrl)
            if isinstance(ctrl, TokenCacheController):
                tables.append(ctrl.table)
        mems = list(machine.mems.values())
        tables.extend(mem.table for mem in mems)
        ledger = machine.recovery

        def census(ctrls, index):
            return sum(ctrl.token_census()[index] for ctrl in ctrls)

        probes = self._probes
        for level, ctrls in (("l1", l1s), ("l2", l2s)):
            probes.append((f"token.{level}.blocks",
                           lambda ctrls=ctrls: census(ctrls, 0)))
            probes.append((f"token.{level}.tokens",
                           lambda ctrls=ctrls: census(ctrls, 1)))
            probes.append((f"token.{level}.owners",
                           lambda ctrls=ctrls: census(ctrls, 2)))
        probes.append(("ptable.entries",
                       lambda: sum(len(t) for t in tables)))
        probes.append(("ptable.max",
                       lambda: max((len(t) for t in tables), default=0)))
        probes.append(("tx.outstanding",
                       lambda: sum(c.outstanding_tx()[0] for c in l1s)))
        probes.append(("tx.persistent",
                       lambda: sum(c.outstanding_tx()[1] for c in l1s)))
        probes.append(("recovery.pending",
                       lambda: sum(m.pending_recreations() for m in mems)))
        probes.append(("recovery.residual_tokens",
                       lambda: ledger.residual_tokens()
                       if ledger is not None else 0))

    def _build_directory_probes(self, machine) -> None:
        from repro.directory.intra import IntraDirL2Controller

        banks = [ctrl for ctrl in machine.controllers.values()
                 if isinstance(ctrl, IntraDirL2Controller)]
        homes = list(machine.mems.values())
        probes = self._probes
        probes.append(("dir.l2_lines",
                       lambda: sum(b.occupancy()[0] for b in banks)))
        probes.append(("dir.ext_tx",
                       lambda: sum(b.occupancy()[1] for b in banks)))
        probes.append(("dir.evicting",
                       lambda: sum(b.occupancy()[2] for b in banks)))
        probes.append(("dir.home_lines",
                       lambda: sum(h.occupancy() for h in homes)))

    # ------------------------------------------------------------------
    # Sampling.
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        sim = self._machine.sim
        row = [sim.now, sim.events_fired]
        row.extend(fn() for _name, fn in self._probes)
        self._rows.append(row)
        self.ticks += 1

    @property
    def dropped_ticks(self) -> int:
        return self.ticks - len(self._rows)

    # ------------------------------------------------------------------
    # Export.
    # ------------------------------------------------------------------
    def finalize(self) -> dict:
        """Take a final end-of-run sample and build the document.

        Idempotent: the first call closes the series; later calls return
        the same document (re-sampling a quiescent machine would append
        duplicate rows).
        """
        if self._doc is not None:
            return self._doc
        if self._machine is None:
            raise RuntimeError("sampler was never attached")
        last = self._rows[-1] if self._rows else None
        if last is None or last[0] != self._machine.sim.now:
            self._tick()
        self._doc = self._build_document()
        return self._doc

    def _build_document(self) -> dict:
        rows = list(self._rows)
        names = [name for name, _fn in self._probes]
        series = {
            name: [row[2 + i] for row in rows]
            for i, name in enumerate(names)
        }
        params = self._machine.params
        doc = {
            "schema": TELEMETRY_SCHEMA,
            "config": self.config.to_dict(),
            "meta": {
                "family": self._machine.cfg.family,
                "protocol": self._machine.cfg.name,
                "num_chips": params.num_chips,
                "num_procs": params.num_procs,
                "topology": params.topology.generator,
            },
            "links": {name: dict(meta) for name, meta in self._links.items()},
            "probes": names,
            "t_ps": [row[0] for row in rows],
            "events": [row[1] for row in rows],
            "series": series,
            "ticks": self.ticks,
            "dropped_ticks": self.dropped_ticks,
        }
        doc["saturation"] = saturation_windows(doc)
        return doc


# ---------------------------------------------------------------------------
# Saturation detection.
# ---------------------------------------------------------------------------
def _maximal_runs(flags: List[bool], min_len: int) -> List[Tuple[int, int]]:
    """Maximal [start, end] index runs of consecutive True flags."""
    runs = []
    start = None
    for i, flag in enumerate(flags):
        if flag and start is None:
            start = i
        elif not flag and start is not None:
            if i - start >= min_len:
                runs.append((start, i - 1))
            start = None
    if start is not None and len(flags) - start >= min_len:
        runs.append((start, len(flags) - 1))
    return runs


def link_utilization_permille(t_ps: List[int], bytes_series: List[int],
                              ser_num: int, ser_den: int) -> List[int]:
    """Per-tick utilization in permille, from cumulative byte counts.

    Tick ``i`` (``i >= 1``) covers ``t_ps[i-1] .. t_ps[i]``; utilization
    is the exact integer ratio of the link's serialization busy time for
    the bytes carried in that span to the span itself.  Entry 0 is 0 (no
    preceding tick).  Values can exceed 1000: a burst injected late in
    one tick drains during the next, so instantaneous per-tick busy time
    may overlap tick boundaries.
    """
    out = [0]
    for i in range(1, len(t_ps)):
        span = t_ps[i] - t_ps[i - 1]
        if span <= 0:
            out.append(0)
            continue
        busy_ps = (bytes_series[i] - bytes_series[i - 1]) * ser_num // ser_den
        out.append(busy_ps * 1000 // span)
    return out


def saturation_windows(doc: dict,
                       config: Optional[TelemetryConfig] = None) -> List[dict]:
    """Scan a telemetry document's series for sustained saturation.

    Three detectors, each reporting maximal windows of at least
    ``min_window_ticks`` consecutive ticks:

    * ``link-utilization`` — the link's serialization busy time covered
      at least ``util_threshold_permille`` of every tick in the window
      (peak = highest per-tick permille);
    * ``backlog-growth`` — the link's egress backlog grew strictly
      monotonically across the window (peak = backlog in ps);
    * ``ptable-near-full`` — the fullest persistent table held at least
      ``table_frac_permille`` of its capacity (one entry per processor)
      throughout (peak = occupancy).

    Windows are sorted by (kind, subject, start_ps) so the report is
    deterministic regardless of discovery order.
    """
    if config is None:
        config = TelemetryConfig.from_dict(doc["config"])
    t_ps = doc["t_ps"]
    series = doc["series"]
    min_ticks = config.min_window_ticks
    windows: List[dict] = []

    def emit(kind: str, subject: str, start: int, end: int, peak: int) -> None:
        windows.append({
            "kind": kind,
            "subject": subject,
            "start_ps": t_ps[start],
            "end_ps": t_ps[end],
            "ticks": end - start + 1,
            "peak": peak,
        })

    for name in sorted(doc.get("links", {})):
        meta = doc["links"][name]
        util = link_utilization_permille(
            t_ps, series[f"link:{name}:bytes"],
            meta["ser_num"], meta["ser_den"],
        )
        hot = [u >= config.util_threshold_permille for u in util]
        for start, end in _maximal_runs(hot, min_ticks):
            emit("link-utilization", name, start, end,
                 max(util[start:end + 1]))
        backlog = series[f"link:{name}:backlog_ps"]
        growing = [False] + [
            backlog[i] > backlog[i - 1] for i in range(1, len(backlog))
        ]
        for start, end in _maximal_runs(growing, min_ticks):
            emit("backlog-growth", name, start, end,
                 max(backlog[start:end + 1]))

    ptable = series.get("ptable.max")
    if ptable is not None:
        capacity = doc["meta"]["num_procs"]
        near = [occ * 1000 >= config.table_frac_permille * capacity
                for occ in ptable]
        for start, end in _maximal_runs(near, min_ticks):
            emit("ptable-near-full", "ptable.max", start, end,
                 max(ptable[start:end + 1]))

    windows.sort(key=lambda w: (w["kind"], w["subject"], w["start_ps"]))
    return windows


# ---------------------------------------------------------------------------
# Canonical JSON + validation.
# ---------------------------------------------------------------------------
def render_telemetry(doc: dict) -> str:
    """Canonical JSON — the telemetry determinism contract's byte form."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"


def write_telemetry(path: str, doc: dict) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_telemetry(doc))


def validate_telemetry(doc: dict) -> int:
    """Raise :class:`ValueError` unless ``doc`` matches the schema;
    return the number of sampled rows.  Dependency-free, like
    :func:`repro.obs.metrics.validate_metrics`."""

    def fail(why: str):
        raise ValueError(f"invalid telemetry document: {why}")

    if not isinstance(doc, dict):
        fail("not an object")
    if doc.get("schema") != TELEMETRY_SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, want {TELEMETRY_SCHEMA!r}")
    for key, types in (
        ("config", dict),
        ("meta", dict),
        ("links", dict),
        ("probes", list),
        ("t_ps", list),
        ("events", list),
        ("series", dict),
        ("ticks", int),
        ("dropped_ticks", int),
        ("saturation", list),
    ):
        if not isinstance(doc.get(key), types):
            fail(f"{key!r} missing or not {types.__name__}")
    TelemetryConfig.from_dict(doc["config"])  # raises on unknown keys
    rows = len(doc["t_ps"])
    if len(doc["events"]) != rows:
        fail("events length does not match t_ps")
    if sorted(doc["series"]) != sorted(doc["probes"]):
        fail("series keys do not match the probe list")
    for name in doc["probes"]:
        values = doc["series"][name]
        if len(values) != rows:
            fail(f"series {name!r} length does not match t_ps")
        for value in values:
            if not isinstance(value, int):
                fail(f"series {name!r} contains a non-integer")
    if any(b - a < 0 for a, b in zip(doc["t_ps"], doc["t_ps"][1:])):
        fail("t_ps is not monotonically non-decreasing")
    for i, window in enumerate(doc["saturation"]):
        if not isinstance(window, dict):
            fail(f"saturation window {i} is not an object")
        if window.get("kind") not in WINDOW_KINDS:
            fail(f"saturation window {i} has unknown kind "
                 f"{window.get('kind')!r}")
        for key in ("subject", "start_ps", "end_ps", "ticks", "peak"):
            if key not in window:
                fail(f"saturation window {i} lacks {key!r}")
    return rows


def render_saturation(doc: dict) -> str:
    """Human-readable saturation summary for one telemetry document."""
    windows = doc["saturation"]
    rows = len(doc["t_ps"])
    lines = [
        f"telemetry: {rows} samples over {doc['t_ps'][-1] if rows else 0} ps "
        f"({doc['dropped_ticks']} dropped), "
        f"{len(windows)} saturation window(s)"
    ]
    for w in windows:
        span_ns = (w["end_ps"] - w["start_ps"]) / 1000.0
        lines.append(
            f"  {w['kind']:18s} {w['subject']:32s} "
            f"{w['start_ps'] / 1000.0:12.1f} ns +{span_ns:10.1f} ns "
            f"({w['ticks']} ticks, peak {w['peak']})"
        )
    return "\n".join(lines)
