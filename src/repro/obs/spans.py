"""Transaction spans: per-miss lifecycles stitched from trace events.

An L1 miss emits a ``tx.issue`` event, then (depending on the protocol's
performance policy) ``tx.transient`` broadcasts, a ``tx.escalate`` from
the home L2 bank when the chip cannot satisfy the miss, ``tx.retry`` and
``tx.persistent`` escalations, a ``tx.data`` arrival and finally a
``tx.complete``.  :class:`SpanBuilder` folds that stream into one
:class:`Span` per miss, keyed by (requesting node, block address) — an L1
has at most one outstanding transaction per block, so the key is unique
among open spans.

Spans are classified into the three lifecycle shapes the paper's
hierarchical policy produces:

* ``intra-hit`` — satisfied inside the CMP, no off-chip escalation;
* ``escalated`` — the home L2 bank broadcast the miss to other CMPs
  and/or memory (an inter-CMP transaction);
* ``persistent`` — the requestor fell back to the correctness
  substrate's persistent request.

:meth:`SpanReport.segment_summaries` gives per-category, per-segment
latency :class:`~repro.common.stats.Summary` streams (count, mean,
p50/p95/p99); segments are the deltas between consecutive observed
milestones (``issue -> transient -> escalate -> persistent -> data ->
complete``), so a span that skipped a milestone simply contributes to the
coarser segment spanning it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.stats import Summary
from repro.common.types import NodeId, to_ns
from repro.obs.trace import TraceEvent

#: Canonical milestone order within one transaction lifecycle.
MILESTONES = (
    "issue",
    "transient",
    "escalate",
    "persistent",
    "recreate",
    "data",
    "complete",
)

#: Span categories, most specific first.  ``recovered`` spans escalated
#: past the persistent tier into token recreation (the ``recovered``
#: category's ``total`` stream is the time-to-recover distribution).
CATEGORIES = ("recovered", "persistent", "escalated", "intra-hit")


@dataclasses.dataclass
class Span:
    """One coherence transaction's lifecycle."""

    node: NodeId
    addr: int
    start_ps: int
    milestones: Dict[str, int]  # milestone name -> first timestamp (ps)
    end_ps: Optional[int] = None
    retries: int = 0
    source: Optional[str] = None  # who supplied the data
    write: bool = False

    @property
    def complete(self) -> bool:
        return self.end_ps is not None

    @property
    def latency_ps(self) -> int:
        return (self.end_ps or self.start_ps) - self.start_ps

    @property
    def category(self) -> str:
        if "recreate" in self.milestones:
            return "recovered"
        if "persistent" in self.milestones:
            return "persistent"
        if "escalate" in self.milestones:
            return "escalated"
        return "intra-hit"

    def segments(self) -> List[Tuple[str, int]]:
        """(name, duration_ps) between consecutive observed milestones."""
        present = [m for m in MILESTONES if m in self.milestones]
        out = []
        for prev, cur in zip(present, present[1:]):
            out.append(
                (f"{prev}->{cur}", self.milestones[cur] - self.milestones[prev])
            )
        return out


class SpanBuilder:
    """Stitches ``tx.*`` trace events into :class:`Span` records."""

    def build(self, events: Iterable[TraceEvent]) -> "SpanReport":
        open_: Dict[Tuple[NodeId, int], Span] = {}
        done: List[Span] = []
        orphans = 0
        for ev in events:
            if not ev.kind.startswith("tx."):
                continue
            key = (ev.node, ev.addr)
            if ev.kind == "tx.issue":
                open_[key] = Span(
                    node=ev.node,
                    addr=ev.addr,
                    start_ps=ev.ts_ps,
                    milestones={"issue": ev.ts_ps},
                    write=bool(ev.fields.get("write")),
                )
                continue
            span = open_.get(key)
            if span is None:
                orphans += 1  # e.g. an escalate racing a completed miss
                continue
            milestone = ev.kind[3:]  # strip "tx."
            if ev.kind == "tx.retry":
                span.retries += 1
                continue
            span.milestones.setdefault(milestone, ev.ts_ps)
            if ev.kind == "tx.data":
                if span.source is None:
                    span.source = ev.fields.get("source")
            elif ev.kind == "tx.complete":
                span.end_ps = ev.ts_ps
                span.source = ev.fields.get("source", span.source)
                done.append(span)
                del open_[key]
        return SpanReport(
            spans=done, open_spans=list(open_.values()), orphan_events=orphans
        )


@dataclasses.dataclass
class SpanReport:
    """All spans of one traced run, with latency-breakdown helpers."""

    spans: List[Span]
    open_spans: List[Span]
    orphan_events: int = 0

    def by_category(self) -> Dict[str, List[Span]]:
        out: Dict[str, List[Span]] = {c: [] for c in CATEGORIES}
        for span in self.spans:
            out[span.category].append(span)
        return out

    def segment_summaries(self) -> Dict[str, Dict[str, Summary]]:
        """category -> {"total": Summary, "<a>-><b>": Summary, ...}."""
        out: Dict[str, Dict[str, Summary]] = {}
        for category, spans in self.by_category().items():
            if not spans:
                continue
            streams: Dict[str, Summary] = {"total": Summary()}
            for span in spans:
                streams["total"].add(span.latency_ps)
                for name, dur in span.segments():
                    if name not in streams:
                        streams[name] = Summary()
                    streams[name].add(dur)
            out[category] = streams
        return out

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable per-segment p50/p95/p99 report (nanoseconds)."""
        lines = [
            f"transaction spans: {len(self.spans)} complete, "
            f"{len(self.open_spans)} open, {self.orphan_events} orphan events"
        ]
        summaries = self.segment_summaries()
        for category in CATEGORIES:
            streams = summaries.get(category)
            if streams is None:
                continue
            total = streams["total"]
            lines.append(
                f"  {category}: n={total.count}  mean={to_ns(total.mean):.1f} ns"
            )
            for name in ["total"] + sorted(k for k in streams if k != "total"):
                s = streams[name]
                lines.append(
                    f"    {name:22s} p50={to_ns(s.percentile(50)):8.1f}"
                    f"  p95={to_ns(s.percentile(95)):8.1f}"
                    f"  p99={to_ns(s.percentile(99)):8.1f} ns"
                    f"  (n={s.count})"
                )
        if len(lines) == 1:
            lines.append("  (no transactions traced)")
        return "\n".join(lines)
