"""Kernel profiler: where does wall-clock time go while simulating?

:class:`KernelProfiler` attaches to a :class:`~repro.sim.kernel.Simulator`
through two hooks:

* the **profiler hook** (``sim.profiler``): the kernel times every event
  callback with :func:`time.perf_counter_ns` and reports
  ``record(fn, wall_ns)`` — aggregated here per *callback site*
  (``module.qualname``), giving fired-event counts and wall-time totals
  per handler;
* the **watcher hook** (:meth:`Simulator.add_watcher`): a periodic tick
  snapshots ``(simulated time, events fired, wall clock)`` so the report
  can show the simulation rate (events per wall-second, simulated ns per
  wall-second) over the run.

Wall-clock numbers are inherently nondeterministic, so profiler output is
never part of a trace file — the determinism contract covers traces and
simulation results only.  Attaching a profiler does not perturb the
simulation itself (no events, no RNG).
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Tuple


def _site(fn) -> str:
    module = getattr(fn, "__module__", None) or "?"
    qualname = getattr(fn, "__qualname__", None) or repr(fn)
    return f"{module}.{qualname}"


class KernelProfiler:
    """Per-callback-site wall-time and event-count histograms."""

    def __init__(self, rate_every_events: int = 8192):
        # site -> [fired events, total wall ns, max wall ns]
        self.sites: Dict[str, List[int]] = {}
        self.rate_every_events = rate_every_events
        # (sim ps, fired, wall ns, allocated blocks, fresh event records)
        self._rates: List[Tuple[int, int, int, int, int]] = []
        self._sim = None

    # ------------------------------------------------------------------
    def attach(self, sim) -> "KernelProfiler":
        """Register on ``sim``'s profiler and watcher hooks."""
        sim.profiler = self
        self._sim = sim
        sim.add_watcher(self._rate_tick, self.rate_every_events)
        self._rate_tick()
        return self

    def record(self, fn, wall_ns: int) -> None:
        """Kernel callback: one event handler ran for ``wall_ns``."""
        cell = self.sites.get(_site(fn))
        if cell is None:
            cell = self.sites[_site(fn)] = [0, 0, 0]
        cell[0] += 1
        cell[1] += wall_ns
        if wall_ns > cell[2]:
            cell[2] = wall_ns

    def _rate_tick(self) -> None:
        sim = self._sim
        self._rates.append(
            (sim.now, sim.events_fired, time.perf_counter_ns(),
             sys.getallocatedblocks(), sim.event_news)
        )

    # ------------------------------------------------------------------
    @property
    def events_profiled(self) -> int:
        return sum(cell[0] for cell in self.sites.values())

    @property
    def total_wall_ns(self) -> int:
        return sum(cell[1] for cell in self.sites.values())

    def top_sites(self, n: int = 20) -> List[Tuple[str, int, int, int]]:
        """(site, events, total_wall_ns, max_wall_ns), by wall time."""
        rows = [
            (site, cell[0], cell[1], cell[2]) for site, cell in self.sites.items()
        ]
        rows.sort(key=lambda row: (-row[2], row[0]))
        return rows[:n]

    def alloc_counters(self) -> Dict[str, int]:
        """The ``alloc.*`` probe family sampled at the rate ticks.

        ``alloc.event_news`` (fresh kernel event records constructed
        between the first and last tick — zero in steady state, every
        record comes off the kernel freelist) is deterministic;
        ``alloc.blocks_delta`` (net ``sys.getallocatedblocks()`` growth
        over the same span) depends on process history and gc timing,
        so it is observational only — like wall time, it never enters
        the deterministic projection.  See docs/observability.md.
        """
        if len(self._rates) < 2:
            return {"alloc.event_news": 0, "alloc.blocks_delta": 0}
        first, last = self._rates[0], self._rates[-1]
        return {
            "alloc.event_news": last[4] - first[4],
            "alloc.blocks_delta": last[3] - first[3],
        }

    def to_dict(self) -> dict:
        """Deterministic projection of the profile.

        Wall-clock and allocator-block fields (total/max ns per site,
        the rate snapshots' wall and blocks columns) are *excluded* —
        what remains (per-site fired-event counts, the ``(sim ps,
        events fired)`` rate checkpoints, and the fresh-event-record
        counter) is a pure function of the simulation, so the
        projection can ride the canonical-JSON path and be compared
        across runs with ``python -m repro diff``, exactly like PR 5's
        CheckResult.
        """
        return {
            "schema": "repro.profile/1",
            "sites": {
                site: cell[0] for site, cell in sorted(self.sites.items())
            },
            "events_profiled": self.events_profiled,
            "rate_every_events": self.rate_every_events,
            "rates": [[sim_ps, fired]
                      for sim_ps, fired, _wall, _blocks, _news in self._rates],
            "alloc": {
                "event_news": self.alloc_counters()["alloc.event_news"],
            },
        }

    def report(self, top: int = 20) -> str:
        """Human-readable profile: hot callback sites + simulation rate."""
        lines = [
            f"kernel profile: {self.events_profiled} events, "
            f"{self.total_wall_ns / 1e6:.1f} ms handler wall time"
        ]
        lines.append(
            f"  {'callback site':52s} {'events':>9s} {'total ms':>9s}"
            f" {'avg us':>8s} {'max us':>8s}"
        )
        for site, count, total, peak in self.top_sites(top):
            lines.append(
                f"  {site[:52]:52s} {count:9d} {total / 1e6:9.2f}"
                f" {total / count / 1e3:8.2f} {peak / 1e3:8.2f}"
            )
        if len(self._rates) >= 2:
            sim0, fired0, wall0, blocks0, news0 = self._rates[0]
            sim1, fired1, wall1, blocks1, news1 = self._rates[-1]
            wall_s = max(1e-9, (wall1 - wall0) / 1e9)
            lines.append(
                f"  rate: {(fired1 - fired0) / wall_s:,.0f} events/s, "
                f"{(sim1 - sim0) / 1e3 / wall_s:,.0f} simulated ns/s "
                f"over {len(self._rates) - 1} watcher intervals"
            )
            lines.append(
                f"  alloc: {news1 - news0} fresh event records, "
                f"{blocks1 - blocks0:+d} allocator blocks "
                f"across the profiled span"
            )
        return "\n".join(lines)
