"""Trace exporters: Chrome ``trace_event`` JSON and its validator.

:func:`chrome_trace` renders a tracer's event list (plus, optionally, the
spans stitched from it) into the Chrome Trace Event Format — the JSON
dialect Perfetto (https://ui.perfetto.dev) and ``chrome://tracing`` load
directly.  Layout:

* one *process* per chip (pid = chip + 1; pid 0 is the kernel/global
  track), one *thread* per coherence endpoint, named via ``M`` metadata
  events;
* every trace event becomes an instant (``"ph": "i"``) event carrying its
  payload in ``args``;
* every complete transaction span becomes a duration (``"ph": "X"``)
  event on the requesting node's track, so miss lifecycles appear as
  bars with their milestones attached.

Timestamps are microseconds (the format's unit); simulated picoseconds
divide exactly by 1e6 in binary-float-safe territory for any plausible
run length, and the conversion is deterministic.

:func:`write_chrome_trace` writes canonical JSON — sorted keys, compact
separators, trailing newline — so byte-identical files are a meaningful
determinism check.  :func:`validate_chrome_trace` is the schema gate CI
runs on emitted traces.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.spans import SpanReport
from repro.obs.trace import KINDS, TraceEvent

#: Schema identifier embedded in exported traces (bump on layout changes).
TRACE_SCHEMA = "repro.trace/1"

_KERNEL_PID = 0


def _ts_us(ts_ps: int) -> float:
    return ts_ps / 1e6


def _tracks(events: Iterable[TraceEvent]):
    """Deterministic (pid, tid) assignment: first-appearance order."""
    tids: Dict[Optional[object], Tuple[int, int]] = {}
    meta: List[dict] = []
    chips_seen = set()

    def track(node) -> Tuple[int, int]:
        if node in tids:
            return tids[node]
        pid = _KERNEL_PID if node is None else node.chip + 1
        if pid not in chips_seen:
            chips_seen.add(pid)
            meta.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {
                        "name": "kernel" if pid == _KERNEL_PID else f"chip {pid - 1}"
                    },
                }
            )
        tid = sum(1 for (p, _t) in tids.values() if p == pid)
        tids[node] = (pid, tid)
        meta.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": "kernel" if node is None else str(node)},
            }
        )
        return pid, tid

    return track, meta


def chrome_trace(
    events: List[TraceEvent], spans: Optional[SpanReport] = None
) -> dict:
    """Render events (and optional spans) as a Chrome trace document.

    ``spans`` accepts a :class:`SpanReport` or a bare list of
    :class:`~repro.obs.spans.Span` objects.
    """
    if isinstance(spans, SpanReport):
        spans = spans.spans
    track, meta = _tracks(events)
    records: List[dict] = []
    for ev in events:
        pid, tid = track(ev.node)
        args = dict(ev.fields)
        if ev.addr is not None:
            args["addr"] = f"{ev.addr:#x}"
        records.append(
            {
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "name": ev.kind,
                "cat": ev.kind.split(".", 1)[0],
                "ts": _ts_us(ev.ts_ps),
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    if spans is not None:
        for span in spans:
            pid, tid = track(span.node)
            records.append(
                {
                    "ph": "X",
                    "name": f"miss {span.category}",
                    "cat": "span",
                    "ts": _ts_us(span.start_ps),
                    "dur": _ts_us(span.latency_ps),
                    "pid": pid,
                    "tid": tid,
                    "args": {
                        "addr": f"{span.addr:#x}",
                        "write": span.write,
                        "retries": span.retries,
                        "source": span.source,
                        "milestones_ps": dict(span.milestones),
                    },
                }
            )
    return {
        "schema": TRACE_SCHEMA,
        "displayTimeUnit": "ns",
        "traceEvents": meta + records,
    }


def write_chrome_trace(
    path: str, events: List[TraceEvent], spans: Optional[SpanReport] = None
) -> dict:
    """Write the canonical-JSON Chrome trace for ``events`` to ``path``."""
    doc = chrome_trace(events, spans)
    with open(path, "w") as fh:
        json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
    return doc


# ----------------------------------------------------------------------
# Schema validation (the CI gate for emitted traces).
# ----------------------------------------------------------------------
_PHASES = {"M", "i", "X"}


def validate_chrome_trace(doc: dict) -> int:
    """Validate an exported trace document; return the event count.

    Raises :class:`ValueError` describing the first problem found.  The
    checks cover everything Perfetto needs to load the file plus this
    repository's own conventions (schema tag, known event kinds,
    non-negative monotone-safe timestamps).
    """

    def fail(why: str):
        raise ValueError(f"invalid chrome trace: {why}")

    if not isinstance(doc, dict):
        fail("document is not an object")
    if doc.get("schema") != TRACE_SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, want {TRACE_SCHEMA!r}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("traceEvents is not a list")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph not in _PHASES:
            fail(f"event {i} has unknown phase {ph!r}")
        for key in ("name", "pid", "tid"):
            if key not in ev:
                fail(f"event {i} ({ph}) lacks {key!r}")
        if not isinstance(ev.get("args", {}), dict):
            fail(f"event {i} args is not an object")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"event {i} has bad ts {ts!r}")
        if ph == "i" and ev["name"] not in KINDS:
            fail(f"event {i} has unknown kind {ev['name']!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"event {i} has bad dur {dur!r}")
    return len(events)
