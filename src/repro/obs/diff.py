"""Cross-run comparison of canonical JSON documents.

Every deterministic export in the repository — ``repro.metrics/1``,
``repro.telemetry/1``, ``repro.bench_perf/1``, profiler projections —
is a tree of numeric leaves under stable keys.  This module flattens two
such documents into ``dotted.path -> number`` maps, reports per-counter
deltas, and applies a configurable regression gate (``GLOB:PCT`` rules,
as in ``python -m repro diff a.json b.json --gate 'counters.*:5'``).

Telemetry documents get a schema-aware projection first (end-of-run
value and peak per series, window counts per saturation kind) — diffing
every ring-buffer sample would drown the signal; generic documents are
walked recursively.  The JSON report (:data:`DIFF_SCHEMA`) is canonical
and deterministic like every other exporter here.
"""

from __future__ import annotations

import fnmatch
import json
from typing import Dict, List, Optional, Tuple, Union

Number = Union[int, float]

#: Schema identifier for the JSON diff report.
DIFF_SCHEMA = "repro.diff/1"


# ---------------------------------------------------------------------------
# Flattening.
# ---------------------------------------------------------------------------
def _flatten_generic(node, prefix: str, out: Dict[str, Number]) -> None:
    if isinstance(node, bool):
        return  # bools are ints in Python; never meaningful as counters
    if isinstance(node, (int, float)):
        out[prefix] = node
        return
    if isinstance(node, dict):
        for key in node:
            sub = f"{prefix}.{key}" if prefix else str(key)
            _flatten_generic(node[key], sub, out)
        return
    if isinstance(node, list):
        # A numeric list is summarized, not exploded: index-addressed
        # entries make diffs unreadable and length changes meaningless.
        numbers = [v for v in node if isinstance(v, (int, float))
                   and not isinstance(v, bool)]
        if prefix:
            out[f"{prefix}.len"] = len(node)
            if numbers and len(numbers) == len(node):
                out[f"{prefix}.last"] = numbers[-1]
        return
    # Strings / nulls carry identity, not magnitude — skipped.


def _flatten_telemetry(doc: dict) -> Dict[str, Number]:
    out: Dict[str, Number] = {
        "ticks": doc["ticks"],
        "dropped_ticks": doc["dropped_ticks"],
        "samples": len(doc["t_ps"]),
        "saturation.windows": len(doc["saturation"]),
    }
    if doc["t_ps"]:
        out["t_end_ps"] = doc["t_ps"][-1]
        out["events_end"] = doc["events"][-1]
    kinds: Dict[str, int] = {}
    for window in doc["saturation"]:
        kinds[window["kind"]] = kinds.get(window["kind"], 0) + 1
    for kind in sorted(kinds):
        out[f"saturation.{kind}"] = kinds[kind]
    for name in doc["probes"]:
        values = doc["series"][name]
        if not values:
            continue
        out[f"series.{name}.last"] = values[-1]
        out[f"series.{name}.max"] = max(values)
    return out


def flatten_doc(doc: dict) -> Dict[str, Number]:
    """``dotted.path -> number`` projection of a canonical document."""
    from repro.obs.telemetry import TELEMETRY_SCHEMA

    if doc.get("schema") == TELEMETRY_SCHEMA:
        return _flatten_telemetry(doc)
    out: Dict[str, Number] = {}
    _flatten_generic(doc, "", out)
    out.pop("schema", None)
    return out


# ---------------------------------------------------------------------------
# Diffing + gating.
# ---------------------------------------------------------------------------
def diff_docs(a: dict, b: dict) -> List[dict]:
    """Per-counter comparison rows over the union of flattened keys.

    Each row: ``{"key", "a", "b", "delta", "ratio"}`` — ``a``/``b`` are
    ``None`` for keys present on only one side; ``ratio`` is ``b / a``
    (``None`` when undefined).  Rows are sorted by key.
    """
    fa, fb = flatten_doc(a), flatten_doc(b)
    rows = []
    for key in sorted(set(fa) | set(fb)):
        va, vb = fa.get(key), fb.get(key)
        delta = vb - va if va is not None and vb is not None else None
        ratio = None
        if va is not None and vb is not None and va != 0:
            ratio = vb / va
        rows.append({"key": key, "a": va, "b": vb,
                     "delta": delta, "ratio": ratio})
    return rows


def parse_gate(text: str) -> Tuple[str, float]:
    """Parse one ``GLOB:PCT`` gate rule (e.g. ``counters.*:5``)."""
    glob, sep, pct = text.rpartition(":")
    if not sep or not glob:
        raise ValueError(f"gate {text!r} is not GLOB:PCT")
    try:
        tolerance = float(pct)
    except ValueError:
        raise ValueError(f"gate {text!r} has a non-numeric tolerance")
    if tolerance < 0:
        raise ValueError(f"gate {text!r} has a negative tolerance")
    return glob, tolerance


def apply_gates(rows: List[dict], gates: List[Tuple[str, float]]
                ) -> List[dict]:
    """Evaluate gate rules against diff rows; return the violations.

    A row violates a gate when its key matches the glob and the relative
    change ``|b - a| / |a|`` exceeds ``pct / 100`` — or when the key is
    missing on either side, or appeared from zero (both undefined
    relative changes, treated as failures: a gated counter must exist
    and stay comparable).
    """
    violations = []
    for glob, pct in gates:
        for row in rows:
            if not fnmatch.fnmatchcase(row["key"], glob):
                continue
            va, vb = row["a"], row["b"]
            if va is None or vb is None:
                why = "missing on one side"
            elif va == 0:
                if vb == 0:
                    continue
                why = "appeared from zero"
            else:
                rel = abs(vb - va) / abs(va)
                if rel * 100.0 <= pct:
                    continue
                why = f"changed {rel * 100.0:.2f}% (> {pct:g}%)"
            violations.append({**row, "gate": f"{glob}:{pct:g}",
                               "why": why})
    return violations


def diff_report(a: dict, b: dict,
                gates: Optional[List[Tuple[str, float]]] = None) -> dict:
    """The full ``repro.diff/1`` document for two canonical JSON docs."""
    rows = diff_docs(a, b)
    violations = apply_gates(rows, gates or [])
    changed = [r for r in rows if r["delta"] not in (0, None)
               or r["a"] is None or r["b"] is None]
    return {
        "schema": DIFF_SCHEMA,
        "schema_a": a.get("schema"),
        "schema_b": b.get("schema"),
        "keys": len(rows),
        "changed": len(changed),
        "rows": rows,
        "gates": [f"{glob}:{pct:g}" for glob, pct in (gates or [])],
        "violations": violations,
        "ok": not violations,
    }


def render_diff_report(report: dict, show_all: bool = False) -> str:
    """Human-readable delta table (changed keys only unless asked)."""

    def fmt(value) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.6g}"
        return str(value)

    rows = report["rows"]
    shown = rows if show_all else [
        r for r in rows
        if r["delta"] not in (0, None) or r["a"] is None or r["b"] is None
    ]
    lines = [
        f"diff: {report['keys']} keys, {report['changed']} changed"
        + (f", {len(report['violations'])} gate violation(s)"
           if report["gates"] else "")
    ]
    if shown:
        width = max(len(r["key"]) for r in shown)
        for r in shown:
            lines.append(
                f"  {r['key']:{width}s}  {fmt(r['a']):>14s} -> "
                f"{fmt(r['b']):>14s}  delta {fmt(r['delta'])}"
            )
    for v in report["violations"]:
        lines.append(f"  GATE {v['gate']}: {v['key']} {v['why']}")
    return "\n".join(lines)


def render_diff_json(report: dict) -> str:
    """Canonical JSON form of the diff report."""
    return json.dumps(report, sort_keys=True, separators=(",", ":")) + "\n"
