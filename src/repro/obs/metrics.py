"""Canonical metrics-JSON schema for experiment cells.

Every :class:`~repro.exp.result.CellResult` — freshly computed, replayed
from the content-addressed cache, or parsed back from ``--json`` output —
renders to the same metrics document via
:meth:`~repro.exp.result.CellResult.metrics`:

.. code-block:: json

    {
      "schema": "repro.metrics/1",
      "protocol": "TokenCMP-dst1",
      "workload": "locking",
      "seed": 1,
      "runtime_ps": 123456,
      "counters": {"l1.hits": 10, "...": 0},
      "traffic": {"intra": {"Request": 4096}, "...": {}},
      "summaries": {"l1.miss_latency_ps": {"count": 3, "mean": 1.0,
                    "min": 1.0, "max": 1.0, "total": 3.0,
                    "p50": 1.0, "p95": 1.0, "p99": 1.0}}
    }

The summaries block is exactly :meth:`repro.common.stats.Stats.to_dict`'s
``"summaries"`` value, so cached cells carry their latency distributions
— not just counters.  :func:`validate_metrics` is the schema gate; it is
deliberately dependency-free (no jsonschema) so it runs anywhere the
simulator does.
"""

from __future__ import annotations

from typing import Dict

#: Schema identifier (bump on layout changes).
METRICS_SCHEMA = "repro.metrics/1"

#: Required per-summary statistics (matching ``Summary.to_dict``).
SUMMARY_FIELDS = ("count", "total", "mean", "min", "max", "p50", "p95", "p99")


def cell_metrics(result) -> dict:
    """The canonical metrics document for one cell result.

    ``result`` is duck-typed (a :class:`~repro.exp.result.CellResult`)
    to keep this module import-cycle-free.
    """
    return {
        "schema": METRICS_SCHEMA,
        "protocol": result.protocol,
        "workload": result.workload,
        "seed": result.seed,
        "runtime_ps": result.runtime_ps,
        "counters": dict(result.counters),
        "traffic": {s: dict(c) for s, c in result.traffic.items()},
        "summaries": {n: dict(v) for n, v in result.summaries.items()},
    }


def validate_metrics(doc: dict) -> None:
    """Raise :class:`ValueError` unless ``doc`` matches the schema."""

    def fail(why: str):
        raise ValueError(f"invalid metrics document: {why}")

    if not isinstance(doc, dict):
        fail("not an object")
    if doc.get("schema") != METRICS_SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, want {METRICS_SCHEMA!r}")
    for key, types in (
        ("protocol", str),
        ("workload", str),
        ("seed", int),
        ("runtime_ps", int),
        ("counters", dict),
        ("traffic", dict),
        ("summaries", dict),
    ):
        if not isinstance(doc.get(key), types):
            fail(f"{key!r} missing or not {types.__name__}")
    for name, value in doc["counters"].items():
        if not isinstance(value, int):
            fail(f"counter {name!r} is not an integer")
    for scope, classes in doc["traffic"].items():
        if not isinstance(classes, dict):
            fail(f"traffic scope {scope!r} is not an object")
        for klass, nbytes in classes.items():
            if not isinstance(nbytes, int):
                fail(f"traffic {scope!r}/{klass!r} is not an integer")
    for name, stats in doc["summaries"].items():
        if not isinstance(stats, dict):
            fail(f"summary {name!r} is not an object")
        for field in SUMMARY_FIELDS:
            if not isinstance(stats.get(field), (int, float)):
                fail(f"summary {name!r} lacks numeric {field!r}")


def summaries_dict(stats) -> Dict[str, Dict[str, float]]:
    """Summaries block of :meth:`Stats.to_dict` (re-exported helper)."""
    return stats.to_dict()["summaries"]
