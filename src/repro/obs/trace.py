"""Structured trace bus: typed events collected from the whole machine.

A :class:`Tracer` attaches to one :class:`~repro.sim.kernel.Simulator`
(``tracer.attach(sim)`` sets ``sim.tracer``); every instrumented component
reads ``self.sim.tracer`` at event time and emits only when a tracer is
present, so the default (no tracer) costs one attribute load and an
``is None`` test per site.

Two properties are load-bearing:

* **Tracing never changes the simulation.**  Emitting is purely
  observational — no extra kernel events, no RNG draws, no state.  A run
  with a tracer produces byte-identical results to a run without one.

* **Traces are deterministic.**  Event payloads contain only simulated
  quantities.  Message identity uses a per-trace *dense* id (first-seen
  order) rather than the process-global ``Message.uid`` counter, so two
  runs of the same cell — even back-to-back in one process — produce
  byte-identical trace files.

Event kinds (the trace schema; see docs/observability.md):

==================  ===============================================
kind                meaning
==================  ===============================================
``sim.run.begin``   kernel entered :meth:`Simulator.run`
``sim.run.end``     kernel left :meth:`Simulator.run`
``msg.send``        a message entered the interconnect
``msg.recv``        a message reached its endpoint (nominal arrival)
``token.send``      a controller gave tokens up
``token.absorb``    a controller folded tokens into its state
``tx.issue``        an L1 miss opened a coherence transaction
``tx.transient``    a transient-request broadcast was sent
``tx.retry``        a transient retry fired (with its backoff)
``tx.escalate``     the home L2 bank escalated the miss off-chip
``tx.persistent``   the requestor fell back to a persistent request
``tx.data``         data for an open transaction arrived
``tx.complete``     the transaction completed (miss satisfied)
``persist.activate``    a persistent request became active
``persist.deactivate``  the active persistent request retired
``dir.transition``  a directory line changed state
``fault.drop`` / ``fault.duplicate`` / ``fault.delay`` /
``fault.reorder``   the fault injector perturbed a delivery
``fault.crash``     a crash injector wiped a controller's token state
``tx.recreate``     an L1 escalated a starving miss to token recreation
``recreate.epoch``  the home memory bumped a block's recreation epoch
``recreate.surrender``  a cache destroyed its local tokens and acked
``recreate.stale``  a stale-epoch token carrier was discarded on arrival
``recreate.done``   memory reconstituted the full token set
==================  ===============================================
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple

from repro.common.types import NodeId

KINDS = frozenset(
    {
        "sim.run.begin",
        "sim.run.end",
        "msg.send",
        "msg.recv",
        "token.send",
        "token.absorb",
        "tx.issue",
        "tx.transient",
        "tx.retry",
        "tx.escalate",
        "tx.persistent",
        "tx.data",
        "tx.complete",
        "persist.activate",
        "persist.deactivate",
        "dir.transition",
        "fault.drop",
        "fault.duplicate",
        "fault.delay",
        "fault.reorder",
        "fault.crash",
        "tx.recreate",
        "recreate.epoch",
        "recreate.surrender",
        "recreate.stale",
        "recreate.done",
    }
)


@dataclasses.dataclass
class TraceEvent:
    """One structured trace record."""

    __slots__ = ("ts_ps", "kind", "node", "addr", "fields")

    ts_ps: int
    kind: str
    node: Optional[NodeId]
    addr: Optional[int]
    fields: Dict[str, Any]


class Tracer:
    """Collects :class:`TraceEvent` records from one simulated machine.

    Attach before running (``tracer.attach(machine.sim)`` or via
    ``run_cell(cell, tracer=...)``); read ``tracer.events`` afterwards, or
    hand them to :class:`~repro.obs.spans.SpanBuilder` /
    :func:`~repro.obs.export.chrome_trace`.
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._sim = None
        self._mids: Dict[int, int] = {}  # Message.uid -> dense per-trace id

    # ------------------------------------------------------------------
    def attach(self, sim) -> "Tracer":
        """Register on ``sim`` so instrumented components find us."""
        sim.tracer = self
        self._sim = sim
        return self

    def __len__(self) -> int:
        return len(self.events)

    def emit(
        self,
        kind: str,
        node: Optional[NodeId] = None,
        addr: Optional[int] = None,
        **fields: Any,
    ) -> None:
        """Record one event at the current simulated time."""
        ts = self._sim.now if self._sim is not None else 0
        self.events.append(TraceEvent(ts, kind, node, addr, fields))

    def mid(self, msg) -> int:
        """Dense, per-trace message id (deterministic across processes)."""
        uid = msg.uid
        mid = self._mids.get(uid)
        if mid is None:
            mid = len(self._mids)
            self._mids[uid] = mid
        return mid

    # ------------------------------------------------------------------
    # Typed emit helpers — one per schema kind, so call sites stay short
    # and the payload layout is fixed in exactly one place.
    # ------------------------------------------------------------------
    def msg_send(self, msg, nbytes: int, hops: int, arrival_ps: int) -> None:
        self.emit(
            "msg.send",
            node=msg.src,
            addr=msg.addr,
            mid=self.mid(msg),
            mtype=msg.mtype.name,
            src=str(msg.src),
            dst=str(msg.dst),
            tokens=msg.tokens,
            owner=msg.owner,
            nbytes=nbytes,
            hops=hops,
            arrival_ps=arrival_ps,
        )

    def msg_recv(self, msg) -> None:
        self.emit(
            "msg.recv",
            node=msg.dst,
            addr=msg.addr,
            mid=self.mid(msg),
            mtype=msg.mtype.name,
            src=str(msg.src),
        )

    def token_send(self, node: NodeId, msg) -> None:
        self.emit(
            "token.send",
            node=node,
            addr=msg.addr,
            mid=self.mid(msg),
            dst=str(msg.dst),
            tokens=msg.tokens,
            owner=msg.owner,
            data=msg.data is not None,
        )

    def token_absorb(self, node: NodeId, msg) -> None:
        self.emit(
            "token.absorb",
            node=node,
            addr=msg.addr,
            mid=self.mid(msg),
            src=str(msg.src),
            tokens=msg.tokens,
            owner=msg.owner,
        )

    def tx_issue(self, node: NodeId, addr: int, write: bool) -> None:
        self.emit("tx.issue", node=node, addr=addr, write=write)

    def tx_transient(self, node: NodeId, addr: int, global_: bool, ndests: int) -> None:
        self.emit(
            "tx.transient", node=node, addr=addr, global_=global_, ndests=ndests
        )

    def tx_retry(self, node: NodeId, addr: int, retries: int, backoff_ps: int) -> None:
        self.emit(
            "tx.retry", node=node, addr=addr, retries=retries, backoff_ps=backoff_ps
        )

    def tx_escalate(
        self, requestor: NodeId, addr: int, via: NodeId, ndests: int, multicast: bool
    ) -> None:
        # node is the *requestor* so span stitching can attribute the
        # escalation to the open transaction it belongs to.
        self.emit(
            "tx.escalate",
            node=requestor,
            addr=addr,
            via=str(via),
            ndests=ndests,
            multicast=multicast,
        )

    def tx_persistent(self, node: NodeId, addr: int, read: bool, scheme: str) -> None:
        self.emit("tx.persistent", node=node, addr=addr, read=read, scheme=scheme)

    def tx_data(self, node: NodeId, addr: int, source: str) -> None:
        self.emit("tx.data", node=node, addr=addr, source=source)

    def tx_complete(
        self,
        node: NodeId,
        addr: int,
        latency_ps: int,
        source: str,
        persistent: bool,
        retries: int,
    ) -> None:
        self.emit(
            "tx.complete",
            node=node,
            addr=addr,
            latency_ps=latency_ps,
            source=source,
            persistent=persistent,
            retries=retries,
        )

    def persist_activate(
        self, node: NodeId, addr: int, requestor: NodeId, prio: int, scheme: str
    ) -> None:
        self.emit(
            "persist.activate",
            node=node,
            addr=addr,
            requestor=str(requestor),
            prio=prio,
            scheme=scheme,
        )

    def persist_deactivate(
        self, node: NodeId, addr: int, requestor: NodeId, scheme: str
    ) -> None:
        self.emit(
            "persist.deactivate",
            node=node,
            addr=addr,
            requestor=str(requestor),
            scheme=scheme,
        )

    def dir_transition(
        self, node: NodeId, addr: int, old: str, new: str, cause: str
    ) -> None:
        self.emit("dir.transition", node=node, addr=addr, old=old, new=new, cause=cause)

    def fault(self, action: str, msg, klass: str, extra_ps: int = 0) -> None:
        self.emit(
            f"fault.{action}",
            node=msg.dst,
            addr=msg.addr,
            mid=self.mid(msg),
            mtype=msg.mtype.name,
            klass=klass,
            extra_ps=extra_ps,
        )

    # ------------------------------------------------------------------
    # Recovery subsystem (token recreation + crash faults).
    # ------------------------------------------------------------------
    def crash(self, node: NodeId, blocks: int, tokens: int) -> None:
        self.emit("fault.crash", node=node, blocks=blocks, tokens=tokens)

    def tx_recreate(self, node: NodeId, addr: int, attempts: int) -> None:
        # node is the starving requestor, so span stitching can attribute
        # the escalation to the open transaction (like tx.escalate).
        self.emit("tx.recreate", node=node, addr=addr, attempts=attempts)

    def recreate_epoch(
        self, node: NodeId, addr: int, epoch: int, requestor: NodeId
    ) -> None:
        self.emit(
            "recreate.epoch",
            node=node,
            addr=addr,
            epoch=epoch,
            requestor=str(requestor),
        )

    def recreate_surrender(
        self, node: NodeId, addr: int, epoch: int, with_data: bool
    ) -> None:
        self.emit(
            "recreate.surrender", node=node, addr=addr, epoch=epoch, data=with_data
        )

    def stale_discard(self, node: NodeId, msg, epoch: int) -> None:
        self.emit(
            "recreate.stale",
            node=node,
            addr=msg.addr,
            mid=self.mid(msg),
            mtype=msg.mtype.name,
            tokens=msg.tokens,
            owner=msg.owner,
            epoch=epoch,
        )

    def recreate_done(
        self, node: NodeId, addr: int, epoch: int, latency_ps: int
    ) -> None:
        self.emit(
            "recreate.done", node=node, addr=addr, epoch=epoch, latency_ps=latency_ps
        )
