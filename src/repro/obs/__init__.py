"""Observability layer: structured tracing, spans, metrics, profiling.

``repro.obs`` is the debugging substrate threaded through the kernel, the
interconnect, the coherence controllers and the experiment engine:

* :mod:`repro.obs.trace` — the structured trace bus.  A
  :class:`~repro.obs.trace.Tracer` attached to a simulator collects typed
  events (message send/recv, token movement, transaction lifecycle,
  persistent-request activity, directory transitions, injected faults).
  With no tracer attached (the default) every instrumentation site is a
  single ``is None`` check — tracing is zero-cost when off and changes
  nothing about the simulation when on.

* :mod:`repro.obs.spans` — stitches ``tx.*`` trace events into per-miss
  lifecycle spans (issue → intra-CMP broadcast → escalation → data/token
  arrival → completion) with p50/p95/p99 breakdowns by segment and
  category (intra-CMP hit, inter-CMP escalation, persistent completion).

* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (loadable in
  Perfetto / ``chrome://tracing``) plus a lightweight schema validator.

* :mod:`repro.obs.metrics` — the canonical metrics-JSON schema every
  :class:`~repro.exp.result.CellResult` can render to, so cached
  experiment cells carry their metrics.

* :mod:`repro.obs.profile` — a wall-clock kernel profiler (per-callback
  time, fired-event histograms) built on the kernel's profiler and
  watcher hooks.

* :mod:`repro.obs.telemetry` — time-series telemetry: a sampler on the
  kernel watcher hook snapshots link/controller/recovery gauges into
  ring-buffered series (``repro.telemetry/1``) and a saturation detector
  flags sustained hot windows.

* :mod:`repro.obs.diff` — cross-run comparison of canonical JSON
  documents (metrics, telemetry, profiles) with per-counter deltas and
  ``GLOB:PCT`` regression gates (``python -m repro diff``).

See ``docs/observability.md`` for the trace schema and a Perfetto how-to.
"""

from repro.obs.diff import DIFF_SCHEMA, diff_report, render_diff_report
from repro.obs.export import chrome_trace, validate_chrome_trace, write_chrome_trace
from repro.obs.metrics import METRICS_SCHEMA, cell_metrics, validate_metrics
from repro.obs.profile import KernelProfiler
from repro.obs.spans import Span, SpanBuilder, SpanReport
from repro.obs.telemetry import (
    TELEMETRY_SCHEMA,
    TelemetryConfig,
    TelemetrySampler,
    render_telemetry,
    saturation_windows,
    validate_telemetry,
    write_telemetry,
)
from repro.obs.trace import KINDS, TraceEvent, Tracer

__all__ = [
    "Tracer",
    "TraceEvent",
    "KINDS",
    "Span",
    "SpanBuilder",
    "SpanReport",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "METRICS_SCHEMA",
    "cell_metrics",
    "validate_metrics",
    "KernelProfiler",
    "TELEMETRY_SCHEMA",
    "TelemetryConfig",
    "TelemetrySampler",
    "render_telemetry",
    "saturation_windows",
    "validate_telemetry",
    "write_telemetry",
    "DIFF_SCHEMA",
    "diff_report",
    "render_diff_report",
]
