"""Trace-driven workloads.

Lets users replay memory-reference traces through any protocol instead of
using the synthetic generators.  The trace format is plain text, one
record per line, ``#`` comments allowed:

    <proc> <op> <arg...>

      proc   processor index (0-based)
      op     L <addr>            load
             S <addr> <value>    store
             A <addr>            atomic fetch-and-increment
             T <ns>              think time in nanoseconds

Addresses accept decimal or 0x-hex.  Records execute in file order *per
processor* (lines of different processors interleave according to the
simulated timing, exactly like hardware traces replayed per-CPU).

Example::

    # two processors ping-ponging a flag
    0 S 0x1000 1
    1 L 0x1000
    1 T 20
    1 S 0x1000 2
"""

from __future__ import annotations

import io
from typing import Generator, Iterable, List, Sequence, Tuple, Union

from repro.common.errors import ConfigError
from repro.cpu.ops import Load, Rmw, Store, Think
from repro.workloads.base import Workload

Record = Tuple[int, object]  # (proc, op)


def parse_trace(source: Union[str, io.TextIOBase, Iterable[str]]) -> List[Record]:
    """Parse a trace from a path, file object, or iterable of lines."""
    if isinstance(source, str):
        with open(source) as fh:
            return parse_trace(fh.readlines())
    if isinstance(source, io.TextIOBase):
        return parse_trace(source.readlines())

    records: List[Record] = []
    for lineno, raw in enumerate(source, 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        try:
            proc = int(fields[0])
            op = fields[1].upper()
            if op == "L":
                records.append((proc, Load(_addr(fields[2]))))
            elif op == "S":
                records.append((proc, Store(_addr(fields[2]), int(fields[3], 0))))
            elif op == "A":
                records.append((proc, Rmw(_addr(fields[2]), lambda v: v + 1)))
            elif op == "T":
                records.append((proc, Think(float(fields[2]))))
            else:
                raise ValueError(f"unknown op {op!r}")
        except (IndexError, ValueError) as err:
            raise ConfigError(f"trace line {lineno}: {err} ({raw.rstrip()!r})") from err
    return records


def _addr(text: str) -> int:
    return int(text, 0)


class TraceWorkload(Workload):
    """Replay a parsed trace, one stream per processor."""

    name = "trace"

    def __init__(self, params, records: Sequence[Record], seed: int = 0):
        super().__init__(params, seed)
        self.streams: List[List[object]] = [[] for _ in range(params.num_procs)]
        for proc, op in records:
            if not 0 <= proc < params.num_procs:
                raise ConfigError(
                    f"trace references processor {proc}; machine has "
                    f"{params.num_procs}"
                )
            self.streams[proc].append(op)
        self.executed = [0] * params.num_procs

    @classmethod
    def from_file(cls, params, path: str, seed: int = 0) -> "TraceWorkload":
        return cls(params, parse_trace(path), seed=seed)

    @classmethod
    def from_text(cls, params, text: str, seed: int = 0) -> "TraceWorkload":
        return cls(params, parse_trace(text.splitlines()), seed=seed)

    def generators(self) -> List[Generator]:
        return [self._thread(p) for p in range(self.params.num_procs)]

    def _thread(self, proc: int) -> Generator:
        for op in self.streams[proc]:
            yield op
            self.executed[proc] += 1


def write_trace(records: Iterable[Record], path: str) -> None:
    """Serialize records back to the text format (Rmw writes as 'A')."""
    with open(path, "w") as fh:
        for proc, op in records:
            if isinstance(op, Load):
                fh.write(f"{proc} L {op.addr:#x}\n")
            elif isinstance(op, Store):
                fh.write(f"{proc} S {op.addr:#x} {op.value}\n")
            elif isinstance(op, Rmw):
                fh.write(f"{proc} A {op.addr:#x}\n")
            elif isinstance(op, Think):
                fh.write(f"{proc} T {op.duration_ns}\n")
            else:
                raise ConfigError(f"cannot serialize {op!r}")
