"""Barrier micro-benchmark (paper Table 2, Table 4).

Processors do local work (3000 ns, optionally with uniform variability),
then synchronize at a sense-reversing barrier built from a lock-protected
counter in one cache block and a sense flag in another, repeating for a
fixed number of phases.
"""

from __future__ import annotations

from typing import Generator, List

from repro.common.rng import substream
from repro.cpu.ops import Load, Rmw, Store, Think
from repro.workloads.base import Workload
from repro.workloads.locking import LOCK_FREE, test_and_set


class BarrierWorkload(Workload):
    """Sense-reversing barrier with lock-protected counter."""

    name = "barrier"

    def __init__(
        self,
        params,
        phases: int = 100,
        work_ns: float = 3000.0,
        work_jitter_ns: float = 0.0,  # uniform(-jitter, +jitter)
        seed: int = 0,
    ):
        super().__init__(params, seed)
        self.phases = phases
        self.work_ns = work_ns
        self.work_jitter_ns = work_jitter_ns
        self.lock = self.alloc.block()
        self.counter = self.alloc.block()
        self.flag = self.alloc.block()
        self.completed_phases = [0] * params.num_procs

    def generators(self) -> List[Generator]:
        return [self._thread(p) for p in range(self.params.num_procs)]

    def _thread(self, proc: int) -> Generator:
        rng = substream(self.seed, "barrier", proc)
        n = self.params.num_procs
        sense = 0
        for _ in range(self.phases):
            work = self.work_ns
            if self.work_jitter_ns:
                work += rng.uniform(-self.work_jitter_ns, self.work_jitter_ns)
            yield Think(max(0.0, work))
            # Acquire the barrier lock.
            while True:
                if (yield Load(self.lock)) == LOCK_FREE:
                    if (yield test_and_set(self.lock)) == LOCK_FREE:
                        break
            count = (yield Load(self.counter)) + 1
            if count < n:
                yield Store(self.counter, count)
                yield Store(self.lock, LOCK_FREE)
                # Spin on the sense flag in another block.
                while (yield Load(self.flag)) == sense:
                    pass
            else:
                yield Store(self.counter, 0)
                yield Store(self.flag, 1 - sense)  # release everyone
                yield Store(self.lock, LOCK_FREE)
            sense = 1 - sense
            self.completed_phases[proc] += 1
