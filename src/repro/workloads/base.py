"""Workload interface.

A workload builds one generator per processor (see
:mod:`repro.cpu.thread` for the yield protocol) plus the address layout
it needs.  Workloads allocate addresses in distinct blocks via
:class:`BlockAllocator` so that false sharing only happens when a
workload asks for it.
"""

from __future__ import annotations

from typing import Generator, List

from repro.common.params import SystemParams


class BlockAllocator:
    """Hands out addresses in distinct cache blocks."""

    def __init__(self, params: SystemParams, base: int = 0x1000_0000):
        self.params = params
        self._next = base

    def block(self) -> int:
        """A fresh block-aligned address."""
        addr = self._next
        self._next += self.params.block_size
        return addr

    def blocks(self, n: int) -> List[int]:
        return [self.block() for _ in range(n)]


class Workload:
    """Base class: subclasses implement :meth:`generators`."""

    name = "workload"

    def __init__(self, params: SystemParams, seed: int = 0):
        self.params = params
        self.seed = seed
        self.alloc = BlockAllocator(params)

    def generators(self) -> List[Generator]:
        """One generator per processor, in processor order."""
        raise NotImplementedError
