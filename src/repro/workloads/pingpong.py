"""Ping-pong micro-benchmark: raw sharing-miss hand-off latency.

Two processors alternately write a flag block, each waiting for the
other's value — the purest form of the read-modify-write sharing misses
that commercial workloads are full of (paper Section 1).  The benchmark
measures the end-to-end hand-off: for DirectoryCMP every transfer takes
the indirection through both directory levels; for TokenCMP a broadcast
finds the owner directly.

``rounds`` full round trips are performed between a chosen pair of
processors (same chip or different chips), so the workload isolates
intra- vs inter-CMP hand-off latency.
"""

from __future__ import annotations

from typing import Generator, List

from repro.cpu.ops import Load, Store, Think
from repro.workloads.base import Workload


class PingPongWorkload(Workload):
    """Two processors bounce one block back and forth."""

    name = "pingpong"

    def __init__(self, params, proc_a: int = 0, proc_b: int = None,
                 rounds: int = 32, seed: int = 0):
        super().__init__(params, seed)
        self.proc_a = proc_a
        # Default partner: first processor of the next chip (inter-CMP).
        self.proc_b = proc_b if proc_b is not None else params.procs_per_chip
        if self.proc_a == self.proc_b:
            raise ValueError("ping-pong needs two distinct processors")
        self.rounds = rounds
        self.flag = self.alloc.block()
        self.completed_rounds = 0

    def generators(self) -> List[Generator]:
        return [self._thread(p) for p in range(self.params.num_procs)]

    def _thread(self, proc: int) -> Generator:
        if proc == self.proc_a:
            # A writes odd values, waits for B's even replies.
            for i in range(self.rounds):
                yield Store(self.flag, 2 * i + 1)
                while (yield Load(self.flag)) != 2 * i + 2:
                    pass
                self.completed_rounds += 1
        elif proc == self.proc_b:
            # B waits for each odd value and answers with the next even.
            for i in range(self.rounds):
                while (yield Load(self.flag)) != 2 * i + 1:
                    pass
                yield Store(self.flag, 2 * i + 2)
        else:
            yield Think(1.0)
