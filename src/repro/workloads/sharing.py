"""Shared-counter workload: the classic mutual-exclusion litmus test.

Each processor performs ``increments`` lock-protected increments of one
shared counter.  If the protocol maintains coherence and the lock provides
mutual exclusion, the counter's final coherent value is exactly
``increments * num_procs`` — which makes this workload the backbone of the
end-to-end correctness tests (and a handy migratory-sharing demo: the
counter block ping-pongs in read-modify-write fashion).
"""

from __future__ import annotations

from typing import Generator, List

from repro.cpu.ops import Load, Store, Think
from repro.workloads.base import Workload
from repro.workloads.locking import LOCK_FREE, test_and_set


class ReadSharingWorkload(Workload):
    """Many readers over a shared read-only set (one writer warms it).

    Exercises read sharing across chips: the C-token read-response rule
    (Section 4) lets the first off-chip reader seed its whole chip, so
    the chip's other readers hit on-chip instead of escalating.
    """

    name = "read-sharing"

    def __init__(self, params, shared_blocks: int = 16, rounds: int = 6,
                 think_ns: float = 15.0, seed: int = 0):
        super().__init__(params, seed)
        self.rounds = rounds
        self.think_ns = think_ns
        self.blocks = self.alloc.blocks(shared_blocks)

    def generators(self) -> List[Generator]:
        return [self._thread(p) for p in range(self.params.num_procs)]

    def _thread(self, proc: int) -> Generator:
        if proc == 0:
            for i, block in enumerate(self.blocks):
                yield Store(block, i + 1)  # warm: blocks dirty at proc 0
        yield Think(200.0)  # let the warm-up settle
        for _ in range(self.rounds):
            for i, block in enumerate(self.blocks):
                yield Think(self.think_ns)
                value = yield Load(block)
                assert value == i + 1 or proc == 0


class CounterWorkload(Workload):
    """Lock-protected shared counter increments."""

    name = "counter"

    def __init__(self, params, increments: int = 8, think_ns: float = 5.0, seed: int = 0):
        super().__init__(params, seed)
        self.increments = increments
        self.think_ns = think_ns
        self.lock = self.alloc.block()
        self.counter = self.alloc.block()

    @property
    def expected_total(self) -> int:
        return self.increments * self.params.num_procs

    def generators(self) -> List[Generator]:
        return [self._thread(p) for p in range(self.params.num_procs)]

    def _thread(self, proc: int) -> Generator:
        for _ in range(self.increments):
            yield Think(self.think_ns)
            while True:
                if (yield Load(self.lock)) == LOCK_FREE:
                    if (yield test_and_set(self.lock)) == LOCK_FREE:
                        break
            value = yield Load(self.counter)
            yield Store(self.counter, value + 1)
            yield Store(self.lock, LOCK_FREE)
