"""Workload registry: the single source of truth for workload enumeration.

Mirrors :data:`repro.system.config.PROTOCOLS` on the workload axis.  Every
workload the CLI, the experiment engine (:mod:`repro.exp`) and the
benchmarks can run is a :class:`WorkloadEntry` in :data:`REGISTRY`; a
workload is addressed *declaratively* by ``(name, kwargs)`` so experiment
cells can be pickled across worker processes and hashed for the
content-addressed result cache.

``python -m repro list`` and :meth:`repro.exp.spec.Cell` both enumerate
from here — adding a workload means adding one entry, nothing else.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Tuple

from repro.common.errors import ConfigError
from repro.common.params import SystemParams
from repro.workloads.base import Workload


@dataclasses.dataclass(frozen=True)
class WorkloadEntry:
    """One runnable workload family.

    ``build(params, seed=..., **kwargs)`` constructs a fresh
    :class:`~repro.workloads.base.Workload`.  ``cli_args`` maps CLI
    options onto constructor keywords as ``(kwarg, cli_attr, scale)``
    triples so ``python -m repro run/sweep`` need no per-workload code.
    """

    name: str
    description: str
    build: Callable[..., Workload]
    cli_args: Tuple[Tuple[str, str, int], ...] = ()

    def cli_kwargs(self, args) -> Dict[str, int]:
        """Constructor kwargs derived from an argparse namespace."""
        return {
            kwarg: getattr(args, attr) * scale
            for kwarg, attr, scale in self.cli_args
            if getattr(args, attr, None) is not None
        }


def _locking(params, seed=0, **kw):
    from repro.workloads.locking import LockingWorkload

    return LockingWorkload(params, seed=seed, **kw)


def _barrier(params, seed=0, **kw):
    from repro.workloads.barrier import BarrierWorkload

    return BarrierWorkload(params, seed=seed, **kw)


def _counter(params, seed=0, **kw):
    from repro.workloads.sharing import CounterWorkload

    return CounterWorkload(params, seed=seed, **kw)


def _read_sharing(params, seed=0, **kw):
    from repro.workloads.sharing import ReadSharingWorkload

    return ReadSharingWorkload(params, seed=seed, **kw)


def _pingpong(params, seed=0, **kw):
    from repro.workloads.pingpong import PingPongWorkload

    return PingPongWorkload(params, seed=seed, **kw)


def _commercial(profile: str):
    def build(params, seed=0, **kw):
        from repro.workloads.commercial import make_commercial

        return make_commercial(params, profile, seed=seed, **kw)

    return build


REGISTRY: Dict[str, WorkloadEntry] = {
    "locking": WorkloadEntry(
        "locking",
        "lock acquire/release contention micro-benchmark (Figures 2-3)",
        _locking,
        cli_args=(("num_locks", "locks", 1), ("acquires_per_proc", "ops", 1)),
    ),
    "barrier": WorkloadEntry(
        "barrier",
        "sense-reversing barrier with lock-protected counter (Table 4)",
        _barrier,
        cli_args=(("phases", "ops", 1),),
    ),
    "counter": WorkloadEntry(
        "counter",
        "lock-protected shared counter increments (migratory sharing)",
        _counter,
        cli_args=(("increments", "ops", 1),),
    ),
    "read-sharing": WorkloadEntry(
        "read-sharing",
        "many readers over a shared read-only set (C-token rule)",
        _read_sharing,
        cli_args=(("rounds", "ops", 1),),
    ),
    "pingpong": WorkloadEntry(
        "pingpong",
        "two processors bounce one block (hand-off latency)",
        _pingpong,
        cli_args=(("rounds", "ops", 1),),
    ),
    "oltp": WorkloadEntry(
        "oltp",
        "synthetic OLTP reference stream (migratory-dominated, Figure 6)",
        _commercial("oltp"),
        cli_args=(("refs_per_proc", "ops", 10),),
    ),
    "apache": WorkloadEntry(
        "apache",
        "synthetic Apache reference stream (mixed sharing, Figure 6)",
        _commercial("apache"),
        cli_args=(("refs_per_proc", "ops", 10),),
    ),
    "specjbb": WorkloadEntry(
        "specjbb",
        "synthetic SPECjbb reference stream (mostly private, Figure 6)",
        _commercial("specjbb"),
        cli_args=(("refs_per_proc", "ops", 10),),
    ),
}


def workload_entry(name: str) -> WorkloadEntry:
    """Look up a registry entry by name."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown workload {name!r}; known: {', '.join(sorted(REGISTRY))}"
        ) from None


def make_workload(name: str, params: SystemParams, seed: int = 0, **kwargs) -> Workload:
    """Build a registered workload from its declarative description."""
    return workload_entry(name).build(params, seed=seed, **kwargs)
