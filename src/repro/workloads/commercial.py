"""Synthetic commercial-workload generators (paper Table 2 substitutes).

The paper runs Apache, DB2/TPC-C (OLTP) and SPECjbb2000 on a simulated
SPARC/Solaris system.  Full-system workloads are out of scope for a pure
Python reproduction, so each workload is modelled as a per-processor
reference stream whose *sharing-miss mix* matches the published
characterizations (Barroso et al. [4]; paper Sections 1, 8):

* **OLTP** — dominated by read-modify-write (migratory) sharing of
  database records and hot locks; this is where directory indirections
  hurt most and TokenCMP wins biggest (paper: 50%).
* **Apache** — moderate migratory sharing plus a larger read-shared set
  (metadata, caches); intermediate win (paper: 29%).
* **SPECjbb** — mostly thread-private heap with light sharing; smallest
  win (paper: 10%).

Each stream mixes four access classes: private blocks, read-only shared
blocks, migratory records (load + store, read-modify-write), and
lock-protected critical sections.  See DESIGN.md for why this substitution
preserves the paper's comparison.
"""

from __future__ import annotations

import dataclasses
from array import array
from typing import Dict, Generator, List

from repro.common.rng import substream
from repro.cpu.ops import Fetch, Load, Rmw, Store, Think
from repro.workloads.base import Workload
from repro.workloads.locking import LOCK_FREE, LOCK_HELD


@dataclasses.dataclass(frozen=True)
class CommercialProfile:
    """Mix parameters for one synthetic commercial workload."""

    name: str
    refs_per_proc: int = 400
    think_ns: float = 10.0  # non-memory work between references
    # Access-class probabilities (remainder = private references).
    p_lock: float = 0.05
    p_migratory: float = 0.15
    p_read_shared: float = 0.15
    # Capacity-pressure stream: dirty references that conflict in the L2
    # so they produce the steady capacity misses + dirty L2 writebacks of
    # the real workloads' multi-GB footprints (see DESIGN.md).
    p_stream: float = 0.05
    # Instruction fetches: shared read-only code, hot-skewed.  (Only the
    # potentially-missing fraction of fetches is issued; L1I hits on the
    # hot loop body are folded into think time.)
    p_fetch: float = 0.15
    code_blocks: int = 24
    # Footprints (blocks).
    private_blocks: int = 256
    migratory_blocks: int = 32
    read_shared_blocks: int = 64
    lock_blocks: int = 16
    store_fraction_private: float = 0.3


OLTP = CommercialProfile(
    name="oltp",
    p_lock=0.08,
    p_migratory=0.30,
    p_read_shared=0.10,
    p_stream=0.15,  # OLTP's large buffer pool: heavy L2 capacity traffic
    migratory_blocks=24,
    lock_blocks=12,
)

APACHE = CommercialProfile(
    name="apache",
    p_lock=0.04,
    p_migratory=0.12,
    p_read_shared=0.25,
    p_stream=0.12,
    migratory_blocks=32,
    read_shared_blocks=96,
)

SPECJBB = CommercialProfile(
    name="specjbb",
    p_lock=0.015,
    p_migratory=0.05,
    p_read_shared=0.10,
    p_stream=0.10,  # garbage-collected heap churn
    private_blocks=384,
    migratory_blocks=16,
)

PROFILES = {"oltp": OLTP, "apache": APACHE, "specjbb": SPECJBB}


class CommercialWorkload(Workload):
    """Synthetic reference stream with a commercial sharing profile.

    The stream is **vectorized**: every per-processor rng decision
    (access class, block picks, store values) is made once at
    construction and compiled into a flat ``array('q')`` program of
    4-int records, so steady-state generation is array reads plus
    interned op objects instead of per-reference object churn.  Only the
    genuinely runtime-dependent parts stay in the generator: the
    test-and-test-and-set spin (which consumes no rng — its trip count
    depends on other processors) and the migratory read-modify-write
    values.  The rng draw order of :meth:`_compile` replicates the old
    per-reference generator exactly, so streams are bit-identical to the
    pre-vectorized implementation.
    """

    # Program record: (body opcode, fetch addr or -1, a, b).
    _LOCK, _MIG, _RO, _STREAM, _PRIV_STORE, _PRIV_LOAD = range(6)

    def __init__(self, params, profile: CommercialProfile, seed: int = 0):
        super().__init__(params, seed)
        self.profile = profile
        self.name = profile.name
        self.locks = self.alloc.blocks(profile.lock_blocks)
        self.migratory = self.alloc.blocks(profile.migratory_blocks)
        self.read_shared = self.alloc.blocks(profile.read_shared_blocks)
        self.code = self.alloc.blocks(profile.code_blocks)
        self.private = [
            self.alloc.blocks(profile.private_blocks) for _ in range(params.num_procs)
        ]
        self.completed_refs = [0] * params.num_procs
        self._stream_counters = [0] * params.num_procs
        # Interned immutable op objects, shared across yields and procs.
        self._think = Think(profile.think_ns)
        self._loads: Dict[int, Load] = {}
        self._fetches: Dict[int, Fetch] = {}
        self._tas: Dict[int, Rmw] = {}
        self._unlocks: Dict[int, Store] = {}
        self._programs = [self._compile(p) for p in range(params.num_procs)]

    def _stream_block(self, proc: int) -> int:
        """Next block of this processor's capacity stream.

        Consecutive stream blocks of one processor map to the same L1/L2
        set (stride = one full L2-bank wrap), so a modest reference count
        reproduces the capacity misses and dirty writebacks that the real
        workloads' multi-GB footprints cause.
        """
        k = self._stream_counters[proc]
        self._stream_counters[proc] += 1
        p = self.params
        l2_sets = p.l2_bank_size // (p.block_size * p.l2_assoc)
        # Each processor round-robins over 2 private L2 sets; a stride of
        # l2_sets blocks keeps the set index constant within each lane, so
        # the stream steadily conflicts (and evicts dirty lines) without
        # pinning any single set while L1 writebacks are still in flight.
        base_index = 0x800_0000 // p.block_size + 16
        lane = proc * 2 + (k % 2)
        return (base_index + lane + (k // 2) * l2_sets) * p.block_size

    def _compile(self, proc: int) -> array:
        """Precompute this processor's reference stream as a flat program.

        Draws from the rng in exactly the per-reference order of the old
        generator (the spin loop consumed no rng, and the lock path's
        record pick came after an rng-free acquire), so the compiled
        stream is draw-for-draw identical.
        """
        prof = self.profile
        rng = substream(self.seed, "commercial", prof.name, proc)
        p_lock = prof.p_lock
        p_mig = p_lock + prof.p_migratory
        p_ro = p_mig + prof.p_read_shared
        p_str = p_ro + prof.p_stream
        prog = array("q")
        extend = prog.extend
        for _ in range(prof.refs_per_proc):
            fetch_addr = -1
            if rng.random() < prof.p_fetch:
                # Hot-skewed instruction fetch: most go to a few blocks.
                if rng.random() < 0.7:
                    fetch_addr = self.code[rng.randrange(4)]
                else:
                    fetch_addr = self.code[rng.randrange(len(self.code))]
            r = rng.random()
            if r < p_lock:
                lock = self.locks[rng.randrange(len(self.locks))]
                record = self.migratory[rng.randrange(len(self.migratory))]
                body, a, b = self._LOCK, lock, record
            elif r < p_mig:
                record = self.migratory[rng.randrange(len(self.migratory))]
                body, a, b = self._MIG, record, 0
            elif r < p_ro:
                body, a, b = (
                    self._RO, self.read_shared[rng.randrange(len(self.read_shared))], 0
                )
            elif r < p_str:
                body, a, b = self._STREAM, self._stream_block(proc), 0
            else:
                block = self.private[proc][rng.randrange(len(self.private[proc]))]
                if rng.random() < prof.store_fraction_private:
                    body, a, b = self._PRIV_STORE, block, rng.randrange(1 << 16)
                else:
                    body, a, b = self._PRIV_LOAD, block, 0
            extend((body, fetch_addr, a, b))
        return prog

    # Interned-op helpers: one immutable op object per distinct address.
    def _load(self, addr: int) -> Load:
        op = self._loads.get(addr)
        if op is None:
            self._loads[addr] = op = Load(addr)
        return op

    def _fetch(self, addr: int) -> Fetch:
        op = self._fetches.get(addr)
        if op is None:
            self._fetches[addr] = op = Fetch(addr)
        return op

    def _tas_op(self, addr: int) -> Rmw:
        op = self._tas.get(addr)
        if op is None:
            self._tas[addr] = op = Rmw(addr, lambda v: LOCK_HELD)
        return op

    def _unlock(self, addr: int) -> Store:
        op = self._unlocks.get(addr)
        if op is None:
            self._unlocks[addr] = op = Store(addr, LOCK_FREE)
        return op

    def generators(self) -> List[Generator]:
        return [self._run(p) for p in range(self.params.num_procs)]

    def _run(self, proc: int) -> Generator:
        """Replay the compiled program (the runtime half of the stream)."""
        prog = self._programs[proc]
        think = self._think
        completed = self.completed_refs
        LOCK, MIG, RO, STREAM, PRIV_STORE, PRIV_LOAD = (
            self._LOCK, self._MIG, self._RO,
            self._STREAM, self._PRIV_STORE, self._PRIV_LOAD,
        )
        n = len(prog)
        i = 0
        while i < n:
            body = prog[i]
            fetch_addr = prog[i + 1]
            a = prog[i + 2]
            b = prog[i + 3]
            i += 4
            yield think
            if fetch_addr >= 0:
                yield self._fetch(fetch_addr)
            if body == PRIV_LOAD:
                yield self._load(a)
            elif body == MIG:
                # Unsynchronized read-modify-write sharing (migratory).
                value = yield self._load(a)
                yield Store(a, value + 1)
            elif body == STREAM:
                # Capacity stream: write a fresh conflicting block (it will
                # come back out of the L2 as a dirty writeback).
                yield Store(a, proc)
            elif body == RO:
                yield self._load(a)
            elif body == PRIV_STORE:
                yield Store(a, b)
            else:  # LOCK
                lock_load = self._load(a)
                lock_tas = self._tas_op(a)
                while True:
                    if (yield lock_load) == LOCK_FREE:
                        if (yield lock_tas) == LOCK_FREE:
                            break
                # Short critical section: update a migratory record.
                value = yield self._load(b)
                yield Store(b, value + 1)
                yield self._unlock(a)
            completed[proc] += 1


def make_commercial(params, name: str, seed: int = 0, **overrides) -> CommercialWorkload:
    """Build one of the three named workloads (optionally tweaked)."""
    profile = PROFILES[name.lower()]
    if overrides:
        profile = dataclasses.replace(profile, **overrides)
    return CommercialWorkload(params, profile, seed=seed)
