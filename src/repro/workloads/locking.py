"""Locking micro-benchmark (paper Table 2, Figures 2-3).

Each processor repeatedly: thinks for 10 ns, picks a random lock
(different from the last one it acquired), acquires it with
test-and-test-and-set, holds it for 10 ns, and releases it — until it has
performed a fixed number of acquires.  Contention is varied by the number
of locks (2 = high contention ... 512 = low contention).
"""

from __future__ import annotations

from typing import Generator, List

from repro.common.rng import substream
from repro.cpu.ops import Load, Rmw, Store, Think
from repro.workloads.base import Workload

LOCK_FREE = 0
LOCK_HELD = 1


def test_and_set(lock_addr: int) -> Rmw:
    """Atomic test-and-set; the generator receives the *old* value."""
    return Rmw(lock_addr, lambda v: LOCK_HELD)


class LockingWorkload(Workload):
    """The paper's locking micro-benchmark."""

    name = "locking"

    def __init__(
        self,
        params,
        num_locks: int = 16,
        acquires_per_proc: int = 32,
        think_ns: float = 10.0,
        hold_ns: float = 10.0,
        seed: int = 0,
    ):
        super().__init__(params, seed)
        self.num_locks = num_locks
        self.acquires_per_proc = acquires_per_proc
        self.think_ns = think_ns
        self.hold_ns = hold_ns
        self.locks = self.alloc.blocks(num_locks)
        self.acquired_counts = [0] * params.num_procs
        # Interned immutable ops (one per lock): spin loops re-yield the
        # same Load/Rmw objects instead of churning fresh ones per probe.
        self._think = Think(think_ns)
        self._hold = Think(hold_ns)
        self._loads = [Load(lock) for lock in self.locks]
        self._tas = [test_and_set(lock) for lock in self.locks]
        self._unlocks = [Store(lock, LOCK_FREE) for lock in self.locks]

    def generators(self) -> List[Generator]:
        return [self._thread(p) for p in range(self.params.num_procs)]

    def _thread(self, proc: int) -> Generator:
        rng = substream(self.seed, "locking", proc)
        last = -1
        for _ in range(self.acquires_per_proc):
            yield self._think
            if self.num_locks == 1:
                pick = 0
            else:
                pick = rng.randrange(self.num_locks - 1)
                if pick >= last:
                    pick += 1  # uniform over locks != last
            last = pick
            # Test-and-test-and-set acquire.
            lock_load = self._loads[pick]
            lock_tas = self._tas[pick]
            while True:
                if (yield lock_load) == LOCK_FREE:
                    if (yield lock_tas) == LOCK_FREE:
                        break
            self.acquired_counts[proc] += 1
            yield self._hold
            yield self._unlocks[pick]
