"""Builders: wire up every controller for one protocol family."""

from __future__ import annotations

from repro.common.types import NodeId, NodeKind
from repro.memory.cache import CacheArray


def _l1_array(params, node: NodeId) -> CacheArray:
    return CacheArray(params.l1_size, params.l1_assoc, params.block_size, str(node))


def _l2_array(params, node: NodeId) -> CacheArray:
    return CacheArray(params.l2_bank_size, params.l2_assoc, params.block_size, str(node))


def build_token_machine(machine) -> None:
    """TokenCMP: flat token substrate + hierarchical performance policy."""
    from repro.core.l1 import TokenL1Controller
    from repro.core.l2 import TokenL2Controller
    from repro.core.ledger import ChipTokenLedger
    from repro.core.memctrl import TokenMemController
    from repro.core.persistent import Arbiter

    p = machine.params
    per_chip_controllers = {chip: [] for chip in p.all_chips()}

    for proc in range(p.num_procs):
        for kind_node in (p.l1d_of(proc), p.l1i_of(proc)):
            ctrl = TokenL1Controller(
                kind_node,
                machine.sim,
                machine.net,
                p,
                machine.stats,
                machine.cfg,
                _l1_array(p, kind_node),
                p.l1_latency_ps,
                proc=proc,
                seed=machine.seed,
            )
            machine.controllers[kind_node] = ctrl
            per_chip_controllers[kind_node.chip].append(ctrl)
            if kind_node.kind is NodeKind.L1D:
                machine.l1ds.append(ctrl)
            else:
                machine.l1is.append(ctrl)

    l2s = []
    for chip in p.all_chips():
        for node in p.chip_l2_banks(chip):
            ctrl = TokenL2Controller(
                node,
                machine.sim,
                machine.net,
                p,
                machine.stats,
                machine.cfg,
                _l2_array(p, node),
                p.l2_latency_ps,
            )
            machine.controllers[node] = ctrl
            per_chip_controllers[chip].append(ctrl)
            l2s.append(ctrl)

    for chip in p.all_chips():
        ledger = ChipTokenLedger(per_chip_controllers[chip])
        destset = None
        if machine.cfg.use_multicast:
            from repro.core.destset import DestinationSetPredictor

            destset = DestinationSetPredictor()
        for ctrl in per_chip_controllers[chip]:
            if isinstance(ctrl, TokenL2Controller):
                ctrl.ledger = ledger
            ctrl.destset = destset

    for chip in p.all_chips():
        mem_node = NodeId(NodeKind.MEM, chip)
        mem = TokenMemController(
            mem_node, machine.sim, machine.net, p, machine.stats, machine.cfg
        )
        machine.controllers[mem_node] = mem
        machine.mems[chip] = mem
        if machine.cfg.activation == "arb":
            arb_node = NodeId(NodeKind.ARB, chip)
            machine.controllers[arb_node] = Arbiter(
                arb_node, machine.sim, machine.net, p, machine.stats
            )


def build_directory_machine(machine) -> None:
    """DirectoryCMP: two-level MOESI hierarchical directory protocol."""
    from repro.directory.inter import InterDirController
    from repro.directory.intra import IntraDirL2Controller
    from repro.directory.l1 import DirL1Controller

    p = machine.params
    for proc in range(p.num_procs):
        for node, bucket in ((p.l1d_of(proc), machine.l1ds),
                             (p.l1i_of(proc), machine.l1is)):
            ctrl = DirL1Controller(
                node,
                machine.sim,
                machine.net,
                p,
                machine.stats,
                machine.cfg,
                _l1_array(p, node),
            )
            machine.controllers[node] = ctrl
            bucket.append(ctrl)

    for chip in p.all_chips():
        for node in p.chip_l2_banks(chip):
            ctrl = IntraDirL2Controller(
                node,
                machine.sim,
                machine.net,
                p,
                machine.stats,
                machine.cfg,
                _l2_array(p, node),
            )
            machine.controllers[node] = ctrl

    for chip in p.all_chips():
        mem_node = NodeId(NodeKind.MEM, chip)
        mem = InterDirController(
            mem_node, machine.sim, machine.net, p, machine.stats, machine.cfg
        )
        machine.controllers[mem_node] = mem
        machine.mems[chip] = mem


def build_perfect_machine(machine) -> None:
    """PerfectL2: infinite shared L2, magic coherence."""
    from repro.perfect.perfectl2 import PerfectGlobalL2, PerfectL1Controller

    p = machine.params
    global_l2 = PerfectGlobalL2()
    machine._perfect_l2 = global_l2
    for proc in range(p.num_procs):
        node = p.l1d_of(proc)
        ctrl = PerfectL1Controller(node, machine.sim, p, machine.stats, global_l2)
        machine.controllers[node] = ctrl
        machine.l1ds.append(ctrl)
        inode = p.l1i_of(proc)
        ictrl = PerfectL1Controller(inode, machine.sim, p, machine.stats, global_l2)
        machine.controllers[inode] = ictrl
        machine.l1is.append(ictrl)


def build_snooping_machine(machine) -> None:
    """SnoopingSCMP: MOESI snooping over a logical bus (one chip)."""
    from repro.snooping.protocol import SnoopCoordinator, SnoopL1Controller

    p = machine.params
    coordinator = SnoopCoordinator(machine.sim, p, machine.stats)
    machine._snoop_coordinator = coordinator
    for proc in range(p.num_procs):
        for node, bucket in ((p.l1d_of(proc), machine.l1ds),
                             (p.l1i_of(proc), machine.l1is)):
            ctrl = SnoopL1Controller(node, machine.sim, p, machine.stats, coordinator)
            coordinator.add_l1(ctrl)
            machine.controllers[node] = ctrl
            bucket.append(ctrl)
