"""Machine: a fully wired simulated M-CMP system plus run helpers.

``MachineSpec(...).build()`` (see :mod:`repro.system.spec`) builds every
controller for the chosen protocol family on a fresh event kernel;
:meth:`run` drives a workload to completion and returns a
:class:`RunResult` with runtime and traffic.  The legacy
``Machine(params, protocol, ...)`` constructor survives as a deprecation
shim around the spec.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Dict, List, Optional

from repro.common.errors import ConfigError, DeadlockError, ProtocolError
from repro.common.stats import Stats
from repro.common.types import NodeId, NodeKind, to_ns
from repro.cpu.sequencer import Sequencer
from repro.cpu.thread import ProcThread
from repro.interconnect.network import Network
from repro.interconnect.traffic import Scope, TrafficMeter
from repro.sim.kernel import Simulator
from repro.system.config import ProtocolConfig
from repro.system.spec import MachineSpec
from repro.workloads.base import Workload


@dataclasses.dataclass
class RunResult:
    """Outcome of one workload run."""

    protocol: str
    workload: str
    runtime_ps: int
    stats: Stats
    meter: TrafficMeter
    machine: "Machine"

    @property
    def runtime_ns(self) -> float:
        return to_ns(self.runtime_ps)

    def traffic_bytes(self, scope: Scope) -> int:
        return self.meter.scope_bytes(scope)


class Machine:
    """One simulated M-CMP system.

    Construct via ``MachineSpec(...).build()``.  Passing ``(params,
    protocol, seed=, faults=)`` positionally still works but is
    deprecated — the shim wraps them in a spec (note the spec's ``crash``
    stays ``None`` on this path; the legacy flow armed
    :class:`~repro.faults.crash.CrashInjector` separately).
    """

    def __init__(self, params, proto=None, seed: int = 0, faults=None):
        if isinstance(params, MachineSpec):
            if proto is not None or faults is not None or seed != 0:
                raise ConfigError(
                    "Machine(spec) takes no extra arguments; put protocol/"
                    "seed/faults inside the MachineSpec"
                )
            spec = params
        else:
            warnings.warn(
                "Machine(params, proto, seed=, faults=) is deprecated; "
                "construct through repro.system.MachineSpec(...).build()",
                DeprecationWarning, stacklevel=2,
            )
            spec = MachineSpec(params=params, protocol=proto, seed=seed,
                               faults=faults)
        self.spec = spec
        params = spec.params
        faults = spec.faults
        self.params = params
        self.cfg: ProtocolConfig = spec.protocol
        self.seed = spec.seed
        self.sim = Simulator()
        self.stats = Stats()
        self.meter = TrafficMeter()
        net = Network(self.sim, params, self.meter)
        if faults is not None:
            # Wrap the interconnect in the adversarial decorator *before*
            # any controller registers, so every endpoint is faultable.
            from repro.faults.injector import FaultyNetwork

            net = FaultyNetwork(net, faults, seed=spec.seed, stats=self.stats)
        self.net = net
        self.watchdog = None  # set by faults.watchdog.LivenessWatchdog
        self.recovery = None  # RecoveryLedger, set by enable_recovery()
        self.l1ds: List = []  # per-processor L1 data controllers
        self.l1is: List = []  # per-processor L1 instruction controllers
        self.controllers: Dict[NodeId, object] = {}
        self.mems: Dict[int, object] = {}
        self._build()
        if faults is not None and getattr(faults, "lossy", False):
            self.enable_recovery()
        self.sequencers = [
            Sequencer(
                self.sim, p, self.l1ds[p], self.stats,
                l1i=self.l1is[p] if p < len(self.l1is) else None,
            )
            for p in range(params.num_procs)
        ]

    # ------------------------------------------------------------------
    def _build(self) -> None:
        if self.cfg.family == "token":
            from repro.system.builder import build_token_machine

            build_token_machine(self)
        elif self.cfg.family == "directory":
            from repro.system.builder import build_directory_machine

            build_directory_machine(self)
        elif self.cfg.family == "snooping":
            from repro.system.builder import build_snooping_machine

            build_snooping_machine(self)
        else:
            from repro.system.builder import build_perfect_machine

            build_perfect_machine(self)

    # ------------------------------------------------------------------
    def enable_recovery(self):
        """Arm the token-recreation recovery subsystem (token family).

        Creates the shared :class:`~repro.recovery.ledger.RecoveryLedger`,
        wires it into the memory controllers (rulers of tokens) and the
        fault-injecting network, and arms the L1s' recreation escalation
        tier.  Idempotent.  Required for ``FaultConfig(lossy=True)`` runs
        and for :class:`~repro.faults.crash.CrashInjector` — without it,
        destroyed tokens would starve their block forever.
        """
        if self.recovery is not None:
            return self.recovery
        if self.cfg.family != "token":
            raise ProtocolError("token recovery only applies to the token family")
        from repro.core.l1 import TokenL1Controller
        from repro.recovery.ledger import RecoveryLedger

        self.recovery = ledger = RecoveryLedger()
        for mem in self.mems.values():
            mem.ledger = ledger
        for ctrl in self.controllers.values():
            if isinstance(ctrl, TokenL1Controller):
                ctrl.recovery_enabled = True
        if hasattr(self.net, "in_flight_tokens"):  # FaultyNetwork wrapper
            self.net.ledger = ledger
            self.net.epoch_of = self.block_epoch
        return ledger

    def block_epoch(self, addr: int) -> int:
        """The block's current recreation epoch at its home controller."""
        return self.mems[self.params.home_chip(addr)].epoch_of(addr)

    def run(self, workload: Workload, max_events: Optional[int] = None) -> RunResult:
        """Run ``workload`` to completion and return the results."""
        gens = workload.generators()
        if len(gens) != self.params.num_procs:
            raise ValueError(
                f"workload built {len(gens)} threads for {self.params.num_procs} processors"
            )
        unfinished = {"count": len(gens)}

        def _on_finish(thread: ProcThread) -> None:
            unfinished["count"] -= 1

        threads = [
            ProcThread(self.sim, self.sequencers[p], gen, _on_finish)
            for p, gen in enumerate(gens)
        ]
        for thread in threads:
            thread.start()
        if self.watchdog is not None:
            self.watchdog.arm(threads)
        try:
            self.sim.run(max_events=max_events, expect_drain=True)
            if unfinished["count"]:
                raise DeadlockError(
                    f"{unfinished['count']} threads never finished "
                    f"({self.cfg.name} / {workload.name}); the system went "
                    "quiescent without completing"
                )
        except DeadlockError as err:
            if self.watchdog is not None:
                raise self.watchdog.attach_diagnostics(err)
            raise
        finally:
            if self.watchdog is not None:
                self.watchdog.disarm()
        runtime = max(t.finish_time for t in threads)
        self.stats.counters["runtime_ps"] = runtime
        return RunResult(
            protocol=self.cfg.name,
            workload=workload.name,
            runtime_ps=runtime,
            stats=self.stats,
            meter=self.meter,
            machine=self,
        )

    def run_measured(
        self,
        warmup: Workload,
        measured: Workload,
        max_events: Optional[int] = None,
    ) -> RunResult:
        """Warm the caches with one workload, then measure another.

        Mirrors the paper's methodology ("N requests to warm simulated
        hardware caches, detailed simulations of M requests for reported
        results"): the returned result's runtime and statistics cover the
        measured phase only (counter and traffic snapshots are deltas).
        """
        self.run(warmup, max_events=max_events)
        counters_before = self.stats.snapshot()
        meter_before = dict(self.meter.bytes)
        start_ps = self.sim.now
        result = self.run(measured, max_events=max_events)
        result = dataclasses.replace(result, runtime_ps=self.sim.now - start_ps)
        for name, value in counters_before.items():
            if name in result.stats.counters and name != "runtime_ps":
                result.stats.counters[name] -= value
        for key, value in meter_before.items():
            result.meter.bytes[key] -= value
        result.stats.counters["runtime_ps"] = result.runtime_ps
        return result

    # ------------------------------------------------------------------
    # Post-run invariant checking (token family).
    # ------------------------------------------------------------------
    def touched_blocks(self) -> set:
        """All block addresses with any coherence state (token family)."""
        from repro.core.base import TokenCacheController

        addrs = set()
        for ctrl in self.controllers.values():
            if isinstance(ctrl, TokenCacheController):
                addrs.update(a for a, _e in ctrl.array.items())
        for mem in self.mems.values():
            addrs.update(mem._tokens.keys())
            addrs.update(mem.image._values.keys())
        in_flight = getattr(self.net, "in_flight_tokens", None)
        if in_flight is not None:
            addrs.update(addr for addr, _triple in in_flight())
        return addrs

    def check_token_invariants(self) -> None:
        """Verify token conservation and value coherence for every block.

        Safe at quiescence (drained queue) and, on a fault-injected
        machine, at any event boundary: the faulty network tracks every
        token-carrying message from send to absorption, and those
        in-flight tokens are counted in the census.
        """
        if self.cfg.family != "token":
            raise ProtocolError("token invariants only apply to the token family")
        from repro.core.base import TokenCacheController
        from repro.core.tokens import check_conservation

        # Census the in-flight carriers, keeping only those of each
        # block's *current* recreation epoch — stale-epoch carriers are
        # walking dead (discarded on arrival, already replaced by the
        # reconstituted set at memory) and must not be counted.
        in_flight_by_addr: Dict[int, list] = {}
        collect = getattr(self.net, "in_flight_token_epochs", None)
        if collect is not None:
            for addr, epoch, triple in collect():
                if epoch >= self.block_epoch(addr):
                    in_flight_by_addr.setdefault(addr, []).append(triple)

        for addr in self.touched_blocks():
            home = self.mems[self.params.home_chip(addr)]
            holders = []
            for node, ctrl in self.controllers.items():
                if isinstance(ctrl, TokenCacheController):
                    entry = ctrl.peek_entry(addr)
                    if entry is not None:
                        holders.append((str(node), entry))
            destroyed, destroyed_owner = (
                self.recovery.deficit(addr) if self.recovery is not None else (0, False)
            )
            check_conservation(
                holders,
                mem_tokens=home.tokens_of(addr),
                mem_owner=home.is_owner(addr),
                mem_value=home.image.read(addr),
                total_tokens=self.params.tokens_per_block,
                in_flight=in_flight_by_addr.get(addr, ()),
                destroyed_tokens=destroyed,
                destroyed_owner=destroyed_owner,
                recreating=home.is_recreating(addr),
            )

    def coherent_value(self, addr: int) -> int:
        """The architecturally current value of a block (owner's copy)."""
        addr = self.params.block_of(addr)
        if self.cfg.family == "token":
            from repro.core.base import TokenCacheController

            for ctrl in self.controllers.values():
                if isinstance(ctrl, TokenCacheController):
                    entry = ctrl.peek_entry(addr)
                    if entry is not None and entry.owner:
                        return entry.value
            return self.mems[self.params.home_chip(addr)].image.read(addr)
        if self.cfg.family == "perfect":
            return self._perfect_l2.image.read(addr)
        if self.cfg.family == "snooping":
            return self._snoop_coordinator.coherent_value(addr)
        from repro.directory.inter import coherent_value as dir_value

        return dir_value(self, addr)
