"""MachineSpec: the single frozen recipe for constructing a Machine.

Historically a machine was assembled in two steps scattered across the
callers: ``Machine(params, proto, seed=..., faults=...)`` plus a separate
:class:`~repro.faults.crash.CrashInjector` arm when crashes were wanted.
:class:`MachineSpec` folds everything construction depends on — system
parameters (which carry the interconnect :class:`Topology`), protocol,
seed, fault config and crash spec — into one frozen, hashable value with
one entry point, :meth:`MachineSpec.build`.

``Machine(params, proto, ...)`` survives as a thin deprecation shim that
wraps its arguments in a spec; new code should construct the spec:

.. code-block:: python

    spec = MachineSpec(params=SystemParams(num_chips=8,
                                           topology=Topology.mesh()),
                       protocol="TokenCMP-dst1-mcast", seed=3)
    machine = spec.build()
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

from repro.common.params import SystemParams
from repro.interconnect.topology import Topology
from repro.system.config import ProtocolConfig, protocol as lookup_protocol


@dataclasses.dataclass(frozen=True)
class MachineSpec:
    """Everything one machine's construction depends on, as frozen data.

    ``protocol`` accepts a registry name or a full
    :class:`~repro.system.config.ProtocolConfig`; names are resolved at
    construction so equal specs compare equal.  ``faults`` is a
    :class:`~repro.faults.injector.FaultConfig`, ``crash`` a
    :class:`~repro.faults.crash.CrashSpec`; both default off.
    """

    params: SystemParams = dataclasses.field(default_factory=SystemParams)
    protocol: Union[str, ProtocolConfig] = "TokenCMP-dst1"
    seed: int = 0
    faults: Optional[object] = None  # repro.faults.injector.FaultConfig
    crash: Optional[object] = None  # repro.faults.crash.CrashSpec

    def __post_init__(self) -> None:
        if isinstance(self.protocol, str):
            object.__setattr__(self, "protocol", lookup_protocol(self.protocol))

    # ------------------------------------------------------------------
    @property
    def protocol_name(self) -> str:
        return self.protocol.name

    @property
    def topology(self) -> Topology:
        """The interconnect spec this machine compiles (from ``params``)."""
        return self.params.topology

    # ------------------------------------------------------------------
    def build(self) -> "Machine":
        """Construct the fully wired machine (arming crashes if specified).

        The one supported construction path: ``run_cell`` and every other
        runner funnel through here, so a spec in hand *is* the machine.
        """
        from repro.system.machine import Machine

        machine = Machine(self)
        if self.crash is not None:
            from repro.faults.crash import CrashInjector

            CrashInjector(machine, self.crash, seed=self.seed)
        return machine
