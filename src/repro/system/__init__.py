"""System assembly: protocol configs, MachineSpec, and the Machine."""

from repro.system.spec import MachineSpec

__all__ = ["MachineSpec"]
