"""Protocol variant registry (paper Tables 1 and the baselines).

Each :class:`ProtocolConfig` fully determines how a machine is built:
which protocol family, how many transient requests a token policy issues
before falling back on the correctness substrate, which persistent-request
activation mechanism is used, and the optional predictor/filter features.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.common.errors import ConfigError


@dataclasses.dataclass(frozen=True)
class ProtocolConfig:
    """One row of Table 1 (token variants) or a baseline protocol."""

    name: str
    family: str  # "token" | "directory" | "perfect"
    max_transient: int = 0  # transient requests before persistent (0, 1, 4)
    activation: str = "dst"  # "arb" | "dst"
    use_predictor: bool = False  # TokenCMP-dst1-pred
    use_filter: bool = False  # TokenCMP-dst1-filt
    dir_zero_cycle: bool = False  # DirectoryCMP-zero
    migratory: bool = True  # migratory-sharing optimization
    read_tokens_c: bool = True  # external read responses carry C tokens
    response_delay: bool = True  # bounded hold window (Section 3.2)
    # TokenB (Martin et al., ISCA 2003): the original *flat* performance
    # policy the paper argues against for M-CMPs — every transient request
    # broadcasts to every cache in the machine, and the timeout averages
    # ALL response latencies (fast on-chip hits included).
    flat_policy: bool = False
    # Destination-set prediction (Section 8's pointer for larger systems):
    # escalated transient requests multicast to the predicted holder chips
    # instead of broadcasting to every CMP.
    use_multicast: bool = False

    def __post_init__(self) -> None:
        if self.family not in ("token", "directory", "perfect", "snooping"):
            raise ConfigError(f"unknown protocol family {self.family!r}")
        if self.activation not in ("arb", "dst"):
            raise ConfigError(f"unknown activation mechanism {self.activation!r}")
        if self.max_transient not in (0, 1, 2, 4):
            raise ConfigError(
                "max_transient must be 0, 1 or 4 (Table 1) — or 2 for the "
                "multicast extension (predicted set, then one full broadcast)"
            )

    @property
    def is_token(self) -> bool:
        return self.family == "token"


def _token(name: str, **kw) -> ProtocolConfig:
    return ProtocolConfig(name=name, family="token", **kw)


PROTOCOLS: Dict[str, ProtocolConfig] = {
    # Table 1: TokenCMP variants.
    "TokenCMP-arb0": _token("TokenCMP-arb0", max_transient=0, activation="arb"),
    "TokenCMP-dst0": _token("TokenCMP-dst0", max_transient=0, activation="dst"),
    "TokenCMP-dst4": _token("TokenCMP-dst4", max_transient=4, activation="dst"),
    "TokenCMP-dst1": _token("TokenCMP-dst1", max_transient=1, activation="dst"),
    "TokenCMP-dst1-pred": _token(
        "TokenCMP-dst1-pred", max_transient=1, activation="dst", use_predictor=True
    ),
    "TokenCMP-dst1-filt": _token(
        "TokenCMP-dst1-filt", max_transient=1, activation="dst", use_filter=True
    ),
    # Extension the paper points to for systems with more CMPs.
    "TokenCMP-dst1-mcast": _token(
        # Two transient attempts: the multicast to the predicted set, then
        # (on misprediction) one full broadcast before going persistent.
        "TokenCMP-dst1-mcast", max_transient=2, activation="dst", use_multicast=True
    ),
    # The original flat policy (Section 4 explains why it fits M-CMPs
    # poorly); retained for the hierarchical-vs-flat policy ablation.
    "TokenB": _token(
        "TokenB", max_transient=4, activation="arb", flat_policy=True,
        read_tokens_c=False,  # C-token read responses are a TokenCMP addition
    ),
    # Baselines (Section 2 / Section 6).
    "DirectoryCMP": ProtocolConfig(name="DirectoryCMP", family="directory"),
    # Section 1's S-CMP baseline: MOESI snooping on a logical bus
    # (single-chip machines only).
    "SnoopingSCMP": ProtocolConfig(name="SnoopingSCMP", family="snooping"),
    "DirectoryCMP-zero": ProtocolConfig(
        name="DirectoryCMP-zero", family="directory", dir_zero_cycle=True
    ),
    "PerfectL2": ProtocolConfig(name="PerfectL2", family="perfect"),
}


def protocol(name: str) -> ProtocolConfig:
    """Look up a protocol by its paper name."""
    try:
        return PROTOCOLS[name]
    except KeyError:
        raise ConfigError(
            f"unknown protocol {name!r}; known: {', '.join(sorted(PROTOCOLS))}"
        ) from None
