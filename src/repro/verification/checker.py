"""Explicit-state model checker (the reproduction's stand-in for TLC).

Section 5 of the paper model-checks TLA+ descriptions of the TokenCMP
correctness substrate and a flat simplification of DirectoryCMP.  This
module provides the same technique class: exhaustive breadth-first
enumeration of a down-scaled protocol model's state space, checking

* **safety** — a model-supplied invariant on every reachable state
  (token conservation, single-writer/multi-reader, value coherence);
* **deadlock freedom** — every non-quiescent state has at least one
  enabled transition;
* **liveness under fairness** — every reachable state can reach a
  quiescent state (no pending requests, empty network).  In a finite
  graph this implies that under strong fairness no request starves,
  which matches the paper's "eventually satisfies all requests, under
  certain fairness constraints".

Models are pure-Python objects over hashable states; see
:mod:`repro.verification.token_model` and
:mod:`repro.verification.dir_model`.
"""

from __future__ import annotations

import dataclasses
import time
from collections import deque
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.common.errors import VerificationError

State = Hashable
Transition = Tuple[str, State]


class Model:
    """Interface a protocol model implements for the checker."""

    name = "model"

    def initial_states(self) -> Iterable[State]:
        raise NotImplementedError

    def transitions(self, state: State) -> List[Transition]:
        """All enabled ``(label, successor)`` pairs from ``state``."""
        raise NotImplementedError

    def check_invariants(self, state: State) -> None:
        """Raise :class:`VerificationError` if ``state`` is inconsistent."""

    def is_quiescent(self, state: State) -> bool:
        """True when nothing is pending (used for deadlock + liveness)."""
        raise NotImplementedError

    def canonicalize(self, state: State) -> State:
        """Symmetry reduction hook (paper Section 5's technique list).

        Return a canonical representative of ``state``'s symmetry orbit
        (e.g. the lexicographic minimum over processor permutations).
        The default is the identity — no reduction.  Soundness requires
        the model to actually be symmetric under the applied permutations
        (invariants and quiescence must be permutation-invariant).
        """
        return state


@dataclasses.dataclass
class CheckResult:
    """Statistics from one exhaustive exploration."""

    model: str
    states: int
    transitions: int
    diameter: int
    quiescent_states: int
    elapsed_s: float
    liveness_checked: bool

    def to_dict(self) -> Dict[str, object]:
        """Deterministic projection: everything except wall time.

        ``elapsed_s`` is a measurement of the checking machine, not of
        the model, so it is excluded from any output that gets compared
        across runs (result caching, CI diffs, pinned-count tests).
        """
        return {
            "model": self.model,
            "states": self.states,
            "transitions": self.transitions,
            "diameter": self.diameter,
            "quiescent_states": self.quiescent_states,
            "liveness_checked": self.liveness_checked,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.model}: {self.states} states, {self.transitions} transitions, "
            f"diameter {self.diameter}, {self.elapsed_s:.2f}s"
        )


def check(
    model: Model,
    max_states: Optional[int] = None,
    check_liveness: bool = True,
) -> CheckResult:
    """Exhaustively explore ``model``; raise on any property violation.

    Raises :class:`VerificationError` with a shortest-path counterexample
    trace for safety violations and deadlocks, and with a culprit state
    for liveness violations.
    """
    start = time.perf_counter()
    parents: Dict[State, Optional[Tuple[State, str]]] = {}
    depth: Dict[State, int] = {}
    successors: Dict[State, List[State]] = {}
    frontier = deque()
    for s in model.initial_states():
        s = model.canonicalize(s)
        if s not in parents:
            parents[s] = None
            depth[s] = 0
            frontier.append(s)

    transitions = 0
    diameter = 0
    quiescent = 0
    while frontier:
        state = frontier.popleft()
        try:
            model.check_invariants(state)
        except VerificationError as err:
            raise VerificationError(
                f"{model.name}: invariant violated: {err}\n" + _trace(parents, state)
            ) from err
        succs = model.transitions(state)
        transitions += len(succs)
        if model.is_quiescent(state):
            quiescent += 1
        elif not succs:
            raise VerificationError(
                f"{model.name}: deadlock (non-quiescent state with no transitions)\n"
                + _trace(parents, state)
            )
        next_states = []
        for label, nxt in succs:
            nxt = model.canonicalize(nxt)
            next_states.append(nxt)
            if nxt not in parents:
                parents[nxt] = (state, label)
                depth[nxt] = depth[state] + 1
                diameter = max(diameter, depth[nxt])
                frontier.append(nxt)
                if max_states is not None and len(parents) > max_states:
                    raise VerificationError(
                        f"{model.name}: state space exceeds {max_states} states"
                    )
        if check_liveness:
            successors[state] = next_states

    if check_liveness:
        _check_liveness(model, parents.keys(), successors)

    return CheckResult(
        model=model.name,
        states=len(parents),
        transitions=transitions,
        diameter=diameter,
        quiescent_states=quiescent,
        elapsed_s=time.perf_counter() - start,
        liveness_checked=check_liveness,
    )


def _check_liveness(model: Model, states, successors) -> None:
    """Every reachable state must be able to reach a quiescent state."""
    # Backward reachability from quiescent states over reversed edges.
    reverse: Dict[State, List[State]] = {}
    for src, nexts in successors.items():
        for nxt in nexts:
            reverse.setdefault(nxt, []).append(src)
    good = deque(s for s in states if model.is_quiescent(s))
    can_quiesce = set(good)
    while good:
        s = good.popleft()
        for pred in reverse.get(s, ()):
            if pred not in can_quiesce:
                can_quiesce.add(pred)
                good.append(pred)
    stuck = [s for s in states if s not in can_quiesce]
    if stuck:
        raise VerificationError(
            f"{model.name}: liveness violated — {len(stuck)} states cannot reach "
            f"quiescence, e.g. {stuck[0]!r}"
        )


def _trace(parents, state) -> str:
    """Shortest counterexample trace from an initial state."""
    steps = []
    cur = state
    while parents.get(cur) is not None:
        prev, label = parents[cur]
        steps.append(f"  {label} -> {cur!r}")
        cur = prev
    steps.append(f"  initial: {cur!r}")
    return "counterexample (most recent last):\n" + "\n".join(reversed(steps))


def spec_size(obj) -> int:
    """Non-comment, non-blank source lines of a model — the analogue of
    the paper's TLA+ line-count complexity metric."""
    import inspect

    source = inspect.getsource(obj)
    count = 0
    in_doc = False
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if stripped.startswith('"""') or stripped.startswith("'''"):
            if not (in_doc is False and stripped.endswith(('"""', "'''")) and len(stripped) > 3):
                in_doc = not in_doc
            continue
        if in_doc:
            continue
        count += 1
    return count
