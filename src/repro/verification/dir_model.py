"""Down-scaled flat directory-protocol model (Section 5 comparison).

The paper compares TokenCMP's model-checking effort against "a simplified,
non-hierarchical version of DirectoryCMP in which all intra-CMP details
are omitted": a flat MOSI directory with per-block busy states, forwarded
requests, invalidation acks collected at the requestor, unblock messages,
three-phase writebacks and the migratory-sharing optimization.  This
module is that model.

Even flattened, the directory protocol needs many more moving parts than
the token substrate — transient cache states (IS, IM, IMo, WB), a busy
bit with a request queue at the directory, ack counting, and
writeback-race cancellation — which is exactly the complexity asymmetry
the paper's TLA+ line counts (383-396 vs 1025) capture.

State encoding (hashable tuples):
  cache = (state, value, pend)       state in I,S,O,M,IS,IM,IMo,WB
                                     pend: IM/IMo -> (has_data, data, acks_left)
                                           WB     -> (value, cancelled)
  dir   = (state, owner, sharers, busy, queue)   state in I,S,O,M
  mem   = value
  net   = sorted tuple of in-flight messages
  wants = per-proc pending op: None | 'r' | 'w'
"""

from __future__ import annotations

from typing import List, Tuple

from repro.common.errors import VerificationError
from repro.verification.checker import Model

I, S, O, M = "I", "S", "O", "M"
IS, IM, IMO, WB = "IS", "IM", "IMo", "WB"


def _add(net, msg):
    return tuple(sorted(net + (msg,), key=repr))


def _remove(net, msg):
    lst = list(net)
    lst.remove(msg)
    return tuple(lst)


class DirFlatModel(Model):
    """Flat MOSI directory with busy states and three-phase writebacks."""

    name = "DirectoryCMP-flat"

    def __init__(self, n_caches: int = 2, values: int = 2, net_cap: int = 3,
                 migratory: bool = True):
        self.n = n_caches
        self.D = values
        self.net_cap = net_cap
        self.migratory = migratory

    def initial_states(self):
        caches = tuple((I, 0, None) for _ in range(self.n))
        directory = (I, None, (), False, ())
        wants = tuple(None for _ in range(self.n))
        return [(caches, directory, 0, (), wants)]

    @staticmethod
    def _make(state, caches=None, directory=None, mem=None, net=None, wants=None):
        c, d, m, n, w = state
        return (
            caches if caches is not None else c,
            directory if directory is not None else d,
            mem if mem is not None else m,
            net if net is not None else n,
            wants if wants is not None else w,
        )

    # ------------------------------------------------------------------
    def transitions(self, state) -> List[Tuple[str, object]]:
        caches, directory, mem, net, wants = state
        out = []
        out += self._want_and_issue(state)
        out += self._dir_transitions(state)
        out += self._cache_deliveries(state)
        out += self._evictions(state)
        return out

    # -- processor side ----------------------------------------------------
    def _want_and_issue(self, state):
        caches, directory, mem, net, wants = state
        out = []
        for i in range(self.n):
            cstate, value, pend = caches[i]
            if wants[i] is None:
                if cstate in (I, S, O, M):  # no new want mid-transaction
                    for op in ("r", "w"):
                        nw = wants[:i] + (op,) + wants[i + 1:]
                        out.append((f"want_{op}{i}", self._make(state, wants=nw)))
                continue
            # Hits complete immediately.
            if wants[i] == "r" and cstate in (S, O, M):
                nw = wants[:i] + (None,) + wants[i + 1:]
                out.append((f"read_hit{i}", self._make(state, wants=nw)))
            elif wants[i] == "w" and cstate == M:
                nc = _set(caches, i, (M, (value + 1) % self.D, None))
                nw = wants[:i] + (None,) + wants[i + 1:]
                out.append((f"write_hit{i}", self._make(state, caches=nc, wants=nw)))
            # Misses issue requests to the directory.
            elif wants[i] == "r" and cstate == I and len(net) < self.net_cap:
                nc = _set(caches, i, (IS, 0, None))
                out.append((f"gets{i}", self._make(
                    state, caches=nc, net=_add(net, ("gets", i)))))
            elif wants[i] == "w" and cstate in (I, S, O) and len(net) < self.net_cap:
                nstate = IMO if cstate == O else IM
                # pend = (has_data, data, acks_expected, acks_got)
                pend = (cstate == O, value if cstate == O else 0, None, 0)
                nc = _set(caches, i, (nstate, value, pend))
                out.append((f"getx{i}", self._make(
                    state, caches=nc, net=_add(net, ("getx", i)))))
        return out

    # -- directory side ------------------------------------------------------
    def _dir_transitions(self, state):
        caches, directory, mem, net, wants = state
        dstate, owner, sharers, busy, queue = directory
        out = []
        # dict.fromkeys: dedup like set() but in net's sorted-by-repr order,
        # so transition enumeration is reproducible across processes.
        for msg in dict.fromkeys(net):
            kind = msg[0]
            if kind in ("gets", "getx", "wb_req"):
                if busy:
                    ndir = (dstate, owner, sharers, busy, queue + (msg,))
                    out.append((f"defer_{kind}", self._make(
                        state, directory=ndir, net=_remove(net, msg))))
                else:
                    out.append((f"dir_{kind}", self._dir_process(
                        state, msg, _remove(net, msg))))
            elif kind == "unblock":
                _k, i, granted = msg
                ns = sharers
                nowner, nstate = owner, dstate
                if granted == M:
                    nowner, ns, nstate = i, (), M
                else:
                    ns = tuple(sorted(set(sharers) | {i}))
                    nstate = O if nowner is not None else S
                ndir = (nstate, nowner, ns, False, queue)
                out.append(("dir_unblock", self._pop_queue(self._make(
                    state, directory=ndir, net=_remove(net, msg)))))
            elif kind == "wb_data":
                _k, i, value, cancelled = msg
                nmem, nowner, ns, nstate = mem, owner, sharers, dstate
                if not cancelled:
                    nmem = value
                if nowner == i:
                    nowner = None
                    nstate = S if ns else I
                ns = tuple(x for x in ns if x != i)
                if nstate == S and not ns:
                    nstate = I
                ndir = (nstate, nowner, ns, False, queue)
                out.append(("dir_wb_data", self._pop_queue(self._make(
                    state, directory=ndir, mem=nmem, net=_remove(net, msg)))))
        return out

    def _dir_process(self, state, msg, net):
        """Start one transaction at the (idle) directory: become busy."""
        caches, directory, mem, _old_net, wants = state
        dstate, owner, sharers, busy, queue = directory
        kind = msg[0]
        if kind == "wb_req":
            i = msg[1]
            net = _add(net, ("wb_grant", i))
            ndir = (dstate, owner, sharers, True, queue)
            return self._make(state, directory=ndir, net=net)
        i = msg[1]
        if kind == "gets":
            if dstate == I:
                net = _add(net, ("data", i, mem, M, 0))  # exclusive grant
            elif dstate == S:
                net = _add(net, ("data", i, mem, S, 0))
            else:  # M or O: forward to owner; migratory hand-off if dirty-M
                migrate = self.migratory and dstate == M
                net = _add(net, ("fwd_s", owner, i, migrate))
        else:  # getx
            others = tuple(x for x in sharers if x != i)
            for j in others:
                net = _add(net, ("inv", j, i))
            if dstate in (I, S):
                net = _add(net, ("data", i, mem, M, len(others)))
            else:
                net = _add(net, ("fwd_x", owner, i, len(others)))
        ndir = (dstate, owner, sharers, True, queue)
        return self._make(state, directory=ndir, net=net)

    def _pop_queue(self, state):
        """After unbusying, restart the oldest deferred request, if any."""
        caches, directory, mem, net, wants = state
        dstate, owner, sharers, busy, queue = directory
        if busy or not queue:
            return state
        nxt, rest = queue[0], queue[1:]
        ndir = (dstate, owner, sharers, False, rest)
        return self._dir_process(self._make(state, directory=ndir), nxt, net)

    # -- cache side ------------------------------------------------------
    def _cache_deliveries(self, state):
        caches, directory, mem, net, wants = state
        out = []
        # dict.fromkeys: dedup like set() but in net's sorted-by-repr order,
        # so transition enumeration is reproducible across processes.
        for msg in dict.fromkeys(net):
            kind = msg[0]
            if kind in ("gets", "getx", "unblock", "wb_req", "wb_data"):
                continue  # directory-side messages
            nnet = _remove(net, msg)
            if kind == "data":
                out.append(("deliver_data", self._on_data(state, msg, nnet)))
            elif kind == "ack":
                out.append(("deliver_ack", self._on_ack(state, msg, nnet)))
            elif kind == "inv":
                out.append(("deliver_inv", self._on_inv(state, msg, nnet)))
            elif kind in ("fwd_s", "fwd_x"):
                out.append((f"deliver_{kind}", self._on_fwd(state, msg, nnet)))
            elif kind == "wb_grant":
                out.append(("deliver_wb_grant", self._on_wb_grant(state, msg, nnet)))
        return [t for t in out if t[1] is not None]

    def _on_data(self, state, msg, net):
        caches, directory, mem, _n, wants = state
        _k, i, value, grant, acks = msg
        cstate, cvalue, pend = caches[i]
        if cstate == IS:
            nc = _set(caches, i, (grant, value, None))
            nw = wants[:i] + (None,) + wants[i + 1:]
            net = _add(net, ("unblock", i, grant))
            return self._make(state, caches=nc, net=net, wants=nw)
        # IM / IMo: record data + expected ack count (acks may have raced
        # ahead of the data message — they were counted in acks_got).
        has_data, data, expected, got = pend
        pend = (True, value, acks, got)
        return self._finish_write(state, i, (cstate, cvalue, pend), net, wants)

    def _on_ack(self, state, msg, net):
        caches, directory, mem, _n, wants = state
        _k, i = msg[:2]
        cstate, cvalue, pend = caches[i]
        has_data, data, expected, got = pend
        pend = (has_data, data, expected, got + 1)
        return self._finish_write(state, i, (cstate, cvalue, pend), net, wants)

    def _finish_write(self, state, i, cache, net, wants):
        caches, directory, mem, _n, _w = state
        cstate, cvalue, pend = cache
        has_data, data, expected, got = pend
        if has_data and expected is not None and got >= expected:
            nc = _set(caches, i, (M, (data + 1) % self.D, None))
            nw = wants[:i] + (None,) + wants[i + 1:]
            net = _add(net, ("unblock", i, M))
            return self._make(state, caches=nc, net=net, wants=nw)
        nc = _set(caches, i, (cstate, cvalue, pend))
        return self._make(state, caches=nc, net=net, wants=wants)

    def _on_inv(self, state, msg, net):
        caches, directory, mem, _n, wants = state
        _k, j, req = msg
        cstate, cvalue, pend = caches[j]
        net = _add(net, ("ack", req))
        if cstate == S:
            nc = _set(caches, j, (I, 0, None))
        elif cstate == WB:
            value, _cancelled = pend
            nc = _set(caches, j, (WB, cvalue, (value, True)))
        elif cstate in (M, O):
            raise VerificationError("directory invalidated the owner")
        else:
            nc = caches  # IS/IM/I: ack and carry on
        return self._make(state, caches=nc, net=net)

    def _on_fwd(self, state, msg, net):
        caches, directory, mem, _n, wants = state
        if msg[0] == "fwd_s":
            _k, j, req, migrate = msg
            acks = 0
        else:
            _k, j, req, acks = msg
            migrate = True  # fwd_x always takes the whole block
        cstate, cvalue, pend = caches[j]
        if cstate == M or cstate == O:
            value = cvalue
            if migrate:
                nc = _set(caches, j, (I, 0, None))
                net = _add(net, ("data", req, value, M, acks))
            else:
                nc = _set(caches, j, (O, cvalue, None))
                net = _add(net, ("data", req, value, S, 0))
        elif cstate == IMO:
            has_data, data, expected, got = pend
            value = data
            if migrate:
                # We surrender our owner data; the getx must now wait for a
                # fresh data grant like any other IM requestor.
                nc = _set(caches, j, (IM, cvalue, (False, 0, expected, got)))
                net = _add(net, ("data", req, value, M, acks))
            else:
                nc = caches
                net = _add(net, ("data", req, value, S, 0))
        elif cstate == WB:
            value, cancelled = pend
            if migrate:
                nc = _set(caches, j, (WB, cvalue, (value, True)))
                net = _add(net, ("data", req, value, M, acks))
            else:
                nc = caches
                net = _add(net, ("data", req, value, S, 0))
        else:
            raise VerificationError(f"forward to a cache in state {cstate}")
        return self._make(state, caches=nc, net=net)

    def _on_wb_grant(self, state, msg, net):
        caches, directory, mem, _n, wants = state
        _k, i = msg
        cstate, cvalue, pend = caches[i]
        if cstate != WB:
            raise VerificationError("writeback grant to a non-WB cache")
        value, cancelled = pend
        net = _add(net, ("wb_data", i, value, cancelled))
        nc = _set(caches, i, (I, 0, None))
        return self._make(state, caches=nc, net=net)

    # -- spontaneous evictions ---------------------------------------------
    def _evictions(self, state):
        caches, directory, mem, net, wants = state
        out = []
        if len(net) >= self.net_cap:
            return out
        for i in range(self.n):
            cstate, cvalue, pend = caches[i]
            if wants[i] is not None:
                continue
            if cstate in (M, O):
                nc = _set(caches, i, (WB, cvalue, (cvalue, False)))
                out.append((f"evict_dirty{i}", self._make(
                    state, caches=nc, net=_add(net, ("wb_req", i)))))
            elif cstate == S:
                nc = _set(caches, i, (I, 0, None))
                out.append((f"evict_clean{i}", self._make(state, caches=nc)))
        return out

    # ------------------------------------------------------------------
    def check_invariants(self, state) -> None:
        caches, directory, mem, net, wants = state
        owners = []
        for i, (cstate, value, pend) in enumerate(caches):
            if cstate == M:
                owners.append(value)
            elif cstate == O:
                owners.append(value)
            elif cstate == WB and pend is not None and not pend[1]:
                owners.append(pend[0])
            elif cstate in (IM, IMO) and pend is not None and pend[0]:
                owners.append(pend[1])  # holds the granted (or O) data
        for msg in net:
            if msg[0] == "data" and msg[3] == M:
                owners.append(msg[2])
            if msg[0] == "wb_data" and not msg[3]:
                owners.append(msg[2])
        if len(owners) > 1:
            raise VerificationError(f"multiple owners: {owners}")
        authoritative = owners[0] if owners else mem
        writers = sum(1 for c in caches if c[0] == M)
        if writers > 1:
            raise VerificationError("two caches writable")
        if writers:
            for cstate, value, _p in caches:
                if cstate in (S, O) and value != authoritative:
                    raise VerificationError("writable block also cached shared")
        for cstate, value, _p in caches:
            if cstate in (S, O, M) and value != authoritative:
                raise VerificationError(
                    f"stale copy {value} != authoritative {authoritative}"
                )

    def is_quiescent(self, state) -> bool:
        caches, directory, mem, net, wants = state
        dstate, owner, sharers, busy, queue = directory
        return (
            not net
            and not busy
            and not queue
            and all(w is None for w in wants)
            and all(c[0] in (I, S, O, M) for c in caches)
        )


def _set(caches, i, entry):
    return caches[:i] + (entry,) + caches[i + 1:]
